//! Constructive private-coin protocols (§3.1 of the paper).
//!
//! Newman's theorem converts any shared-coin protocol into a private-coin
//! one at `+O(log log T)` bits, but non-constructively. The paper instead
//! gives a *constructive* recipe, implemented here as a wrapper:
//!
//! 1. Alice uses her **private** randomness to sample the FKS mod-prime
//!    universe reduction `x ↦ x mod q` (\[FKS84\], [`intersect_hash::reduce`])
//!    and transmits its seed — `O(log k + log log n)` bits — shrinking the
//!    effective universe to `Õ(k² log n)`.
//! 2. Alice samples and transmits a session seed of
//!    `O(log k + log log n)` bits from which both parties derive every
//!    hash function the inner protocol needs over the *reduced* universe
//!    (where seeds of that length suffice to describe a pairwise-
//!    independent function).
//!
//! Total overhead: `O(log k + log log n)` bits and one extra message,
//! matching Theorem 3.1's private-randomness claim. The inner protocol
//! never touches the original common random string.

use crate::api::SetIntersection;
use crate::sets::{ElementSet, ProblemSpec};
use intersect_comm::bits::BitBuf;
use intersect_comm::chan::Chan;
use intersect_comm::coins::{stream_session_seed, CoinSource};
use intersect_comm::error::ProtocolError;
use intersect_comm::runner::Side;
use intersect_hash::reduce::ModPrimeReduction;
use rand::Rng;
use std::collections::HashMap;

/// The correlated randomness one pair of parties accumulates across a
/// *stream* of private-coin sessions: the universe reduction and session
/// seed exchanged once, in session 0, then reused — later sessions derive
/// fresh per-session coins from the transmitted seed with **zero**
/// further setup bits on the wire. This is the amortization of the
/// paper's Theorem 3.1 overhead: `O(log k + log log n)` setup bits total
/// for the pair instead of per session, so amortized cost approaches the
/// shared-coin protocol's as the stream grows.
#[derive(Debug, Clone)]
pub struct PairRandomness {
    reduction: Option<ModPrimeReduction>,
    session: u64,
    used: u64,
}

impl PairRandomness {
    /// The transmitted session seed the pair's coin derivations chain
    /// from.
    pub fn session_seed(&self) -> u64 {
        self.session
    }

    /// How many streamed sessions have consumed this state.
    pub fn sessions_run(&self) -> u64 {
        self.used
    }

    /// The pair's shared universe reduction, if the universe was large
    /// enough to reduce.
    pub fn reduction(&self) -> Option<&ModPrimeReduction> {
        self.reduction.as_ref()
    }
}

/// Wraps a shared-coin [`SetIntersection`] protocol into a constructive
/// private-coin protocol.
///
/// # Examples
///
/// ```
/// use intersect_core::newman::PrivateCoin;
/// use intersect_core::api::execute;
/// use intersect_core::sets::{InputPair, ProblemSpec};
/// use intersect_core::tree::TreeProtocol;
/// use rand::SeedableRng;
///
/// let spec = ProblemSpec::new(1 << 40, 32);
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(9);
/// let pair = InputPair::random_with_overlap(&mut rng, spec, 32, 8);
/// let proto = PrivateCoin::new(TreeProtocol::new(2));
/// let run = execute(&proto, spec, &pair, 1)?;
/// assert!(run.matches(&pair.ground_truth()));
/// # Ok::<(), intersect_comm::error::ProtocolError>(())
/// ```
#[derive(Debug, Clone, Copy)]
pub struct PrivateCoin<P> {
    /// The shared-coin protocol being wrapped.
    pub inner: P,
}

impl<P> PrivateCoin<P> {
    /// Wraps `inner`.
    pub fn new(inner: P) -> Self {
        PrivateCoin { inner }
    }

    /// The transmitted session-seed width for a given spec:
    /// `O(log k + log log n)` bits.
    pub fn session_seed_bits(spec: ProblemSpec) -> usize {
        let log_k = crate::iterlog::ceil_log2(spec.k.max(2)) as usize;
        let loglog_n =
            crate::iterlog::ceil_log2(crate::iterlog::ceil_log2(spec.n.max(4)).max(2)) as usize;
        (2 * (log_k + loglog_n) + 16).min(64)
    }
}

impl<P: SetIntersection + Clone + 'static> PrivateCoin<P> {
    /// The one extra message of Theorem 3.1: Alice samples the universe
    /// reduction and session seed from her private randomness and
    /// transmits both; Bob reads them. Exactly `run`'s setup exchange.
    fn exchange_setup(
        &self,
        chan: &mut dyn Chan,
        coins: &CoinSource,
        side: Side,
        spec: ProblemSpec,
    ) -> Result<(Option<ModPrimeReduction>, u64), ProtocolError> {
        let seed_w = Self::session_seed_bits(spec);
        let (_lo, hi) = ModPrimeReduction::window(spec.n, spec.k);
        // Reduction helps only if it shrinks the universe.
        let reduce = spec.n > hi;
        match side {
            Side::Alice => {
                // Alice's private randomness: a fork Bob never reads and the
                // inner protocol never sees — private for accounting
                // purposes, reproducible for experiments.
                let mut rng = coins.fork("newman/alice-private").rng();
                let mut msg = BitBuf::new();
                let reduction = if reduce {
                    let red = ModPrimeReduction::sample(&mut rng, spec.n, spec.k);
                    red.write_seed(&mut msg);
                    Some(red)
                } else {
                    None
                };
                let session: u64 = rng.gen::<u64>() & ((1u128 << seed_w) - 1) as u64;
                msg.push_bits(session, seed_w);
                chan.send(msg)?;
                Ok((reduction, session))
            }
            Side::Bob => {
                let msg = chan.recv()?;
                let mut r = msg.reader();
                let reduction = if reduce {
                    Some(ModPrimeReduction::read_seed(&mut r, spec.n, spec.k)?)
                } else {
                    None
                };
                let session = r.read_bits(seed_w)?;
                Ok((reduction, session))
            }
        }
    }

    /// Runs the inner protocol under an already-agreed reduction and
    /// session-coin source: maps the input into the reduced universe,
    /// executes, and maps the output back.
    fn run_reduced(
        &self,
        chan: &mut dyn Chan,
        side: Side,
        spec: ProblemSpec,
        input: &ElementSet,
        reduction: Option<&ModPrimeReduction>,
        session_coins: &CoinSource,
    ) -> Result<ElementSet, ProtocolError> {
        // Map inputs into the reduced universe (merging own-set collisions,
        // keeping the smallest original — part of the failure budget).
        let (work_set, back_map, inner_spec) = match reduction {
            None => {
                let map: HashMap<u64, u64> = input.iter().map(|x| (x, x)).collect();
                (input.clone(), map, spec)
            }
            Some(red) => {
                let mut map = HashMap::with_capacity(input.len());
                for x in input.iter() {
                    map.entry(red.map(x)).or_insert(x);
                }
                let set: ElementSet = map.keys().copied().collect();
                let inner_spec = ProblemSpec {
                    n: red.reduced_universe(),
                    k: spec.k,
                };
                (set, map, inner_spec)
            }
        };
        let out = self
            .inner
            .run(chan, session_coins, side, inner_spec, &work_set)?;
        Ok(out
            .iter()
            .map(|m| *back_map.get(&m).expect("output is a subset of the input"))
            .collect())
    }

    /// Runs one session of a private-coin *stream* sharing `state`
    /// across sessions of one pair.
    ///
    /// The first call (with `*state == None`) performs the full setup
    /// exchange and is **bit-identical** to [`run`](SetIntersection::run)
    /// with the same `coins`. Every later call transmits *zero* setup
    /// bits: both parties already hold the reduction, and session `i`'s
    /// inner coins derive from the transmitted seed as
    /// `stream_session_seed(session, i)` — correlated randomness
    /// consumed off the wire. Amortized over an `N`-session stream the
    /// Theorem 3.1 overhead drops from `O(log k + log log n)` per
    /// session to `O((log k + log log n)/N)`.
    ///
    /// # Errors
    ///
    /// As [`run`](SetIntersection::run).
    pub fn run_streamed(
        &self,
        chan: &mut dyn Chan,
        coins: &CoinSource,
        side: Side,
        spec: ProblemSpec,
        input: &ElementSet,
        state: &mut Option<PairRandomness>,
    ) -> Result<ElementSet, ProtocolError> {
        spec.validate(input).map_err(ProtocolError::InvalidInput)?;
        if state.is_none() {
            let (reduction, session) = self.exchange_setup(chan, coins, side, spec)?;
            *state = Some(PairRandomness {
                reduction,
                session,
                used: 0,
            });
        }
        let st = state.as_mut().expect("state initialized above");
        // Session 0 replays `run`'s derivation exactly; later sessions
        // chain pure per-session seeds off the one transmitted seed.
        let seed = if st.used == 0 {
            st.session
        } else {
            stream_session_seed(st.session, st.used)
        };
        st.used += 1;
        let session_coins = CoinSource::from_seed(seed).fork("newman/session");
        let reduction = st.reduction.clone();
        self.run_reduced(chan, side, spec, input, reduction.as_ref(), &session_coins)
    }
}

impl<P: SetIntersection + Clone + 'static> SetIntersection for PrivateCoin<P> {
    fn name(&self) -> String {
        format!("private-coin({})", self.inner.name())
    }

    // The reduction is sampled from Alice's private coins at run time, so
    // there is nothing input-independent to hoist.
    fn prepare(&self, spec: ProblemSpec) -> std::sync::Arc<dyn crate::prepared::PreparedProtocol> {
        std::sync::Arc::new(crate::prepared::FallbackPlan::new(self.clone(), spec))
    }

    fn run(
        &self,
        chan: &mut dyn Chan,
        coins: &CoinSource,
        side: Side,
        spec: ProblemSpec,
        input: &ElementSet,
    ) -> Result<ElementSet, ProtocolError> {
        spec.validate(input).map_err(ProtocolError::InvalidInput)?;
        // One extra message: Alice's private choices.
        let (reduction, session) = self.exchange_setup(chan, coins, side, spec)?;
        // The inner protocol runs on coins derived ONLY from the
        // transmitted session seed.
        let session_coins = CoinSource::from_seed(session).fork("newman/session");
        self.run_reduced(chan, side, spec, input, reduction.as_ref(), &session_coins)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::execute;
    use crate::sets::InputPair;
    use crate::sqrt::SqrtProtocol;
    use crate::tree::TreeProtocol;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn private_coin_tree_is_correct() {
        let spec = ProblemSpec::new(1 << 40, 64);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let proto = PrivateCoin::new(TreeProtocol::new(3));
        let mut exact = 0;
        for seed in 0..30 {
            let pair = InputPair::random_with_overlap(&mut rng, spec, 64, 20);
            if execute(&proto, spec, &pair, seed)
                .unwrap()
                .matches(&pair.ground_truth())
            {
                exact += 1;
            }
        }
        assert!(exact >= 28, "{exact}/30");
    }

    #[test]
    fn private_coin_sqrt_is_correct() {
        let spec = ProblemSpec::new(1 << 36, 32);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let proto = PrivateCoin::new(SqrtProtocol::default());
        let pair = InputPair::random_with_overlap(&mut rng, spec, 32, 16);
        let run = execute(&proto, spec, &pair, 3).unwrap();
        assert!(run.matches(&pair.ground_truth()));
    }

    #[test]
    fn overhead_is_loglog_in_n() {
        // The extra cost vs the shared-coin protocol is the seed message:
        // O(log k + log log n) bits — compare n = 2^30 vs n = 2^60.
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut overheads = Vec::new();
        for log_n in [30u32, 60] {
            let spec = ProblemSpec::new(1 << log_n, 64);
            let pair = InputPair::random_with_overlap(&mut rng, spec, 64, 32);
            let shared = execute(&TreeProtocol::new(2), spec, &pair, 7).unwrap();
            let private = execute(&PrivateCoin::new(TreeProtocol::new(2)), spec, &pair, 7).unwrap();
            assert!(private.matches(&pair.ground_truth()));
            overheads.push(private.report.total_bits() as i64 - shared.report.total_bits() as i64);
        }
        // Overheads are small and grow by O(1) bits when n squares.
        for &o in &overheads {
            assert!(o.unsigned_abs() < 600, "overhead {o} too large");
        }
    }

    #[test]
    fn seed_width_is_modest() {
        let spec = ProblemSpec::new(1 << 60, 1 << 14);
        assert!(PrivateCoin::<TreeProtocol>::session_seed_bits(spec) <= 64);
        let small = ProblemSpec::new(1 << 16, 16);
        assert!(PrivateCoin::<TreeProtocol>::session_seed_bits(small) <= 40);
    }

    #[test]
    fn streamed_session_zero_is_bit_identical_to_one_shot() {
        use intersect_comm::runner::{run_two_party, RunConfig};
        let spec = ProblemSpec::new(1 << 40, 32);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let pair = InputPair::random_with_overlap(&mut rng, spec, 32, 12);
        let proto = PrivateCoin::new(TreeProtocol::new(2));
        let cfg = RunConfig::with_seed(42);
        let one_shot = run_two_party(
            &cfg,
            |chan, coins| proto.run(chan, coins, Side::Alice, spec, &pair.s),
            |chan, coins| proto.run(chan, coins, Side::Bob, spec, &pair.t),
        )
        .unwrap();
        let mut state_a = None;
        let mut state_b = None;
        let streamed = run_two_party(
            &cfg,
            |chan, coins| proto.run_streamed(chan, coins, Side::Alice, spec, &pair.s, &mut state_a),
            |chan, coins| proto.run_streamed(chan, coins, Side::Bob, spec, &pair.t, &mut state_b),
        )
        .unwrap();
        assert_eq!(streamed.report, one_shot.report);
        assert_eq!(streamed.alice, one_shot.alice);
        assert_eq!(streamed.bob, one_shot.bob);
        assert_eq!(state_a.unwrap().sessions_run(), 1);
    }

    #[test]
    fn streamed_sessions_amortize_the_setup_bits() {
        use crate::trivial::TrivialExchange;
        use intersect_comm::runner::{RunConfig, SessionRunner};
        let spec = ProblemSpec::new(1 << 40, 32);
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        // A deterministic inner protocol and one fixed input pair make
        // the setup-amortization accounting exact: every session after
        // the first must cost precisely `setup_bits` less.
        let pair = InputPair::random_with_overlap(&mut rng, spec, 32, 10);
        let proto = PrivateCoin::new(TrivialExchange::default());
        let n_sessions = 6usize;
        let seeds = vec![42u64; n_sessions];
        let mut runner = SessionRunner::start();
        let mut state_a = None;
        let mut state_b = None;
        let (s, t) = (pair.s.clone(), pair.t.clone());
        let parts = runner
            .run_batch_parts(
                &RunConfig::with_seed(42),
                &seeds,
                |_, chan, coins| {
                    proto.run_streamed(chan, coins, Side::Alice, spec, &s, &mut state_a)
                },
                move |_, chan, coins| {
                    proto.run_streamed(chan, coins, Side::Bob, spec, &t, &mut state_b)
                },
            )
            .unwrap();
        let setup_bits = (ModPrimeReduction::seed_bits(spec.n, spec.k)
            + PrivateCoin::<TrivialExchange>::session_seed_bits(spec))
            as u64;
        let bits: Vec<u64> = parts.iter().map(|p| p.report.total_bits()).collect();
        let truth = pair.ground_truth();
        for (i, parts) in parts.iter().enumerate() {
            assert_eq!(parts.alice.as_ref().unwrap(), &truth, "session {i} exact");
        }
        // Sessions after the first transmit zero setup bits …
        for (i, &b) in bits.iter().enumerate().skip(1) {
            assert_eq!(b + setup_bits, bits[0], "session {i} carries no setup");
        }
        // … so amortized bits/session strictly decreases with stream
        // length: total(N)/N bends below the one-shot cost bits[0].
        let amortized = |n: usize| bits[..n].iter().sum::<u64>() as f64 / n as f64;
        assert!(amortized(6) < amortized(2));
        assert!(amortized(2) < amortized(1));
    }

    #[test]
    fn small_universe_skips_reduction() {
        let spec = ProblemSpec::new(1000, 8);
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let pair = InputPair::random_with_overlap(&mut rng, spec, 8, 3);
        let proto = PrivateCoin::new(TreeProtocol::new(2));
        let run = execute(&proto, spec, &pair, 5).unwrap();
        assert!(run.matches(&pair.ground_truth()));
    }
}
