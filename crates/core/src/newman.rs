//! Constructive private-coin protocols (§3.1 of the paper).
//!
//! Newman's theorem converts any shared-coin protocol into a private-coin
//! one at `+O(log log T)` bits, but non-constructively. The paper instead
//! gives a *constructive* recipe, implemented here as a wrapper:
//!
//! 1. Alice uses her **private** randomness to sample the FKS mod-prime
//!    universe reduction `x ↦ x mod q` (\[FKS84\], [`intersect_hash::reduce`])
//!    and transmits its seed — `O(log k + log log n)` bits — shrinking the
//!    effective universe to `Õ(k² log n)`.
//! 2. Alice samples and transmits a session seed of
//!    `O(log k + log log n)` bits from which both parties derive every
//!    hash function the inner protocol needs over the *reduced* universe
//!    (where seeds of that length suffice to describe a pairwise-
//!    independent function).
//!
//! Total overhead: `O(log k + log log n)` bits and one extra message,
//! matching Theorem 3.1's private-randomness claim. The inner protocol
//! never touches the original common random string.

use crate::api::SetIntersection;
use crate::sets::{ElementSet, ProblemSpec};
use intersect_comm::bits::BitBuf;
use intersect_comm::chan::Chan;
use intersect_comm::coins::CoinSource;
use intersect_comm::error::ProtocolError;
use intersect_comm::runner::Side;
use intersect_hash::reduce::ModPrimeReduction;
use rand::Rng;
use std::collections::HashMap;

/// Wraps a shared-coin [`SetIntersection`] protocol into a constructive
/// private-coin protocol.
///
/// # Examples
///
/// ```
/// use intersect_core::newman::PrivateCoin;
/// use intersect_core::api::execute;
/// use intersect_core::sets::{InputPair, ProblemSpec};
/// use intersect_core::tree::TreeProtocol;
/// use rand::SeedableRng;
///
/// let spec = ProblemSpec::new(1 << 40, 32);
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(9);
/// let pair = InputPair::random_with_overlap(&mut rng, spec, 32, 8);
/// let proto = PrivateCoin::new(TreeProtocol::new(2));
/// let run = execute(&proto, spec, &pair, 1)?;
/// assert!(run.matches(&pair.ground_truth()));
/// # Ok::<(), intersect_comm::error::ProtocolError>(())
/// ```
#[derive(Debug, Clone, Copy)]
pub struct PrivateCoin<P> {
    /// The shared-coin protocol being wrapped.
    pub inner: P,
}

impl<P> PrivateCoin<P> {
    /// Wraps `inner`.
    pub fn new(inner: P) -> Self {
        PrivateCoin { inner }
    }

    /// The transmitted session-seed width for a given spec:
    /// `O(log k + log log n)` bits.
    pub fn session_seed_bits(spec: ProblemSpec) -> usize {
        let log_k = crate::iterlog::ceil_log2(spec.k.max(2)) as usize;
        let loglog_n =
            crate::iterlog::ceil_log2(crate::iterlog::ceil_log2(spec.n.max(4)).max(2)) as usize;
        (2 * (log_k + loglog_n) + 16).min(64)
    }
}

impl<P: SetIntersection + Clone + 'static> SetIntersection for PrivateCoin<P> {
    fn name(&self) -> String {
        format!("private-coin({})", self.inner.name())
    }

    // The reduction is sampled from Alice's private coins at run time, so
    // there is nothing input-independent to hoist.
    fn prepare(&self, spec: ProblemSpec) -> std::sync::Arc<dyn crate::prepared::PreparedProtocol> {
        std::sync::Arc::new(crate::prepared::FallbackPlan::new(self.clone(), spec))
    }

    fn run(
        &self,
        chan: &mut dyn Chan,
        coins: &CoinSource,
        side: Side,
        spec: ProblemSpec,
        input: &ElementSet,
    ) -> Result<ElementSet, ProtocolError> {
        spec.validate(input).map_err(ProtocolError::InvalidInput)?;
        let seed_w = Self::session_seed_bits(spec);
        let (_lo, hi) = ModPrimeReduction::window(spec.n, spec.k);
        // Reduction helps only if it shrinks the universe.
        let reduce = spec.n > hi;

        // One extra message: Alice's private choices.
        let (reduction, session) = match side {
            Side::Alice => {
                // Alice's private randomness: a fork Bob never reads and the
                // inner protocol never sees — private for accounting
                // purposes, reproducible for experiments.
                let mut rng = coins.fork("newman/alice-private").rng();
                let mut msg = BitBuf::new();
                let reduction = if reduce {
                    let red = ModPrimeReduction::sample(&mut rng, spec.n, spec.k);
                    red.write_seed(&mut msg);
                    Some(red)
                } else {
                    None
                };
                let session: u64 = rng.gen::<u64>() & ((1u128 << seed_w) - 1) as u64;
                msg.push_bits(session, seed_w);
                chan.send(msg)?;
                (reduction, session)
            }
            Side::Bob => {
                let msg = chan.recv()?;
                let mut r = msg.reader();
                let reduction = if reduce {
                    Some(ModPrimeReduction::read_seed(&mut r, spec.n, spec.k)?)
                } else {
                    None
                };
                let session = r.read_bits(seed_w)?;
                (reduction, session)
            }
        };

        // Map inputs into the reduced universe (merging own-set collisions,
        // keeping the smallest original — part of the failure budget).
        let (work_set, back_map, inner_spec) = match &reduction {
            None => {
                let map: HashMap<u64, u64> = input.iter().map(|x| (x, x)).collect();
                (input.clone(), map, spec)
            }
            Some(red) => {
                let mut map = HashMap::with_capacity(input.len());
                for x in input.iter() {
                    map.entry(red.map(x)).or_insert(x);
                }
                let set: ElementSet = map.keys().copied().collect();
                let inner_spec = ProblemSpec {
                    n: red.reduced_universe(),
                    k: spec.k,
                };
                (set, map, inner_spec)
            }
        };

        // The inner protocol runs on coins derived ONLY from the
        // transmitted session seed.
        let session_coins = CoinSource::from_seed(session).fork("newman/session");
        let out = self
            .inner
            .run(chan, &session_coins, side, inner_spec, &work_set)?;
        Ok(out
            .iter()
            .map(|m| *back_map.get(&m).expect("output is a subset of the input"))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::execute;
    use crate::sets::InputPair;
    use crate::sqrt::SqrtProtocol;
    use crate::tree::TreeProtocol;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn private_coin_tree_is_correct() {
        let spec = ProblemSpec::new(1 << 40, 64);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let proto = PrivateCoin::new(TreeProtocol::new(3));
        let mut exact = 0;
        for seed in 0..30 {
            let pair = InputPair::random_with_overlap(&mut rng, spec, 64, 20);
            if execute(&proto, spec, &pair, seed)
                .unwrap()
                .matches(&pair.ground_truth())
            {
                exact += 1;
            }
        }
        assert!(exact >= 28, "{exact}/30");
    }

    #[test]
    fn private_coin_sqrt_is_correct() {
        let spec = ProblemSpec::new(1 << 36, 32);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let proto = PrivateCoin::new(SqrtProtocol::default());
        let pair = InputPair::random_with_overlap(&mut rng, spec, 32, 16);
        let run = execute(&proto, spec, &pair, 3).unwrap();
        assert!(run.matches(&pair.ground_truth()));
    }

    #[test]
    fn overhead_is_loglog_in_n() {
        // The extra cost vs the shared-coin protocol is the seed message:
        // O(log k + log log n) bits — compare n = 2^30 vs n = 2^60.
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut overheads = Vec::new();
        for log_n in [30u32, 60] {
            let spec = ProblemSpec::new(1 << log_n, 64);
            let pair = InputPair::random_with_overlap(&mut rng, spec, 64, 32);
            let shared = execute(&TreeProtocol::new(2), spec, &pair, 7).unwrap();
            let private = execute(&PrivateCoin::new(TreeProtocol::new(2)), spec, &pair, 7).unwrap();
            assert!(private.matches(&pair.ground_truth()));
            overheads.push(private.report.total_bits() as i64 - shared.report.total_bits() as i64);
        }
        // Overheads are small and grow by O(1) bits when n squares.
        for &o in &overheads {
            assert!(o.unsigned_abs() < 600, "overhead {o} too large");
        }
    }

    #[test]
    fn seed_width_is_modest() {
        let spec = ProblemSpec::new(1 << 60, 1 << 14);
        assert!(PrivateCoin::<TreeProtocol>::session_seed_bits(spec) <= 64);
        let small = ProblemSpec::new(1 << 16, 16);
        assert!(PrivateCoin::<TreeProtocol>::session_seed_bits(small) <= 40);
    }

    #[test]
    fn small_universe_skips_reduction() {
        let spec = ProblemSpec::new(1000, 8);
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let pair = InputPair::random_with_overlap(&mut rng, spec, 8, 3);
        let proto = PrivateCoin::new(TreeProtocol::new(2));
        let run = execute(&proto, spec, &pair, 5).unwrap();
        assert!(run.matches(&pair.ground_truth()));
    }
}
