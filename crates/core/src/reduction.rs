//! The `EQ^n_k → INT_k` reduction (Fact 2.1).
//!
//! Given `k` equality instances `(x₁,…,x_k)` vs `(y₁,…,y_k)`, build the
//! sets `{(i, xᵢ)}` and `{(i, yᵢ)}` — encoded as `i·2^w + value` over the
//! universe `[k·2^w]` — and compute their intersection: `(i, xᵢ)` survives
//! iff `xᵢ = yᵢ`. Any intersection protocol therefore solves `k` copies of
//! equality at the same cost, which is how the paper concludes that its
//! protocols "significantly improve the round complexity of Feder et
//! al." — experiment E8 measures exactly this.

use crate::api::SetIntersection;
use crate::sets::{ElementSet, ProblemSpec};
use intersect_comm::bits::bit_width_for;
use intersect_comm::chan::Chan;
use intersect_comm::coins::CoinSource;
use intersect_comm::error::ProtocolError;
use intersect_comm::runner::Side;

/// Solves `k = values.len()` equality instances with the given
/// intersection protocol. `values[i]` must fit in `value_bits` bits.
///
/// Returns a verdict per instance (`true` = judged equal); both parties
/// return the same vector whenever the protocol succeeds.
///
/// # Errors
///
/// Fails if a value exceeds `value_bits`, or on protocol failure.
///
/// # Examples
///
/// ```
/// use intersect_core::reduction::equalities_via_intersection;
/// use intersect_core::tree::TreeProtocol;
/// use intersect_comm::runner::{run_two_party, RunConfig, Side};
///
/// let xs = [5u64, 6, 7];
/// let ys = [5u64, 0, 7];
/// let proto = TreeProtocol::new(2);
/// let out = run_two_party(
///     &RunConfig::with_seed(2),
///     |chan, coins| equalities_via_intersection(&proto, chan, coins, Side::Alice, &xs, 16),
///     |chan, coins| equalities_via_intersection(&proto, chan, coins, Side::Bob, &ys, 16),
/// )?;
/// assert_eq!(out.alice, vec![true, false, true]);
/// assert_eq!(out.alice, out.bob);
/// # Ok::<(), intersect_comm::error::ProtocolError>(())
/// ```
pub fn equalities_via_intersection(
    protocol: &dyn SetIntersection,
    chan: &mut dyn Chan,
    coins: &CoinSource,
    side: Side,
    values: &[u64],
    value_bits: usize,
) -> Result<Vec<bool>, ProtocolError> {
    let k = values.len() as u64;
    if k == 0 {
        return Ok(Vec::new());
    }
    if value_bits == 0 || value_bits > 48 {
        return Err(ProtocolError::InvalidInput(format!(
            "value_bits must be in 1..=48, got {value_bits}"
        )));
    }
    let index_bits = bit_width_for(k).max(1);
    if index_bits + value_bits > 62 {
        return Err(ProtocolError::InvalidInput(
            "k · 2^value_bits exceeds the supported universe".into(),
        ));
    }
    for (i, &v) in values.iter().enumerate() {
        if value_bits < 64 && v >> value_bits != 0 {
            return Err(ProtocolError::InvalidInput(format!(
                "value {v} at index {i} exceeds {value_bits} bits"
            )));
        }
    }
    let spec = ProblemSpec::new(k << value_bits, k);
    let set: ElementSet = values
        .iter()
        .enumerate()
        .map(|(i, &v)| ((i as u64) << value_bits) | v)
        .collect();
    let out = protocol.run(chan, &coins.fork("fact2.1"), side, spec, &set)?;
    Ok((0..values.len())
        .map(|i| out.contains(((i as u64) << value_bits) | values[i]))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sqrt::SqrtProtocol;
    use crate::tree::TreeProtocol;
    use intersect_comm::runner::{run_two_party, RunConfig};
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn solve(
        proto: &dyn SetIntersection,
        seed: u64,
        xs: &[u64],
        ys: &[u64],
        bits: usize,
    ) -> (Vec<bool>, Vec<bool>) {
        let out = run_two_party(
            &RunConfig::with_seed(seed),
            |chan, coins| equalities_via_intersection(proto, chan, coins, Side::Alice, xs, bits),
            |chan, coins| equalities_via_intersection(proto, chan, coins, Side::Bob, ys, bits),
        )
        .unwrap();
        (out.alice, out.bob)
    }

    #[test]
    fn random_instances_get_correct_verdicts() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let proto = TreeProtocol::new(2);
        for seed in 0..10 {
            let k = 32;
            let xs: Vec<u64> = (0..k).map(|_| rng.gen_range(0..1 << 20)).collect();
            let ys: Vec<u64> = xs
                .iter()
                .map(|&x| if rng.gen_bool(0.5) { x } else { x ^ 1 })
                .collect();
            let (a, b) = solve(&proto, seed, &xs, &ys, 20);
            assert_eq!(a, b);
            let expect: Vec<bool> = xs.iter().zip(&ys).map(|(x, y)| x == y).collect();
            assert_eq!(a, expect, "seed {seed}");
        }
    }

    #[test]
    fn works_with_sqrt_protocol_too() {
        let proto = SqrtProtocol::default();
        let xs = [1u64, 2, 3, 4];
        let ys = [1u64, 9, 3, 8];
        let (a, _) = solve(&proto, 3, &xs, &ys, 8);
        assert_eq!(a, vec![true, false, true, false]);
    }

    #[test]
    fn duplicate_values_across_indices_do_not_confuse() {
        // Same value at different indices must be independent instances.
        let proto = TreeProtocol::new(2);
        let xs = [7u64, 7, 7];
        let ys = [7u64, 8, 7];
        let (a, _) = solve(&proto, 4, &xs, &ys, 8);
        assert_eq!(a, vec![true, false, true]);
    }

    #[test]
    fn rejects_oversized_values() {
        let proto = TreeProtocol::new(2);
        let out = run_two_party(
            &RunConfig::with_seed(1),
            |chan, coins| equalities_via_intersection(&proto, chan, coins, Side::Alice, &[256], 8),
            |chan, coins| equalities_via_intersection(&proto, chan, coins, Side::Bob, &[1], 8),
        );
        assert!(out.is_err());
    }

    #[test]
    fn empty_instance_list() {
        let proto = TreeProtocol::new(2);
        let (a, b) = solve(&proto, 5, &[], &[], 8);
        assert!(a.is_empty() && b.is_empty());
    }
}
