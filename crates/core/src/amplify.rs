//! Success amplification to `1 − 2^{-k}` (the Section 4 observation).
//!
//! The paper notes that the two-party protocol of Theorem 1.1 can be
//! amplified to success probability `1 − 2^{-k}` while keeping expected
//! communication `O(k·log^{(r)} k)`: repeat the protocol until a `k`-bit
//! equality check (Fact 3.5) certifies that the two outputs agree. By
//! Corollary 3.4-style one-sidedness, *agreeing* outputs of any protocol
//! whose outputs always sandwich the true intersection are *correct*
//! outputs, so the only remaining error is the equality check itself:
//! `2^{-k}`. The expected number of repetitions is `1 + o(1)`, and the
//! worst case is capped (reaching the cap is itself a `2^{-Ω(k)}` event).

use crate::api::SetIntersection;
use crate::equality::{encode_for_equality, EqualityTest};
use crate::sets::{ElementSet, ProblemSpec};
use intersect_comm::chan::Chan;
use intersect_comm::coins::CoinSource;
use intersect_comm::error::ProtocolError;
use intersect_comm::runner::Side;

/// Wraps any [`SetIntersection`] protocol with repeat-until-certified
/// amplification.
///
/// # Examples
///
/// ```
/// use intersect_core::amplify::Amplified;
/// use intersect_core::api::{execute, SetIntersection};
/// use intersect_core::sets::{InputPair, ProblemSpec};
/// use intersect_core::tree::TreeProtocol;
/// use rand::SeedableRng;
///
/// let spec = ProblemSpec::new(1 << 20, 16);
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
/// let pair = InputPair::random_with_overlap(&mut rng, spec, 16, 5);
/// let proto = Amplified::new(TreeProtocol::new(2));
/// let run = execute(&proto, spec, &pair, 3)?;
/// assert!(run.matches(&pair.ground_truth()));
/// # Ok::<(), intersect_comm::error::ProtocolError>(())
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Amplified<P> {
    /// The protocol being amplified.
    pub inner: P,
    /// Certificate strength; `None` uses `k` bits (error `2^{-k}`).
    pub certificate_bits: Option<usize>,
    /// Maximum repetitions before accepting the last answer.
    pub max_attempts: u32,
}

impl<P> Amplified<P> {
    /// Amplifies `inner` with the paper's parameters (`k`-bit certificate).
    pub fn new(inner: P) -> Self {
        Amplified {
            inner,
            certificate_bits: None,
            max_attempts: 16,
        }
    }
}

impl<P: SetIntersection + Clone + 'static> SetIntersection for Amplified<P> {
    fn name(&self) -> String {
        format!("amplified({})", self.inner.name())
    }

    // The attempt loop re-parameterizes per repetition, so there is
    // nothing input-independent to hoist.
    fn prepare(&self, spec: ProblemSpec) -> std::sync::Arc<dyn crate::prepared::PreparedProtocol> {
        std::sync::Arc::new(crate::prepared::FallbackPlan::new(self.clone(), spec))
    }

    fn run(
        &self,
        chan: &mut dyn Chan,
        coins: &CoinSource,
        side: Side,
        spec: ProblemSpec,
        input: &ElementSet,
    ) -> Result<ElementSet, ProtocolError> {
        let cert_bits = self.certificate_bits.unwrap_or(spec.k as usize).max(8);
        let mut last = ElementSet::new();
        for attempt in 0..self.max_attempts.max(1) {
            let attempt_coins = coins.fork(&format!("attempt{attempt}"));
            let out = self
                .inner
                .run(chan, &attempt_coins.fork("inner"), side, spec, input)?;
            let certified = EqualityTest::new(cert_bits).run(
                chan,
                &attempt_coins.fork("cert"),
                side,
                &encode_for_equality(out.as_slice()),
            )?;
            if certified {
                return Ok(out);
            }
            last = out;
        }
        // 2^{-Ω(k·attempts)} path: accept the final answer.
        Ok(last)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::execute;
    use crate::sets::InputPair;
    use crate::tree::{ErrorPolicy, TreeProtocol};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn amplification_preserves_correctness_and_cost_shape() {
        let spec = ProblemSpec::new(1 << 24, 64);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let pair = InputPair::random_with_overlap(&mut rng, spec, 64, 20);
        let plain = TreeProtocol::new(2);
        let amplified = Amplified::new(plain);
        let run_a = execute(&amplified, spec, &pair, 5).unwrap();
        assert!(run_a.matches(&pair.ground_truth()));
        let run_p = execute(&plain, spec, &pair, 5).unwrap();
        // One certificate ≈ k + 1 bits on top (if no repetition needed).
        assert!(run_a.report.total_bits() <= run_p.report.total_bits() + 64 + 17);
    }

    #[test]
    fn amplification_rescues_an_unreliable_inner_protocol() {
        // FlatLoose error policy fails noticeably often alone; amplified,
        // failures should be (nearly) eliminated.
        let spec = ProblemSpec::new(1 << 24, 128);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let loose = TreeProtocol {
            error_policy: ErrorPolicy::FlatLoose,
            ..TreeProtocol::new(3)
        };
        let amplified = Amplified::new(loose);
        let mut plain_failures = 0;
        let mut amplified_failures = 0;
        for seed in 0..40 {
            let pair = InputPair::random_with_overlap(&mut rng, spec, 128, 64);
            let truth = pair.ground_truth();
            if !execute(&loose, spec, &pair, seed).unwrap().matches(&truth) {
                plain_failures += 1;
            }
            if !execute(&amplified, spec, &pair, seed)
                .unwrap()
                .matches(&truth)
            {
                amplified_failures += 1;
            }
        }
        assert_eq!(amplified_failures, 0, "amplified protocol failed");
        // The loose inner protocol should fail at least sometimes, or this
        // test isn't exercising the repair path. (It fails on a decent
        // fraction of seeds empirically.)
        assert!(
            plain_failures > 0,
            "inner protocol never failed — weak test"
        );
    }

    #[test]
    fn name_reflects_wrapping() {
        let a = Amplified::new(TreeProtocol::new(2));
        assert!(a.name().contains("amplified"));
        assert!(a.name().contains("tree"));
    }
}
