//! Sets, problem instances, and workload generation.
//!
//! The `INT_k` problem: Alice holds `S ⊆ [n]`, Bob holds `T ⊆ [n]`, with
//! `|S|, |T| ≤ k`, and both want to output `S ∩ T` exactly.

use rand::seq::SliceRandom;
use rand::Rng;
use std::collections::BTreeSet;

/// A set of elements of a universe `[n]`, stored sorted and deduplicated.
///
/// # Examples
///
/// ```
/// use intersect_core::sets::ElementSet;
///
/// let s = ElementSet::from_iter([5u64, 1, 5, 3]);
/// assert_eq!(s.as_slice(), &[1, 3, 5]);
/// assert!(s.contains(3));
/// let t = ElementSet::from_iter([3u64, 4, 5]);
/// assert_eq!(s.intersection(&t).as_slice(), &[3, 5]);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ElementSet {
    elems: Vec<u64>,
}

impl ElementSet {
    /// The empty set.
    pub fn new() -> Self {
        ElementSet { elems: Vec::new() }
    }

    /// Builds a set from a vector that is already strictly increasing.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the input is not strictly increasing.
    pub fn from_sorted(elems: Vec<u64>) -> Self {
        debug_assert!(
            elems.windows(2).all(|w| w[0] < w[1]),
            "input must be strictly increasing"
        );
        ElementSet { elems }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.elems.len()
    }

    /// Returns `true` if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.elems.is_empty()
    }

    /// Membership test (binary search).
    pub fn contains(&self, x: u64) -> bool {
        self.elems.binary_search(&x).is_ok()
    }

    /// The elements in increasing order.
    pub fn as_slice(&self) -> &[u64] {
        &self.elems
    }

    /// Iterates over the elements in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        self.elems.iter().copied()
    }

    /// The largest element, if any.
    pub fn max_element(&self) -> Option<u64> {
        self.elems.last().copied()
    }

    /// Set intersection.
    pub fn intersection(&self, other: &ElementSet) -> ElementSet {
        let mut out = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < self.elems.len() && j < other.elems.len() {
            match self.elems[i].cmp(&other.elems[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(self.elems[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        ElementSet { elems: out }
    }

    /// Set union.
    pub fn union(&self, other: &ElementSet) -> ElementSet {
        let mut out: Vec<u64> = self.elems.iter().chain(&other.elems).copied().collect();
        out.sort_unstable();
        out.dedup();
        ElementSet { elems: out }
    }

    /// Symmetric difference `(S ∖ T) ∪ (T ∖ S)`.
    pub fn symmetric_difference(&self, other: &ElementSet) -> ElementSet {
        let union = self.union(other);
        let inter = self.intersection(other);
        ElementSet {
            elems: union
                .elems
                .into_iter()
                .filter(|x| !inter.contains(*x))
                .collect(),
        }
    }

    /// Returns `true` if every element of `self` is in `other`.
    pub fn is_subset(&self, other: &ElementSet) -> bool {
        self.iter().all(|x| other.contains(x))
    }

    /// Returns `true` if `self` and `other` share no element.
    pub fn is_disjoint(&self, other: &ElementSet) -> bool {
        self.intersection(other).is_empty()
    }

    /// Elements of `self` not in `other`.
    pub fn difference(&self, other: &ElementSet) -> ElementSet {
        ElementSet {
            elems: self
                .elems
                .iter()
                .copied()
                .filter(|x| !other.contains(*x))
                .collect(),
        }
    }

    /// Keeps only elements satisfying the predicate.
    pub fn filtered(&self, mut pred: impl FnMut(u64) -> bool) -> ElementSet {
        ElementSet {
            elems: self.elems.iter().copied().filter(|&x| pred(x)).collect(),
        }
    }

    /// Applies an *injective-on-this-set* map, preserving set semantics.
    ///
    /// # Panics
    ///
    /// Panics if the map collides on the set (it would silently merge
    /// elements otherwise).
    pub fn mapped(&self, mut f: impl FnMut(u64) -> u64) -> ElementSet {
        let mut out: Vec<u64> = self.elems.iter().map(|&x| f(x)).collect();
        out.sort_unstable();
        let before = out.len();
        out.dedup();
        assert_eq!(out.len(), before, "map must be injective on the set");
        ElementSet { elems: out }
    }

    /// Samples a uniformly random `size`-subset of `[n]`.
    ///
    /// # Panics
    ///
    /// Panics if `size > n`.
    pub fn random<R: Rng + ?Sized>(rng: &mut R, n: u64, size: usize) -> Self {
        assert!(size as u64 <= n, "cannot sample {size} elements from [{n}]");
        // Floyd's algorithm: uniform without replacement.
        let mut chosen = BTreeSet::new();
        for j in (n - size as u64)..n {
            let t = rng.gen_range(0..=j);
            if !chosen.insert(t) {
                chosen.insert(j);
            }
        }
        ElementSet {
            elems: chosen.into_iter().collect(),
        }
    }
}

impl FromIterator<u64> for ElementSet {
    fn from_iter<I: IntoIterator<Item = u64>>(iter: I) -> Self {
        let mut elems: Vec<u64> = iter.into_iter().collect();
        elems.sort_unstable();
        elems.dedup();
        ElementSet { elems }
    }
}

impl From<Vec<u64>> for ElementSet {
    fn from(v: Vec<u64>) -> Self {
        v.into_iter().collect()
    }
}

impl<'a> IntoIterator for &'a ElementSet {
    type Item = u64;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, u64>>;

    fn into_iter(self) -> Self::IntoIter {
        self.elems.iter().copied()
    }
}

/// The parameters of an `INT_k` instance, known to both parties.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ProblemSpec {
    /// Universe size: elements are drawn from `[n] = {0, …, n−1}`.
    pub n: u64,
    /// Cardinality bound: `|S|, |T| ≤ k`.
    pub k: u64,
}

impl ProblemSpec {
    /// Creates a spec, validating `1 ≤ k ≤ n`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `k > n`.
    pub fn new(n: u64, k: u64) -> Self {
        assert!(k >= 1, "k must be at least 1");
        assert!(k <= n, "k = {k} exceeds universe size n = {n}");
        ProblemSpec { n, k }
    }

    /// Checks that `set` is a legal input for this spec.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the violation.
    pub fn validate(&self, set: &ElementSet) -> Result<(), String> {
        if set.len() as u64 > self.k {
            return Err(format!(
                "set has {} elements, bound is k = {}",
                set.len(),
                self.k
            ));
        }
        if let Some(max) = set.max_element() {
            if max >= self.n {
                return Err(format!("element {max} outside universe [{}]", self.n));
            }
        }
        Ok(())
    }
}

/// A two-party input pair with known ground truth, for tests and benchmarks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InputPair {
    /// Alice's set.
    pub s: ElementSet,
    /// Bob's set.
    pub t: ElementSet,
}

impl InputPair {
    /// The true intersection (ground truth for checking protocol outputs).
    pub fn ground_truth(&self) -> ElementSet {
        self.s.intersection(&self.t)
    }

    /// Samples a pair of `k`-subsets of `[n]` whose intersection has exactly
    /// `overlap` elements (`overlap ≤ k`, `2k − overlap ≤ n`).
    ///
    /// # Panics
    ///
    /// Panics if the parameters are infeasible.
    pub fn random_with_overlap<R: Rng + ?Sized>(
        rng: &mut R,
        spec: ProblemSpec,
        size: usize,
        overlap: usize,
    ) -> Self {
        assert!(overlap <= size, "overlap exceeds set size");
        assert!(size as u64 <= spec.k, "size exceeds spec bound k");
        let distinct = 2 * size - overlap;
        assert!(
            distinct as u64 <= spec.n,
            "need {distinct} distinct elements but universe has {}",
            spec.n
        );
        let pool = ElementSet::random(rng, spec.n, distinct);
        let mut elems: Vec<u64> = pool.iter().collect();
        elems.shuffle(rng);
        let shared: Vec<u64> = elems[..overlap].to_vec();
        let only_s: Vec<u64> = elems[overlap..size].to_vec();
        let only_t: Vec<u64> = elems[size..distinct].to_vec();
        let s: ElementSet = shared.iter().chain(&only_s).copied().collect();
        let t: ElementSet = shared.iter().chain(&only_t).copied().collect();
        debug_assert_eq!(s.intersection(&t).len(), overlap);
        InputPair { s, t }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn from_iter_sorts_and_dedups() {
        let s = ElementSet::from_iter([9u64, 1, 9, 4, 4, 0]);
        assert_eq!(s.as_slice(), &[0, 1, 4, 9]);
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn set_algebra_matches_btreeset_oracle() {
        let mut r = rng(1);
        for _ in 0..50 {
            let a: Vec<u64> = (0..30).map(|_| r.gen_range(0..100)).collect();
            let b: Vec<u64> = (0..30).map(|_| r.gen_range(0..100)).collect();
            let sa: ElementSet = a.iter().copied().collect();
            let sb: ElementSet = b.iter().copied().collect();
            let oa: BTreeSet<u64> = a.iter().copied().collect();
            let ob: BTreeSet<u64> = b.iter().copied().collect();

            let inter: Vec<u64> = oa.intersection(&ob).copied().collect();
            assert_eq!(sa.intersection(&sb).as_slice(), &inter[..]);

            let uni: Vec<u64> = oa.union(&ob).copied().collect();
            assert_eq!(sa.union(&sb).as_slice(), &uni[..]);

            let sym: Vec<u64> = oa.symmetric_difference(&ob).copied().collect();
            assert_eq!(sa.symmetric_difference(&sb).as_slice(), &sym[..]);

            let diff: Vec<u64> = oa.difference(&ob).copied().collect();
            assert_eq!(sa.difference(&sb).as_slice(), &diff[..]);
        }
    }

    #[test]
    fn subset_and_disjoint_predicates() {
        let a = ElementSet::from_iter([1u64, 3, 5]);
        let b = ElementSet::from_iter([1u64, 2, 3, 4, 5]);
        let c = ElementSet::from_iter([7u64, 8]);
        assert!(a.is_subset(&b));
        assert!(!b.is_subset(&a));
        assert!(ElementSet::new().is_subset(&a));
        assert!(a.is_disjoint(&c));
        assert!(!a.is_disjoint(&b));
        assert!(ElementSet::new().is_disjoint(&ElementSet::new()));
    }

    #[test]
    fn random_sets_are_uniform_sized_and_in_range() {
        let mut r = rng(2);
        for _ in 0..20 {
            let s = ElementSet::random(&mut r, 1000, 100);
            assert_eq!(s.len(), 100);
            assert!(s.max_element().unwrap() < 1000);
        }
    }

    #[test]
    fn random_full_universe() {
        let mut r = rng(3);
        let s = ElementSet::random(&mut r, 10, 10);
        assert_eq!(s.as_slice(), &[0, 1, 2, 3, 4, 5, 6, 7, 8, 9]);
    }

    #[test]
    fn overlap_pairs_have_exact_overlap() {
        let mut r = rng(4);
        let spec = ProblemSpec::new(10_000, 128);
        for overlap in [0usize, 1, 64, 127, 128] {
            let pair = InputPair::random_with_overlap(&mut r, spec, 128, overlap);
            assert_eq!(pair.s.len(), 128);
            assert_eq!(pair.t.len(), 128);
            assert_eq!(pair.ground_truth().len(), overlap);
            spec.validate(&pair.s).unwrap();
            spec.validate(&pair.t).unwrap();
        }
    }

    #[test]
    fn spec_validation_rejects_bad_inputs() {
        let spec = ProblemSpec::new(100, 5);
        assert!(spec.validate(&ElementSet::from_iter(0..5u64)).is_ok());
        assert!(spec.validate(&ElementSet::from_iter(0..6u64)).is_err());
        assert!(spec.validate(&ElementSet::from_iter([100u64])).is_err());
    }

    #[test]
    #[should_panic(expected = "exceeds universe size")]
    fn spec_rejects_k_above_n() {
        ProblemSpec::new(4, 5);
    }

    #[test]
    fn filtered_and_mapped() {
        let s = ElementSet::from_iter(0..10u64);
        assert_eq!(s.filtered(|x| x % 3 == 0).as_slice(), &[0, 3, 6, 9]);
        assert_eq!(
            s.mapped(|x| 100 - x).as_slice(),
            &[91, 92, 93, 94, 95, 96, 97, 98, 99, 100]
        );
    }

    #[test]
    #[should_panic(expected = "injective")]
    fn mapped_rejects_collisions() {
        ElementSet::from_iter(0..10u64).mapped(|x| x / 2);
    }
}
