//! The one-round randomized protocol: `R⁽¹⁾(INT_k) = O(k·log k)`.
//!
//! Alice hashes each of her elements to an `O(log k)`-bit fingerprint with
//! a shared hash `g : [n] → [k²·2^e]` and sends the fingerprint set. Bob
//! keeps every `y ∈ T` with `g(y) ∈ g(S)` — a superset of `S ∩ T` with
//! certainty, and exactly `S ∩ T` unless some `y ∈ T ∖ S` collides with an
//! element of `S` (probability `≤ 2^{-e}` by a union bound over the
//! `≤ k·k` cross pairs). The echo message symmetrizes the output.
//!
//! The paper notes this is optimal for one round:
//! `R⁽¹⁾(DISJ_k) = Ω(k log k)` [DKS12, BGSMdW12] — compare experiment E4,
//! which locates the crossover against the deterministic
//! `O(k log(n/k))` exchange as `n/k` varies.

use crate::iterlog::ceil_log2;
use crate::prepared::{PreparedProtocol, SessionCtx};
use crate::sets::{ElementSet, ProblemSpec};
use intersect_comm::chan::Chan;
use intersect_comm::coins::CoinSource;
use intersect_comm::encode::RiceSubsetCodec;
use intersect_comm::error::ProtocolError;
use intersect_comm::runner::Side;
use intersect_hash::pairwise::{PairwiseFamily, PairwiseHash};
use std::any::Any;
use std::sync::Arc;

/// The one-round (plus optional echo) hashing protocol.
///
/// # Examples
///
/// ```
/// use intersect_core::one_round::OneRoundHash;
/// use intersect_core::sets::{ElementSet, ProblemSpec};
/// use intersect_comm::runner::{run_two_party, RunConfig, Side};
///
/// let spec = ProblemSpec::new(1 << 30, 8);
/// let s = ElementSet::from_iter([42u64, 1 << 20, 7]);
/// let t = ElementSet::from_iter([42u64, 1 << 20, 9]);
/// let proto = OneRoundHash::new(20);
/// let out = run_two_party(
///     &RunConfig::with_seed(2),
///     |chan, coins| proto.run(chan, &coins.fork("1r"), Side::Alice, spec, &s),
///     |chan, coins| proto.run(chan, &coins.fork("1r"), Side::Bob, spec, &t),
/// )?;
/// assert_eq!(out.alice.as_slice(), &[42, 1 << 20]);
/// assert_eq!(out.alice, out.bob);
/// # Ok::<(), intersect_comm::error::ProtocolError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OneRoundHash {
    /// Failure exponent `e`: the output is exact with probability
    /// `≥ 1 − 2^{-e+1}`.
    pub error_bits: usize,
    /// Whether Bob echoes fingerprints of the candidates so Alice also
    /// learns the intersection (costs a second message).
    pub echo: bool,
}

impl OneRoundHash {
    /// Creates the protocol with echo enabled.
    pub fn new(error_bits: usize) -> Self {
        OneRoundHash {
            error_bits: error_bits.max(1),
            echo: true,
        }
    }

    /// The fingerprint range: `k²·2^e`, capped at `2^61` — and at `n`
    /// itself, since a range beyond the universe buys nothing (when the cap
    /// binds, the identity map is collision-free and the protocol is exact).
    pub fn hash_range(&self, spec: ProblemSpec) -> u64 {
        let k2 = spec.k.saturating_mul(spec.k).max(4);
        let shift = (self.error_bits as u32).min(61 - ceil_log2(k2).min(60) as u32);
        k2.saturating_mul(1 << shift)
            .clamp(16, 1 << 61)
            .min(spec.n.max(16))
    }

    /// Derives the input-independent parameters for `spec`: the
    /// fingerprint range and the hash family's field prime.
    pub fn plan(&self, spec: ProblemSpec) -> OneRoundPlan {
        let range = self.hash_range(spec);
        OneRoundPlan {
            proto: *self,
            spec,
            range,
            // When the range covers the whole universe, skip hashing
            // entirely: the identity is collision-free and strictly
            // cheaper on the wire.
            family: (range < spec.n).then(|| PairwiseFamily::new(spec.n.max(1))),
        }
    }

    /// Runs the protocol; see [module docs](self).
    ///
    /// # Errors
    ///
    /// Fails on invalid inputs or transport errors.
    pub fn run(
        &self,
        chan: &mut dyn Chan,
        coins: &CoinSource,
        side: Side,
        spec: ProblemSpec,
        input: &ElementSet,
    ) -> Result<ElementSet, ProtocolError> {
        self.plan(spec).execute_with(chan, coins, side, input)
    }
}

/// [`OneRoundHash`] with the fingerprint range and hash family fixed.
#[derive(Debug, Clone)]
pub struct OneRoundPlan {
    proto: OneRoundHash,
    spec: ProblemSpec,
    range: u64,
    family: Option<PairwiseFamily>,
}

impl OneRoundPlan {
    /// The bit-exchanging phase, with `coins` already forked to the
    /// protocol's namespace.
    fn execute_with(
        &self,
        chan: &mut dyn Chan,
        coins: &CoinSource,
        side: Side,
        input: &ElementSet,
    ) -> Result<ElementSet, ProtocolError> {
        let g = self
            .family
            .as_ref()
            .map(|family| family.sample(&mut coins.fork("g").rng(), self.range));
        self.execute_with_g(chan, g, side, input)
    }

    /// The bit-exchanging phase with the shared hash already drawn —
    /// either just now ([`execute_with`](Self::execute_with)) or ahead
    /// of time by [`presample`](PreparedProtocol::presample) from the
    /// same coin fork.
    fn execute_with_g(
        &self,
        chan: &mut dyn Chan,
        g: Option<PairwiseHash>,
        side: Side,
        input: &ElementSet,
    ) -> Result<ElementSet, ProtocolError> {
        let spec = self.spec;
        spec.validate(input).map_err(ProtocolError::InvalidInput)?;
        let range = self.range;
        let g = move |x: u64| match &g {
            Some(h) => h.eval(x),
            None => x,
        };
        let codec = RiceSubsetCodec::new(range, spec.k);
        let my_hashes = |set: &ElementSet| -> Vec<u64> {
            let mut v: Vec<u64> = set.iter().map(&g).collect();
            v.sort_unstable();
            v.dedup();
            v
        };
        let span = intersect_obs::phase::span("core", "fingerprint");
        let before = chan.stats();
        let out = match side {
            Side::Alice => {
                chan.send(codec.encode(&my_hashes(input)))?;
                if self.proto.echo {
                    let reply = chan.recv()?;
                    let candidates: std::collections::HashSet<u64> =
                        codec.decode(&mut reply.reader())?.into_iter().collect();
                    input.filtered(|x| candidates.contains(&g(x)))
                } else {
                    input.clone()
                }
            }
            Side::Bob => {
                let theirs = chan.recv()?;
                let s_hashes: std::collections::HashSet<u64> =
                    codec.decode(&mut theirs.reader())?.into_iter().collect();
                let candidates = input.filtered(|y| s_hashes.contains(&g(y)));
                if self.proto.echo {
                    chan.send(codec.encode(&my_hashes(&candidates)))?;
                }
                candidates
            }
        };
        span.finish(chan.stats().delta_since(&before));
        Ok(out)
    }
}

/// One shared hash per session of a streamed block, drawn off the hot
/// path from exactly the coin forks execution would use.
#[derive(Debug)]
struct OneRoundPresample {
    g: Vec<PairwiseHash>,
}

impl PreparedProtocol for OneRoundPlan {
    fn name(&self) -> String {
        crate::api::SetIntersection::name(&self.proto)
    }

    fn spec(&self) -> ProblemSpec {
        self.spec
    }

    fn execute(
        &self,
        chan: &mut dyn Chan,
        coins: &CoinSource,
        side: Side,
        input: &ElementSet,
    ) -> Result<ElementSet, ProtocolError> {
        // Same fork label as the `SetIntersection` impl, so prepared
        // and cold executions draw identical coins.
        self.execute_with(chan, &coins.fork("one-round"), side, input)
    }

    fn presample(&self, seeds: &[u64]) -> Option<Arc<dyn Any + Send + Sync>> {
        // Replays, per seed, the exact draw `execute` would make online:
        // fork "one-round" (the prepared entry point) then "g".
        let family = self.family.as_ref()?;
        let g = seeds
            .iter()
            .map(|&s| {
                let mut rng = CoinSource::from_seed(s).fork("one-round").fork("g").rng();
                family.sample(&mut rng, self.range)
            })
            .collect();
        Some(Arc::new(OneRoundPresample { g }))
    }

    fn execute_in(
        &self,
        ctx: &SessionCtx<'_>,
        chan: &mut dyn Chan,
        coins: &CoinSource,
        side: Side,
        input: &ElementSet,
    ) -> Result<ElementSet, ProtocolError> {
        match ctx
            .presampled
            .and_then(|p| p.downcast_ref::<OneRoundPresample>())
        {
            Some(pre) if ctx.slot < pre.g.len() => {
                self.execute_with_g(chan, Some(pre.g[ctx.slot].clone()), side, input)
            }
            _ => self.execute(chan, coins, side, input),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sets::InputPair;
    use intersect_comm::runner::{run_two_party, RunConfig};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn run_one_round(
        seed: u64,
        proto: OneRoundHash,
        spec: ProblemSpec,
        s: &ElementSet,
        t: &ElementSet,
    ) -> (ElementSet, ElementSet, intersect_comm::stats::CostReport) {
        let out = run_two_party(
            &RunConfig::with_seed(seed),
            |chan, coins| proto.run(chan, &coins.fork("1r"), Side::Alice, spec, s),
            |chan, coins| proto.run(chan, &coins.fork("1r"), Side::Bob, spec, t),
        )
        .unwrap();
        (out.alice, out.bob, out.report)
    }

    #[test]
    fn exact_with_high_probability_and_superset_always() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let spec = ProblemSpec::new(1 << 40, 64);
        let mut exact = 0;
        for seed in 0..50 {
            let pair = InputPair::random_with_overlap(&mut rng, spec, 64, 17);
            let truth = pair.ground_truth();
            let (a, b, _) = run_one_round(seed, OneRoundHash::new(20), spec, &pair.s, &pair.t);
            for x in truth.iter() {
                assert!(a.contains(x) && b.contains(x), "lost element {x}");
            }
            if a == truth && b == truth {
                exact += 1;
            }
        }
        assert!(exact >= 48, "{exact}/50 exact");
    }

    #[test]
    fn cost_is_k_log_k_independent_of_n() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let k = 256usize;
        let mut costs = Vec::new();
        for log_n in [30u32, 40, 60] {
            let spec = ProblemSpec::new(1 << log_n, k as u64);
            let pair = InputPair::random_with_overlap(&mut rng, spec, k, 0);
            let (_, _, report) = run_one_round(3, OneRoundHash::new(10), spec, &pair.s, &pair.t);
            costs.push(report.bits_alice);
        }
        // First-message cost must not grow with n.
        assert!(costs[2] <= costs[0] + 64, "{costs:?}");
        // And it is ≈ k (log k + e − log k …) — well under k · log n.
        assert!(costs[0] < (k as u64) * 40);
    }

    #[test]
    fn low_error_budget_produces_false_positives() {
        // With a deliberately tiny range the candidate set strictly
        // contains the intersection on some seeds — demonstrating the
        // one-sidedness of the error.
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let spec = ProblemSpec::new(1 << 30, 512);
        let pair = InputPair::random_with_overlap(&mut rng, spec, 512, 0);
        let mut proto = OneRoundHash::new(1);
        proto.error_bits = 1;
        let mut superset_strictly = 0;
        for seed in 0..30 {
            let (a, _, _) = run_one_round(seed, proto, spec, &pair.s, &pair.t);
            assert!(a.iter().all(|x| pair.s.contains(x)));
            if !a.is_empty() {
                superset_strictly += 1;
            }
        }
        // range = k²·2 = 2^19; cross pairs 2^18: collisions likely somewhere.
        assert!(superset_strictly > 0, "expected some false positives");
    }

    #[test]
    fn one_message_without_echo() {
        let spec = ProblemSpec::new(1000, 8);
        let s = ElementSet::from_iter([1u64, 2, 3]);
        let t = ElementSet::from_iter([3u64, 4]);
        let proto = OneRoundHash {
            error_bits: 16,
            echo: false,
        };
        let (_, b, report) = run_one_round(1, proto, spec, &s, &t);
        assert_eq!(b.as_slice(), &[3]);
        assert_eq!(report.messages, 1);
        assert_eq!(report.rounds, 1);
    }

    #[test]
    fn presampled_stream_matches_online_one_shot_runs() {
        use crate::api::SetIntersection;
        use crate::prepared::{execute_prepared, execute_prepared_stream, PairContext};
        use intersect_comm::coins::stream_session_seed;
        // n ≫ range, so the plan carries a hash family and the stream
        // path really exercises presample + execute_in.
        let spec = ProblemSpec::new(1 << 40, 32);
        let proto = OneRoundHash::new(20);
        let plan = proto.prepare(spec);
        let ctx = PairContext::new(Arc::clone(&plan), 0xabcd);
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let pairs: Vec<InputPair> = (0..6)
            .map(|i| InputPair::random_with_overlap(&mut rng, spec, 32, 5 * (i % 3)))
            .collect();
        let streamed = execute_prepared_stream(&ctx, &pairs).unwrap();
        for (i, (pair, run)) in pairs.iter().zip(streamed).enumerate() {
            let seed = stream_session_seed(0xabcd, i as u64);
            let solo = execute_prepared(&plan, pair, seed).unwrap();
            assert_eq!(run.unwrap(), solo, "session {i}");
        }
    }

    #[test]
    fn handles_equal_sets_and_empty_sets() {
        let spec = ProblemSpec::new(10_000, 32);
        let s = ElementSet::from_iter((0..32u64).map(|i| i * 37));
        let (a, b, _) = run_one_round(5, OneRoundHash::new(20), spec, &s, &s.clone());
        assert_eq!(a, s);
        assert_eq!(b, s);
        let empty = ElementSet::new();
        let (a, b, _) = run_one_round(6, OneRoundHash::new(20), spec, &empty, &s);
        assert!(a.is_empty() && b.is_empty());
    }
}
