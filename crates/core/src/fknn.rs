//! Amortized equality: `k` instances of `EQ` for `O(k)` total bits
//! (Theorem 3.2, after Feder–Kushilevitz–Naor–Nisan \[FKNN95\]).
//!
//! Guarantees matched (the paper uses FKNN strictly as a black box with
//! these parameters):
//!
//! * expected total communication `O(k)` — independent of the string
//!   length `n`,
//! * `O(√k)` rounds,
//! * error probability `2^{-Ω(√k)}` (one-sided: unequal pairs may be
//!   declared equal; equal pairs are never declared unequal).
//!
//! **Construction** (ours; FKNN's original is described only at the level
//! of its guarantees in the reproduced paper): instances are split into
//! `√k` blocks of `√k`, processed sequentially — matching the "inherently
//! sequential" `Ω(√k)`-round structure the paper attributes to \[FKNN95\].
//! Within a block, repeat: (1) a 2-bit per-instance *elimination pass*
//! removes detected unequal pairs (a fingerprint mismatch is certain
//! evidence — equal pairs never mismatch, unequal pairs survive a pass
//! with probability ≤ 1/4); (2) when a pass detects nothing, a single
//! `√k`-bit fingerprint of the concatenated survivors *confirms* the
//! block. Equal-heavy blocks pay ≈ 2 bits/instance + one `√k`-bit
//! confirmation (total `O(k)` over all blocks); unequal instances die in
//! expectation after `O(1)` two-bit tests. Accepting only after a clean
//! pass **and** a confirmed `√k`-bit fingerprint makes the per-block error
//! `2^{-√k}`, and a union bound over `√k` blocks keeps the total at
//! `2^{-Ω(√k)}`.
//!
//! Adversarially balanced blocks can pay an extra `O(log k)` factor in the
//! worst case versus FKNN's optimal bound; experiment E7 measures the cost
//! across equal/unequal mixes and shows the `O(k)` shape on all of them.

use intersect_comm::bits::BitBuf;
use intersect_comm::chan::Chan;
use intersect_comm::coins::CoinSource;
use intersect_comm::error::ProtocolError;
use intersect_comm::runner::Side;

use crate::equality::fingerprint;

/// The amortized `EQ^n_k` protocol.
///
/// # Examples
///
/// ```
/// use intersect_core::fknn::AmortizedEquality;
/// use intersect_comm::bits::BitBuf;
/// use intersect_comm::runner::{run_two_party, RunConfig, Side};
///
/// let mk = |v: u64| { let mut b = BitBuf::new(); b.push_bits(v, 32); b };
/// let alice: Vec<BitBuf> = vec![mk(1), mk(2), mk(3)];
/// let bob: Vec<BitBuf> = vec![mk(1), mk(9), mk(3)];
/// let proto = AmortizedEquality::default();
/// let out = run_two_party(
///     &RunConfig::with_seed(4),
///     |chan, coins| proto.run(chan, &coins.fork("eqk"), Side::Alice, &alice),
///     |chan, coins| proto.run(chan, &coins.fork("eqk"), Side::Bob, &bob),
/// )?;
/// assert_eq!(out.alice, vec![true, false, true]);
/// assert_eq!(out.alice, out.bob);
/// # Ok::<(), intersect_comm::error::ProtocolError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AmortizedEquality {
    /// Override for the block size (and confirmation bits); `None` uses
    /// `⌈√k⌉` as the theorem prescribes.
    pub block_size: Option<usize>,
}

/// Per-instance elimination bits per pass.
const ELIM_BITS: usize = 2;

impl AmortizedEquality {
    /// Uses block size `⌈√k⌉` (the theorem's parameterization).
    pub fn new() -> Self {
        Self::default()
    }

    /// Fixes the block size (mainly for tests and ablations).
    pub fn with_block_size(block: usize) -> Self {
        AmortizedEquality {
            block_size: Some(block.max(1)),
        }
    }

    fn block_of(&self, k: usize) -> usize {
        self.block_size
            .unwrap_or_else(|| (k as f64).sqrt().ceil() as usize)
            .max(1)
    }

    /// Runs the `k = items.len()` equality instances; both parties return
    /// the same verdict vector (`true` = judged equal).
    ///
    /// The parties must agree on `items.len()`; the strings themselves may
    /// have arbitrary (and differing) lengths.
    ///
    /// # Errors
    ///
    /// Fails on transport errors or if the parties disagree on the
    /// instance count.
    pub fn run(
        &self,
        chan: &mut dyn Chan,
        coins: &CoinSource,
        side: Side,
        items: &[BitBuf],
    ) -> Result<Vec<bool>, ProtocolError> {
        let k = items.len();
        if k == 0 {
            return Ok(Vec::new());
        }
        let block = self.block_of(k);
        // Confirmation strength: the block size (the √k of the theorem),
        // floored at 16 bits so tiny instances keep error ≤ 2^-16 — the
        // floor costs ≤ 16·(k/block) ≈ 16√k bits, vanishing against O(k).
        let confirm_bits = block.max(16);
        let mut verdicts = vec![true; k];

        for (block_idx, chunk_start) in (0..k).step_by(block).enumerate() {
            let chunk_end = (chunk_start + block).min(k);
            let block_coins = coins.fork_index(block_idx as u64);
            let mut alive: Vec<usize> = (chunk_start..chunk_end).collect();
            // Far beyond the expected O(log block) cycles; reaching the cap
            // contributes only to the 2^{-Ω(√k)} error budget.
            let cycle_cap = 4 * block + 64;
            let mut cycle = 0u64;
            while !alive.is_empty() {
                let cycle_coins = block_coins.fork_index(cycle);
                cycle += 1;
                // (1) Elimination pass: 2-bit tests per alive instance.
                let dead =
                    self.elimination_pass(chan, &cycle_coins.fork("elim"), side, items, &alive)?;
                for &idx in &dead {
                    verdicts[idx] = false;
                }
                let clean = dead.is_empty();
                alive.retain(|idx| !dead.contains(idx));
                // (2) A clean pass suggests the survivors are equal:
                // certify with the full √k-bit fingerprint.
                if clean && !alive.is_empty() {
                    let confirmed = self.compare_concat(
                        chan,
                        &cycle_coins.fork("confirm"),
                        side,
                        items,
                        &alive,
                        confirm_bits,
                    )?;
                    if confirmed {
                        break; // alive instances stand as equal
                    }
                }
                if cycle >= cycle_cap as u64 {
                    // Accept the rest; probability ≤ 4^{-cap} of arriving here
                    // with a hidden unequal pair.
                    break;
                }
            }
        }
        Ok(verdicts)
    }

    /// One fingerprint comparison of `concat(items[alive])`; Alice sends
    /// the fingerprint, Bob replies a verdict bit.
    fn compare_concat(
        &self,
        chan: &mut dyn Chan,
        coins: &CoinSource,
        side: Side,
        items: &[BitBuf],
        alive: &[usize],
        bits: usize,
    ) -> Result<bool, ProtocolError> {
        // Size once up front: the γ₀ prefix of a length ℓ item costs at
        // most 2·bitlen(ℓ+1)+1 bits.
        let cap: usize = alive
            .iter()
            .map(|&idx| items[idx].len() + 2 * (usize::BITS as usize) + 1)
            .sum();
        let mut concat = BitBuf::with_capacity(cap);
        for &idx in alive {
            // Length-prefix each item so concatenations are unambiguous.
            intersect_comm::encode::put_gamma0(&mut concat, items[idx].len() as u64);
            concat.extend_from(&items[idx]);
        }
        let fp = fingerprint(&concat, coins, bits);
        match side {
            Side::Alice => {
                chan.send(fp)?;
                let reply = chan.recv()?;
                Ok(reply.get(0).unwrap_or(false))
            }
            Side::Bob => {
                let theirs = chan.recv()?;
                let ok = theirs == fp;
                let mut verdict = BitBuf::new();
                verdict.push_bit(ok);
                chan.send(verdict)?;
                Ok(ok)
            }
        }
    }

    /// One 2-bit-per-instance elimination pass; returns the indices proven
    /// unequal (identical on both sides).
    fn elimination_pass(
        &self,
        chan: &mut dyn Chan,
        coins: &CoinSource,
        side: Side,
        items: &[BitBuf],
        alive: &[usize],
    ) -> Result<Vec<usize>, ProtocolError> {
        let fps: Vec<BitBuf> = alive
            .iter()
            .enumerate()
            .map(|(i, &idx)| fingerprint(&items[idx], &coins.fork_index(i as u64), ELIM_BITS))
            .collect();
        match side {
            Side::Alice => {
                let mut msg = BitBuf::with_capacity(fps.len() * ELIM_BITS);
                for fp in &fps {
                    msg.extend_from(fp);
                }
                chan.send(msg)?;
                let mask = chan.recv()?;
                if mask.len() != alive.len() {
                    return Err(ProtocolError::Internal(
                        "elimination mask size mismatch".into(),
                    ));
                }
                Ok(alive
                    .iter()
                    .zip(mask.iter())
                    .filter(|(_, dead)| *dead)
                    .map(|(&idx, _)| idx)
                    .collect())
            }
            Side::Bob => {
                let theirs = chan.recv()?;
                let mut r = theirs.reader();
                let mut mask = BitBuf::with_capacity(fps.len());
                let mut dead = Vec::new();
                for (i, fp) in fps.iter().enumerate() {
                    let other = r.read_buf(ELIM_BITS)?;
                    let mismatch = other != *fp;
                    mask.push_bit(mismatch);
                    if mismatch {
                        dead.push(alive[i]);
                    }
                }
                chan.send(mask)?;
                Ok(dead)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use intersect_comm::runner::{run_two_party, RunConfig};
    use intersect_comm::stats::CostReport;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn string(v: u64, bits: usize) -> BitBuf {
        let mut b = BitBuf::new();
        let mut left = bits;
        let mut x = v;
        while left > 0 {
            let take = left.min(64);
            b.push_bits(x & ((1u128 << take) - 1) as u64, take);
            x = x.rotate_left(7) ^ 0x5555;
            left -= take;
        }
        b
    }

    fn run_fknn(seed: u64, alice: &[BitBuf], bob: &[BitBuf]) -> (Vec<bool>, CostReport) {
        let proto = AmortizedEquality::new();
        let out = run_two_party(
            &RunConfig::with_seed(seed),
            |chan, coins| proto.run(chan, &coins.fork("f"), Side::Alice, alice),
            |chan, coins| proto.run(chan, &coins.fork("f"), Side::Bob, bob),
        )
        .unwrap();
        assert_eq!(out.alice, out.bob, "parties must agree");
        (out.alice, out.report)
    }

    #[test]
    fn all_equal_instances_all_pass() {
        let items: Vec<BitBuf> = (0..100u64).map(|i| string(i, 256)).collect();
        let (verdicts, report) = run_fknn(1, &items, &items.clone());
        assert!(verdicts.iter().all(|&v| v));
        // Cost ≈ k + overheads, far below k · 256 (exchanging the strings).
        assert!(
            report.total_bits() < 100 * 40,
            "{} bits",
            report.total_bits()
        );
    }

    #[test]
    fn all_unequal_instances_all_fail() {
        let alice: Vec<BitBuf> = (0..100u64).map(|i| string(i, 256)).collect();
        let bob: Vec<BitBuf> = (0..100u64).map(|i| string(i + 1000, 256)).collect();
        let (verdicts, _) = run_fknn(2, &alice, &bob);
        assert!(verdicts.iter().all(|&v| !v));
    }

    #[test]
    fn mixed_instances_get_correct_verdicts() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for seed in 0..10 {
            let k = 64;
            let equal_mask: Vec<bool> = (0..k).map(|_| rng.gen_bool(0.5)).collect();
            let alice: Vec<BitBuf> = (0..k).map(|i| string(i as u64, 128)).collect();
            let bob: Vec<BitBuf> = (0..k)
                .map(|i| {
                    if equal_mask[i] {
                        string(i as u64, 128)
                    } else {
                        string(i as u64 + 7777, 128)
                    }
                })
                .collect();
            let (verdicts, _) = run_fknn(seed, &alice, &bob);
            assert_eq!(verdicts, equal_mask, "seed {seed}");
        }
    }

    #[test]
    fn cost_is_linear_in_k_not_in_n() {
        // Doubling the string length must not change the cost much.
        let k = 144;
        let short: Vec<BitBuf> = (0..k as u64).map(|i| string(i, 64)).collect();
        let long: Vec<BitBuf> = (0..k as u64).map(|i| string(i, 4096)).collect();
        let (_, r_short) = run_fknn(4, &short, &short.clone());
        let (_, r_long) = run_fknn(4, &long, &long.clone());
        assert_eq!(r_short.total_bits(), r_long.total_bits());
        // And per-instance cost is a small constant for equal-heavy input.
        assert!(r_long.total_bits() < (k as u64) * 40);
    }

    #[test]
    fn rounds_scale_like_sqrt_k() {
        let k = 256; // block = 16
        let items: Vec<BitBuf> = (0..k as u64).map(|i| string(i, 64)).collect();
        let (_, report) = run_fknn(5, &items, &items.clone());
        // All-equal: 4 messages per block (quick + confirm), 16 blocks.
        assert!(report.rounds <= 8 * 16, "rounds = {}", report.rounds);
        assert!(report.rounds >= 16, "rounds = {}", report.rounds);
    }

    #[test]
    fn unequal_lengths_are_unequal() {
        let alice = vec![string(1, 64)];
        let bob = vec![string(1, 65)];
        let (verdicts, _) = run_fknn(6, &alice, &bob);
        assert_eq!(verdicts, vec![false]);
    }

    #[test]
    fn single_instance_and_empty_input() {
        let (verdicts, _) = run_fknn(7, &[], &[]);
        assert!(verdicts.is_empty());
        let a = vec![string(9, 32)];
        let (verdicts, _) = run_fknn(8, &a, &a.clone());
        assert_eq!(verdicts, vec![true]);
    }

    #[test]
    fn error_rate_is_tiny_across_seeds() {
        // 64 unequal instances, 50 seeds: no false "equal" verdicts thanks
        // to the √k-bit confirmations.
        let alice: Vec<BitBuf> = (0..64u64).map(|i| string(i, 96)).collect();
        let bob: Vec<BitBuf> = (0..64u64).map(|i| string(i ^ 0xdead, 96)).collect();
        let mut wrong = 0;
        for seed in 0..50 {
            let (verdicts, _) = run_fknn(seed, &alice, &bob);
            wrong += verdicts.iter().filter(|&&v| v).count();
        }
        assert_eq!(wrong, 0);
    }

    #[test]
    fn custom_block_size_still_correct() {
        let proto = AmortizedEquality::with_block_size(5);
        let alice: Vec<BitBuf> = (0..31u64).map(|i| string(i, 64)).collect();
        let mut bob = alice.clone();
        bob[13] = string(999, 64);
        let out = run_two_party(
            &RunConfig::with_seed(9),
            |chan, coins| proto.run(chan, &coins.fork("f"), Side::Alice, &alice),
            |chan, coins| proto.run(chan, &coins.fork("f"), Side::Bob, &bob),
        )
        .unwrap();
        let mut expect = vec![true; 31];
        expect[13] = false;
        assert_eq!(out.alice, expect);
    }
}
