//! The public protocol API: object-safe traits, a protocol catalogue, and
//! a one-call executor.

use crate::basic::BasicIntersection;
use crate::hw07::HwDisjointness;
use crate::one_round::OneRoundHash;
use crate::prepared::{FallbackPlan, PreparedProtocol};
use crate::sets::{ElementSet, InputPair, ProblemSpec};
use crate::sqrt::SqrtProtocol;
use crate::st13::SparseDisjointness;
use crate::tree::TreeProtocol;
use crate::tree_pipelined::PipelinedTree;
use crate::trivial::TrivialExchange;
use intersect_comm::chan::Chan;
use intersect_comm::coins::CoinSource;
use intersect_comm::error::ProtocolError;
use intersect_comm::runner::Side;
use intersect_comm::stats::CostReport;
use std::sync::Arc;

/// A two-party protocol computing `S ∩ T`.
///
/// Implementations are symmetric: both parties call [`run`](Self::run)
/// with their own input and side, and each returns its view of the
/// intersection (equal on both sides whenever the protocol succeeds).
pub trait SetIntersection: Send + Sync + std::fmt::Debug {
    /// A human-readable name including the salient parameters.
    fn name(&self) -> String;

    /// Executes the protocol over `chan` with shared randomness `coins`.
    ///
    /// # Errors
    ///
    /// Fails on invalid inputs or transport errors.
    fn run(
        &self,
        chan: &mut dyn Chan,
        coins: &CoinSource,
        side: Side,
        spec: ProblemSpec,
        input: &ElementSet,
    ) -> Result<ElementSet, ProtocolError>;

    /// Performs the input-independent parameter phase for `spec` once —
    /// hash-family primes, tree shapes, round/error schedules — and
    /// returns a plan whose
    /// [`execute`](crate::prepared::PreparedProtocol::execute) replays
    /// the bit-exchanging phase for any input.
    ///
    /// Prepared executions are bit-identical to [`run`](Self::run) given
    /// the same coins: preparation hoists only deterministic, RNG-free
    /// work.
    fn prepare(&self, spec: ProblemSpec) -> Arc<dyn PreparedProtocol>;
}

/// A two-party protocol deciding whether `S ∩ T = ∅`.
pub trait SetDisjointness: Send + Sync + std::fmt::Debug {
    /// A human-readable name including the salient parameters.
    fn name(&self) -> String;

    /// Executes the protocol; `true` means "judged disjoint".
    ///
    /// # Errors
    ///
    /// Fails on invalid inputs or transport errors.
    fn run(
        &self,
        chan: &mut dyn Chan,
        coins: &CoinSource,
        side: Side,
        spec: ProblemSpec,
        input: &ElementSet,
    ) -> Result<bool, ProtocolError>;
}

impl<P: SetIntersection + ?Sized> SetIntersection for Box<P> {
    fn name(&self) -> String {
        (**self).name()
    }

    fn run(
        &self,
        chan: &mut dyn Chan,
        coins: &CoinSource,
        side: Side,
        spec: ProblemSpec,
        input: &ElementSet,
    ) -> Result<ElementSet, ProtocolError> {
        (**self).run(chan, coins, side, spec, input)
    }

    fn prepare(&self, spec: ProblemSpec) -> Arc<dyn PreparedProtocol> {
        (**self).prepare(spec)
    }
}

impl<P: SetIntersection + ?Sized> SetIntersection for &P {
    fn name(&self) -> String {
        (**self).name()
    }

    fn run(
        &self,
        chan: &mut dyn Chan,
        coins: &CoinSource,
        side: Side,
        spec: ProblemSpec,
        input: &ElementSet,
    ) -> Result<ElementSet, ProtocolError> {
        (**self).run(chan, coins, side, spec, input)
    }

    fn prepare(&self, spec: ProblemSpec) -> Arc<dyn PreparedProtocol> {
        (**self).prepare(spec)
    }
}

impl SetIntersection for TrivialExchange {
    fn name(&self) -> String {
        format!("trivial({:?})", self.code)
    }

    fn run(
        &self,
        chan: &mut dyn Chan,
        coins: &CoinSource,
        side: Side,
        spec: ProblemSpec,
        input: &ElementSet,
    ) -> Result<ElementSet, ProtocolError> {
        TrivialExchange::run(self, chan, &coins.fork("trivial"), side, spec, input)
    }

    // The trivial exchange derives no parameters: the fallback plan (an
    // identity preparation) is already optimal.
    fn prepare(&self, spec: ProblemSpec) -> Arc<dyn PreparedProtocol> {
        Arc::new(FallbackPlan::new(*self, spec))
    }
}

impl SetIntersection for OneRoundHash {
    fn name(&self) -> String {
        format!("one-round(e={})", self.error_bits)
    }

    fn run(
        &self,
        chan: &mut dyn Chan,
        coins: &CoinSource,
        side: Side,
        spec: ProblemSpec,
        input: &ElementSet,
    ) -> Result<ElementSet, ProtocolError> {
        OneRoundHash::run(self, chan, &coins.fork("one-round"), side, spec, input)
    }

    fn prepare(&self, spec: ProblemSpec) -> Arc<dyn PreparedProtocol> {
        Arc::new(self.plan(spec))
    }
}

impl SetIntersection for BasicIntersection {
    fn name(&self) -> String {
        format!("basic(e={})", self.error_bits)
    }

    fn run(
        &self,
        chan: &mut dyn Chan,
        coins: &CoinSource,
        side: Side,
        spec: ProblemSpec,
        input: &ElementSet,
    ) -> Result<ElementSet, ProtocolError> {
        BasicIntersection::run(self, chan, &coins.fork("basic"), side, spec, input)
    }

    fn prepare(&self, spec: ProblemSpec) -> Arc<dyn PreparedProtocol> {
        Arc::new(self.plan(spec))
    }
}

impl SetIntersection for TreeProtocol {
    fn name(&self) -> String {
        format!("tree(r={})", self.stages)
    }

    fn run(
        &self,
        chan: &mut dyn Chan,
        coins: &CoinSource,
        side: Side,
        spec: ProblemSpec,
        input: &ElementSet,
    ) -> Result<ElementSet, ProtocolError> {
        TreeProtocol::run(self, chan, &coins.fork("tree"), side, spec, input)
    }

    fn prepare(&self, spec: ProblemSpec) -> Arc<dyn PreparedProtocol> {
        Arc::new(self.plan(spec))
    }
}

impl SetIntersection for PipelinedTree {
    fn name(&self) -> String {
        format!("tree-pipelined(r={})", self.stages)
    }

    fn run(
        &self,
        chan: &mut dyn Chan,
        coins: &CoinSource,
        side: Side,
        spec: ProblemSpec,
        input: &ElementSet,
    ) -> Result<ElementSet, ProtocolError> {
        PipelinedTree::run(self, chan, &coins.fork("tree-pipelined"), side, spec, input)
    }

    fn prepare(&self, spec: ProblemSpec) -> Arc<dyn PreparedProtocol> {
        Arc::new(self.plan(spec))
    }
}

impl SetIntersection for SqrtProtocol {
    fn name(&self) -> String {
        "sqrt-fknn".to_string()
    }

    fn run(
        &self,
        chan: &mut dyn Chan,
        coins: &CoinSource,
        side: Side,
        spec: ProblemSpec,
        input: &ElementSet,
    ) -> Result<ElementSet, ProtocolError> {
        SqrtProtocol::run(self, chan, &coins.fork("sqrt"), side, spec, input)
    }

    fn prepare(&self, spec: ProblemSpec) -> Arc<dyn PreparedProtocol> {
        Arc::new(self.plan(spec))
    }
}

impl SetDisjointness for HwDisjointness {
    fn name(&self) -> String {
        "hw07".to_string()
    }

    fn run(
        &self,
        chan: &mut dyn Chan,
        coins: &CoinSource,
        side: Side,
        spec: ProblemSpec,
        input: &ElementSet,
    ) -> Result<bool, ProtocolError> {
        HwDisjointness::run(self, chan, &coins.fork("hw07"), side, spec, input)
    }
}

impl SetDisjointness for SparseDisjointness {
    fn name(&self) -> String {
        format!("st13(r={})", self.rounds)
    }

    fn run(
        &self,
        chan: &mut dyn Chan,
        coins: &CoinSource,
        side: Side,
        spec: ProblemSpec,
        input: &ElementSet,
    ) -> Result<bool, ProtocolError> {
        SparseDisjointness::run(self, chan, &coins.fork("st13"), side, spec, input)
    }
}

/// Any intersection protocol decides disjointness (the reduction the paper
/// opens with: `INT_k` is at least as hard as `DISJ_k`).
#[derive(Debug, Clone, Copy)]
pub struct DisjointnessViaIntersection<P>(pub P);

impl<P: SetIntersection> SetDisjointness for DisjointnessViaIntersection<P> {
    fn name(&self) -> String {
        format!("disj-via-{}", self.0.name())
    }

    fn run(
        &self,
        chan: &mut dyn Chan,
        coins: &CoinSource,
        side: Side,
        spec: ProblemSpec,
        input: &ElementSet,
    ) -> Result<bool, ProtocolError> {
        Ok(self.0.run(chan, coins, side, spec, input)?.is_empty())
    }
}

/// The protocol catalogue, for building by name in harnesses and CLIs.
///
/// `Hash + Eq` so `(ProtocolChoice, ProblemSpec)` can key a plan cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProtocolChoice {
    /// Deterministic one-exchange optimal-code transfer.
    Trivial,
    /// One-round `O(k log k)` hashing.
    OneRound,
    /// `Basic-Intersection` alone (Lemma 3.3).
    Basic,
    /// The verification tree with an explicit round budget.
    Tree(u32),
    /// The verification tree at `r = log* k` (headline configuration).
    TreeLogStar,
    /// The pipelined tree (the open-problem schedule: `2r + 1` messages).
    TreePipelined(u32),
    /// The `O(√k)`-round bucketed amortized-equality protocol.
    Sqrt,
    /// IBLT set reconciliation (difference-proportional baseline).
    IbltReconcile,
}

impl ProtocolChoice {
    /// Instantiates the protocol for a given spec.
    pub fn build(self, spec: ProblemSpec) -> Box<dyn SetIntersection> {
        match self {
            ProtocolChoice::Trivial => Box::new(TrivialExchange::default()),
            // Error 1/k²: range k⁴, so the cost stays Θ(k·log k) and never
            // degenerates to the full-universe identity map.
            ProtocolChoice::OneRound => Box::new(OneRoundHash::new(
                2 * crate::iterlog::ceil_log2(spec.k.max(2)) as usize,
            )),
            ProtocolChoice::Basic => Box::new(BasicIntersection::new(20)),
            ProtocolChoice::Tree(r) => Box::new(TreeProtocol::new(r)),
            ProtocolChoice::TreeLogStar => Box::new(TreeProtocol::log_star(spec.k)),
            ProtocolChoice::TreePipelined(r) => Box::new(PipelinedTree::new(r)),
            ProtocolChoice::Sqrt => Box::new(SqrtProtocol::default()),
            ProtocolChoice::IbltReconcile => Box::new(crate::reconcile::IbltReconcile::default()),
        }
    }

    /// All catalogue entries with a default parameterization.
    pub fn all(max_tree_rounds: u32) -> Vec<ProtocolChoice> {
        let mut v = vec![
            ProtocolChoice::Trivial,
            ProtocolChoice::OneRound,
            ProtocolChoice::Basic,
            ProtocolChoice::Sqrt,
            ProtocolChoice::IbltReconcile,
            ProtocolChoice::TreeLogStar,
        ];
        for r in 1..=max_tree_rounds {
            v.push(ProtocolChoice::Tree(r));
            if r >= 2 {
                v.push(ProtocolChoice::TreePipelined(r));
            }
        }
        v
    }
}

impl std::fmt::Display for ProtocolChoice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolChoice::Trivial => f.write_str("trivial"),
            ProtocolChoice::OneRound => f.write_str("one-round"),
            ProtocolChoice::Basic => f.write_str("basic"),
            ProtocolChoice::Tree(r) => write!(f, "tree:{r}"),
            ProtocolChoice::TreeLogStar => f.write_str("tree-log-star"),
            ProtocolChoice::TreePipelined(r) => write!(f, "tree-pipelined:{r}"),
            ProtocolChoice::Sqrt => f.write_str("sqrt"),
            ProtocolChoice::IbltReconcile => f.write_str("iblt"),
        }
    }
}

impl std::str::FromStr for ProtocolChoice {
    type Err = String;

    /// Parses the names printed by [`Display`](std::fmt::Display):
    /// `trivial`, `one-round`, `basic`, `tree:<r>`, `tree-log-star`,
    /// `tree-pipelined:<r>`, `sqrt`, `iblt`. `tree` without a round
    /// budget is accepted as an alias for `tree-log-star`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let rounds = |spec: &str| -> Result<u32, String> {
            spec.parse::<u32>()
                .ok()
                .filter(|r| (1..=64).contains(r))
                .ok_or_else(|| format!("bad round budget {spec:?} (want 1..=64)"))
        };
        match s {
            "trivial" => Ok(ProtocolChoice::Trivial),
            "one-round" => Ok(ProtocolChoice::OneRound),
            "basic" => Ok(ProtocolChoice::Basic),
            "tree" | "tree-log-star" => Ok(ProtocolChoice::TreeLogStar),
            "sqrt" => Ok(ProtocolChoice::Sqrt),
            "iblt" => Ok(ProtocolChoice::IbltReconcile),
            other => {
                if let Some(spec) = other.strip_prefix("tree-pipelined:") {
                    Ok(ProtocolChoice::TreePipelined(rounds(spec)?))
                } else if let Some(spec) = other.strip_prefix("tree:") {
                    Ok(ProtocolChoice::Tree(rounds(spec)?))
                } else {
                    Err(format!(
                        "unknown protocol {other:?}; expected trivial, one-round, basic, \
                         tree:<r>, tree-log-star, tree-pipelined:<r>, sqrt, or iblt"
                    ))
                }
            }
        }
    }
}

/// The outcome of executing an intersection protocol on a local pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IntersectionRun {
    /// Alice's output.
    pub alice: ElementSet,
    /// Bob's output.
    pub bob: ElementSet,
    /// Exact communication cost.
    pub report: CostReport,
}

impl IntersectionRun {
    /// `true` iff both parties produced exactly `expected`.
    pub fn matches(&self, expected: &ElementSet) -> bool {
        self.alice == *expected && self.bob == *expected
    }
}

/// Runs `protocol` on `(pair.s, pair.t)` over this thread's warm
/// session runner with shared seed `seed`, returning both outputs and
/// the exact cost.
///
/// Internally this is `protocol.prepare(spec)` followed by
/// [`execute_prepared`](crate::prepared::execute_prepared) — the same
/// (and only) execution path the engine scheduler and batch submission
/// use. Transcripts are bit-identical to a dedicated
/// [`run_two_party`](intersect_comm::runner::run_two_party) pair.
///
/// # Errors
///
/// Propagates protocol failures.
///
/// # Examples
///
/// ```
/// use intersect_core::api::{execute, ProtocolChoice};
/// use intersect_core::sets::{InputPair, ProblemSpec};
/// use rand::SeedableRng;
///
/// let spec = ProblemSpec::new(1 << 20, 32);
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
/// let pair = InputPair::random_with_overlap(&mut rng, spec, 32, 10);
/// let proto = ProtocolChoice::TreeLogStar.build(spec);
/// let run = execute(proto.as_ref(), spec, &pair, 7)?;
/// assert!(run.matches(&pair.ground_truth()));
/// # Ok::<(), intersect_comm::error::ProtocolError>(())
/// ```
pub fn execute(
    protocol: &dyn SetIntersection,
    spec: ProblemSpec,
    pair: &InputPair,
    seed: u64,
) -> Result<IntersectionRun, ProtocolError> {
    let plan = protocol.prepare(spec);
    crate::prepared::execute_prepared(&plan, pair, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use intersect_comm::runner::{run_two_party, RunConfig};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn every_catalogue_protocol_computes_the_intersection() {
        let spec = ProblemSpec::new(1 << 20, 32);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let pair = InputPair::random_with_overlap(&mut rng, spec, 32, 11);
        let truth = pair.ground_truth();
        for choice in ProtocolChoice::all(3) {
            let proto = choice.build(spec);
            let run = execute(proto.as_ref(), spec, &pair, 42).unwrap();
            assert!(
                run.matches(&truth),
                "{} failed: alice={:?} bob={:?} truth={:?}",
                proto.name(),
                run.alice,
                run.bob,
                truth
            );
        }
    }

    #[test]
    fn names_are_informative() {
        let spec = ProblemSpec::new(1 << 20, 32);
        assert!(ProtocolChoice::Tree(3).build(spec).name().contains("r=3"));
        assert!(ProtocolChoice::Trivial
            .build(spec)
            .name()
            .contains("trivial"));
    }

    #[test]
    fn protocol_names_round_trip_through_parse() {
        for choice in ProtocolChoice::all(4) {
            let parsed: ProtocolChoice = choice.to_string().parse().unwrap();
            assert_eq!(parsed, choice, "via {:?}", choice.to_string());
        }
        assert_eq!(
            "tree".parse::<ProtocolChoice>(),
            Ok(ProtocolChoice::TreeLogStar)
        );
        assert!("tree:0".parse::<ProtocolChoice>().is_err());
        assert!("tree:nope".parse::<ProtocolChoice>().is_err());
        assert!("warp-drive".parse::<ProtocolChoice>().is_err());
    }

    #[test]
    fn disjointness_via_intersection_agrees_with_ground_truth() {
        let spec = ProblemSpec::new(1 << 20, 16);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        for overlap in [0usize, 1, 16] {
            let pair = InputPair::random_with_overlap(&mut rng, spec, 16, overlap);
            let proto = DisjointnessViaIntersection(TreeProtocol::new(2));
            let out = run_two_party(
                &RunConfig::with_seed(3),
                |chan, coins| SetDisjointness::run(&proto, chan, coins, Side::Alice, spec, &pair.s),
                |chan, coins| SetDisjointness::run(&proto, chan, coins, Side::Bob, spec, &pair.t),
            )
            .unwrap();
            assert_eq!(out.alice, overlap == 0);
            assert_eq!(out.alice, out.bob);
        }
    }
}
