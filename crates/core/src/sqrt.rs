//! The `O(√k)`-round, `O(k)`-bit protocol (Theorem 3.1).
//!
//! Steps, exactly as in the paper's proof:
//!
//! 1. Pick a shared `H : [n] → [N]`, `N = k^c` (`c > 2`), collision-free on
//!    `S ∪ T` with probability `1 − 1/Ω(k^{c-2})`; work over `[N]`.
//! 2. Pick a shared `h : [N] → [k]` and form the preimage buckets
//!    `S_i = h^{-1}(i) ∩ S`, `T_i = h^{-1}(i) ∩ T`.
//! 3. Build the equality collection `E = ⊔ᵢ E_i`, where
//!    `E_i = {EQ(s, t) : (s, t) ∈ S_i × T_i}`. The expected number of
//!    instances is at most `6k` (equation (1) in the paper: each bucket
//!    contributes `|S_i|·|T_i| ≤ |(S∪T)_i|²`, and the binomial second
//!    moment bounds the sum).
//! 4. Solve the whole collection with the amortized equality protocol of
//!    Theorem 3.2 ([`crate::fknn`]): `O(k)` expected bits, `O(√k)` rounds,
//!    error `2^{-Ω(√k)}`.
//! 5. An element is in the intersection iff one of its pairs was judged
//!    equal; map back to original values.
//!
//! Bucket sizes must be shared knowledge to align the pair lists, so the
//! parties first exchange their bucket-size vectors (`O(k)` bits, one
//! simultaneous exchange — absorbed in the `O(k)` total).

use crate::fknn::AmortizedEquality;
use crate::prepared::PreparedProtocol;
use crate::sets::{ElementSet, ProblemSpec};
use intersect_comm::bits::BitBuf;
use intersect_comm::chan::Chan;
use intersect_comm::coins::CoinSource;
use intersect_comm::encode::{get_gamma0, put_gamma0};
use intersect_comm::error::ProtocolError;
use intersect_comm::runner::Side;
use intersect_hash::pairwise::PairwiseFamily;
use std::collections::HashMap;

/// The bucketed amortized-equality intersection protocol.
///
/// # Examples
///
/// ```
/// use intersect_core::sqrt::SqrtProtocol;
/// use intersect_core::sets::{ElementSet, ProblemSpec};
/// use intersect_comm::runner::{run_two_party, RunConfig, Side};
///
/// let spec = ProblemSpec::new(1 << 30, 16);
/// let s = ElementSet::from_iter((0..16u64).map(|i| i * 31));
/// let t = ElementSet::from_iter((4..20u64).map(|i| i * 31));
/// let proto = SqrtProtocol::default();
/// let out = run_two_party(
///     &RunConfig::with_seed(11),
///     |chan, coins| proto.run(chan, &coins.fork("sq"), Side::Alice, spec, &s),
///     |chan, coins| proto.run(chan, &coins.fork("sq"), Side::Bob, spec, &t),
/// )?;
/// assert_eq!(out.alice, s.intersection(&t));
/// assert_eq!(out.bob, s.intersection(&t));
/// # Ok::<(), intersect_comm::error::ProtocolError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SqrtProtocol {
    /// Universe-reduction exponent `c > 2` (`N = k^c`).
    pub reduction_exponent: u32,
    /// The inner amortized-equality engine.
    pub equality: AmortizedEquality,
}

impl Default for SqrtProtocol {
    fn default() -> Self {
        SqrtProtocol {
            reduction_exponent: 3,
            equality: AmortizedEquality::new(),
        }
    }
}

impl SqrtProtocol {
    /// The reduced-universe size `N = k^c`, floored at `2^28` (seeds are
    /// free in the shared-coin model, so small `k` keeps a big hash space)
    /// and capped at `2^61`.
    pub fn reduced_universe(&self, k: u64) -> u64 {
        let mut n = 1u64;
        for _ in 0..self.reduction_exponent {
            n = n.saturating_mul(k.max(2));
        }
        n.clamp(1 << 28, 1 << 61)
    }

    /// Derives the input-independent parameters for `spec`: the reduced
    /// universe and the field primes for the reduction and bucket hash
    /// families.
    pub fn plan(&self, spec: ProblemSpec) -> SqrtPlan {
        let k = spec.k.max(2);
        let big_n = self.reduced_universe(k);
        SqrtPlan {
            proto: *self,
            spec,
            big_n,
            reduce_family: (spec.n > big_n).then(|| PairwiseFamily::new(spec.n)),
            bucket_family: PairwiseFamily::new(big_n),
        }
    }

    /// Runs the protocol; both parties output the recovered intersection.
    ///
    /// # Errors
    ///
    /// Fails on invalid inputs or transport errors.
    pub fn run(
        &self,
        chan: &mut dyn Chan,
        coins: &CoinSource,
        side: Side,
        spec: ProblemSpec,
        input: &ElementSet,
    ) -> Result<ElementSet, ProtocolError> {
        self.plan(spec).execute_with(chan, coins, side, input)
    }
}

/// [`SqrtProtocol`] with the reduced universe and hash families fixed.
#[derive(Debug, Clone)]
pub struct SqrtPlan {
    proto: SqrtProtocol,
    spec: ProblemSpec,
    big_n: u64,
    reduce_family: Option<PairwiseFamily>,
    bucket_family: PairwiseFamily,
}

impl SqrtPlan {
    /// The bit-exchanging phase, with `coins` already forked to the
    /// protocol's namespace.
    fn execute_with(
        &self,
        chan: &mut dyn Chan,
        coins: &CoinSource,
        side: Side,
        input: &ElementSet,
    ) -> Result<ElementSet, ProtocolError> {
        let spec = self.spec;
        spec.validate(input).map_err(ProtocolError::InvalidInput)?;
        let k = spec.k.max(2);

        // Step 1: universe reduction (shared coins; free).
        let reduce_span = intersect_obs::phase::span("core", "reduce");
        let before = chan.stats();
        let big_n = self.big_n;
        let (work_set, back_map) = match &self.reduce_family {
            None => {
                let map: HashMap<u64, u64> = input.iter().map(|x| (x, x)).collect();
                (input.clone(), map)
            }
            Some(family) => {
                let h_big = family.sample(&mut coins.fork("reduce").rng(), big_n);
                let mut map = HashMap::with_capacity(input.len());
                for x in input.iter() {
                    map.entry(h_big.eval(x)).or_insert(x);
                }
                let set: ElementSet = map.keys().copied().collect();
                (set, map)
            }
        };
        reduce_span.finish(chan.stats().delta_since(&before));

        // Step 2: bucket into k preimages (plus the size-vector exchange).
        let bucket_span = intersect_obs::phase::span("core", "bucket");
        let before = chan.stats();
        let bucket_hash = self
            .bucket_family
            .sample(&mut coins.fork("bucket").rng(), k);
        let mut buckets: Vec<Vec<u64>> = vec![Vec::new(); k as usize];
        for x in work_set.iter() {
            buckets[bucket_hash.eval(x) as usize].push(x);
        }
        for b in &mut buckets {
            b.sort_unstable();
        }

        // Exchange bucket-size vectors to align the pair lists.
        let mut size_msg = BitBuf::new();
        for b in &buckets {
            put_gamma0(&mut size_msg, b.len() as u64);
        }
        let their_sizes_buf = chan.exchange(size_msg)?;
        let mut r = their_sizes_buf.reader();
        let mut their_sizes = Vec::with_capacity(k as usize);
        for _ in 0..k {
            their_sizes.push(get_gamma0(&mut r)? as usize);
        }
        bucket_span.finish(chan.stats().delta_since(&before));

        // Step 3: the equality collection E = ⊔ S_i × T_i, ordered by
        // (bucket, my index, their index) — identical on both sides because
        // bucket contents are sorted.
        let encode = |x: u64| {
            let mut b = BitBuf::new();
            b.push_bits(x, 64);
            b
        };
        // Both parties enumerate pairs (s_j, t_l) j-major within each
        // bucket; each supplies its own element of the pair as the instance
        // string, so instance `m` compares the same (s, t) on both sides.
        let mut instances: Vec<BitBuf> = Vec::new();
        let mut owners: Vec<u64> = Vec::new(); // my element for each instance
        for (i, bucket) in buckets.iter().enumerate() {
            let (alice_count, bob_count) = match side {
                Side::Alice => (bucket.len(), their_sizes[i]),
                Side::Bob => (their_sizes[i], bucket.len()),
            };
            for j in 0..alice_count {
                for l in 0..bob_count {
                    let mine = match side {
                        Side::Alice => bucket[j],
                        Side::Bob => bucket[l],
                    };
                    instances.push(encode(mine));
                    owners.push(mine);
                }
            }
        }

        // Step 4: one amortized-equality run over the whole collection.
        let verify_span = intersect_obs::phase::span("core", "verify");
        let before = chan.stats();
        let verdicts = self
            .proto
            .equality
            .run(chan, &coins.fork("eqk"), side, &instances)?;
        verify_span.finish(chan.stats().delta_since(&before));

        // Step 5: an element is in the intersection iff some pair matched.
        let mut hits: Vec<u64> = owners
            .into_iter()
            .zip(verdicts)
            .filter(|(_, v)| *v)
            .map(|(owner, _)| owner)
            .collect();
        hits.sort_unstable();
        hits.dedup();
        Ok(hits
            .into_iter()
            .map(|m| *back_map.get(&m).expect("output is a subset of the input"))
            .collect())
    }
}

impl PreparedProtocol for SqrtPlan {
    fn name(&self) -> String {
        crate::api::SetIntersection::name(&self.proto)
    }

    fn spec(&self) -> ProblemSpec {
        self.spec
    }

    fn execute(
        &self,
        chan: &mut dyn Chan,
        coins: &CoinSource,
        side: Side,
        input: &ElementSet,
    ) -> Result<ElementSet, ProtocolError> {
        // Same fork label as the `SetIntersection` impl, so prepared
        // and cold executions draw identical coins.
        self.execute_with(chan, &coins.fork("sqrt"), side, input)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sets::InputPair;
    use intersect_comm::runner::{run_two_party, RunConfig};
    use intersect_comm::stats::CostReport;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn run_sqrt(
        seed: u64,
        spec: ProblemSpec,
        s: &ElementSet,
        t: &ElementSet,
    ) -> (ElementSet, ElementSet, CostReport) {
        let proto = SqrtProtocol::default();
        let out = run_two_party(
            &RunConfig::with_seed(seed),
            |chan, coins| proto.run(chan, &coins.fork("sq"), Side::Alice, spec, s),
            |chan, coins| proto.run(chan, &coins.fork("sq"), Side::Bob, spec, t),
        )
        .unwrap();
        (out.alice, out.bob, out.report)
    }

    #[test]
    fn recovers_intersection_across_overlaps() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let spec = ProblemSpec::new(1 << 30, 64);
        for overlap in [0usize, 1, 13, 64] {
            let pair = InputPair::random_with_overlap(&mut rng, spec, 64, overlap);
            let truth = pair.ground_truth();
            let (a, b, _) = run_sqrt(overlap as u64, spec, &pair.s, &pair.t);
            assert_eq!(a, truth, "overlap {overlap}");
            assert_eq!(b, truth, "overlap {overlap}");
        }
    }

    #[test]
    fn success_rate_is_high() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let spec = ProblemSpec::new(1 << 24, 128);
        let mut exact = 0;
        for seed in 0..40 {
            let pair = InputPair::random_with_overlap(&mut rng, spec, 128, 64);
            let truth = pair.ground_truth();
            let (a, b, _) = run_sqrt(seed, spec, &pair.s, &pair.t);
            if a == truth && b == truth {
                exact += 1;
            }
        }
        assert!(exact >= 38, "{exact}/40");
    }

    #[test]
    fn cost_is_linear_in_k() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut per_k = Vec::new();
        for k in [128usize, 512] {
            let spec = ProblemSpec::new(1 << 40, k as u64);
            let pair = InputPair::random_with_overlap(&mut rng, spec, k, k / 2);
            let (_, _, report) = run_sqrt(1, spec, &pair.s, &pair.t);
            per_k.push(report.total_bits() as f64 / k as f64);
        }
        // Per-element cost roughly flat (within 2x) as k quadruples.
        assert!(
            per_k[1] < per_k[0] * 2.0,
            "per-element cost grew: {per_k:?}"
        );
        // And well below log k per element… times a modest constant.
        assert!(per_k[1] < 64.0, "{per_k:?}");
    }

    #[test]
    fn rounds_scale_like_sqrt_of_instances() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let spec = ProblemSpec::new(1 << 30, 256);
        let pair = InputPair::random_with_overlap(&mut rng, spec, 256, 128);
        let (_, _, report) = run_sqrt(2, spec, &pair.s, &pair.t);
        // Instances ≈ overlap + collisions ≈ 200-ish; blocks ≈ √instances;
        // ≤ ~8 rounds per block plus the size exchange.
        assert!(report.rounds < 400, "rounds = {}", report.rounds);
        assert!(report.rounds > 4);
    }

    #[test]
    fn empty_and_degenerate_inputs() {
        let spec = ProblemSpec::new(1000, 4);
        let empty = ElementSet::new();
        let t = ElementSet::from_iter([5u64, 6]);
        let (a, b, _) = run_sqrt(1, spec, &empty, &t);
        assert!(a.is_empty() && b.is_empty());
        let (a, b, _) = run_sqrt(2, spec, &t, &t.clone());
        assert_eq!(a, t);
        assert_eq!(b, t);
    }

    #[test]
    fn small_universe_skips_reduction() {
        let spec = ProblemSpec::new(50, 8);
        let s = ElementSet::from_iter([1u64, 10, 20, 30]);
        let t = ElementSet::from_iter([10u64, 30, 40]);
        let (a, b, _) = run_sqrt(3, spec, &s, &t);
        assert_eq!(a.as_slice(), &[10, 30]);
        assert_eq!(b.as_slice(), &[10, 30]);
    }
}
