//! # intersect-core
//!
//! Protocols for distributed set intersection, reproducing
//! Brody–Chakrabarti–Kondapally–Woodruff–Yaroslavtsev, *Beyond Set
//! Disjointness: The Communication Complexity of Finding the Intersection*
//! (PODC 2014).
//!
//! Two players hold sets `S, T ⊆ [n]` with `|S|, |T| ≤ k` and want both to
//! output `S ∩ T`. The crate provides:
//!
//! | Module | Paper artifact | Bound |
//! |---|---|---|
//! | [`trivial`] | intro | deterministic, 1 exchange, `O(k log(n/k))` bits |
//! | [`one_round`] | intro | randomized, 1 round, `O(k log k)` bits |
//! | [`basic`] | Lemma 3.3 | `Basic-Intersection`, ≤ 4 messages |
//! | [`equality`] | Fact 3.5 | 2-round equality test, error `2^{-b}`, `O(b)` bits |
//! | [`fknn`] | Theorem 3.2 | amortized `EQ^n_k`: `O(k)` bits, `O(√k)` rounds |
//! | [`sqrt`] | Theorem 3.1 | `O(k)` bits, `O(√k)` rounds |
//! | [`tree`] | **Theorem 1.1** | `O(k·log^{(r)} k)` bits, `≤ 6r` rounds |
//! | [`tree_pipelined`] | open problem (§ concl.) | same cost in `2r + 1` messages |
//! | [`hw07`] | \[HW07\] baseline | disjointness, `O(k)` bits, `O(log k)` rounds |
//! | [`st13`] | \[ST13\] baseline | disjointness, `O(k·log^{(r)} k)` bits, `r` rounds |
//! | [`newman`] | §3.1 | constructive private coins, `+O(log k + log log n)` bits |
//! | [`amplify`] | §4 | success `1 − 2^{-k}` by repeat-until-certified |
//! | [`reduction`] | Fact 2.1 | `EQ^n_k` via any intersection protocol |
//! | [`reconcile`] | baseline (post-paper practice) | IBLT set reconciliation: `O(d·log n)` for difference `d` |
//! | [`prepared`] | — | two-phase plans: parameter derivation split from execution |
//! | [`api`] | — | object-safe traits, catalogue, executor |
//!
//! # Examples
//!
//! The headline result — `O(k)` bits in `O(log* k)` rounds:
//!
//! ```
//! use intersect_core::prelude::*;
//! use rand::SeedableRng;
//!
//! let spec = ProblemSpec::new(1 << 30, 64); // |S|,|T| ≤ 64 from [2^30]
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
//! let pair = InputPair::random_with_overlap(&mut rng, spec, 64, 20);
//!
//! let protocol = TreeProtocol::log_star(spec.k);
//! let run = execute(&protocol, spec, &pair, 42)?;
//! assert!(run.matches(&pair.ground_truth()));
//! println!(
//!     "recovered {} common elements in {} bits, {} rounds",
//!     run.alice.len(),
//!     run.report.total_bits(),
//!     run.report.rounds,
//! );
//! # Ok::<(), intersect_comm::error::ProtocolError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod amplify;
pub mod api;
pub mod basic;
pub mod cost;
pub mod equality;
pub mod fknn;
pub mod hw07;
pub mod iterlog;
pub mod newman;
pub mod one_round;
pub mod prepared;
pub mod reconcile;
pub mod reduction;
pub mod sets;
pub mod sqrt;
pub mod st13;
pub mod topology;
pub mod tree;
pub mod tree_pipelined;
pub mod trivial;

use intersect_comm::stats::CostReport;

/// A protocol output value bundled with the exact cost of obtaining it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtocolResult<T> {
    /// The protocol's output.
    pub value: T,
    /// Exact communication cost.
    pub report: CostReport,
}

/// The most commonly used items, for glob import.
pub mod prelude {
    pub use crate::amplify::Amplified;
    pub use crate::api::{
        execute, DisjointnessViaIntersection, IntersectionRun, ProtocolChoice, SetDisjointness,
        SetIntersection,
    };
    pub use crate::basic::BasicIntersection;
    pub use crate::cost::PredictedCost;
    pub use crate::equality::EqualityTest;
    pub use crate::fknn::AmortizedEquality;
    pub use crate::hw07::HwDisjointness;
    pub use crate::iterlog::{iter_log, log_star};
    pub use crate::newman::PrivateCoin;
    pub use crate::one_round::OneRoundHash;
    pub use crate::prepared::{
        execute_prepared, execute_prepared_batch, execute_prepared_stream, FallbackPlan,
        PairContext, PreparedProtocol, SessionCtx,
    };
    pub use crate::reconcile::IbltReconcile;
    pub use crate::sets::{ElementSet, InputPair, ProblemSpec};
    pub use crate::sqrt::SqrtProtocol;
    pub use crate::st13::SparseDisjointness;
    pub use crate::topology::{PartyTopology, PreparedTournament, SessionShape, TournamentKind};
    pub use crate::tree::TreeProtocol;
    pub use crate::tree_pipelined::PipelinedTree;
    pub use crate::trivial::TrivialExchange;
}
