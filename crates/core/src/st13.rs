//! An `r`-round sparse disjointness baseline in the style of
//! Saglam–Tardos \[ST13\]: `O(k·log^{(r)} k)` bits in `O(r)` rounds.
//!
//! \[ST13\] interpret the public coin as a list of random *sparse* sets of
//! density `q` and announce the index of the first one containing the
//! sender's set, shrinking the receiver's set by a factor `q` per round at
//! a cost of `log(1/q)` bits per sender element. Announcing, for each
//! element, a `log(1/q_effective)`-bit shared hash value is
//! information-theoretically the same filter (the receiver keeps `y` iff
//! `y`'s hash matches an announced value; survival probability
//! `|A|·2^{-e}`), and is computable at word speed — so that is what we
//! send. Round `j`'s precision is budgeted so each round costs
//! `≈ k·log^{(r)} k` bits, which drives the live set size from `s` to
//! `s·2^{-(budget/s)}` — reaching zero (on disjoint inputs) within `r`
//! rounds. Intersection elements always survive every filter, so the
//! protocol has the same one-sided structure as \[ST13\].
//!
//! This serves as the *matching-bound baseline* for experiment E6: the
//! paper's intersection protocol (Theorem 1.1) is optimal because
//! `DISJ_k` already costs `Ω(k·log^{(r)} k)` in `r` rounds \[ST13\]; here we
//! verify the paper's protocol tracks this curve within a constant.

use crate::iterlog::{ceil_log2, iter_log};
use crate::sets::{ElementSet, ProblemSpec};
use intersect_comm::bits::BitBuf;
use intersect_comm::chan::Chan;
use intersect_comm::coins::CoinSource;
use intersect_comm::encode::{get_gamma0, put_gamma0};
use intersect_comm::error::ProtocolError;
use intersect_comm::runner::Side;
use intersect_hash::pairwise::PairwiseHash;

/// The `r`-round sparse-filtering disjointness protocol.
///
/// # Examples
///
/// ```
/// use intersect_core::st13::SparseDisjointness;
/// use intersect_core::sets::{ElementSet, ProblemSpec};
/// use intersect_comm::runner::{run_two_party, RunConfig, Side};
///
/// let spec = ProblemSpec::new(1 << 20, 8);
/// let s = ElementSet::from_iter([10u64, 20, 30]);
/// let t = ElementSet::from_iter([15u64, 20, 35]);
/// let proto = SparseDisjointness::new(3);
/// let out = run_two_party(
///     &RunConfig::with_seed(7),
///     |chan, coins| proto.run(chan, &coins.fork("st"), Side::Alice, spec, &s),
///     |chan, coins| proto.run(chan, &coins.fork("st"), Side::Bob, spec, &t),
/// )?;
/// assert!(!out.alice); // 20 is shared
/// assert_eq!(out.alice, out.bob);
/// # Ok::<(), intersect_comm::error::ProtocolError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SparseDisjointness {
    /// Number of filtering rounds `r ≥ 1`.
    pub rounds: u32,
    /// Error exponent of the final verification.
    pub final_check_bits: usize,
}

impl SparseDisjointness {
    /// Creates the protocol with `r` filtering rounds.
    ///
    /// # Panics
    ///
    /// Panics if `r == 0`.
    pub fn new(r: u32) -> Self {
        assert!(r >= 1, "need at least one round");
        SparseDisjointness {
            rounds: r,
            final_check_bits: 20,
        }
    }

    /// The per-round bit budget `≈ 4·k·log^{(r)} k`.
    fn round_budget(&self, k: u64) -> u64 {
        4 * k.max(2) * iter_log(self.rounds, k.max(2)).max(1)
    }

    /// Runs the protocol; both parties return `true` iff judged disjoint.
    ///
    /// # Errors
    ///
    /// Fails on invalid inputs or transport errors.
    pub fn run(
        &self,
        chan: &mut dyn Chan,
        coins: &CoinSource,
        side: Side,
        spec: ProblemSpec,
        input: &ElementSet,
    ) -> Result<bool, ProtocolError> {
        spec.validate(input).map_err(ProtocolError::InvalidInput)?;
        let budget = self.round_budget(spec.k);
        let mut mine: Vec<u64> = input.iter().collect();

        for round in 0..self.rounds {
            let round_coins = coins.fork(&format!("round{round}"));
            let i_send = (round % 2 == 0) == side.is_alice();
            if i_send {
                if mine.is_empty() {
                    let mut msg = BitBuf::new();
                    put_gamma0(&mut msg, 0);
                    chan.send(msg)?;
                    return Ok(true);
                }
                // Precision: spread the round budget over my elements, with
                // a log|A| floor so matches identify elements sensibly.
                let e = self.precision(mine.len() as u64, budget);
                let h = PairwiseHash::sample(&mut round_coins.fork("h").rng(), spec.n, 1u64 << e);
                let mut msg = BitBuf::new();
                put_gamma0(&mut msg, mine.len() as u64);
                let mut vals: Vec<u64> = mine.iter().map(|&x| h.eval(x)).collect();
                vals.sort_unstable();
                vals.dedup();
                put_gamma0(&mut msg, vals.len() as u64);
                for v in vals {
                    msg.push_bits(v, e as usize);
                }
                chan.send(msg)?;
            } else {
                let msg = chan.recv()?;
                let mut r = msg.reader();
                let sender_size = get_gamma0(&mut r)?;
                if sender_size == 0 {
                    return Ok(true);
                }
                let e = self.precision(sender_size, budget);
                let h = PairwiseHash::sample(&mut round_coins.fork("h").rng(), spec.n, 1u64 << e);
                let distinct = get_gamma0(&mut r)?;
                let mut announced = std::collections::HashSet::new();
                for _ in 0..distinct {
                    announced.insert(r.read_bits(e as usize)?);
                }
                mine.retain(|&y| announced.contains(&h.eval(y)));
            }
        }

        self.final_check(chan, &coins.fork("final"), side, spec, &mine)
    }

    /// Hash precision for a sender holding `size` elements under `budget`:
    /// `log(size)` identification bits plus the per-element budget share.
    fn precision(&self, size: u64, budget: u64) -> u32 {
        let ident = ceil_log2(size.max(2)) as u32;
        let share = (budget / size.max(1)).max(1);
        (ident + share.min(56) as u32).min(56)
    }

    /// Exact-ish final verification, as in [`crate::hw07`].
    fn final_check(
        &self,
        chan: &mut dyn Chan,
        coins: &CoinSource,
        side: Side,
        spec: ProblemSpec,
        mine: &[u64],
    ) -> Result<bool, ProtocolError> {
        let e = self.final_check_bits.clamp(8, 56);
        let h = PairwiseHash::sample(&mut coins.fork("h").rng(), spec.n, 1u64 << e);
        match side {
            Side::Alice => {
                let mut msg = BitBuf::new();
                put_gamma0(&mut msg, mine.len() as u64);
                for &x in mine {
                    msg.push_bits(h.eval(x), e);
                }
                chan.send(msg)?;
                let reply = chan.recv()?;
                Ok(reply.get(0).unwrap_or(false))
            }
            Side::Bob => {
                let msg = chan.recv()?;
                let mut r = msg.reader();
                let count = get_gamma0(&mut r)?;
                let mut theirs = std::collections::HashSet::new();
                for _ in 0..count {
                    theirs.insert(r.read_bits(e)?);
                }
                let disjoint = !mine.iter().any(|&y| theirs.contains(&h.eval(y)));
                let mut verdict = BitBuf::new();
                verdict.push_bit(disjoint);
                chan.send(verdict)?;
                Ok(disjoint)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sets::InputPair;
    use intersect_comm::runner::{run_two_party, RunConfig};
    use intersect_comm::stats::CostReport;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn run_st(
        seed: u64,
        r: u32,
        spec: ProblemSpec,
        s: &ElementSet,
        t: &ElementSet,
    ) -> (bool, bool, CostReport) {
        let proto = SparseDisjointness::new(r);
        let out = run_two_party(
            &RunConfig::with_seed(seed),
            |chan, coins| proto.run(chan, &coins.fork("st"), Side::Alice, spec, s),
            |chan, coins| proto.run(chan, &coins.fork("st"), Side::Bob, spec, t),
        )
        .unwrap();
        (out.alice, out.bob, out.report)
    }

    #[test]
    fn verdicts_correct_across_rounds_and_overlaps() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let spec = ProblemSpec::new(1 << 30, 64);
        for r in 1..=4 {
            for overlap in [0usize, 1, 32] {
                let pair = InputPair::random_with_overlap(&mut rng, spec, 64, overlap);
                let (a, b, _) = run_st(r as u64 * 10 + overlap as u64, r, spec, &pair.s, &pair.t);
                assert_eq!(a, b, "r={r} overlap={overlap}");
                assert_eq!(a, overlap == 0, "r={r} overlap={overlap}");
            }
        }
    }

    #[test]
    fn more_rounds_cost_fewer_bits() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let spec = ProblemSpec::new(1 << 40, 1024);
        let pair = InputPair::random_with_overlap(&mut rng, spec, 1024, 0);
        let mut costs = Vec::new();
        for r in 1..=4u32 {
            let (verdict, _, report) = run_st(1, r, spec, &pair.s, &pair.t);
            assert!(verdict);
            costs.push(report.total_bits());
        }
        assert!(
            costs[1] < costs[0] && costs[2] < costs[1],
            "costs should fall with r: {costs:?}"
        );
    }

    #[test]
    fn cost_tracks_k_iterlog_k() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let spec = ProblemSpec::new(1 << 40, 512);
        let pair = InputPair::random_with_overlap(&mut rng, spec, 512, 0);
        for r in 2..=3u32 {
            let (_, _, report) = run_st(1, r, spec, &pair.s, &pair.t);
            let bound = 16 * 512 * iter_log(r, 512).max(1) + 4096;
            assert!(
                report.total_bits() < bound,
                "r={r}: {} bits vs bound {bound}",
                report.total_bits()
            );
        }
    }

    #[test]
    fn rounds_match_configuration() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let spec = ProblemSpec::new(1 << 30, 128);
        let pair = InputPair::random_with_overlap(&mut rng, spec, 128, 64);
        for r in 1..=4u32 {
            let (_, _, report) = run_st(2, r, spec, &pair.s, &pair.t);
            // r filtering messages + 2 final-check messages.
            assert!(
                report.rounds <= r as u64 + 2,
                "r={r}: {} rounds",
                report.rounds
            );
        }
    }

    #[test]
    fn empty_inputs_short_circuit() {
        let spec = ProblemSpec::new(100, 4);
        let empty = ElementSet::new();
        let t = ElementSet::from_iter([1u64, 2]);
        let (a, b, _) = run_st(1, 3, spec, &empty, &t);
        assert!(a && b);
    }
}
