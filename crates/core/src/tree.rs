//! The verification-tree protocol — the paper's main result
//! (Theorem 1.1 / Theorem 3.6, Algorithm 1).
//!
//! For a round budget `r`, the parties:
//!
//! 1. Reduce the universe with a shared `H : [n] → [N]`, `N = k^c`
//!    (collision-free on `S ∪ T` with probability `1 − O(k^{2-c})`).
//! 2. Hash into `k` buckets with a shared `h : [N] → [k]`; bucket `ℓ`
//!    holds `S_ℓ = {x ∈ S : h(x) = ℓ}` (expected constant size).
//! 3. Build a tree of depth `r` over the `k` buckets in which a node at
//!    height `i ≥ 1` covers `log^{(r-i)} k` leaves (so the root covers all
//!    `k`, height-1 nodes cover `log^{(r-1)} k`, and the degree at height
//!    `i ≥ 2` is `log^{(r-i)} k / log^{(r-i+1)} k`).
//! 4. Run `r` stages. Stage `i` equality-tests the concatenated leaf
//!    assignments at every height-`i` node with error
//!    `1/(log^{(r-i-1)} k)^4`, then re-runs `Basic-Intersection` (with the
//!    same error parameter) at every leaf under every *failed* node. All
//!    tests of a stage batch into one simultaneous exchange, and all
//!    re-runs into another, so a stage costs at most 4 causal rounds and
//!    the whole protocol at most `4r ≤ 6r`.
//!
//! Correctness rests on the one-sided invariant of `Basic-Intersection`
//! (Corollary 3.4 / Proposition 3.9): a leaf's two assignments always
//! sandwich the true bucket intersection, so *equal* assignments are
//! *correct* assignments, and the error schedule makes every leaf correct
//! after the last stage with probability `1 − 1/k³` (Corollary 3.8).
//! Expected communication is `O(k·log^{(r)} k)` (Lemma 3.10): the stage-0
//! tests and re-runs dominate at `Θ(k·log^{(r)} k)` and each later stage
//! adds `O(k)`.

use crate::basic::BasicIntersection;
use crate::equality::{encode_for_equality, EqualityTest};
use crate::iterlog::{ceil_log2, iter_log};
use crate::prepared::PreparedProtocol;
use crate::sets::{ElementSet, ProblemSpec};
use intersect_comm::bits::BitBuf;
use intersect_comm::chan::Chan;
use intersect_comm::coins::CoinSource;
use intersect_comm::error::ProtocolError;
use intersect_comm::runner::Side;
use intersect_hash::pairwise::PairwiseFamily;
use std::collections::HashMap;

/// How the tree's level degrees are chosen — the paper's schedule, or a
/// uniform-degree control for the A1 ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DegreePolicy {
    /// The paper's schedule: a height-`i` node covers `log^{(r-i)} k` leaves.
    #[default]
    Paper,
    /// A balanced tree of depth `r` with uniform degree `⌈k^{1/r}⌉`.
    Uniform,
}

/// How per-stage equality-test errors are chosen — the paper's schedule,
/// or a flat schedule for the A3 ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ErrorPolicy {
    /// The paper's schedule: stage `i` tests fail with probability
    /// `≤ 1/(log^{(r-i-1)} k)^4`.
    #[default]
    Paper,
    /// Every stage uses the same error `1/k⁴` (maximally safe, costly).
    FlatStrict,
    /// Every stage uses a constant 4-bit error (cheap, failure-prone).
    FlatLoose,
}

/// The verification-tree intersection protocol.
///
/// # Examples
///
/// ```
/// use intersect_core::tree::TreeProtocol;
/// use intersect_core::sets::{ElementSet, ProblemSpec};
/// use intersect_comm::runner::{run_two_party, RunConfig, Side};
///
/// let spec = ProblemSpec::new(1 << 30, 16);
/// let s = ElementSet::from_iter((0..16u64).map(|i| i * 1000));
/// let t = ElementSet::from_iter((8..24u64).map(|i| i * 1000));
/// let proto = TreeProtocol::new(3);
/// let out = run_two_party(
///     &RunConfig::with_seed(1),
///     |chan, coins| proto.run(chan, &coins.fork("tree"), Side::Alice, spec, &s),
///     |chan, coins| proto.run(chan, &coins.fork("tree"), Side::Bob, spec, &t),
/// )?;
/// assert_eq!(out.alice, s.intersection(&t));
/// assert_eq!(out.bob, s.intersection(&t));
/// assert!(out.report.rounds <= 6 * 3);
/// # Ok::<(), intersect_comm::error::ProtocolError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TreeProtocol {
    /// The round budget `r ≥ 1`; the protocol uses at most `6r` rounds and
    /// `O(k·log^{(r)} k)` expected bits.
    pub stages: u32,
    /// Universe-reduction exponent `c > 2` (`N = k^c`).
    pub reduction_exponent: u32,
    /// Degree schedule (A1 ablation knob).
    pub degree_policy: DegreePolicy,
    /// Error schedule (A3 ablation knob).
    pub error_policy: ErrorPolicy,
}

impl TreeProtocol {
    /// The paper's protocol with round budget `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r == 0`.
    pub fn new(r: u32) -> Self {
        assert!(r >= 1, "round budget must be at least 1");
        TreeProtocol {
            stages: r,
            reduction_exponent: 3,
            degree_policy: DegreePolicy::default(),
            error_policy: ErrorPolicy::default(),
        }
    }

    /// The headline configuration: `r = log* k`, giving `O(k)` bits in
    /// `O(log* k)` rounds.
    pub fn log_star(k: u64) -> Self {
        Self::new(crate::iterlog::log_star(k.max(2)).max(1))
    }

    /// The reduced-universe size `N = k^c`, floored at `2^28` so small-`k`
    /// instances keep a negligible collision probability (hash seeds come
    /// from shared coins, so a larger `N` costs no communication), capped
    /// at `2^61`.
    pub fn reduced_universe(&self, k: u64) -> u64 {
        let mut n = 1u64;
        for _ in 0..self.reduction_exponent {
            n = n.saturating_mul(k.max(2));
        }
        n.clamp(1 << 28, 1 << 61)
    }

    /// Stage `i`'s error exponent in bits: the paper's
    /// `4·log₂(log^{(r-i-1)} k)`, at least 2.
    fn stage_error_bits(&self, stage: u32, k: u64) -> usize {
        match self.error_policy {
            ErrorPolicy::Paper => {
                let depth = self.stages - 1 - stage;
                // Floored at 6 bits so degenerate k keeps per-test error
                // ≤ 1/64 (the schedule is vacuous at tiny k otherwise).
                (4 * ceil_log2(iter_log(depth, k.max(2))).max(1) as usize).max(6)
            }
            ErrorPolicy::FlatStrict => (4 * ceil_log2(k.max(2)) as usize).max(6),
            ErrorPolicy::FlatLoose => 4,
        }
    }

    /// Derives every input-independent parameter for `spec` — the
    /// reduced universe and both hash families' field primes, the tree
    /// shape, and the per-stage error schedule — so repeated executions
    /// skip straight to the bit-exchanging phase.
    pub fn plan(&self, spec: ProblemSpec) -> TreePlan {
        let k = spec.k.max(2);
        let big_n = self.reduced_universe(k);
        TreePlan {
            proto: *self,
            spec,
            big_n,
            reduce_family: (spec.n > big_n).then(|| PairwiseFamily::new(spec.n)),
            reduced_spec: ProblemSpec {
                n: big_n,
                k: spec.k,
            },
            reduced_family: PairwiseFamily::new(big_n),
            shape: TreeShape::build(self.stages, k, self.degree_policy),
            stage_bits: (0..self.stages)
                .map(|stage| self.stage_error_bits(stage, k))
                .collect(),
            r1_bits: ((self.reduction_exponent.saturating_sub(2)).max(1) as usize
                * ceil_log2(k) as usize)
                .max(4),
        }
    }

    /// Runs the protocol; both parties output their recovered intersection
    /// (equal to `S ∩ T` with probability `1 − 1/poly(k)`).
    ///
    /// # Errors
    ///
    /// Fails on invalid inputs or transport errors.
    pub fn run(
        &self,
        chan: &mut dyn Chan,
        coins: &CoinSource,
        side: Side,
        spec: ProblemSpec,
        input: &ElementSet,
    ) -> Result<ElementSet, ProtocolError> {
        self.plan(spec).execute_with(chan, coins, side, input)
    }
}

/// [`TreeProtocol`] with every input-independent parameter derived:
/// hash families (field primes found), tree shape, error schedule.
#[derive(Debug, Clone)]
pub struct TreePlan {
    pub(crate) proto: TreeProtocol,
    pub(crate) spec: ProblemSpec,
    pub(crate) big_n: u64,
    /// `Some` iff the universe actually shrinks (`spec.n > big_n`).
    pub(crate) reduce_family: Option<PairwiseFamily>,
    pub(crate) reduced_spec: ProblemSpec,
    /// Family over the reduced universe `[big_n]`: bucket hashing and
    /// every `Basic-Intersection` repair draw from it.
    pub(crate) reduced_family: PairwiseFamily,
    pub(crate) shape: TreeShape,
    pub(crate) stage_bits: Vec<usize>,
    pub(crate) r1_bits: usize,
}

impl TreePlan {
    /// Phase 1: universe reduction [n] -> [N], N = k^c. Shared coins, no
    /// communication. Collisions inside one party's own set are merged
    /// (kept as the smallest original element) — part of the 1/poly(k)
    /// failure budget.
    pub(crate) fn reduce(
        &self,
        coins: &CoinSource,
        input: &ElementSet,
    ) -> (ElementSet, HashMap<u64, u64>) {
        match &self.reduce_family {
            None => {
                let map: HashMap<u64, u64> = input.iter().map(|x| (x, x)).collect();
                (input.clone(), map)
            }
            Some(family) => {
                let h_big = family.sample(&mut coins.fork("reduce").rng(), self.big_n);
                let mut map = HashMap::with_capacity(input.len());
                for x in input.iter() {
                    map.entry(h_big.eval(x)).or_insert(x);
                }
                let set: ElementSet = map.keys().copied().collect();
                (set, map)
            }
        }
    }

    /// The bit-exchanging phase, with `coins` already forked to the
    /// protocol's namespace.
    pub(crate) fn execute_with(
        &self,
        chan: &mut dyn Chan,
        coins: &CoinSource,
        side: Side,
        input: &ElementSet,
    ) -> Result<ElementSet, ProtocolError> {
        self.spec
            .validate(input)
            .map_err(ProtocolError::InvalidInput)?;

        let reduce_span = intersect_obs::phase::span("core", "reduce");
        let before = chan.stats();
        let (work_set, back_map) = self.reduce(coins, input);
        reduce_span.finish(chan.stats().delta_since(&before));

        // Special case r = 1: the direct k^c-range hash exchange.
        let mapped = if self.proto.stages == 1 {
            let basic_span = intersect_obs::phase::span("core", "basic");
            let before = chan.stats();
            let out = BasicIntersection::new(self.r1_bits)
                .run_batch_with(
                    &self.reduced_family,
                    chan,
                    &coins.fork("r1"),
                    side,
                    self.reduced_spec,
                    std::slice::from_ref(&work_set),
                )?
                .pop()
                .expect("one output per input");
            basic_span.finish(chan.stats().delta_since(&before));
            out
        } else {
            self.run_tree(chan, coins, side, &work_set)?
        };

        // Map back to original element values.
        Ok(mapped
            .iter()
            .map(|m| *back_map.get(&m).expect("output is a subset of the input"))
            .collect())
    }

    /// Stages 0..r−1 of Algorithm 1, over the reduced universe.
    fn run_tree(
        &self,
        chan: &mut dyn Chan,
        coins: &CoinSource,
        side: Side,
        work_set: &ElementSet,
    ) -> Result<ElementSet, ProtocolError> {
        let spec = self.reduced_spec;
        let k = spec.k.max(2);
        let shape = &self.shape;

        // Phase 2: bucket into k leaves.
        let bucket_span = intersect_obs::phase::span("core", "bucket");
        let before = chan.stats();
        let bucket_hash = self
            .reduced_family
            .sample(&mut coins.fork("bucket").rng(), k);
        let mut buckets: Vec<Vec<u64>> = vec![Vec::new(); k as usize];
        for x in work_set.iter() {
            buckets[bucket_hash.eval(x) as usize].push(x);
        }
        let mut assignments: Vec<ElementSet> = buckets
            .into_iter()
            .map(|mut b| {
                b.sort_unstable();
                ElementSet::from_sorted(b)
            })
            .collect();
        bucket_span.finish(chan.stats().delta_since(&before));

        // Phase 3: r stages of verify-then-repair.
        for stage in 0..self.proto.stages {
            let error_bits = self.stage_bits[stage as usize];
            let stage_coins = coins.fork(&format!("stage{stage}"));

            // Verify: one parallel equality batch over this level's nodes.
            let verify_span = intersect_obs::phase::span("core", "verify");
            let before = chan.stats();
            let nodes = shape.level(stage as usize);
            let items: Vec<BitBuf> = nodes
                .iter()
                .map(|&(a, b)| {
                    let mut buf = BitBuf::new();
                    for assignment in &assignments[a..b] {
                        buf.extend_from(&encode_for_equality(assignment.as_slice()));
                    }
                    buf
                })
                .collect();
            let verdicts = EqualityTest::new(error_bits).run_batch(
                chan,
                &stage_coins.fork("eq"),
                side,
                &items,
            )?;
            verify_span.finish(chan.stats().delta_since(&before));

            // Repair: both parties derive the same failed-leaf list and
            // re-run Basic-Intersection there, all in one parallel batch.
            let failed_leaves: Vec<usize> = nodes
                .iter()
                .zip(&verdicts)
                .filter(|(_, &ok)| !ok)
                .flat_map(|(&(a, b), _)| a..b)
                .collect();
            if failed_leaves.is_empty() {
                continue;
            }
            let repair_span = intersect_obs::phase::span("core", "repair");
            let before = chan.stats();
            let inputs: Vec<ElementSet> = failed_leaves
                .iter()
                .map(|&leaf| assignments[leaf].clone())
                .collect();
            let repaired = BasicIntersection::new(error_bits).run_batch_with(
                &self.reduced_family,
                chan,
                &stage_coins.fork("basic"),
                side,
                spec,
                &inputs,
            )?;
            for (&leaf, new_assignment) in failed_leaves.iter().zip(repaired) {
                assignments[leaf] = new_assignment;
            }
            repair_span.finish(chan.stats().delta_since(&before));
        }

        // Output: union of leaf assignments.
        Ok(assignments
            .into_iter()
            .flat_map(|a| a.iter().collect::<Vec<_>>())
            .collect())
    }
}

impl PreparedProtocol for TreePlan {
    fn name(&self) -> String {
        crate::api::SetIntersection::name(&self.proto)
    }

    fn spec(&self) -> ProblemSpec {
        self.spec
    }

    fn execute(
        &self,
        chan: &mut dyn Chan,
        coins: &CoinSource,
        side: Side,
        input: &ElementSet,
    ) -> Result<ElementSet, ProtocolError> {
        // Same fork label as the `SetIntersection` impl, so prepared
        // and cold executions draw identical coins.
        self.execute_with(chan, &coins.fork("tree"), side, input)
    }
}

/// The leaf ranges of every tree level: `levels[i]` lists, for each node at
/// height `i`, the half-open range of leaf indices it covers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreeShape {
    levels: Vec<Vec<(usize, usize)>>,
}

impl TreeShape {
    /// Builds the height-`r` tree over `k` leaves.
    pub fn build(r: u32, k: u64, policy: DegreePolicy) -> Self {
        let k = k.max(1) as usize;
        let mut levels: Vec<Vec<(usize, usize)>> = vec![Vec::new(); r as usize + 1];
        levels[r as usize] = vec![(0, k)];
        for height in (0..r).rev() {
            // A node at this height covers `target` leaves.
            let target = match policy {
                _ if height == 0 => 1,
                DegreePolicy::Paper => iter_log(r - height, k as u64).max(1) as usize,
                DegreePolicy::Uniform => {
                    // Uniform degree d = ceil(k^(1/r)); height h covers d^h.
                    let d = (k as f64).powf(1.0 / r as f64).ceil().max(2.0) as usize;
                    d.saturating_pow(height).min(k)
                }
            };
            let mut nodes = Vec::new();
            for &(a, b) in &levels[height as usize + 1] {
                let mut start = a;
                while start < b {
                    let end = (start + target).min(b);
                    nodes.push((start, end));
                    start = end;
                }
            }
            levels[height as usize] = nodes;
        }
        TreeShape { levels }
    }

    /// Nodes at height `i` as leaf ranges.
    pub fn level(&self, i: usize) -> &[(usize, usize)] {
        &self.levels[i]
    }

    /// Number of levels (`r + 1`, including leaves and root).
    pub fn height(&self) -> usize {
        self.levels.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sets::InputPair;
    use intersect_comm::runner::{run_two_party, RunConfig};
    use intersect_comm::stats::CostReport;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn run_tree(
        seed: u64,
        proto: TreeProtocol,
        spec: ProblemSpec,
        s: &ElementSet,
        t: &ElementSet,
    ) -> (ElementSet, ElementSet, CostReport) {
        let out = run_two_party(
            &RunConfig::with_seed(seed),
            |chan, coins| proto.run(chan, &coins.fork("tree"), Side::Alice, spec, s),
            |chan, coins| proto.run(chan, &coins.fork("tree"), Side::Bob, spec, t),
        )
        .unwrap();
        (out.alice, out.bob, out.report)
    }

    #[test]
    fn shape_covers_all_leaves_at_every_level() {
        for r in 1..=5u32 {
            for k in [1u64, 2, 7, 64, 1000, 4096] {
                let shape = TreeShape::build(r, k, DegreePolicy::Paper);
                assert_eq!(shape.height(), r as usize);
                for i in 0..=r as usize {
                    let nodes = shape.level(i);
                    // Contiguous, disjoint, total coverage.
                    let mut expect = 0usize;
                    for &(a, b) in nodes {
                        assert_eq!(a, expect);
                        assert!(b > a);
                        expect = b;
                    }
                    assert_eq!(expect, k.max(1) as usize, "r={r} k={k} level={i}");
                }
                // Leaves are singletons.
                assert!(shape.level(0).iter().all(|&(a, b)| b - a == 1));
                // Root covers everything.
                assert_eq!(shape.level(r as usize), &[(0, k.max(1) as usize)]);
            }
        }
    }

    #[test]
    fn shape_level_sizes_follow_iterated_logs() {
        let k = 1u64 << 16;
        let r = 3;
        let shape = TreeShape::build(r, k, DegreePolicy::Paper);
        // Height-1 nodes cover log^(2) k = 4 leaves; height-2 cover 16.
        assert!(shape.level(1).iter().all(|&(a, b)| b - a <= 4));
        assert!(shape.level(2).iter().all(|&(a, b)| b - a <= 16));
    }

    #[test]
    fn recovers_intersection_for_all_round_budgets() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let spec = ProblemSpec::new(1 << 30, 64);
        for r in 1..=4u32 {
            for overlap in [0usize, 1, 32, 64] {
                let pair = InputPair::random_with_overlap(&mut rng, spec, 64, overlap);
                let truth = pair.ground_truth();
                let (a, b, report) = run_tree(
                    100 * r as u64 + overlap as u64,
                    TreeProtocol::new(r),
                    spec,
                    &pair.s,
                    &pair.t,
                );
                assert_eq!(a, truth, "r={r} overlap={overlap}");
                assert_eq!(b, truth, "r={r} overlap={overlap}");
                assert!(
                    report.rounds <= 6 * r as u64,
                    "r={r}: {} rounds",
                    report.rounds
                );
            }
        }
    }

    #[test]
    fn success_rate_is_high_across_seeds() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let spec = ProblemSpec::new(1 << 24, 128);
        let proto = TreeProtocol::new(2);
        let mut exact = 0;
        for seed in 0..60 {
            let pair = InputPair::random_with_overlap(&mut rng, spec, 128, 40);
            let truth = pair.ground_truth();
            let (a, b, _) = run_tree(seed, proto, spec, &pair.s, &pair.t);
            if a == truth && b == truth {
                exact += 1;
            }
        }
        assert!(exact >= 57, "{exact}/60 exact recoveries");
    }

    #[test]
    fn log_star_config_is_cheap_and_correct() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let spec = ProblemSpec::new(1 << 40, 256);
        let pair = InputPair::random_with_overlap(&mut rng, spec, 256, 100);
        let proto = TreeProtocol::log_star(256);
        let (a, b, report) = run_tree(5, proto, spec, &pair.s, &pair.t);
        assert_eq!(a, pair.ground_truth());
        assert_eq!(b, pair.ground_truth());
        // O(k) bits: generous constant, but far below k log k.
        assert!(
            report.total_bits() < 256 * 60,
            "total {} bits",
            report.total_bits()
        );
    }

    #[test]
    fn more_stages_cost_fewer_bits() {
        // The r = 1 → 2 crossover happens only at large k (the paper's
        // stage-error exponent of 4 makes stage-0 verification cost
        // ≈ 4·log^(2) k bits per leaf, which beats the r = 1 cost of
        // Θ(log k) bits per element only once log k ≫ 4·log log k).
        // At k = 1024, r = 3 is already cheaper than both r = 1 and r = 2;
        // experiment E1 maps the full crossover.
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let spec = ProblemSpec::new(1 << 40, 1024);
        let pair = InputPair::random_with_overlap(&mut rng, spec, 1024, 512);
        let mut costs = Vec::new();
        for r in 1..=3u32 {
            // Average a few seeds to smooth re-run noise.
            let total: u64 = (0..5)
                .map(|s| {
                    run_tree(s, TreeProtocol::new(r), spec, &pair.s, &pair.t)
                        .2
                        .total_bits()
                })
                .sum();
            costs.push(total / 5);
        }
        assert!(
            costs[2] < costs[0] && costs[2] < costs[1],
            "r = 3 should beat r = 1 and r = 2 at k = 1024: {costs:?}"
        );
    }

    #[test]
    fn small_and_degenerate_inputs() {
        let spec = ProblemSpec::new(100, 1);
        let s = ElementSet::from_iter([42u64]);
        let t = ElementSet::from_iter([42u64]);
        let (a, b, _) = run_tree(1, TreeProtocol::new(2), spec, &s, &t);
        assert_eq!(a.as_slice(), &[42]);
        assert_eq!(b.as_slice(), &[42]);

        let empty = ElementSet::new();
        let (a, b, _) = run_tree(2, TreeProtocol::new(2), spec, &empty, &t);
        assert!(a.is_empty() && b.is_empty());
    }

    #[test]
    fn identical_sets_come_back_whole() {
        let spec = ProblemSpec::new(1 << 20, 64);
        let s = ElementSet::from_iter((0..64u64).map(|i| i * 999 + 7));
        for r in 1..=3 {
            let (a, b, _) = run_tree(7, TreeProtocol::new(r), spec, &s, &s.clone());
            assert_eq!(a, s, "r = {r}");
            assert_eq!(b, s, "r = {r}");
        }
    }

    #[test]
    fn uniform_degree_ablation_still_correct() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let spec = ProblemSpec::new(1 << 24, 64);
        let pair = InputPair::random_with_overlap(&mut rng, spec, 64, 20);
        let proto = TreeProtocol {
            degree_policy: DegreePolicy::Uniform,
            ..TreeProtocol::new(3)
        };
        let (a, b, _) = run_tree(1, proto, spec, &pair.s, &pair.t);
        assert_eq!(a, pair.ground_truth());
        assert_eq!(b, pair.ground_truth());
    }

    #[test]
    fn loose_error_ablation_costs_less_but_may_err() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let spec = ProblemSpec::new(1 << 24, 256);
        let pair = InputPair::random_with_overlap(&mut rng, spec, 256, 128);
        let strict = TreeProtocol {
            error_policy: ErrorPolicy::FlatStrict,
            ..TreeProtocol::new(3)
        };
        let loose = TreeProtocol {
            error_policy: ErrorPolicy::FlatLoose,
            ..TreeProtocol::new(3)
        };
        let (_, _, rs) = run_tree(1, strict, spec, &pair.s, &pair.t);
        let (_, _, rl) = run_tree(1, loose, spec, &pair.s, &pair.t);
        assert!(rl.total_bits() < rs.total_bits());
    }

    #[test]
    fn small_universe_skips_reduction() {
        // n <= k^c: protocol must work directly on [n].
        let spec = ProblemSpec::new(64, 16);
        let s = ElementSet::from_iter((0..16u64).map(|i| i * 3));
        let t = ElementSet::from_iter((0..16u64).map(|i| i * 4));
        let (a, b, _) = run_tree(3, TreeProtocol::new(2), spec, &s, &t);
        let truth = s.intersection(&t);
        assert_eq!(a, truth);
        assert_eq!(b, truth);
    }
}
