//! The trivial deterministic protocol: `D⁽¹⁾(INT_k) = O(k·log(n/k))`.
//!
//! Alice simply sends her whole set; Bob computes `S ∩ T` locally and (in
//! the two-message variant) sends the intersection back so both parties
//! output it. With the optimal binomial subset code the first message is
//! the information-theoretic minimum `⌈log₂ Σᵢ≤k C(n,i)⌉ ≈ k·log₂(n/k)`
//! bits; the fast Rice variant is within a couple of bits per element.
//!
//! This is the baseline the paper's headline result beats by a factor of
//! `log(n/k)`: no protocol that reveals a whole *arbitrary* set can do
//! better, but recovering only the *intersection* can (Theorems 1.1, 3.1).

use crate::sets::{ElementSet, ProblemSpec};
use intersect_comm::bits::BitBuf;
use intersect_comm::chan::Chan;
use intersect_comm::coins::CoinSource;
use intersect_comm::encode::{BinomialSubsetCodec, EliasFanoSubsetCodec, RiceSubsetCodec};
use intersect_comm::error::ProtocolError;
use intersect_comm::runner::Side;

/// Which subset code the trivial protocol uses on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SubsetCode {
    /// Exact optimum `⌈log₂ C(n,≤k)⌉` bits via the combinatorial number
    /// system; encoding cost grows with `n`, so prefer it for `n ≲ 2¹⁶`.
    Binomial,
    /// Golomb–Rice gap coding: `k(log₂(n/k) + O(1))` bits at word speed.
    #[default]
    Rice,
    /// Elias–Fano monotone-sequence coding: same order, inverted-index
    /// style upper-bits structure.
    EliasFano,
}

/// The deterministic one-exchange protocol.
///
/// If `echo` is `true` (the default) Bob sends the computed intersection
/// back so *both* parties output it (this is what `INT_k` demands); with
/// `echo = false` only Bob learns the answer and Alice returns her input
/// filtered by nothing (useful as a one-way transfer baseline).
///
/// # Examples
///
/// ```
/// use intersect_core::trivial::TrivialExchange;
/// use intersect_core::sets::{ElementSet, ProblemSpec};
/// use intersect_comm::runner::{run_two_party, RunConfig, Side};
///
/// let spec = ProblemSpec::new(1 << 20, 4);
/// let s = ElementSet::from_iter([7u64, 99, 1 << 19]);
/// let t = ElementSet::from_iter([99u64, 1 << 19, 12345]);
/// let proto = TrivialExchange::default();
/// let out = run_two_party(
///     &RunConfig::with_seed(0),
///     |chan, coins| proto.run(chan, coins, Side::Alice, spec, &s),
///     |chan, coins| proto.run(chan, coins, Side::Bob, spec, &t),
/// )?;
/// assert_eq!(out.alice.as_slice(), &[99, 1 << 19]);
/// assert_eq!(out.alice, out.bob);
/// # Ok::<(), intersect_comm::error::ProtocolError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrivialExchange {
    /// Wire format for sets.
    pub code: SubsetCode,
    /// Whether Bob echoes the intersection back to Alice.
    pub echo: bool,
}

impl Default for TrivialExchange {
    fn default() -> Self {
        TrivialExchange {
            code: SubsetCode::Rice,
            echo: true,
        }
    }
}

impl TrivialExchange {
    /// Creates the protocol with the given wire format, echo enabled.
    pub fn new(code: SubsetCode) -> Self {
        TrivialExchange { code, echo: true }
    }

    fn encode(&self, spec: ProblemSpec, set: &ElementSet) -> BitBuf {
        match self.code {
            SubsetCode::Binomial => BinomialSubsetCodec::new(spec.n, spec.k).encode(set.as_slice()),
            SubsetCode::Rice => RiceSubsetCodec::new(spec.n, spec.k).encode(set.as_slice()),
            SubsetCode::EliasFano => {
                EliasFanoSubsetCodec::new(spec.n, spec.k).encode(set.as_slice())
            }
        }
    }

    fn decode(&self, spec: ProblemSpec, buf: &BitBuf) -> Result<ElementSet, ProtocolError> {
        let elems = match self.code {
            SubsetCode::Binomial => {
                BinomialSubsetCodec::new(spec.n, spec.k).decode(&mut buf.reader())?
            }
            SubsetCode::Rice => RiceSubsetCodec::new(spec.n, spec.k).decode(&mut buf.reader())?,
            SubsetCode::EliasFano => {
                EliasFanoSubsetCodec::new(spec.n, spec.k).decode(&mut buf.reader())?
            }
        };
        Ok(ElementSet::from_sorted(elems))
    }

    /// Runs the protocol. Deterministic: `coins` are unused.
    ///
    /// # Errors
    ///
    /// Fails on invalid inputs or transport errors.
    pub fn run(
        &self,
        chan: &mut dyn Chan,
        _coins: &CoinSource,
        side: Side,
        spec: ProblemSpec,
        input: &ElementSet,
    ) -> Result<ElementSet, ProtocolError> {
        spec.validate(input).map_err(ProtocolError::InvalidInput)?;
        let span = intersect_obs::phase::span("core", "exchange");
        let before = chan.stats();
        let out = match side {
            Side::Alice => {
                chan.send(self.encode(spec, input))?;
                if self.echo {
                    self.decode(spec, &chan.recv()?)?
                } else {
                    input.clone()
                }
            }
            Side::Bob => {
                let s = self.decode(spec, &chan.recv()?)?;
                let intersection = s.intersection(input);
                if self.echo {
                    chan.send(self.encode(spec, &intersection))?;
                }
                intersection
            }
        };
        span.finish(chan.stats().delta_since(&before));
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sets::InputPair;
    use intersect_comm::runner::{run_two_party, RunConfig};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn run_trivial(
        proto: TrivialExchange,
        spec: ProblemSpec,
        s: &ElementSet,
        t: &ElementSet,
    ) -> (ElementSet, ElementSet, intersect_comm::stats::CostReport) {
        let out = run_two_party(
            &RunConfig::with_seed(0),
            |chan, coins| proto.run(chan, coins, Side::Alice, spec, s),
            |chan, coins| proto.run(chan, coins, Side::Bob, spec, t),
        )
        .unwrap();
        (out.alice, out.bob, out.report)
    }

    #[test]
    fn always_exact_for_both_codes() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let spec = ProblemSpec::new(4096, 32);
        for code in [
            SubsetCode::Binomial,
            SubsetCode::Rice,
            SubsetCode::EliasFano,
        ] {
            for overlap in [0usize, 5, 32] {
                let pair = InputPair::random_with_overlap(&mut rng, spec, 32, overlap);
                let (a, b, _) = run_trivial(TrivialExchange::new(code), spec, &pair.s, &pair.t);
                assert_eq!(a, pair.ground_truth());
                assert_eq!(b, pair.ground_truth());
            }
        }
    }

    #[test]
    fn cost_is_k_log_n_over_k() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let spec = ProblemSpec::new(1 << 20, 256);
        let pair = InputPair::random_with_overlap(&mut rng, spec, 256, 0);
        let (_, _, report) = run_trivial(TrivialExchange::default(), spec, &pair.s, &pair.t);
        // First message ≈ k(log2(n/k) + ~2.5); echo of an empty set is tiny.
        let per_elem = report.bits_alice as f64 / 256.0;
        let target = (spec.n as f64 / 256.0).log2();
        assert!(
            per_elem < target + 4.0,
            "per-element {per_elem:.1} vs log2(n/k) = {target:.1}"
        );
    }

    #[test]
    fn binomial_code_beats_rice_on_small_universe() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let spec = ProblemSpec::new(512, 64);
        let pair = InputPair::random_with_overlap(&mut rng, spec, 64, 10);
        let (_, _, rb) = run_trivial(
            TrivialExchange::new(SubsetCode::Binomial),
            spec,
            &pair.s,
            &pair.t,
        );
        let (_, _, rr) = run_trivial(
            TrivialExchange::new(SubsetCode::Rice),
            spec,
            &pair.s,
            &pair.t,
        );
        assert!(
            rb.bits_alice <= rr.bits_alice,
            "binomial {} vs rice {}",
            rb.bits_alice,
            rr.bits_alice
        );
    }

    #[test]
    fn one_message_without_echo() {
        let spec = ProblemSpec::new(100, 4);
        let s = ElementSet::from_iter([1u64, 2, 3]);
        let t = ElementSet::from_iter([2u64, 3, 4]);
        let proto = TrivialExchange {
            code: SubsetCode::Rice,
            echo: false,
        };
        let (_, b, report) = run_trivial(proto, spec, &s, &t);
        assert_eq!(b.as_slice(), &[2, 3]);
        assert_eq!(report.messages, 1);
        assert_eq!(report.rounds, 1);
        assert_eq!(report.bits_bob, 0);
    }

    #[test]
    fn empty_sets_round_trip() {
        let spec = ProblemSpec::new(100, 4);
        let empty = ElementSet::new();
        let t = ElementSet::from_iter([1u64]);
        let (a, b, _) = run_trivial(TrivialExchange::default(), spec, &empty, &t);
        assert!(a.is_empty() && b.is_empty());
    }
}
