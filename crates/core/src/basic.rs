//! The `Basic-Intersection` protocol (Lemma 3.3).
//!
//! Both parties hash their elements with a shared random `h: [n] → [t]`
//! and exchange the hashed sets. Alice keeps `S' = {x ∈ S : h(x) ∈ h(T)}`,
//! Bob keeps `T' = {y ∈ T : h(y) ∈ h(S)}`. The lemma's three properties
//! hold by construction:
//!
//! 1. `S' ⊆ S`, `T' ⊆ T` — outputs are filtered inputs.
//! 2. If `S ∩ T = ∅` then `S' ∩ T' = ∅` with probability 1
//!    (`S' ∩ T' ⊆ S ∩ T` always).
//! 3. `S ∩ T ⊆ S' ∩ T'` always, and if `h` is collision-free on `S ∪ T`
//!    (probability `≥ 1 − 2^{-e}` for range `t = |S∪T|²·2^{e-1}`) then
//!    `S' = T' = S ∩ T`.
//!
//! Corollary 3.4 — the hook the verification tree hangs on — follows: if
//! the two outputs are *equal*, they both equal `S ∩ T`, so one equality
//! test certifies a correct intersection.

use crate::prepared::PreparedProtocol;
use crate::sets::{ElementSet, ProblemSpec};
use intersect_comm::bits::BitBuf;
use intersect_comm::chan::Chan;
use intersect_comm::coins::CoinSource;
use intersect_comm::encode::{get_gamma0, put_gamma0, RiceSubsetCodec};
use intersect_comm::error::ProtocolError;
use intersect_comm::runner::Side;
use intersect_hash::pairwise::PairwiseFamily;

/// `Basic-Intersection` with tunable one-sided failure probability.
///
/// The cost for inputs of total size `m = |S| + |T|` is
/// `O(m·(log m + error_bits))` bits in two simultaneous exchanges
/// (≤ 4 messages, ≤ 2 causal rounds).
///
/// # Examples
///
/// ```
/// use intersect_core::basic::BasicIntersection;
/// use intersect_core::sets::{ElementSet, ProblemSpec};
/// use intersect_comm::runner::{run_two_party, RunConfig, Side};
///
/// let spec = ProblemSpec::new(1000, 8);
/// let s = ElementSet::from_iter([1u64, 5, 9, 500]);
/// let t = ElementSet::from_iter([5u64, 9, 700]);
/// let proto = BasicIntersection::new(20);
/// let out = run_two_party(
///     &RunConfig::with_seed(3),
///     |chan, coins| proto.run(chan, &coins.fork("basic"), Side::Alice, spec, &s),
///     |chan, coins| proto.run(chan, &coins.fork("basic"), Side::Bob, spec, &t),
/// )?;
/// // With overwhelming probability both sides hold exactly S ∩ T.
/// assert_eq!(out.alice.as_slice(), &[5, 9]);
/// assert_eq!(out.bob.as_slice(), &[5, 9]);
/// # Ok::<(), intersect_comm::error::ProtocolError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BasicIntersection {
    /// Failure exponent `e`: the hash range is sized so that `h` collides
    /// somewhere on `S ∪ T` with probability at most `2^{-e}`.
    pub error_bits: usize,
}

impl BasicIntersection {
    /// Creates an instance with failure probability `2^{-error_bits}`.
    pub fn new(error_bits: usize) -> Self {
        BasicIntersection {
            error_bits: error_bits.max(1),
        }
    }

    /// The hash range `t` used for total input size `m`:
    /// `t = max(16, m²·2^{e-1})`, capped at `2^61`.
    pub fn hash_range(&self, m: u64) -> u64 {
        let cap = 1u64 << 61;
        let pairs = m.saturating_mul(m);
        let t = pairs.saturating_mul(1u64 << (self.error_bits.min(60) - 1));
        t.clamp(16, cap)
    }

    /// Derives the input-independent parameters for `spec`: the hash
    /// family's field prime over the universe. The per-instance range
    /// `t` depends on runtime input sizes and stays in the execution
    /// phase.
    pub fn plan(&self, spec: ProblemSpec) -> BasicPlan {
        BasicPlan {
            proto: *self,
            spec,
            family: PairwiseFamily::new(spec.n.max(1)),
        }
    }

    /// Runs the protocol on one input per party; see [module docs](self).
    ///
    /// # Errors
    ///
    /// Fails on transport errors or if the peer's messages are malformed.
    pub fn run(
        &self,
        chan: &mut dyn Chan,
        coins: &CoinSource,
        side: Side,
        spec: ProblemSpec,
        input: &ElementSet,
    ) -> Result<ElementSet, ProtocolError> {
        Ok(self
            .run_batch(chan, coins, side, spec, std::slice::from_ref(input))?
            .pop()
            .expect("one output per input"))
    }

    /// Runs many independent `Basic-Intersection` instances in parallel:
    /// all size announcements travel in one exchange and all hashed sets in
    /// a second, so a whole batch costs the same ≤ 2 causal rounds as a
    /// single instance. Instance `i` draws its hash from
    /// `coins.fork_index(i)`, so callers re-running a failed instance must
    /// fork fresh coins.
    ///
    /// # Errors
    ///
    /// Fails on transport errors or malformed peer messages.
    pub fn run_batch(
        &self,
        chan: &mut dyn Chan,
        coins: &CoinSource,
        side: Side,
        spec: ProblemSpec,
        inputs: &[ElementSet],
    ) -> Result<Vec<ElementSet>, ProtocolError> {
        self.run_batch_with(
            &PairwiseFamily::new(spec.n.max(1)),
            chan,
            coins,
            side,
            spec,
            inputs,
        )
    }

    /// [`run_batch`](Self::run_batch) with the hash family's field
    /// prime already found — the prepared-path hot variant. The family
    /// must cover the universe `spec.n.max(1)`; sampling from it draws
    /// exactly the bits the cold path draws, so transcripts are
    /// byte-identical.
    ///
    /// # Errors
    ///
    /// Fails on transport errors or malformed peer messages.
    pub(crate) fn run_batch_with(
        &self,
        family: &PairwiseFamily,
        chan: &mut dyn Chan,
        coins: &CoinSource,
        _side: Side,
        spec: ProblemSpec,
        inputs: &[ElementSet],
    ) -> Result<Vec<ElementSet>, ProtocolError> {
        debug_assert_eq!(family.universe(), spec.n.max(1));
        for input in inputs {
            spec.validate(input).map_err(ProtocolError::InvalidInput)?;
        }
        if inputs.is_empty() {
            return Ok(Vec::new());
        }

        // Exchange 1: all input sizes.
        let sizes_span = intersect_obs::phase::span("core", "sizes");
        let before = chan.stats();
        let mut size_msg = BitBuf::new();
        for input in inputs {
            put_gamma0(&mut size_msg, input.len() as u64);
        }
        let their_sizes_buf = chan.exchange(size_msg)?;
        let mut r = their_sizes_buf.reader();
        let mut their_sizes = Vec::with_capacity(inputs.len());
        for _ in 0..inputs.len() {
            their_sizes.push(get_gamma0(&mut r)?);
        }
        if r.remaining() != 0 {
            return Err(ProtocolError::Internal(
                "size exchange has trailing bits".into(),
            ));
        }
        sizes_span.finish(chan.stats().delta_since(&before));

        // Exchange 2: hashed sets, one sub-codec per instance.
        let hashes_span = intersect_obs::phase::span("core", "hashes");
        let before = chan.stats();
        let mut hashes = Vec::with_capacity(inputs.len());
        let mut hash_msg = BitBuf::new();
        for (i, input) in inputs.iter().enumerate() {
            let m = input.len() as u64 + their_sizes[i];
            let t = self.hash_range(m);
            let h = family.sample(&mut coins.fork_index(i as u64).rng(), t);
            let mut hashed: Vec<u64> = input.iter().map(|x| h.eval(x)).collect();
            hashed.sort_unstable();
            hashed.dedup();
            let codec = RiceSubsetCodec::new(t, input.len() as u64);
            hash_msg.extend_from(&codec.encode(&hashed));
            hashes.push((h, t));
        }
        let their_hash_buf = chan.exchange(hash_msg)?;
        let mut r = their_hash_buf.reader();
        let mut outputs = Vec::with_capacity(inputs.len());
        for (i, input) in inputs.iter().enumerate() {
            let (h, t) = &hashes[i];
            let codec = RiceSubsetCodec::new(*t, their_sizes[i]);
            let their_hashed = codec.decode(&mut r)?;
            let lookup: std::collections::HashSet<u64> = their_hashed.into_iter().collect();
            outputs.push(input.filtered(|x| lookup.contains(&h.eval(x))));
        }
        if r.remaining() != 0 {
            return Err(ProtocolError::Internal(
                "hash exchange has trailing bits".into(),
            ));
        }
        hashes_span.finish(chan.stats().delta_since(&before));
        Ok(outputs)
    }
}

/// [`BasicIntersection`] with the universe's field prime already found.
#[derive(Debug, Clone)]
pub struct BasicPlan {
    proto: BasicIntersection,
    spec: ProblemSpec,
    family: PairwiseFamily,
}

impl PreparedProtocol for BasicPlan {
    fn name(&self) -> String {
        crate::api::SetIntersection::name(&self.proto)
    }

    fn spec(&self) -> ProblemSpec {
        self.spec
    }

    fn execute(
        &self,
        chan: &mut dyn Chan,
        coins: &CoinSource,
        side: Side,
        input: &ElementSet,
    ) -> Result<ElementSet, ProtocolError> {
        // Same fork label as the `SetIntersection` impl, so prepared
        // and cold executions draw identical coins.
        Ok(self
            .proto
            .run_batch_with(
                &self.family,
                chan,
                &coins.fork("basic"),
                side,
                self.spec,
                std::slice::from_ref(input),
            )?
            .pop()
            .expect("one output per input"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sets::InputPair;
    use intersect_comm::runner::{run_two_party, RunConfig};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn run_basic(
        seed: u64,
        spec: ProblemSpec,
        s: &ElementSet,
        t: &ElementSet,
        error_bits: usize,
    ) -> (ElementSet, ElementSet, intersect_comm::stats::CostReport) {
        let proto = BasicIntersection::new(error_bits);
        let out = run_two_party(
            &RunConfig::with_seed(seed),
            |chan, coins| proto.run(chan, &coins.fork("b"), Side::Alice, spec, s),
            |chan, coins| proto.run(chan, &coins.fork("b"), Side::Bob, spec, t),
        )
        .unwrap();
        (out.alice, out.bob, out.report)
    }

    #[test]
    fn recovers_intersection_with_high_probability() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let spec = ProblemSpec::new(100_000, 64);
        let mut exact = 0;
        for seed in 0..50 {
            let pair = InputPair::random_with_overlap(&mut rng, spec, 64, 20);
            let (s2, t2, _) = run_basic(seed, spec, &pair.s, &pair.t, 20);
            let truth = pair.ground_truth();
            // Property 3: S∩T always contained in both outputs.
            for x in truth.iter() {
                assert!(s2.contains(x) && t2.contains(x));
            }
            // Property 1.
            assert!(s2.iter().all(|x| pair.s.contains(x)));
            assert!(t2.iter().all(|x| pair.t.contains(x)));
            if s2 == truth && t2 == truth {
                exact += 1;
            }
        }
        assert!(exact >= 48, "only {exact}/50 exact recoveries");
    }

    #[test]
    fn disjoint_inputs_yield_disjoint_outputs() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let spec = ProblemSpec::new(10_000, 32);
        for seed in 0..30 {
            let pair = InputPair::random_with_overlap(&mut rng, spec, 32, 0);
            let (s2, t2, _) = run_basic(seed, spec, &pair.s, &pair.t, 8);
            // Property 2: intersection of outputs is empty with certainty.
            assert!(s2.intersection(&t2).is_empty());
        }
    }

    #[test]
    fn corollary_3_4_equal_outputs_imply_exact_intersection() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let spec = ProblemSpec::new(5000, 32);
        for seed in 0..40 {
            // Low error bits on purpose to get occasional collisions.
            let pair = InputPair::random_with_overlap(&mut rng, spec, 32, 16);
            let (s2, t2, _) = run_basic(seed, spec, &pair.s, &pair.t, 2);
            if s2 == t2 {
                assert_eq!(s2, pair.ground_truth(), "seed {seed}");
            }
        }
    }

    #[test]
    fn empty_inputs_are_handled() {
        let spec = ProblemSpec::new(100, 4);
        let empty = ElementSet::new();
        let t = ElementSet::from_iter([1u64, 2]);
        let (s2, t2, _) = run_basic(1, spec, &empty, &t, 10);
        assert!(s2.is_empty());
        assert!(t2.is_empty());
    }

    #[test]
    fn identical_inputs_return_identical_outputs() {
        let spec = ProblemSpec::new(1000, 8);
        let s = ElementSet::from_iter([3u64, 14, 159, 265]);
        let (s2, t2, _) = run_basic(4, spec, &s, &s.clone(), 16);
        assert_eq!(s2, s);
        assert_eq!(t2, s);
    }

    #[test]
    fn cost_scales_with_error_bits() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let spec = ProblemSpec::new(1 << 30, 256);
        let pair = InputPair::random_with_overlap(&mut rng, spec, 256, 64);
        let (_, _, cheap) = run_basic(1, spec, &pair.s, &pair.t, 4);
        let (_, _, pricey) = run_basic(1, spec, &pair.s, &pair.t, 40);
        assert!(pricey.total_bits() > cheap.total_bits());
        // Cost per element is O(log m + e), far below log n = 30.
        let per_elem = cheap.total_bits() as f64 / 512.0;
        assert!(per_elem < 25.0, "per-element cost {per_elem}");
    }

    #[test]
    fn runs_in_two_causal_rounds() {
        let spec = ProblemSpec::new(100, 4);
        let s = ElementSet::from_iter([1u64, 2]);
        let t = ElementSet::from_iter([2u64, 3]);
        let (_, _, report) = run_basic(2, spec, &s, &t, 10);
        assert!(report.rounds <= 2, "rounds = {}", report.rounds);
        assert_eq!(report.messages, 4);
    }

    #[test]
    fn batch_outputs_match_individual_runs() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let spec = ProblemSpec::new(10_000, 16);
        let pairs: Vec<InputPair> = (0..10)
            .map(|i| InputPair::random_with_overlap(&mut rng, spec, 16, i))
            .collect();
        let ss: Vec<ElementSet> = pairs.iter().map(|p| p.s.clone()).collect();
        let ts: Vec<ElementSet> = pairs.iter().map(|p| p.t.clone()).collect();
        let proto = BasicIntersection::new(24);
        let out = run_two_party(
            &RunConfig::with_seed(8),
            |chan, coins| proto.run_batch(chan, &coins.fork("b"), Side::Alice, spec, &ss),
            |chan, coins| proto.run_batch(chan, &coins.fork("b"), Side::Bob, spec, &ts),
        )
        .unwrap();
        assert!(out.report.rounds <= 2);
        for (i, pair) in pairs.iter().enumerate() {
            let truth = pair.ground_truth();
            for x in truth.iter() {
                assert!(out.alice[i].contains(x));
                assert!(out.bob[i].contains(x));
            }
        }
    }

    #[test]
    fn rejects_oversized_input() {
        let spec = ProblemSpec::new(100, 2);
        let s = ElementSet::from_iter([1u64, 2, 3]);
        let t = ElementSet::from_iter([1u64]);
        let proto = BasicIntersection::new(10);
        let err = run_two_party(
            &RunConfig::with_seed(1),
            |chan, coins| proto.run(chan, &coins.fork("b"), Side::Alice, spec, &s),
            |chan, coins| proto.run(chan, &coins.fork("b"), Side::Bob, spec, &t),
        )
        .unwrap_err();
        assert!(matches!(err, ProtocolError::InvalidInput(_)));
    }

    #[test]
    fn hash_range_respects_bounds() {
        let p = BasicIntersection::new(10);
        assert!(p.hash_range(0) >= 16);
        assert!(p.hash_range(1 << 30) <= 1 << 61);
        assert_eq!(p.hash_range(4), 16 * 512);
    }
}
