//! A calibrated cost model for the protocol catalogue.
//!
//! Adaptive harnesses (the session engine's router, capacity planners)
//! need to predict what a protocol will cost on a given [`ProblemSpec`]
//! *without running it*. The asymptotic bounds of the paper fix the
//! shape of each formula — `O(k·log(n/k))` for the trivial exchange,
//! `O(k·log^{(r)} k)` for the verification tree, `O(k)` bits in
//! `O(√k)` rounds for the bucketed protocol — and the constants here
//! are calibrated against this repository's measured bit costs (the
//! sweeps behind experiments E1–E6; see `predictions_track_measurements`
//! in this module for the enforced tolerance).
//!
//! Predictions are intentionally coarse: the router only needs the
//! *ranking* of candidates to be right in each regime, not the exact
//! bit count.

use crate::api::ProtocolChoice;
use crate::iterlog::{ceil_log2, iter_log, log_star};
use crate::sets::ProblemSpec;

/// A predicted execution cost: expected bits on the wire and expected
/// round complexity (longest causal message chain).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PredictedCost {
    /// Predicted total communication in bits.
    pub bits: f64,
    /// Predicted round complexity.
    pub rounds: f64,
}

impl PredictedCost {
    /// Collapses the two axes into one comparable score: bits, plus a
    /// per-round toll. `round_penalty` is "how many bits of extra
    /// communication I would pay to save one round" — large values favor
    /// few-round protocols (WAN deployments), zero ranks by bits alone.
    pub fn score(&self, round_penalty: f64) -> f64 {
        self.bits + round_penalty * self.rounds
    }
}

/// `⌈log₂ x⌉` as f64, clamped below at 1 so formulas stay monotone.
fn lg(x: u64) -> f64 {
    ceil_log2(x.max(2)) as f64
}

impl ProtocolChoice {
    /// Predicts the cost of this protocol on `spec`.
    ///
    /// `expected_overlap` is the caller's estimate of `|S ∩ T|` if one is
    /// available (workload generators know it; live traffic may not).
    /// Only difference-proportional protocols ([`ProtocolChoice::IbltReconcile`])
    /// read it; pass `None` to assume the worst case (empty overlap).
    pub fn predicted_cost(self, spec: ProblemSpec, expected_overlap: Option<u64>) -> PredictedCost {
        let n = spec.n;
        let k = spec.k.max(1) as f64;
        match self {
            // One optimal-code exchange each way: ≈ 2·log₂ C(n,k) bits.
            ProtocolChoice::Trivial => PredictedCost {
                bits: 1.35 * k * (lg(n) - lg(spec.k) + 2.0),
                rounds: 2.0,
            },
            // Hashing into [k⁴] then exchanging over the reduced universe:
            // the effective universe is min(n, k⁴).
            ProtocolChoice::OneRound => {
                let eff = (4.0 * lg(spec.k)).min(lg(n));
                PredictedCost {
                    bits: 1.35 * k * (eff - lg(spec.k) + 2.0),
                    rounds: 2.0,
                }
            }
            // Lemma 3.3 alone, at the catalogue's fixed 20-bit error
            // parameter: per-element cost dominated by the error budget.
            ProtocolChoice::Basic => PredictedCost {
                bits: k * (50.0 + 1.4 * lg(spec.k)),
                rounds: 2.0,
            },
            // Θ(k·log^{(r)} k) with a per-stage overhead; the slopes and
            // intercepts per r are fitted to the measured sweeps.
            ProtocolChoice::Tree(r) => PredictedCost {
                bits: k * tree_bits_per_element(r, spec.k),
                rounds: if r <= 1 { 2.0 } else { 3.0 * r as f64 },
            },
            ProtocolChoice::TreeLogStar => {
                ProtocolChoice::Tree(log_star(spec.k.max(2)).max(1)).predicted_cost(spec, None)
            }
            // Same per-stage work as the tree, on the 2r+1-message schedule.
            ProtocolChoice::TreePipelined(r) => PredictedCost {
                bits: k * tree_bits_per_element(r, spec.k) * 0.95,
                rounds: 2.0 * r.max(1) as f64,
            },
            // Theorem 3.1: Θ(k) bits with a small-k floor, Θ(√k) rounds.
            ProtocolChoice::Sqrt => PredictedCost {
                bits: k * 14.0 + 96.0,
                rounds: 11.0 * k.sqrt(),
            },
            // Difference-proportional: Θ(d·log n) for d = |S △ T|.
            ProtocolChoice::IbltReconcile => {
                let overlap = expected_overlap.unwrap_or(0).min(spec.k) as f64;
                let diff = (2.0 * (k - overlap)).max(1.0);
                PredictedCost {
                    bits: diff * (6.0 * lg(n) + 50.0),
                    rounds: 2.0 * (lg(spec.k) - 2.0).max(1.0),
                }
            }
        }
    }
}

/// Fitted bits-per-element for the verification tree at round budget `r`.
fn tree_bits_per_element(r: u32, k: u64) -> f64 {
    let x = iter_log(r, k.max(2)) as f64;
    match r {
        0 | 1 => 8.0 + 3.65 * lg(k),
        2 => 6.0 + 13.4 * x,
        _ => 22.0 + 10.0 * x,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::execute;
    use crate::sets::InputPair;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    /// Every prediction lands within a factor of two of a measured run —
    /// coarse on purpose, but tight enough that rankings are meaningful.
    #[test]
    fn predictions_track_measurements() {
        for (n, k) in [(1u64 << 16, 16u64), (1 << 20, 64), (1 << 24, 256)] {
            let spec = ProblemSpec::new(n, k);
            let mut rng = ChaCha8Rng::seed_from_u64(5);
            let overlap = (k / 3) as usize;
            let pair = InputPair::random_with_overlap(&mut rng, spec, k as usize, overlap);
            for choice in ProtocolChoice::all(3) {
                let proto = choice.build(spec);
                let run = execute(proto.as_ref(), spec, &pair, 9).unwrap();
                let predicted = choice.predicted_cost(spec, Some(overlap as u64));
                let measured = run.report.total_bits() as f64;
                let ratio = predicted.bits / measured;
                assert!(
                    (0.5..=2.0).contains(&ratio),
                    "{}: predicted {:.0} bits, measured {measured} (ratio {ratio:.2}) at n={n} k={k}",
                    proto.name(),
                    predicted.bits,
                );
                let round_ratio = predicted.rounds / run.report.rounds as f64;
                assert!(
                    (0.3..=3.5).contains(&round_ratio),
                    "{}: predicted {:.0} rounds, measured {} at n={n} k={k}",
                    proto.name(),
                    predicted.rounds,
                    run.report.rounds,
                );
            }
        }
    }

    #[test]
    fn score_trades_bits_for_rounds() {
        let spec = ProblemSpec::new(1 << 30, 1024);
        let sqrt = ProtocolChoice::Sqrt.predicted_cost(spec, None);
        let tree = ProtocolChoice::TreeLogStar.predicted_cost(spec, None);
        // Ranked by bits alone the bucketed protocol wins; with a stiff
        // per-round toll the tree's O(log* k) schedule wins.
        assert!(sqrt.score(0.0) < tree.score(0.0));
        assert!(sqrt.score(1000.0) > tree.score(1000.0));
    }

    #[test]
    fn overlap_hint_only_helps_difference_proportional_protocols() {
        let spec = ProblemSpec::new(1 << 30, 1024);
        let cold = ProtocolChoice::IbltReconcile.predicted_cost(spec, None);
        let warm = ProtocolChoice::IbltReconcile.predicted_cost(spec, Some(1020));
        assert!(warm.bits < cold.bits / 50.0);
        let t_cold = ProtocolChoice::TreeLogStar.predicted_cost(spec, None);
        let t_warm = ProtocolChoice::TreeLogStar.predicted_cost(spec, Some(1020));
        assert_eq!(t_cold, t_warm);
    }
}
