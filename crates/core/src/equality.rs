//! Randomized equality testing (Fact 3.5).
//!
//! The paper's verification step is an equality test with one-sided error:
//! if `x = y` both parties output 1 with probability 1; if `x ≠ y` both
//! output 0 with probability at least `1 − 2^{-b}` for a chosen error
//! exponent `b`, at cost `O(b)` bits and two messages.
//!
//! We realize the "random hash function into `b` bits" with polynomial
//! fingerprints over the Mersenne field `GF(2^61 − 1)`: each *lane* of up
//! to 30 bits is an independent degree-`len` polynomial evaluation followed
//! by a pairwise-independent truncation, with per-lane collision
//! probability `≤ 2^{-lane bits} + len/2^61`. A `b`-bit fingerprint uses
//! `⌈b/30⌉` lanes and transmits exactly `b` bits, so even the 2-bit tests
//! deep in the verification tree cost exactly what the paper charges them.
//!
//! **Randomness discipline:** every invocation must use fresh shared coins
//! (pass `coins.fork(label)` with a label unique to the invocation), since
//! reusing a fingerprint function across adaptively chosen re-runs voids
//! the error guarantee.

use crate::ProtocolResult;
use intersect_comm::bits::BitBuf;
use intersect_comm::chan::Chan;
use intersect_comm::coins::CoinSource;
use intersect_comm::error::ProtocolError;
use intersect_comm::runner::Side;
use intersect_hash::prime::{mul_mod, M61};
use rand::Rng;

/// Bits contributed by one fingerprint lane.
const LANE_BITS: usize = 30;

/// One fingerprint lane: a random-evaluation-point polynomial hash over
/// `GF(M61)` composed with a random affine truncation to [`LANE_BITS`] bits.
#[derive(Debug, Clone)]
struct Lane {
    r: u64,
    a: u64,
    b: u64,
}

impl Lane {
    fn sample<Rg: Rng + ?Sized>(rng: &mut Rg) -> Self {
        Lane {
            r: rng.gen_range(1..M61),
            a: rng.gen_range(1..M61),
            b: rng.gen_range(0..M61),
        }
    }

    fn eval(&self, words: &[u64], len_bits: usize, out_bits: usize) -> u64 {
        // Horner over (len ‖ words); splitting u64 words into two 32-bit
        // halves keeps every coefficient < M61.
        let mut acc = (len_bits as u64) % M61;
        for &w in words {
            for half in [w & 0xffff_ffff, w >> 32] {
                acc = (mul_mod(acc, self.r, M61) + half) % M61;
            }
        }
        let v = (mul_mod(self.a, acc, M61) + self.b) % M61;
        v & ((1u64 << out_bits) - 1)
    }
}

/// Computes a `bits`-bit one-sided-error fingerprint of `data`.
///
/// Equal inputs produce equal fingerprints with certainty; inputs that
/// differ collide with probability at most `2^{-bits}` (up to the
/// negligible `len/2^61` polynomial term) over the choice of `coins`.
///
/// # Examples
///
/// ```
/// use intersect_core::equality::fingerprint;
/// use intersect_comm::bits::BitBuf;
/// use intersect_comm::coins::CoinSource;
///
/// let coins = CoinSource::from_seed(1).fork("fp");
/// let mut x = BitBuf::new();
/// x.push_bits(0xfeed, 16);
/// let f1 = fingerprint(&x, &coins, 40);
/// let f2 = fingerprint(&x, &coins, 40);
/// assert_eq!(f1, f2);
/// assert_eq!(f1.len(), 40);
/// ```
pub fn fingerprint(data: &BitBuf, coins: &CoinSource, bits: usize) -> BitBuf {
    let bits = bits.max(1);
    let mut out = BitBuf::with_capacity(bits);
    let mut produced = 0;
    let mut lane_idx = 0u64;
    while produced < bits {
        let take = (bits - produced).min(LANE_BITS);
        let mut rng = coins.fork_index(lane_idx).rng();
        let lane = Lane::sample(&mut rng);
        out.push_bits(lane.eval(data.words(), data.len(), take), take);
        produced += take;
        lane_idx += 1;
    }
    out
}

/// The equality test of Fact 3.5.
///
/// # Examples
///
/// ```
/// use intersect_core::equality::EqualityTest;
/// use intersect_comm::bits::BitBuf;
/// use intersect_comm::runner::{run_two_party, RunConfig, Side};
///
/// let mut x = BitBuf::new();
/// x.push_bits(123, 10);
/// let y = x.clone();
/// let eq = EqualityTest::new(20);
/// let out = run_two_party(
///     &RunConfig::with_seed(5),
///     |chan, coins| eq.run(chan, &coins.fork("eq"), Side::Alice, &x),
///     |chan, coins| eq.run(chan, &coins.fork("eq"), Side::Bob, &y),
/// )?;
/// assert!(out.alice && out.bob);
/// assert_eq!(out.report.rounds, 2);
/// # Ok::<(), intersect_comm::error::ProtocolError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EqualityTest {
    /// Error exponent `b`: unequal inputs pass with probability `≤ 2^{-b}`.
    pub error_bits: usize,
}

impl EqualityTest {
    /// Creates a test with failure probability `2^{-error_bits}`.
    pub fn new(error_bits: usize) -> Self {
        EqualityTest {
            error_bits: error_bits.max(1),
        }
    }

    /// Exact number of bits this test transmits (fingerprint + verdict).
    pub fn cost_bits(&self) -> usize {
        self.error_bits + 1
    }

    /// Runs the test on one input string per party.
    ///
    /// Returns `true` iff the inputs were judged equal; both parties always
    /// return the same verdict. Two messages: Alice's fingerprint, Bob's
    /// verdict bit.
    ///
    /// # Errors
    ///
    /// Propagates transport failures.
    pub fn run(
        &self,
        chan: &mut dyn Chan,
        coins: &CoinSource,
        side: Side,
        data: &BitBuf,
    ) -> Result<bool, ProtocolError> {
        Ok(self.run_batch(chan, coins, side, std::slice::from_ref(data))?[0])
    }

    /// Runs many equality tests in parallel, in the same two messages.
    ///
    /// This is how the tree protocol's per-level verification achieves
    /// "the equality tests can be done in parallel in two rounds": the
    /// fingerprints of all `items` travel in one message and the verdict
    /// bitmask in one reply.
    ///
    /// # Errors
    ///
    /// Propagates transport failures, and reports a codec error if the
    /// parties disagree on the number of items (a protocol bug).
    pub fn run_batch(
        &self,
        chan: &mut dyn Chan,
        coins: &CoinSource,
        side: Side,
        items: &[BitBuf],
    ) -> Result<Vec<bool>, ProtocolError> {
        let fingerprints: Vec<BitBuf> = items
            .iter()
            .enumerate()
            .map(|(i, item)| fingerprint(item, &coins.fork_index(i as u64), self.error_bits))
            .collect();
        match side {
            Side::Alice => {
                let mut msg =
                    BitBuf::with_capacity(fingerprints.iter().map(BitBuf::len).sum::<usize>());
                for fp in &fingerprints {
                    msg.extend_from(fp);
                }
                chan.send(msg)?;
                let verdicts = chan.recv()?;
                if verdicts.len() != items.len() {
                    return Err(ProtocolError::Internal(format!(
                        "verdict mask has {} bits for {} items",
                        verdicts.len(),
                        items.len()
                    )));
                }
                Ok(verdicts.iter().collect())
            }
            Side::Bob => {
                let theirs = chan.recv()?;
                let mut r = theirs.reader();
                let mut verdicts = BitBuf::with_capacity(items.len());
                let mut out = Vec::with_capacity(items.len());
                for fp in &fingerprints {
                    let other = r.read_buf(fp.len()).map_err(|e| {
                        ProtocolError::Internal(format!("fingerprint stream too short: {e}"))
                    })?;
                    let equal = other == *fp;
                    verdicts.push_bit(equal);
                    out.push(equal);
                }
                if r.remaining() != 0 {
                    return Err(ProtocolError::Internal(
                        "fingerprint stream has trailing bits".into(),
                    ));
                }
                chan.send(verdicts)?;
                Ok(out)
            }
        }
    }
}

/// Serializes an element list for fingerprint comparison.
///
/// Both parties must use the same encoding for semantically equal values;
/// this canonical form (gamma-coded length, fixed 64-bit elements) is shared
/// by every protocol in this crate.
pub fn encode_for_equality(elems: &[u64]) -> BitBuf {
    let mut buf = BitBuf::new();
    intersect_comm::encode::put_gamma0(&mut buf, elems.len() as u64);
    for &e in elems {
        buf.push_bits(e, 64);
    }
    buf
}

/// The result of an equality-style protocol run, bundling verdict and cost.
pub type EqualityOutcome = ProtocolResult<bool>;

#[cfg(test)]
mod tests {
    use super::*;
    use intersect_comm::runner::{run_two_party, RunConfig};

    fn buf_of(vals: &[u64]) -> BitBuf {
        encode_for_equality(vals)
    }

    fn run_eq(seed: u64, x: &BitBuf, y: &BitBuf, bits: usize) -> (bool, u64, u64) {
        let eq = EqualityTest::new(bits);
        let out = run_two_party(
            &RunConfig::with_seed(seed),
            |chan, coins| eq.run(chan, &coins.fork("t"), Side::Alice, x),
            |chan, coins| eq.run(chan, &coins.fork("t"), Side::Bob, y),
        )
        .unwrap();
        assert_eq!(out.alice, out.bob, "parties must agree");
        (out.alice, out.report.total_bits(), out.report.rounds)
    }

    #[test]
    fn equal_inputs_always_pass() {
        for seed in 0..50 {
            let x = buf_of(&[1, 2, 3, seed]);
            let (verdict, _, rounds) = run_eq(seed, &x, &x.clone(), 20);
            assert!(verdict, "seed {seed}");
            assert_eq!(rounds, 2);
        }
    }

    #[test]
    fn unequal_inputs_almost_always_fail() {
        let mut false_positives = 0;
        for seed in 0..200 {
            let x = buf_of(&[seed, 2, 3]);
            let y = buf_of(&[seed, 2, 4]);
            if run_eq(seed, &x, &y, 30).0 {
                false_positives += 1;
            }
        }
        // With 30-bit error the expected count is ≈ 200 / 2^30 ≈ 0.
        assert_eq!(false_positives, 0);
    }

    #[test]
    fn tiny_fingerprints_do_collide_sometimes() {
        // Sanity check that the error knob is real: 1-lane truncated to
        // small effective bits would collide; at 30 bits collisions are
        // rare, so instead verify the lane math by brute-force agreement.
        let x = buf_of(&[7]);
        let y = buf_of(&[8]);
        let mut disagreements = 0;
        for seed in 0..100 {
            let coins = CoinSource::from_seed(seed).fork("fp");
            if fingerprint(&x, &coins, 30) != fingerprint(&y, &coins, 30) {
                disagreements += 1;
            }
        }
        assert!(disagreements >= 99);
    }

    #[test]
    fn cost_matches_declared() {
        let x = buf_of(&[1, 2, 3]);
        for bits in [1usize, 16, 30, 31, 60, 100] {
            let eq = EqualityTest::new(bits);
            let (_, total, _) = run_eq(7, &x, &x.clone(), bits);
            assert_eq!(total as usize, eq.cost_bits(), "bits = {bits}");
        }
    }

    #[test]
    fn length_differences_are_detected() {
        // Same words, different bit length: must not be judged equal.
        let mut x = BitBuf::new();
        x.push_bits(0b101, 3);
        let mut y = BitBuf::new();
        y.push_bits(0b101, 3);
        y.push_bit(false); // trailing zero bit: words identical, length differs
        assert_eq!(x.words(), y.words());
        let mut collisions = 0;
        for seed in 0..100 {
            if run_eq(seed, &x, &y, 30).0 {
                collisions += 1;
            }
        }
        assert_eq!(collisions, 0);
    }

    #[test]
    fn batch_matches_itemwise_semantics() {
        let items_a: Vec<BitBuf> = (0..20u64).map(|i| buf_of(&[i, i + 1])).collect();
        let mut items_b = items_a.clone();
        items_b[3] = buf_of(&[99]);
        items_b[17] = buf_of(&[1, 2, 3, 4]);
        let eq = EqualityTest::new(25);
        let out = run_two_party(
            &RunConfig::with_seed(11),
            |chan, coins| eq.run_batch(chan, &coins.fork("b"), Side::Alice, &items_a),
            |chan, coins| eq.run_batch(chan, &coins.fork("b"), Side::Bob, &items_b),
        )
        .unwrap();
        assert_eq!(out.alice, out.bob);
        for (i, verdict) in out.alice.iter().enumerate() {
            assert_eq!(*verdict, !(i == 3 || i == 17), "item {i}");
        }
        // Whole batch in exactly two rounds.
        assert_eq!(out.report.rounds, 2);
        assert_eq!(out.report.messages, 2);
    }

    #[test]
    fn empty_batch_is_fine() {
        let eq = EqualityTest::new(10);
        let out = run_two_party(
            &RunConfig::with_seed(1),
            |chan, coins| eq.run_batch(chan, &coins.fork("b"), Side::Alice, &[]),
            |chan, coins| eq.run_batch(chan, &coins.fork("b"), Side::Bob, &[]),
        )
        .unwrap();
        assert!(out.alice.is_empty() && out.bob.is_empty());
    }

    #[test]
    fn fresh_labels_give_fresh_functions() {
        let x = buf_of(&[5]);
        let y = buf_of(&[6]);
        let root = CoinSource::from_seed(3);
        // Find that different labels give different fingerprint behaviour by
        // checking the fingerprints themselves differ across labels.
        let f1 = fingerprint(&x, &root.fork("a"), 30);
        let f2 = fingerprint(&x, &root.fork("b"), 30);
        assert_ne!(f1, f2, "labels must decorrelate fingerprints");
        let _ = y;
    }

    #[test]
    fn encode_for_equality_is_injective_on_lists() {
        let a = encode_for_equality(&[1, 2]);
        let b = encode_for_equality(&[1, 2, 0]);
        let c = encode_for_equality(&[]);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }
}
