//! A round-compressed verification tree — toward the paper's open problem.
//!
//! The paper closes with: *"It remains open whether there exists an
//! `r`-round protocol with communication `O(k·log^{(r)} k)`."* Theorem 3.6
//! uses `6r` rounds (our batched implementation: `4r − 2`). This module
//! pipelines Algorithm 1 down to **`2r + 1` messages** at the same
//! asymptotic cost — still not the conjectured `r`, but a 2× structural
//! improvement over the paper's construction, achieved by threading each
//! stage's repair data through the next stage's verification messages:
//!
//! * Alice's stage-`i` message carries (a) her `Basic-Intersection`
//!   responses for the leaves that failed verification at stage `i−1`
//!   — at which point *her* repairs are complete, so — (b) her stage-`i`
//!   fingerprints over post-repair assignments.
//! * Bob, on receipt, first completes his own pending repairs with (a),
//!   then verifies (b) and replies with the stage-`i` verdicts **plus his
//!   half of the stage-`i` repair data** (he knows the verdicts before
//!   sending), closing the loop.
//!
//! Each stage is one alternation (2 causal rounds… amortized to 2 messages
//! per stage plus one final repair flush). Assignment-size bookkeeping —
//! which `Basic-Intersection` needs to size its hash ranges — piggybacks
//! on the same messages: full size vectors once at stage 0, then updates
//! only for repaired leaves.
//!
//! Semantically the protocol is Algorithm 1 unchanged (same tests, same
//! error schedule, same repairs, same one-sided invariants); only the
//! message schedule differs, so Theorem 3.6's correctness and cost
//! analyses apply verbatim. Experiment E15 measures both variants.

use crate::basic::BasicIntersection;
use crate::equality::{encode_for_equality, fingerprint};
use crate::iterlog::{ceil_log2, iter_log};
use crate::prepared::PreparedProtocol;
use crate::sets::{ElementSet, ProblemSpec};
use crate::tree::{DegreePolicy, ErrorPolicy, TreePlan, TreeProtocol};
use intersect_comm::bits::{BitBuf, BitReader};
use intersect_comm::chan::Chan;
use intersect_comm::coins::CoinSource;
use intersect_comm::encode::{get_gamma0, put_gamma0, RiceSubsetCodec};
use intersect_comm::error::ProtocolError;
use intersect_comm::runner::Side;

/// The pipelined verification-tree protocol: Algorithm 1 in `2r + 1`
/// messages.
///
/// # Examples
///
/// ```
/// use intersect_core::tree_pipelined::PipelinedTree;
/// use intersect_core::sets::{ElementSet, ProblemSpec};
/// use intersect_comm::runner::{run_two_party, RunConfig, Side};
///
/// let spec = ProblemSpec::new(1 << 30, 32);
/// let s = ElementSet::from_iter((0..32u64).map(|i| i * 77));
/// let t = ElementSet::from_iter((16..48u64).map(|i| i * 77));
/// let proto = PipelinedTree::new(3);
/// let out = run_two_party(
///     &RunConfig::with_seed(6),
///     |chan, coins| proto.run(chan, &coins.fork("pt"), Side::Alice, spec, &s),
///     |chan, coins| proto.run(chan, &coins.fork("pt"), Side::Bob, spec, &t),
/// )?;
/// assert_eq!(out.alice, s.intersection(&t));
/// assert_eq!(out.bob, s.intersection(&t));
/// assert!(out.report.messages <= 2 * 3 + 1);
/// # Ok::<(), intersect_comm::error::ProtocolError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelinedTree {
    /// Round budget `r ≥ 1`: at most `2r + 1` messages.
    pub stages: u32,
    /// Universe-reduction exponent `c > 2`.
    pub reduction_exponent: u32,
    /// Degree schedule (shared with [`TreeProtocol`]).
    pub degree_policy: DegreePolicy,
    /// Error schedule (shared with [`TreeProtocol`]).
    pub error_policy: ErrorPolicy,
}

impl PipelinedTree {
    /// The pipelined protocol with round budget `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r == 0`.
    pub fn new(r: u32) -> Self {
        assert!(r >= 1, "round budget must be at least 1");
        PipelinedTree {
            stages: r,
            reduction_exponent: 3,
            degree_policy: DegreePolicy::default(),
            error_policy: ErrorPolicy::default(),
        }
    }

    /// The headline configuration `r = log* k`.
    pub fn log_star(k: u64) -> Self {
        Self::new(crate::iterlog::log_star(k.max(2)).max(1))
    }

    fn as_plain(&self) -> TreeProtocol {
        TreeProtocol {
            stages: self.stages,
            reduction_exponent: self.reduction_exponent,
            degree_policy: self.degree_policy,
            error_policy: self.error_policy,
        }
    }

    fn stage_error_bits(&self, stage: u32, k: u64) -> usize {
        match self.error_policy {
            ErrorPolicy::Paper => {
                let depth = self.stages - 1 - stage;
                // Floored at 6 bits so degenerate k keeps per-test error
                // ≤ 1/64 (the schedule is vacuous at tiny k otherwise).
                (4 * ceil_log2(iter_log(depth, k.max(2))).max(1) as usize).max(6)
            }
            ErrorPolicy::FlatStrict => (4 * ceil_log2(k.max(2)) as usize).max(6),
            ErrorPolicy::FlatLoose => 4,
        }
    }

    /// Derives every input-independent parameter for `spec`, reusing
    /// the plain tree's plan (the two protocols share their reduction,
    /// bucket, and repair families plus the tree shape).
    pub fn plan(&self, spec: ProblemSpec) -> PipelinedPlan {
        let k = spec.k.max(2);
        PipelinedPlan {
            proto: *self,
            plain: self.as_plain().plan(spec),
            stage_bits: (0..self.stages)
                .map(|stage| self.stage_error_bits(stage, k))
                .collect(),
        }
    }

    /// Runs the protocol; semantics identical to [`TreeProtocol::run`].
    ///
    /// # Errors
    ///
    /// Fails on invalid inputs or transport errors.
    pub fn run(
        &self,
        chan: &mut dyn Chan,
        coins: &CoinSource,
        side: Side,
        spec: ProblemSpec,
        input: &ElementSet,
    ) -> Result<ElementSet, ProtocolError> {
        self.plan(spec).execute_with(chan, coins, side, input)
    }
}

/// [`PipelinedTree`] with every input-independent parameter derived;
/// wraps the plain [`TreePlan`] whose families and shape it shares.
#[derive(Debug, Clone)]
pub struct PipelinedPlan {
    proto: PipelinedTree,
    plain: TreePlan,
    stage_bits: Vec<usize>,
}

impl PipelinedPlan {
    /// The bit-exchanging phase, with `coins` already forked to the
    /// protocol's namespace.
    fn execute_with(
        &self,
        chan: &mut dyn Chan,
        coins: &CoinSource,
        side: Side,
        input: &ElementSet,
    ) -> Result<ElementSet, ProtocolError> {
        let spec = self.plain.spec;
        spec.validate(input).map_err(ProtocolError::InvalidInput)?;

        // Universe reduction and r = 1 degenerate to the plain protocol.
        if self.proto.stages == 1 {
            return self.plain.execute_with(chan, coins, side, input);
        }
        let reduce_span = intersect_obs::phase::span("core", "reduce");
        let before = chan.stats();
        let (work_set, back_map) = self.plain.reduce(coins, input);
        reduce_span.finish(chan.stats().delta_since(&before));

        let mapped = self.run_pipeline(chan, coins, side, &work_set)?;
        Ok(mapped
            .iter()
            .map(|m| *back_map.get(&m).expect("output is a subset of the input"))
            .collect())
    }

    /// The pipelined stage loop over the reduced universe.
    fn run_pipeline(
        &self,
        chan: &mut dyn Chan,
        coins: &CoinSource,
        side: Side,
        work_set: &ElementSet,
    ) -> Result<ElementSet, ProtocolError> {
        let k = self.plain.spec.k.max(2);
        let shape = &self.plain.shape;
        let bucket_span = intersect_obs::phase::span("core", "bucket");
        let before = chan.stats();
        let bucket_hash = self
            .plain
            .reduced_family
            .sample(&mut coins.fork("bucket").rng(), k);
        let mut buckets: Vec<Vec<u64>> = vec![Vec::new(); k as usize];
        for x in work_set.iter() {
            buckets[bucket_hash.eval(x) as usize].push(x);
        }
        let mut assignments: Vec<ElementSet> = buckets
            .into_iter()
            .map(|mut b| {
                b.sort_unstable();
                ElementSet::from_sorted(b)
            })
            .collect();
        // Size bookkeeping: `peer_sizes` holds the peer's last *reported*
        // size per leaf; `my_reported` holds what we last reported. The
        // hash range of each repair half is derived from (sender's
        // just-reported size + receiver's last report), which both parties
        // can compute identically.
        let mut peer_sizes: Vec<u64> = vec![0; k as usize];
        let mut my_reported: Vec<u64> = assignments.iter().map(|a| a.len() as u64).collect();
        // Leaves failed at the previous stage, awaiting the repair flush.
        let mut pending: Vec<usize> = Vec::new();
        bucket_span.finish(chan.stats().delta_since(&before));

        let fingerprints = |assignments: &[ElementSet],
                            nodes: &[(usize, usize)],
                            stage_coins: &CoinSource,
                            bits: usize| {
            nodes
                .iter()
                .enumerate()
                .map(|(idx, &(a, b))| {
                    let mut buf = BitBuf::new();
                    for assignment in &assignments[a..b] {
                        buf.extend_from(&encode_for_equality(assignment.as_slice()));
                    }
                    fingerprint(&buf, &stage_coins.fork_index(idx as u64), bits)
                })
                .collect::<Vec<BitBuf>>()
        };

        for stage in 0..self.proto.stages {
            let stage_span = intersect_obs::phase::span("core", "stage");
            let before = chan.stats();
            let err_bits = self.stage_bits[stage as usize];
            let prev_err_bits = if stage > 0 {
                self.stage_bits[stage as usize - 1]
            } else {
                0
            };
            let stage_coins = coins.fork(&format!("pstage{stage}"));
            let repair_coins = coins.fork(&format!("prepair{}", stage.wrapping_sub(1)));
            let nodes = shape.level(stage as usize);

            match side {
                Side::Alice => {
                    // Complete my repairs (pending from stage-1's verdicts):
                    // I already applied Bob's hash sets when his verdict
                    // message arrived; now send my halves + updated sizes.
                    let mut msg = BitBuf::new();
                    if stage == 0 {
                        for a in &assignments {
                            put_gamma0(&mut msg, a.len() as u64);
                        }
                    } else {
                        self.write_repairs(
                            &mut msg,
                            &pending,
                            &assignments,
                            &peer_sizes,
                            &mut my_reported,
                            &repair_coins,
                            prev_err_bits,
                        );
                    }
                    let fps = fingerprints(&assignments, nodes, &stage_coins, err_bits);
                    for fp in &fps {
                        msg.extend_from(fp);
                    }
                    chan.send(msg)?;

                    // Bob's reply: verdicts, his size updates, his repair
                    // halves for this stage's failures.
                    let reply = chan.recv()?;
                    let mut r = reply.reader();
                    if stage == 0 {
                        for size in peer_sizes.iter_mut() {
                            *size = get_gamma0(&mut r)?;
                        }
                    }
                    let mut verdicts = Vec::with_capacity(nodes.len());
                    for _ in 0..nodes.len() {
                        verdicts.push(r.read_bit().map_err(ProtocolError::Codec)?);
                    }
                    pending = nodes
                        .iter()
                        .zip(&verdicts)
                        .filter(|(_, &ok)| !ok)
                        .flat_map(|(&(a, b), _)| a..b)
                        .collect();
                    // Bob's repair halves: apply to my assignments now.
                    self.apply_repairs(
                        &mut r,
                        &pending,
                        &mut assignments,
                        &mut peer_sizes,
                        &my_reported,
                        &coins.fork(&format!("prepair{stage}")),
                        err_bits,
                    )?;
                }
                Side::Bob => {
                    let msg = chan.recv()?;
                    let mut r = msg.reader();
                    if stage == 0 {
                        for size in peer_sizes.iter_mut() {
                            *size = get_gamma0(&mut r)?;
                        }
                    } else {
                        // Alice's repair halves: complete my pending repairs.
                        self.apply_repairs(
                            &mut r,
                            &pending,
                            &mut assignments,
                            &mut peer_sizes,
                            &my_reported,
                            &repair_coins,
                            prev_err_bits,
                        )?;
                    }
                    // Verify this stage against Alice's fingerprints.
                    let my_fps = fingerprints(&assignments, nodes, &stage_coins, err_bits);
                    let mut verdicts = Vec::with_capacity(nodes.len());
                    for fp in &my_fps {
                        let theirs = r.read_buf(fp.len()).map_err(ProtocolError::Codec)?;
                        verdicts.push(theirs == *fp);
                    }
                    pending = nodes
                        .iter()
                        .zip(&verdicts)
                        .filter(|(_, &ok)| !ok)
                        .flat_map(|(&(a, b), _)| a..b)
                        .collect();
                    let mut reply = BitBuf::new();
                    if stage == 0 {
                        for a in &assignments {
                            put_gamma0(&mut reply, a.len() as u64);
                        }
                    }
                    for &v in &verdicts {
                        reply.push_bit(v);
                    }
                    // My repair halves for this stage's failures.
                    self.write_repairs(
                        &mut reply,
                        &pending,
                        &assignments,
                        &peer_sizes,
                        &mut my_reported,
                        &coins.fork(&format!("prepair{stage}")),
                        err_bits,
                    );
                    chan.send(reply)?;
                }
            }
            stage_span.finish(chan.stats().delta_since(&before));
        }

        // Final flush: Alice sends her halves for the last stage's failures
        // so Bob can complete his repairs too.
        let flush_span = intersect_obs::phase::span("core", "flush");
        let before = chan.stats();
        let last_err = self.stage_bits[self.proto.stages as usize - 1];
        let flush_coins = coins.fork(&format!("prepair{}", self.proto.stages - 1));
        match side {
            Side::Alice => {
                if !pending.is_empty() {
                    let mut msg = BitBuf::new();
                    self.write_repairs(
                        &mut msg,
                        &pending,
                        &assignments,
                        &peer_sizes,
                        &mut my_reported,
                        &flush_coins,
                        last_err,
                    );
                    chan.send(msg)?;
                }
            }
            Side::Bob => {
                if !pending.is_empty() {
                    let msg = chan.recv()?;
                    let mut r = msg.reader();
                    self.apply_repairs(
                        &mut r,
                        &pending,
                        &mut assignments,
                        &mut peer_sizes,
                        &my_reported,
                        &flush_coins,
                        last_err,
                    )?;
                }
            }
        }
        flush_span.finish(chan.stats().delta_since(&before));

        Ok(assignments
            .into_iter()
            .flat_map(|a| a.iter().collect::<Vec<_>>())
            .collect())
    }

    /// Serializes this party's `Basic-Intersection` halves plus its
    /// just-updated sizes for the given leaves. The hash range for leaf
    /// `u` is `hash_range(my current size + peer's last report)` — the
    /// receiver recomputes it from the size in the message and its own
    /// last report.
    #[allow(clippy::too_many_arguments)]
    fn write_repairs(
        &self,
        msg: &mut BitBuf,
        leaves: &[usize],
        assignments: &[ElementSet],
        peer_sizes: &[u64],
        my_reported: &mut [u64],
        repair_coins: &CoinSource,
        err_bits: usize,
    ) {
        let basic = BasicIntersection::new(err_bits.max(1));
        for &leaf in leaves {
            let mine = &assignments[leaf];
            put_gamma0(msg, mine.len() as u64);
            my_reported[leaf] = mine.len() as u64;
            let m = mine.len() as u64 + peer_sizes[leaf];
            let t = basic.hash_range(m);
            let h = self
                .plain
                .reduced_family
                .sample(&mut repair_coins.fork_index(leaf as u64).rng(), t);
            let mut hashed: Vec<u64> = mine.iter().map(|x| h.eval(x)).collect();
            hashed.sort_unstable();
            hashed.dedup();
            let codec = RiceSubsetCodec::new(t, mine.len().max(1) as u64);
            msg.extend_from(&codec.encode(&hashed));
        }
    }

    /// Reads the peer's repair halves and filters this party's assignments;
    /// mirrors [`write_repairs`](Self::write_repairs): the sender's hash
    /// range was `hash_range(its size + our last report)`, both of which
    /// we know.
    #[allow(clippy::too_many_arguments)]
    fn apply_repairs(
        &self,
        r: &mut BitReader<'_>,
        leaves: &[usize],
        assignments: &mut [ElementSet],
        peer_sizes: &mut [u64],
        my_reported: &[u64],
        repair_coins: &CoinSource,
        err_bits: usize,
    ) -> Result<(), ProtocolError> {
        let basic = BasicIntersection::new(err_bits.max(1));
        for &leaf in leaves {
            let peer_size = get_gamma0(r)?;
            let m = peer_size + my_reported[leaf];
            let t = basic.hash_range(m);
            let h = self
                .plain
                .reduced_family
                .sample(&mut repair_coins.fork_index(leaf as u64).rng(), t);
            let codec = RiceSubsetCodec::new(t, peer_size.max(1));
            let their_hashed = codec.decode(r)?;
            let lookup: std::collections::HashSet<u64> = their_hashed.into_iter().collect();
            assignments[leaf] = assignments[leaf].filtered(|x| lookup.contains(&h.eval(x)));
            peer_sizes[leaf] = peer_size;
        }
        Ok(())
    }
}

impl PreparedProtocol for PipelinedPlan {
    fn name(&self) -> String {
        crate::api::SetIntersection::name(&self.proto)
    }

    fn spec(&self) -> ProblemSpec {
        self.plain.spec
    }

    fn execute(
        &self,
        chan: &mut dyn Chan,
        coins: &CoinSource,
        side: Side,
        input: &ElementSet,
    ) -> Result<ElementSet, ProtocolError> {
        // Same fork label as the `SetIntersection` impl, so prepared
        // and cold executions draw identical coins.
        self.execute_with(chan, &coins.fork("tree-pipelined"), side, input)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::execute;
    use crate::sets::InputPair;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn run_pipelined(
        seed: u64,
        r: u32,
        spec: ProblemSpec,
        pair: &InputPair,
    ) -> crate::api::IntersectionRun {
        execute(&PipelinedTree::new(r), spec, pair, seed).unwrap()
    }

    #[test]
    fn recovers_intersection_across_budgets_and_overlaps() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let spec = ProblemSpec::new(1 << 30, 64);
        for r in 1..=4u32 {
            for overlap in [0usize, 1, 32, 64] {
                let pair = InputPair::random_with_overlap(&mut rng, spec, 64, overlap);
                let run = run_pipelined(100 * r as u64 + overlap as u64, r, spec, &pair);
                assert!(run.matches(&pair.ground_truth()), "r={r} overlap={overlap}");
            }
        }
    }

    #[test]
    fn messages_bounded_by_2r_plus_1() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let spec = ProblemSpec::new(1 << 40, 1024);
        for r in 2..=4u32 {
            let pair = InputPair::random_with_overlap(&mut rng, spec, 1024, 512);
            let run = run_pipelined(r as u64, r, spec, &pair);
            assert!(run.matches(&pair.ground_truth()), "r={r}");
            assert!(
                run.report.messages <= 2 * r as u64 + 1,
                "r={r}: {} messages",
                run.report.messages
            );
            assert!(
                run.report.rounds <= 2 * r as u64 + 1,
                "r={r}: {} rounds",
                run.report.rounds
            );
        }
    }

    #[test]
    fn cost_matches_plain_tree_within_a_constant() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let spec = ProblemSpec::new(1 << 40, 2048);
        let pair = InputPair::random_with_overlap(&mut rng, spec, 2048, 1024);
        for r in 2..=4u32 {
            let plain = execute(&TreeProtocol::new(r), spec, &pair, 9).unwrap();
            let piped = run_pipelined(9, r, spec, &pair);
            assert!(piped.matches(&pair.ground_truth()));
            let ratio = piped.report.total_bits() as f64 / plain.report.total_bits() as f64;
            assert!(
                (0.5..2.0).contains(&ratio),
                "r={r}: cost ratio {ratio:.2} (piped {} vs plain {})",
                piped.report.total_bits(),
                plain.report.total_bits()
            );
            // The point of the exercise: strictly fewer rounds.
            assert!(
                piped.report.rounds < plain.report.rounds || plain.report.rounds <= 3,
                "r={r}: piped {} vs plain {} rounds",
                piped.report.rounds,
                plain.report.rounds
            );
        }
    }

    #[test]
    fn success_rate_is_high_across_seeds() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let spec = ProblemSpec::new(1 << 24, 256);
        let mut exact = 0;
        for seed in 0..40 {
            let pair = InputPair::random_with_overlap(&mut rng, spec, 256, 100);
            if run_pipelined(seed, 3, spec, &pair).matches(&pair.ground_truth()) {
                exact += 1;
            }
        }
        assert!(exact >= 38, "{exact}/40");
    }

    #[test]
    fn identical_and_empty_inputs() {
        let spec = ProblemSpec::new(1 << 20, 32);
        let s: ElementSet = (0..32u64).map(|i| i * 101).collect();
        let pair = InputPair {
            s: s.clone(),
            t: s.clone(),
        };
        let run = run_pipelined(5, 3, spec, &pair);
        assert_eq!(run.alice, s);
        let empty_pair = InputPair {
            s: ElementSet::new(),
            t: s.clone(),
        };
        let run = run_pipelined(6, 2, spec, &empty_pair);
        assert!(run.alice.is_empty() && run.bob.is_empty());
    }

    #[test]
    fn repeated_failures_on_same_leaf_stay_consistent() {
        // A loose error schedule forces multiple repairs of the same leaf
        // across stages, stressing the size-report bookkeeping.
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let spec = ProblemSpec::new(1 << 24, 512);
        let proto = PipelinedTree {
            error_policy: ErrorPolicy::FlatLoose,
            ..PipelinedTree::new(4)
        };
        for seed in 0..10 {
            let pair = InputPair::random_with_overlap(&mut rng, spec, 512, 256);
            // Must run without transport/codec errors even when tests
            // misfire; correctness may suffer (that is what FlatLoose does).
            let run = execute(&proto, spec, &pair, seed).unwrap();
            assert!(run.alice.iter().all(|x| pair.s.contains(x)));
            assert!(run.bob.iter().all(|x| pair.t.contains(x)));
        }
    }
}
