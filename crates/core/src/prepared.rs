//! Two-phase protocol execution: input-independent *preparation* split
//! from the input-dependent *bit-exchanging* phase.
//!
//! Every protocol in the paper decomposes the same way: a parameter
//! phase that depends only on `(n, k, δ)` — hash-family selection
//! (Section 3's `H : [n] → [N]` and `h : [N] → [k]` setups reduce to a
//! deterministic field-prime search once the universe is fixed), tree
//! layouts, per-stage error schedules — and an execution phase that
//! actually exchanges bits. [`SetIntersection::prepare`] performs the
//! parameter phase once and returns an [`Arc<dyn PreparedProtocol>`]
//! whose [`execute`](PreparedProtocol::execute) can be replayed for many
//! inputs, shared across threads, and cached by `(protocol, spec)`.
//!
//! **Bit-exactness is the contract**: for every plan,
//! `plan.execute(chan, coins, side, input)` transmits byte-identical
//! messages — and therefore produces identical outputs and
//! [`CostReport`]s — to `SetIntersection::run(&proto, chan, coins, side,
//! spec, input)`. This holds because preparation hoists only
//! deterministic, RNG-free work (prime searches, tree shapes, error
//! schedules); every random draw still happens in execution order from
//! the same coin forks.
//!
//! [`execute_prepared`] and [`execute_prepared_batch`] drive plans
//! through a thread-local warm [`SessionRunner`], so the dedicated-pair
//! path, the engine scheduler, and batch submission all share one
//! execution path (same spawn, handshake, and error tie-break).

use crate::api::SetIntersection;
use crate::sets::{ElementSet, InputPair, ProblemSpec};
use intersect_comm::chan::Chan;
use intersect_comm::coins::CoinSource;
use intersect_comm::error::ProtocolError;
use intersect_comm::runner::{RunConfig, SessionParts, SessionRunner, Side};
use std::cell::RefCell;
use std::sync::Arc;

/// A protocol with its input-independent parameters already derived.
///
/// Obtained from [`SetIntersection::prepare`]; holds everything the
/// execution phase needs (hash families with their field primes, tree
/// shapes, error schedules) so repeated executions skip re-derivation.
///
/// Implementations apply the same coin-fork labels as the protocol's
/// [`SetIntersection::run`] impl, so a prepared execution is
/// bit-identical to a cold one given the same `coins`.
pub trait PreparedProtocol: Send + Sync + std::fmt::Debug {
    /// The underlying protocol's name (matches [`SetIntersection::name`]).
    fn name(&self) -> String;

    /// The problem spec this plan was prepared for.
    fn spec(&self) -> ProblemSpec;

    /// Runs the bit-exchanging phase for one party.
    ///
    /// # Errors
    ///
    /// Fails on invalid inputs or transport errors, exactly as the
    /// protocol's [`SetIntersection::run`] would.
    fn execute(
        &self,
        chan: &mut dyn Chan,
        coins: &CoinSource,
        side: Side,
        input: &ElementSet,
    ) -> Result<ElementSet, ProtocolError>;
}

/// A plan for protocols whose parameters are input- or
/// transcript-dependent (attempt loops that resize tables, private-coin
/// wrappers that sample the reduction at run time): preparation is the
/// identity and execution delegates to [`SetIntersection::run`], which
/// is bit-exact by construction.
#[derive(Debug, Clone)]
pub struct FallbackPlan<P> {
    proto: P,
    spec: ProblemSpec,
}

impl<P: SetIntersection + Clone + 'static> FallbackPlan<P> {
    /// Wraps `proto` as a no-op plan for `spec`.
    pub fn new(proto: P, spec: ProblemSpec) -> Self {
        FallbackPlan { proto, spec }
    }
}

impl<P: SetIntersection + Clone + 'static> PreparedProtocol for FallbackPlan<P> {
    fn name(&self) -> String {
        self.proto.name()
    }

    fn spec(&self) -> ProblemSpec {
        self.spec
    }

    fn execute(
        &self,
        chan: &mut dyn Chan,
        coins: &CoinSource,
        side: Side,
        input: &ElementSet,
    ) -> Result<ElementSet, ProtocolError> {
        self.proto.run(chan, coins, side, self.spec, input)
    }
}

thread_local! {
    /// One warm [`SessionRunner`] per thread: [`execute_prepared`] and
    /// [`execute_prepared_batch`] reuse its paired thread and channel
    /// pair across calls instead of spawning per session.
    static LOCAL_RUNNER: RefCell<Option<SessionRunner>> = const { RefCell::new(None) };
}

fn run_once(
    runner: &mut SessionRunner,
    cfg: &RunConfig,
    plan: &Arc<dyn PreparedProtocol>,
    pair: &InputPair,
) -> Result<SessionParts<ElementSet, ElementSet>, ProtocolError> {
    let plan_b = Arc::clone(plan);
    let t = pair.t.clone();
    runner.run_parts(
        cfg,
        |chan, coins| plan.execute(chan, coins, Side::Alice, &pair.s),
        move |chan, coins| plan_b.execute(chan, coins, Side::Bob, &t),
    )
}

fn run_batch_once(
    runner: &mut SessionRunner,
    cfg: &RunConfig,
    seeds: &[u64],
    plan: &Arc<dyn PreparedProtocol>,
    pairs: &[InputPair],
) -> Result<Vec<SessionParts<ElementSet, ElementSet>>, ProtocolError> {
    let plan_b = Arc::clone(plan);
    let ts: Vec<ElementSet> = pairs.iter().map(|p| p.t.clone()).collect();
    runner.run_batch_parts(
        cfg,
        seeds,
        |i, chan, coins| plan.execute(chan, coins, Side::Alice, &pairs[i].s),
        move |i, chan, coins| plan_b.execute(chan, coins, Side::Bob, &ts[i]),
    )
}

/// Reclaims a healthy thread-local runner (starting one on first use or
/// after a worker death) and hands it to `f`. If `f`'s first attempt
/// reports runner breakage, the runner is replaced and `f` retried once
/// — infrastructure failures are not protocol failures.
fn with_local_runner<T>(
    mut f: impl FnMut(&mut SessionRunner) -> Result<T, ProtocolError>,
) -> Result<T, ProtocolError> {
    LOCAL_RUNNER.with(|cell| {
        let mut slot = cell.borrow_mut();
        let runner = slot.get_or_insert_with(SessionRunner::start);
        match f(runner) {
            Ok(v) => Ok(v),
            Err(_) => {
                let runner = slot.insert(SessionRunner::start());
                f(runner)
            }
        }
    })
}

/// The output of one prepared session, mirroring
/// [`IntersectionRun`](crate::api::IntersectionRun)'s collapse rules.
type SessionResult = Result<crate::api::IntersectionRun, ProtocolError>;

fn collapse(parts: SessionParts<ElementSet, ElementSet>) -> SessionResult {
    let out = parts.collapse()?;
    Ok(crate::api::IntersectionRun {
        alice: out.alice,
        bob: out.bob,
        report: out.report,
    })
}

/// Runs a prepared plan on `(pair.s, pair.t)` with shared seed `seed`
/// over this thread's warm [`SessionRunner`] — the single execution
/// path behind [`execute`](crate::api::execute).
///
/// Bit-for-bit identical to a dedicated
/// [`run_two_party`](intersect_comm::runner::run_two_party) call running
/// the protocol cold with the same seed.
///
/// # Errors
///
/// Propagates protocol failures with
/// [`run_two_party`](intersect_comm::runner::run_two_party)'s tie-break.
///
/// # Examples
///
/// ```
/// use intersect_core::prelude::*;
/// use intersect_core::prepared::execute_prepared;
/// use rand::SeedableRng;
///
/// let spec = ProblemSpec::new(1 << 30, 16);
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
/// let pair = InputPair::random_with_overlap(&mut rng, spec, 16, 5);
/// let plan = TreeProtocol::log_star(spec.k).prepare(spec);
/// let warm = execute_prepared(&plan, &pair, 7)?;
/// let cold = execute(&TreeProtocol::log_star(spec.k), spec, &pair, 7)?;
/// assert_eq!(warm, cold);
/// # Ok::<(), intersect_comm::error::ProtocolError>(())
/// ```
pub fn execute_prepared(
    plan: &Arc<dyn PreparedProtocol>,
    pair: &InputPair,
    seed: u64,
) -> SessionResult {
    let cfg = RunConfig::with_seed(seed);
    collapse(with_local_runner(|runner| {
        run_once(runner, &cfg, plan, pair)
    })?)
}

/// Runs `pairs.len()` same-plan sessions back-to-back over this
/// thread's warm runner: one job hand-off for the whole batch, one
/// coin-source reseed (from `seeds[i]`) per session. Session `i` is
/// bit-identical to `execute_prepared(plan, &pairs[i], seeds[i])`, and
/// a per-session protocol failure surfaces in that session's slot
/// without disturbing the rest.
///
/// # Panics
///
/// Panics if `seeds.len() != pairs.len()`.
///
/// # Errors
///
/// Fails only on infrastructure breakage (after one replace-and-retry).
pub fn execute_prepared_batch(
    plan: &Arc<dyn PreparedProtocol>,
    pairs: &[InputPair],
    seeds: &[u64],
) -> Result<Vec<SessionResult>, ProtocolError> {
    assert_eq!(seeds.len(), pairs.len(), "one seed per input pair");
    let cfg = RunConfig::with_seed(seeds.first().copied().unwrap_or(0));
    let parts = with_local_runner(|runner| run_batch_once(runner, &cfg, seeds, plan, pairs))?;
    Ok(parts.into_iter().map(collapse).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{execute, ProtocolChoice};
    use crate::tree::TreeProtocol;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn fallback_plan_matches_cold_run() {
        let spec = ProblemSpec::new(1 << 20, 16);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let pair = InputPair::random_with_overlap(&mut rng, spec, 16, 6);
        let proto = crate::reconcile::IbltReconcile::default();
        let plan = proto.prepare(spec);
        let warm = execute_prepared(&plan, &pair, 3).unwrap();
        let cold = execute(&proto, spec, &pair, 3).unwrap();
        assert_eq!(warm, cold);
    }

    #[test]
    fn every_catalogue_plan_reports_name_and_spec() {
        let spec = ProblemSpec::new(1 << 20, 32);
        for choice in ProtocolChoice::all(3) {
            let proto = choice.build(spec);
            let plan = proto.prepare(spec);
            assert_eq!(plan.name(), proto.name(), "{choice}");
            assert_eq!(plan.spec(), spec, "{choice}");
        }
    }

    #[test]
    fn one_plan_serves_many_inputs() {
        let spec = ProblemSpec::new(1 << 30, 32);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let plan = TreeProtocol::log_star(spec.k).prepare(spec);
        for seed in 0..8 {
            let pair = InputPair::random_with_overlap(&mut rng, spec, 32, seed as usize % 32);
            let run = execute_prepared(&plan, &pair, seed).unwrap();
            assert!(run.matches(&pair.ground_truth()), "seed {seed}");
        }
    }

    #[test]
    fn batch_sessions_match_individual_prepared_runs() {
        let spec = ProblemSpec::new(1 << 30, 64);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let plan = TreeProtocol::new(2).prepare(spec);
        let pairs: Vec<InputPair> = (0..6)
            .map(|i| InputPair::random_with_overlap(&mut rng, spec, 64, 8 * i))
            .collect();
        let seeds: Vec<u64> = (100..106).collect();
        let batched = execute_prepared_batch(&plan, &pairs, &seeds).unwrap();
        for ((pair, &seed), batch_run) in pairs.iter().zip(&seeds).zip(batched) {
            let solo = execute_prepared(&plan, pair, seed).unwrap();
            assert_eq!(batch_run.unwrap(), solo);
        }
    }
}
