//! Two-phase protocol execution: input-independent *preparation* split
//! from the input-dependent *bit-exchanging* phase.
//!
//! Every protocol in the paper decomposes the same way: a parameter
//! phase that depends only on `(n, k, δ)` — hash-family selection
//! (Section 3's `H : [n] → [N]` and `h : [N] → [k]` setups reduce to a
//! deterministic field-prime search once the universe is fixed), tree
//! layouts, per-stage error schedules — and an execution phase that
//! actually exchanges bits. [`SetIntersection::prepare`] performs the
//! parameter phase once and returns an [`Arc<dyn PreparedProtocol>`]
//! whose [`execute`](PreparedProtocol::execute) can be replayed for many
//! inputs, shared across threads, and cached by `(protocol, spec)`.
//!
//! **Bit-exactness is the contract**: for every plan,
//! `plan.execute(chan, coins, side, input)` transmits byte-identical
//! messages — and therefore produces identical outputs and
//! [`CostReport`]s — to `SetIntersection::run(&proto, chan, coins, side,
//! spec, input)`. This holds because preparation hoists only
//! deterministic, RNG-free work (prime searches, tree shapes, error
//! schedules); every random draw still happens in execution order from
//! the same coin forks.
//!
//! [`execute_prepared`] and [`execute_prepared_batch`] drive plans
//! through a thread-local warm [`SessionRunner`], so the dedicated-pair
//! path, the engine scheduler, and batch submission all share one
//! execution path (same spawn, handshake, and error tie-break).

use crate::api::SetIntersection;
use crate::sets::{ElementSet, InputPair, ProblemSpec};
// The m-party analogue of a prepared plan: the derived tournament
// schedule the engine caches per `(protocol, spec, m)`.
pub use crate::topology::PreparedTournament;
use intersect_comm::chan::Chan;
use intersect_comm::coins::{CoinBlock, CoinSource};
use intersect_comm::error::ProtocolError;
use intersect_comm::runner::{RunConfig, SessionParts, SessionRunner, Side};
use intersect_hash::reduce::ModPrimeReduction;
use std::any::Any;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A protocol with its input-independent parameters already derived.
///
/// Obtained from [`SetIntersection::prepare`]; holds everything the
/// execution phase needs (hash families with their field primes, tree
/// shapes, error schedules) so repeated executions skip re-derivation.
///
/// Implementations apply the same coin-fork labels as the protocol's
/// [`SetIntersection::run`] impl, so a prepared execution is
/// bit-identical to a cold one given the same `coins`.
pub trait PreparedProtocol: Send + Sync + std::fmt::Debug {
    /// The underlying protocol's name (matches [`SetIntersection::name`]).
    fn name(&self) -> String;

    /// The problem spec this plan was prepared for.
    fn spec(&self) -> ProblemSpec;

    /// Runs the bit-exchanging phase for one party.
    ///
    /// # Errors
    ///
    /// Fails on invalid inputs or transport errors, exactly as the
    /// protocol's [`SetIntersection::run`] would.
    fn execute(
        &self,
        chan: &mut dyn Chan,
        coins: &CoinSource,
        side: Side,
        input: &ElementSet,
    ) -> Result<ElementSet, ProtocolError>;

    /// Precomputes the protocol's per-session shared-randomness artefacts
    /// for a block of session seeds, off the hot path — the *offline*
    /// half of the offline/online split.
    ///
    /// The contract mirrors [`execute`](Self::execute)'s bit-exactness:
    /// whatever is presampled here must be drawn from exactly the coin
    /// forks that `execute` would draw in execution order, so a streamed
    /// session consuming slot `i` of the returned artefact behaves
    /// bit-identically to a one-shot session seeded with `seeds[i]`.
    ///
    /// The default returns `None`: execution derives everything online,
    /// as before. Plans whose per-session derivation is expensive (hash
    /// sampling over a planned field prime, say) override this.
    fn presample(&self, _seeds: &[u64]) -> Option<Arc<dyn Any + Send + Sync>> {
        None
    }

    /// Runs the bit-exchanging phase for one party *inside a stream*,
    /// given the session's [`SessionCtx`] (its stream position and the
    /// block artefact from [`presample`](Self::presample)).
    ///
    /// The default ignores the context and delegates to
    /// [`execute`](Self::execute) — correct for every plan, since
    /// presampling is only ever a relocation of the same random draws.
    ///
    /// # Errors
    ///
    /// As [`execute`](Self::execute).
    fn execute_in(
        &self,
        _ctx: &SessionCtx<'_>,
        chan: &mut dyn Chan,
        coins: &CoinSource,
        side: Side,
        input: &ElementSet,
    ) -> Result<ElementSet, ProtocolError> {
        self.execute(chan, coins, side, input)
    }
}

/// Where one streamed session sits inside its pair's stream, plus the
/// block-level artefact its plan presampled. Both parties construct the
/// same context for the same session, so presampled draws stay shared.
#[derive(Debug, Clone, Copy)]
pub struct SessionCtx<'a> {
    /// Global session index within the pair's stream (monotone across
    /// submissions; drives the pair's [`CoinBlock`] seed derivation).
    pub index: u64,
    /// Index within the current submission's presample block: slot `i`
    /// of the artefact belongs to this session.
    pub slot: usize,
    /// The artefact returned by [`PreparedProtocol::presample`] for this
    /// submission, if the plan presamples at all.
    pub presampled: Option<&'a (dyn Any + Send + Sync)>,
}

/// Per-client-pair correlated-randomness context: the *offline* state
/// one pair of parties accumulates so that each *online* session does as
/// little shared-randomness work as possible.
///
/// A `PairContext` owns
///
/// * the pair's prepared plan (shared with the plan cache),
/// * a pre-forked [`CoinBlock`] handing out per-session seeds
///   `stream_session_seed(pair_seed, i)` with deterministic refill, and
/// * lazily computed universe-reduction state: a pair-scoped
///   [`ModPrimeReduction`] both parties derive from the pair seed alone,
///   with no transmission (the paper's Theorem 3.1 reduction moved
///   wholly off the wire for pairs with shared setup).
///
/// Sessions are numbered by a monotone counter ([`take_block`]
/// (Self::take_block)), so session `i` of a pair is bit-identical to a
/// one-shot run seeded with `stream_session_seed(pair_seed, i)` no
/// matter how sessions are batched into submissions. The `generation`
/// tag mirrors the plan cache's invalidation scheme: bumping the cache
/// generation orphans old contexts without touching in-flight streams.
#[derive(Debug)]
pub struct PairContext {
    plan: Arc<dyn PreparedProtocol>,
    pair_seed: u64,
    generation: u64,
    next: AtomicU64,
    coins: Mutex<CoinBlock>,
    reduction: OnceLock<Option<ModPrimeReduction>>,
}

impl PairContext {
    /// Builds the context for one pair: `pair_seed` is the pair's stable
    /// identity (both parties must agree on it out of band).
    pub fn new(plan: Arc<dyn PreparedProtocol>, pair_seed: u64) -> Self {
        Self::with_generation(plan, pair_seed, 0)
    }

    /// As [`new`](Self::new), tagged with a cache generation.
    pub fn with_generation(
        plan: Arc<dyn PreparedProtocol>,
        pair_seed: u64,
        generation: u64,
    ) -> Self {
        PairContext {
            plan,
            pair_seed,
            generation,
            next: AtomicU64::new(0),
            coins: Mutex::new(CoinBlock::new(pair_seed)),
            reduction: OnceLock::new(),
        }
    }

    /// The pair's prepared plan.
    pub fn plan(&self) -> &Arc<dyn PreparedProtocol> {
        &self.plan
    }

    /// The spec the pair's plan was prepared for.
    pub fn spec(&self) -> ProblemSpec {
        self.plan.spec()
    }

    /// The pair's stable seed identity.
    pub fn pair_seed(&self) -> u64 {
        self.pair_seed
    }

    /// The cache generation this context was created under.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// How many sessions this pair has claimed so far.
    pub fn sessions(&self) -> u64 {
        self.next.load(Ordering::Relaxed)
    }

    /// Claims the next `count` session indices and returns their
    /// pre-forked seeds: `(base, seeds)` with `seeds[i] =
    /// stream_session_seed(pair_seed, base + i)`, served from the
    /// pair's [`CoinBlock`] (refilling deterministically as needed).
    pub fn take_block(&self, count: usize) -> (u64, Vec<u64>) {
        let base = self.next.fetch_add(count as u64, Ordering::Relaxed);
        let seeds = self
            .coins
            .lock()
            .expect("pair coin block lock")
            .take(base, count);
        (base, seeds)
    }

    /// How many times the pair's coin block has refilled.
    pub fn coin_refills(&self) -> u64 {
        self.coins.lock().expect("pair coin block lock").refills()
    }

    /// The pair-scoped universe reduction, computed once from the pair
    /// seed: `Some` when the spec's universe exceeds the reduction
    /// window (so reducing helps), `None` for already-small universes.
    /// Both parties of the pair derive the identical reduction with
    /// zero transmitted bits.
    pub fn reduction(&self) -> Option<&ModPrimeReduction> {
        let spec = self.spec();
        self.reduction
            .get_or_init(|| {
                let (_lo, hi) = ModPrimeReduction::window(spec.n, spec.k);
                (spec.n > hi).then(|| {
                    let mut rng = CoinSource::from_seed(self.pair_seed)
                        .fork("pair/reduction")
                        .rng();
                    ModPrimeReduction::sample(&mut rng, spec.n, spec.k)
                })
            })
            .as_ref()
    }
}

/// A plan for protocols whose parameters are input- or
/// transcript-dependent (attempt loops that resize tables, private-coin
/// wrappers that sample the reduction at run time): preparation is the
/// identity and execution delegates to [`SetIntersection::run`], which
/// is bit-exact by construction.
#[derive(Debug, Clone)]
pub struct FallbackPlan<P> {
    proto: P,
    spec: ProblemSpec,
}

impl<P: SetIntersection + Clone + 'static> FallbackPlan<P> {
    /// Wraps `proto` as a no-op plan for `spec`.
    pub fn new(proto: P, spec: ProblemSpec) -> Self {
        FallbackPlan { proto, spec }
    }
}

impl<P: SetIntersection + Clone + 'static> PreparedProtocol for FallbackPlan<P> {
    fn name(&self) -> String {
        self.proto.name()
    }

    fn spec(&self) -> ProblemSpec {
        self.spec
    }

    fn execute(
        &self,
        chan: &mut dyn Chan,
        coins: &CoinSource,
        side: Side,
        input: &ElementSet,
    ) -> Result<ElementSet, ProtocolError> {
        self.proto.run(chan, coins, side, self.spec, input)
    }
}

thread_local! {
    /// One warm [`SessionRunner`] per thread: [`execute_prepared`] and
    /// [`execute_prepared_batch`] reuse its paired thread and channel
    /// pair across calls instead of spawning per session.
    static LOCAL_RUNNER: RefCell<Option<SessionRunner>> = const { RefCell::new(None) };
}

fn run_once(
    runner: &mut SessionRunner,
    cfg: &RunConfig,
    plan: &Arc<dyn PreparedProtocol>,
    pair: &InputPair,
) -> Result<SessionParts<ElementSet, ElementSet>, ProtocolError> {
    let plan_b = Arc::clone(plan);
    let t = pair.t.clone();
    runner.run_parts(
        cfg,
        |chan, coins| plan.execute(chan, coins, Side::Alice, &pair.s),
        move |chan, coins| plan_b.execute(chan, coins, Side::Bob, &t),
    )
}

fn run_batch_once(
    runner: &mut SessionRunner,
    cfg: &RunConfig,
    seeds: &[u64],
    plan: &Arc<dyn PreparedProtocol>,
    pairs: &[InputPair],
) -> Result<Vec<SessionParts<ElementSet, ElementSet>>, ProtocolError> {
    let plan_b = Arc::clone(plan);
    let ts: Vec<ElementSet> = pairs.iter().map(|p| p.t.clone()).collect();
    runner.run_batch_parts(
        cfg,
        seeds,
        |i, chan, coins| plan.execute(chan, coins, Side::Alice, &pairs[i].s),
        move |i, chan, coins| plan_b.execute(chan, coins, Side::Bob, &ts[i]),
    )
}

fn run_stream_once(
    runner: &mut SessionRunner,
    cfg: &RunConfig,
    base: u64,
    seeds: &[u64],
    plan: &Arc<dyn PreparedProtocol>,
    pre: Option<&Arc<dyn Any + Send + Sync>>,
    pairs: &[InputPair],
) -> Result<Vec<SessionParts<ElementSet, ElementSet>>, ProtocolError> {
    let plan_b = Arc::clone(plan);
    let pre_a = pre.cloned();
    let pre_b = pre.cloned();
    let ts: Vec<ElementSet> = pairs.iter().map(|p| p.t.clone()).collect();
    runner.run_stream_parts(
        cfg,
        seeds,
        |i, chan, coins| {
            let ctx = SessionCtx {
                index: base + i as u64,
                slot: i,
                presampled: pre_a.as_deref(),
            };
            plan.execute_in(&ctx, chan, coins, Side::Alice, &pairs[i].s)
        },
        move |i, chan, coins| {
            let ctx = SessionCtx {
                index: base + i as u64,
                slot: i,
                presampled: pre_b.as_deref(),
            };
            plan_b.execute_in(&ctx, chan, coins, Side::Bob, &ts[i])
        },
    )
}

/// Reclaims a healthy thread-local runner (starting one on first use or
/// after a worker death) and hands it to `f`. If `f`'s first attempt
/// reports runner breakage, the runner is replaced and `f` retried once
/// — infrastructure failures are not protocol failures.
fn with_local_runner<T>(
    mut f: impl FnMut(&mut SessionRunner) -> Result<T, ProtocolError>,
) -> Result<T, ProtocolError> {
    LOCAL_RUNNER.with(|cell| {
        let mut slot = cell.borrow_mut();
        let runner = slot.get_or_insert_with(SessionRunner::start);
        match f(runner) {
            Ok(v) => Ok(v),
            Err(_) => {
                let runner = slot.insert(SessionRunner::start());
                f(runner)
            }
        }
    })
}

/// The output of one prepared session, mirroring
/// [`IntersectionRun`](crate::api::IntersectionRun)'s collapse rules.
type SessionResult = Result<crate::api::IntersectionRun, ProtocolError>;

fn collapse(parts: SessionParts<ElementSet, ElementSet>) -> SessionResult {
    let out = parts.collapse()?;
    Ok(crate::api::IntersectionRun {
        alice: out.alice,
        bob: out.bob,
        report: out.report,
    })
}

/// Runs a prepared plan on `(pair.s, pair.t)` with shared seed `seed`
/// over this thread's warm [`SessionRunner`] — the single execution
/// path behind [`execute`](crate::api::execute).
///
/// Bit-for-bit identical to a dedicated
/// [`run_two_party`](intersect_comm::runner::run_two_party) call running
/// the protocol cold with the same seed.
///
/// # Errors
///
/// Propagates protocol failures with
/// [`run_two_party`](intersect_comm::runner::run_two_party)'s tie-break.
///
/// # Examples
///
/// ```
/// use intersect_core::prelude::*;
/// use intersect_core::prepared::execute_prepared;
/// use rand::SeedableRng;
///
/// let spec = ProblemSpec::new(1 << 30, 16);
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
/// let pair = InputPair::random_with_overlap(&mut rng, spec, 16, 5);
/// let plan = TreeProtocol::log_star(spec.k).prepare(spec);
/// let warm = execute_prepared(&plan, &pair, 7)?;
/// let cold = execute(&TreeProtocol::log_star(spec.k), spec, &pair, 7)?;
/// assert_eq!(warm, cold);
/// # Ok::<(), intersect_comm::error::ProtocolError>(())
/// ```
pub fn execute_prepared(
    plan: &Arc<dyn PreparedProtocol>,
    pair: &InputPair,
    seed: u64,
) -> SessionResult {
    let cfg = RunConfig::with_seed(seed);
    collapse(with_local_runner(|runner| {
        run_once(runner, &cfg, plan, pair)
    })?)
}

/// Runs `pairs.len()` same-plan sessions back-to-back over this
/// thread's warm runner: one job hand-off for the whole batch, one
/// coin-source reseed (from `seeds[i]`) per session. Session `i` is
/// bit-identical to `execute_prepared(plan, &pairs[i], seeds[i])`, and
/// a per-session protocol failure surfaces in that session's slot
/// without disturbing the rest.
///
/// # Panics
///
/// Panics if `seeds.len() != pairs.len()`.
///
/// # Errors
///
/// Fails only on infrastructure breakage (after one replace-and-retry).
pub fn execute_prepared_batch(
    plan: &Arc<dyn PreparedProtocol>,
    pairs: &[InputPair],
    seeds: &[u64],
) -> Result<Vec<SessionResult>, ProtocolError> {
    assert_eq!(seeds.len(), pairs.len(), "one seed per input pair");
    let cfg = RunConfig::with_seed(seeds.first().copied().unwrap_or(0));
    let parts = with_local_runner(|runner| run_batch_once(runner, &cfg, seeds, plan, pairs))?;
    Ok(parts.into_iter().map(collapse).collect())
}

/// Runs `pairs.len()` streamed sessions for one pair over this thread's
/// warm runner: session seeds come from the pair's [`CoinBlock`], the
/// plan [presamples](PreparedProtocol::presample) its per-session
/// artefacts for the whole block up front, and sessions run over the
/// **no-rendezvous** stream path
/// ([`run_stream_parts`](SessionRunner::run_stream_parts)) so
/// pipelining protocols amortize thread wakeups across the block.
///
/// Session `i` of the block is bit-identical to
/// `execute_prepared(ctx.plan(), &pairs[i],
/// stream_session_seed(ctx.pair_seed(), base + i))` — the seeds are pure
/// functions of the pair seed and the session index, and presampling
/// only relocates the same coin-fork draws. If the stream aborts
/// mid-block (a session failed, desynchronizing the unfenced channel),
/// the unreached suffix is transparently re-run through the fenced
/// one-shot path with the same seeds, so the caller always gets
/// `pairs.len()` results with identical bits either way.
///
/// # Errors
///
/// Fails only on runner infrastructure breakage; per-session protocol
/// failures surface in that session's slot.
pub fn execute_prepared_stream(
    ctx: &PairContext,
    pairs: &[InputPair],
) -> Result<Vec<SessionResult>, ProtocolError> {
    if pairs.is_empty() {
        return Ok(Vec::new());
    }
    let (base, seeds) = ctx.take_block(pairs.len());
    let pre = ctx.plan().presample(&seeds);
    let cfg = RunConfig::with_seed(seeds[0]);
    let parts = with_local_runner(|runner| {
        run_stream_once(runner, &cfg, base, &seeds, ctx.plan(), pre.as_ref(), pairs)
    })?;
    let mut out: Vec<SessionResult> = parts.into_iter().map(collapse).collect();
    // An aborted stream returns short: finish the suffix one-shot. The
    // seeds are the same pure functions of (pair_seed, index), so the
    // fallback sessions are bit-identical to their streamed versions.
    for i in out.len()..pairs.len() {
        out.push(execute_prepared(ctx.plan(), &pairs[i], seeds[i]));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{execute, ProtocolChoice};
    use crate::tree::TreeProtocol;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn fallback_plan_matches_cold_run() {
        let spec = ProblemSpec::new(1 << 20, 16);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let pair = InputPair::random_with_overlap(&mut rng, spec, 16, 6);
        let proto = crate::reconcile::IbltReconcile::default();
        let plan = proto.prepare(spec);
        let warm = execute_prepared(&plan, &pair, 3).unwrap();
        let cold = execute(&proto, spec, &pair, 3).unwrap();
        assert_eq!(warm, cold);
    }

    #[test]
    fn every_catalogue_plan_reports_name_and_spec() {
        let spec = ProblemSpec::new(1 << 20, 32);
        for choice in ProtocolChoice::all(3) {
            let proto = choice.build(spec);
            let plan = proto.prepare(spec);
            assert_eq!(plan.name(), proto.name(), "{choice}");
            assert_eq!(plan.spec(), spec, "{choice}");
        }
    }

    #[test]
    fn one_plan_serves_many_inputs() {
        let spec = ProblemSpec::new(1 << 30, 32);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let plan = TreeProtocol::log_star(spec.k).prepare(spec);
        for seed in 0..8 {
            let pair = InputPair::random_with_overlap(&mut rng, spec, 32, seed as usize % 32);
            let run = execute_prepared(&plan, &pair, seed).unwrap();
            assert!(run.matches(&pair.ground_truth()), "seed {seed}");
        }
    }

    #[test]
    fn streamed_sessions_match_seed_derived_one_shot_runs() {
        use intersect_comm::coins::stream_session_seed;
        let spec = ProblemSpec::new(1 << 30, 64);
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let plan = TreeProtocol::new(2).prepare(spec);
        let ctx = PairContext::new(Arc::clone(&plan), 0xfeed);
        let pairs: Vec<InputPair> = (0..5)
            .map(|i| InputPair::random_with_overlap(&mut rng, spec, 64, 10 * i))
            .collect();
        let streamed = execute_prepared_stream(&ctx, &pairs).unwrap();
        assert_eq!(streamed.len(), pairs.len());
        for (i, (pair, run)) in pairs.iter().zip(streamed).enumerate() {
            let seed = stream_session_seed(0xfeed, i as u64);
            let solo = execute_prepared(&plan, pair, seed).unwrap();
            assert_eq!(run.unwrap(), solo, "session {i}");
        }
    }

    #[test]
    fn pair_context_indices_are_monotone_across_submissions() {
        use intersect_comm::coins::stream_session_seed;
        let spec = ProblemSpec::new(1 << 30, 32);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let plan = TreeProtocol::log_star(spec.k).prepare(spec);
        let ctx = PairContext::new(Arc::clone(&plan), 7);
        let pairs: Vec<InputPair> = (0..4)
            .map(|_| InputPair::random_with_overlap(&mut rng, spec, 32, 16))
            .collect();
        // Two submissions over the same context: sessions keep numbering
        // from where the previous block stopped.
        let first = execute_prepared_stream(&ctx, &pairs[..2]).unwrap();
        let second = execute_prepared_stream(&ctx, &pairs[2..]).unwrap();
        assert_eq!(ctx.sessions(), 4);
        for (i, run) in first.into_iter().chain(second).enumerate() {
            let seed = stream_session_seed(7, i as u64);
            let solo = execute_prepared(&plan, &pairs[i], seed).unwrap();
            assert_eq!(run.unwrap(), solo, "session {i}");
        }
    }

    #[test]
    fn pair_context_reduction_is_pair_deterministic() {
        let spec = ProblemSpec::new(1 << 40, 64);
        let plan = TreeProtocol::new(2).prepare(spec);
        let a = PairContext::new(Arc::clone(&plan), 42);
        let b = PairContext::new(Arc::clone(&plan), 42);
        let c = PairContext::new(Arc::clone(&plan), 43);
        let ra = a.reduction().expect("2^40 universe reduces");
        assert_eq!(Some(ra), b.reduction(), "same pair seed, same reduction");
        assert_ne!(Some(ra), c.reduction(), "distinct pairs draw independently");
        // Small universes don't reduce.
        let small = ProblemSpec::new(1 << 10, 4);
        let ctx = PairContext::new(TreeProtocol::new(2).prepare(small), 42);
        assert!(ctx.reduction().is_none());
    }

    #[test]
    fn batch_sessions_match_individual_prepared_runs() {
        let spec = ProblemSpec::new(1 << 30, 64);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let plan = TreeProtocol::new(2).prepare(spec);
        let pairs: Vec<InputPair> = (0..6)
            .map(|i| InputPair::random_with_overlap(&mut rng, spec, 64, 8 * i))
            .collect();
        let seeds: Vec<u64> = (100..106).collect();
        let batched = execute_prepared_batch(&plan, &pairs, &seeds).unwrap();
        for ((pair, &seed), batch_run) in pairs.iter().zip(&seeds).zip(batched) {
            let solo = execute_prepared(&plan, pair, seed).unwrap();
            assert_eq!(batch_run.unwrap(), solo);
        }
    }
}
