//! Iterated logarithms.
//!
//! The paper's round/communication trade-off is stated in terms of
//! `log^(r) k` — the logarithm applied `r` times (`log^(0) k = k`,
//! `log^(1) k = log k`, …) — and `log* k`, the number of applications
//! needed to reach 1. We work over the integers with `log x = ⌈log₂ x⌉`,
//! clamped so the sequence stabilizes at 1.

/// `⌈log₂ x⌉` for `x ≥ 1` (0 for `x = 1`).
///
/// # Panics
///
/// Panics if `x == 0`.
pub fn ceil_log2(x: u64) -> u64 {
    assert!(x > 0, "log of zero");
    (64 - (x - 1).leading_zeros()) as u64
}

/// `⌊log₂ x⌋` for `x ≥ 1`.
///
/// # Panics
///
/// Panics if `x == 0`.
pub fn floor_log2(x: u64) -> u64 {
    assert!(x > 0, "log of zero");
    (63 - x.leading_zeros()) as u64
}

/// The iterated logarithm `log^(r) k` (integer version, clamped at 1):
/// `log^(0) k = k`, `log^(i+1) k = max(1, ⌈log₂(log^(i) k)⌉)`.
///
/// # Examples
///
/// ```
/// use intersect_core::iterlog::iter_log;
/// assert_eq!(iter_log(0, 1 << 16), 1 << 16);
/// assert_eq!(iter_log(1, 1 << 16), 16);
/// assert_eq!(iter_log(2, 1 << 16), 4);
/// assert_eq!(iter_log(3, 1 << 16), 2);
/// assert_eq!(iter_log(4, 1 << 16), 1);
/// assert_eq!(iter_log(100, 1 << 16), 1);
/// ```
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn iter_log(r: u32, k: u64) -> u64 {
    let mut v = k.max(1);
    assert!(k > 0, "iterated log of zero");
    for _ in 0..r {
        if v <= 1 {
            return 1;
        }
        v = ceil_log2(v).max(1);
    }
    v.max(1)
}

/// `log* k`: the number of `⌈log₂⌉` applications needed to bring `k` to 1.
///
/// # Examples
///
/// ```
/// use intersect_core::iterlog::log_star;
/// assert_eq!(log_star(1), 0);
/// assert_eq!(log_star(2), 1);
/// assert_eq!(log_star(4), 2);
/// assert_eq!(log_star(16), 3);
/// assert_eq!(log_star(1 << 16), 4);
/// assert_eq!(log_star(u64::MAX), 5);
/// ```
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn log_star(k: u64) -> u32 {
    assert!(k > 0, "log* of zero");
    let mut v = k;
    let mut r = 0;
    while v > 1 {
        v = ceil_log2(v).max(1);
        r += 1;
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ceil_log2_values() {
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(4), 2);
        assert_eq!(ceil_log2(5), 3);
        assert_eq!(ceil_log2(1024), 10);
        assert_eq!(ceil_log2(1025), 11);
        assert_eq!(ceil_log2(u64::MAX), 64);
    }

    #[test]
    fn floor_log2_values() {
        assert_eq!(floor_log2(1), 0);
        assert_eq!(floor_log2(2), 1);
        assert_eq!(floor_log2(3), 1);
        assert_eq!(floor_log2(4), 2);
        assert_eq!(floor_log2(u64::MAX), 63);
    }

    #[test]
    fn iter_log_decreases_monotonically_in_r() {
        for k in [2u64, 17, 1 << 10, 1 << 20, u64::MAX] {
            for r in 0..8 {
                assert!(iter_log(r + 1, k) <= iter_log(r, k).max(1), "k={k} r={r}");
            }
        }
    }

    #[test]
    fn iter_log_stabilizes_at_one() {
        assert_eq!(iter_log(10, u64::MAX), 1);
        assert_eq!(iter_log(0, 1), 1);
        assert_eq!(iter_log(1, 1), 1);
    }

    #[test]
    fn log_star_is_consistent_with_iter_log() {
        for k in [1u64, 2, 3, 4, 5, 16, 17, 65_536, 65_537, u64::MAX] {
            let r = log_star(k);
            assert_eq!(iter_log(r, k), 1, "k = {k}");
            if r > 0 {
                assert!(iter_log(r - 1, k) > 1, "k = {k}");
            }
        }
    }

    #[test]
    fn log_star_is_tiny_for_all_practical_k() {
        assert!(log_star(u64::MAX) <= 5);
    }
}
