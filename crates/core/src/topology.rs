//! Party topologies: the session shape generalized from "a pair" to
//! `m` players.
//!
//! Everything above the transport used to assume exactly two parties.
//! This module is the shared vocabulary that lets the engine, the plan
//! cache, and the network plane reason about `m`-party sessions with the
//! pair as the `m = 2` special case:
//!
//! * [`PartyTopology`] — how many players and how they are grouped per
//!   recursion level (the paper's "groups of at most `2k`");
//! * [`SessionShape`] — pair vs. tournament, for dispatch and display;
//! * [`partition`] / [`pair_label`] — the grouping and coin-label
//!   functions the Section-4 protocols share (re-exported by
//!   `intersect-multiparty::common`, their historical home);
//! * [`PreparedTournament`] — a fully derived schedule (tree shape,
//!   per-level matches, apex certificate pairs, winners) that the
//!   engine's generation-tagged plan cache stores per
//!   `(protocol, spec, m)` so repeated `m`-party submissions skip the
//!   derivation, and from which per-player conformance envelopes are
//!   computed.
//!
//! The derivations here are *descriptive*: they mirror, move for move,
//! the schedules the protocols in `intersect-multiparty` execute (the
//! balanced bracket of Corollary 4.2 and the coordinator star of
//! Corollary 4.1), and equivalence is pinned by tests on both sides.

use crate::sets::ProblemSpec;

/// Splits the active player list into consecutive groups of at most
/// `group_size` (the paper's "groups of size at most 2k").
///
/// # Panics
///
/// Panics if `group_size < 2`.
pub fn partition(actives: &[usize], group_size: usize) -> Vec<Vec<usize>> {
    assert!(group_size >= 2, "groups must pair at least two players");
    actives.chunks(group_size).map(|c| c.to_vec()).collect()
}

/// A deterministic label for the coins of a pairwise run, identical on
/// both endpoints.
pub fn pair_label(scope: &str, level: usize, a: usize, b: usize) -> String {
    let (lo, hi) = if a < b { (a, b) } else { (b, a) };
    format!("mp/{scope}/level{level}/{lo}-{hi}")
}

/// The shape of a session: a plain pair, or an `m`-party tournament.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SessionShape {
    /// The classic two-party session every layer originally assumed.
    Pair,
    /// An `m`-party session recursing over `levels` grouping levels.
    Tournament {
        /// Number of players (`m > 2`).
        players: usize,
        /// Number of recursion levels until one player remains.
        levels: usize,
    },
}

/// How many players a session spans and how they group per level.
///
/// The pair is the `m = 2` special case ([`PartyTopology::pair`]): one
/// level, one group, one match.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PartyTopology {
    /// Number of players, `≥ 1`.
    pub players: usize,
    /// Maximum group size per recursion level, `≥ 2`.
    pub group_size: usize,
}

impl PartyTopology {
    /// The two-party special case.
    pub fn pair() -> PartyTopology {
        PartyTopology {
            players: 2,
            group_size: 2,
        }
    }

    /// An `m`-party topology with explicit group size.
    ///
    /// # Panics
    ///
    /// Panics if `players == 0` or `group_size < 2`.
    pub fn new(players: usize, group_size: usize) -> PartyTopology {
        assert!(players >= 1, "topology needs at least one player");
        assert!(group_size >= 2, "groups must pair at least two players");
        PartyTopology {
            players,
            group_size,
        }
    }

    /// The paper's parameterization for cardinality bound `k`: groups of
    /// `2k` (at least 2).
    pub fn for_spec(players: usize, spec: ProblemSpec) -> PartyTopology {
        PartyTopology::new(players, (2 * spec.k as usize).max(2))
    }

    /// `true` iff this is the two-party special case.
    pub fn is_pair(&self) -> bool {
        self.players <= 2
    }

    /// Number of recursion levels until a single active player remains.
    pub fn levels(&self) -> usize {
        let mut actives = self.players;
        let mut levels = 0;
        while actives > 1 {
            actives = actives.div_ceil(self.group_size);
            levels += 1;
        }
        levels
    }

    /// This topology's [`SessionShape`].
    pub fn shape(&self) -> SessionShape {
        if self.is_pair() {
            SessionShape::Pair
        } else {
            SessionShape::Tournament {
                players: self.players,
                levels: self.levels(),
            }
        }
    }
}

/// How matches inside each group are scheduled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TournamentKind {
    /// Balanced in-group bracket with an apex certificate
    /// (Corollary 4.2, `WorstCase`).
    Bracket,
    /// Coordinator star: the group head plays every member in parallel
    /// (Corollary 4.1, `AverageCase` and disjointness on top of it).
    Star,
}

/// One pairwise match of a tournament level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TournamentMatch {
    /// The lower-bracket (Alice) side; carries the result upward.
    pub host: usize,
    /// The upper-bracket (Bob) side; eliminated after the match.
    pub guest: usize,
    /// Bracket step (`2^d` distance) the match belongs to; 0 for star
    /// levels, where all matches run in parallel.
    pub step: usize,
}

/// One recursion level of a prepared tournament.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TournamentLevel {
    /// The groups active players were partitioned into.
    pub groups: Vec<Vec<usize>>,
    /// Every pairwise match of the level, in schedule order.
    pub matches: Vec<TournamentMatch>,
    /// Apex certificate pairs `(winner, partner)` — bracket levels only.
    pub cert_pairs: Vec<(usize, usize)>,
    /// The players surviving into the next level (group heads).
    pub winners: Vec<usize>,
}

/// A fully derived `m`-party session plan: tree shape, per-level match
/// schedule, and the per-level pair labels the coin forks use.
///
/// Prepared once per `(protocol, spec, m)` and cached by the engine's
/// generation-tagged plan cache; consumed for per-player conformance
/// envelopes and the obs/TUI shape summaries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PreparedTournament {
    /// The topology the plan was derived for.
    pub topology: PartyTopology,
    /// Bracket or star scheduling.
    pub kind: TournamentKind,
    /// The derived levels, root-ward.
    pub levels: Vec<TournamentLevel>,
}

impl PreparedTournament {
    /// Derives the full schedule for `topology` under `kind`.
    ///
    /// The bracket derivation mirrors `WorstCase::group_tournament`
    /// (rank `i` with `i % 2^{d+1} == 0` hosts rank `i + 2^d`); the star
    /// derivation mirrors `AverageCase::coordinate` (head plays every
    /// member). Both take the group heads as winners, so the recursion
    /// shape is identical to the executed protocols'.
    pub fn prepare(topology: PartyTopology, kind: TournamentKind) -> PreparedTournament {
        let mut levels = Vec::new();
        let mut actives: Vec<usize> = (0..topology.players).collect();
        while actives.len() > 1 {
            let groups = partition(&actives, topology.group_size.max(2));
            let mut matches = Vec::new();
            let mut cert_pairs = Vec::new();
            for group in &groups {
                match kind {
                    TournamentKind::Bracket => {
                        let mut step_size = 1usize;
                        let mut apex: Option<(usize, usize)> = None;
                        while step_size < group.len() {
                            let last_step = step_size * 2 >= group.len();
                            for rank in (0..group.len()).step_by(2 * step_size) {
                                if rank + step_size < group.len() {
                                    matches.push(TournamentMatch {
                                        host: group[rank],
                                        guest: group[rank + step_size],
                                        step: step_size,
                                    });
                                    if last_step && rank == 0 {
                                        apex = Some((group[0], group[step_size]));
                                    }
                                }
                            }
                            step_size *= 2;
                        }
                        if let Some(pair) = apex {
                            cert_pairs.push(pair);
                        }
                    }
                    TournamentKind::Star => {
                        for &member in &group[1..] {
                            matches.push(TournamentMatch {
                                host: group[0],
                                guest: member,
                                step: 0,
                            });
                        }
                    }
                }
            }
            let winners: Vec<usize> = groups.iter().map(|g| g[0]).collect();
            levels.push(TournamentLevel {
                groups,
                matches,
                cert_pairs,
                winners: winners.clone(),
            });
            actives = winners;
        }
        PreparedTournament {
            topology,
            kind,
            levels,
        }
    }

    /// Per-player pairwise match counts over all levels (both sides of a
    /// match count once; apex certificates count as one extra match for
    /// each endpoint).
    pub fn match_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.topology.players];
        for level in &self.levels {
            for m in &level.matches {
                counts[m.host] += 1;
                counts[m.guest] += 1;
            }
            for &(a, b) in &level.cert_pairs {
                counts[a] += 1;
                counts[b] += 1;
            }
        }
        counts
    }

    /// The heaviest player's match count — the tournament's load bound.
    pub fn max_matches_per_player(&self) -> usize {
        self.match_counts().into_iter().max().unwrap_or(0)
    }

    /// Total matches across all levels (certificates excluded).
    pub fn total_matches(&self) -> usize {
        self.levels.iter().map(|l| l.matches.len()).sum()
    }

    /// The coin labels of every match, level by level, via
    /// [`pair_label`] — exactly the labels the protocols fork under
    /// `scope` (e.g. `"avg"`, `"wc-a0"`).
    pub fn pair_labels(&self, scope: &str) -> Vec<String> {
        self.levels
            .iter()
            .enumerate()
            .flat_map(|(level, l)| {
                l.matches
                    .iter()
                    .map(move |m| pair_label(scope, level, m.host, m.guest))
            })
            .collect()
    }

    /// A per-player communication envelope in bits: the player's match
    /// count times the predicted pairwise cost, widened by `slack` for
    /// certificate retries, plus the verdict broadcasts. Conformance
    /// checks compare a session's measured per-player maximum against
    /// this bound — generous by construction, like the two-party
    /// `theory_envelope`.
    pub fn player_envelope_bits(&self, pairwise_bits: f64, slack: f64) -> f64 {
        let worst = self.max_matches_per_player() as f64;
        let broadcast = self.topology.group_size as f64 + self.topology.players as f64;
        (worst * pairwise_bits).mul_add(slack.max(1.0), broadcast)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_is_the_two_player_special_case() {
        let t = PartyTopology::pair();
        assert!(t.is_pair());
        assert_eq!(t.shape(), SessionShape::Pair);
        assert_eq!(t.levels(), 1);
        let plan = PreparedTournament::prepare(t, TournamentKind::Bracket);
        assert_eq!(plan.levels.len(), 1);
        assert_eq!(
            plan.levels[0].matches,
            vec![TournamentMatch {
                host: 0,
                guest: 1,
                step: 1
            }]
        );
        assert_eq!(plan.levels[0].winners, vec![0]);
        // One pairwise match plus the apex certificate exchange each.
        assert_eq!(plan.levels[0].cert_pairs, vec![(0, 1)]);
        assert_eq!(plan.match_counts(), vec![2, 2]);
    }

    #[test]
    fn levels_shrink_by_group_size() {
        let t = PartyTopology::new(40, 4);
        // 40 -> 10 -> 3 -> 1.
        assert_eq!(t.levels(), 3);
        assert_eq!(
            t.shape(),
            SessionShape::Tournament {
                players: 40,
                levels: 3
            }
        );
    }

    #[test]
    fn bracket_matches_cover_every_group_member_once_per_step() {
        let t = PartyTopology::new(16, 8);
        let plan = PreparedTournament::prepare(t, TournamentKind::Bracket);
        assert_eq!(plan.levels.len(), 2);
        let l0 = &plan.levels[0];
        assert_eq!(l0.groups.len(), 2);
        // A full bracket over 8 players has 4 + 2 + 1 matches per group.
        assert_eq!(l0.matches.len(), 2 * 7);
        assert_eq!(l0.cert_pairs, vec![(0, 4), (8, 12)]);
        assert_eq!(l0.winners, vec![0, 8]);
        // Every player is a guest at most once (single elimination).
        let mut guest_seen = [0usize; 16];
        for m in &l0.matches {
            guest_seen[m.guest] += 1;
        }
        assert!(guest_seen.iter().all(|&c| c <= 1));
    }

    #[test]
    fn star_levels_pair_the_head_with_every_member() {
        let t = PartyTopology::new(7, 4);
        let plan = PreparedTournament::prepare(t, TournamentKind::Star);
        let l0 = &plan.levels[0];
        assert_eq!(l0.groups, vec![vec![0, 1, 2, 3], vec![4, 5, 6]]);
        assert_eq!(l0.matches.len(), 3 + 2);
        assert!(l0.matches.iter().all(|m| m.host == 0 || m.host == 4));
        assert!(l0.cert_pairs.is_empty());
        // Second level: the two heads pair up.
        assert_eq!(plan.levels[1].matches.len(), 1);
        assert_eq!(plan.match_counts()[0], 3 + 1);
    }

    #[test]
    fn bracket_load_is_logarithmic_star_load_is_linear() {
        let t = PartyTopology::new(32, 32);
        let bracket = PreparedTournament::prepare(t, TournamentKind::Bracket);
        let star = PreparedTournament::prepare(t, TournamentKind::Star);
        // One full group of 32: bracket head plays log2(32) + cert = 6
        // matches, star head plays 31.
        assert_eq!(bracket.max_matches_per_player(), 6);
        assert_eq!(star.max_matches_per_player(), 31);
        assert!(bracket.player_envelope_bits(100.0, 2.0) < star.player_envelope_bits(100.0, 2.0));
    }

    #[test]
    fn pair_labels_match_protocol_label_format() {
        let plan = PreparedTournament::prepare(PartyTopology::new(3, 2), TournamentKind::Bracket);
        let labels = plan.pair_labels("wc-a0");
        assert_eq!(labels[0], "mp/wc-a0/level0/0-1");
        assert!(labels.contains(&pair_label("wc-a0", 1, 0, 2)));
    }

    #[test]
    fn odd_group_tails_keep_all_players_covered() {
        for m in [3usize, 5, 9, 11, 17] {
            let plan =
                PreparedTournament::prepare(PartyTopology::new(m, 4), TournamentKind::Bracket);
            // Every player either wins some level or is a guest exactly once.
            let mut eliminated = vec![false; m];
            for level in &plan.levels {
                for mt in &level.matches {
                    assert!(!eliminated[mt.guest], "m={m}: {mt:?} guest already out");
                    eliminated[mt.guest] = true;
                }
            }
            let survivors = eliminated.iter().filter(|&&e| !e).count();
            assert_eq!(survivors, 1, "m={m}: exactly one player survives");
        }
    }
}
