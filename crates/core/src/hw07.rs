//! The Håstad–Wigderson disjointness baseline: `R(DISJ_k) = O(k)` in
//! `O(log k)` rounds \[HW07\].
//!
//! The original protocol interprets the common random string as a sequence
//! of sets `Z_1, Z_2, …` and has a player announce the index of the first
//! set containing her *whole* input — an `|S|`-bit message (the index is
//! geometric with mean `2^{|S|}`) after which the other player's set
//! shrinks by half. Cost halves each sweep: `k + k/2 + … = O(k)`.
//!
//! Announcing one index for the whole set requires searching `~2^{|S|}`
//! public sets, which is communication-optimal but computationally
//! infeasible. We keep the mechanism but make it computable: a *shared*
//! hash splits the sender's set into groups of ~12 elements, the sender
//! announces one superset index per group (`~2^{12}` candidates searched,
//! ≈ 2 bits per element on the wire), and the receiver keeps `y` iff `y`
//! lies in the announced set *of `y`'s own group* — which it can determine
//! because the grouping hash is shared. Intersection elements always
//! survive (their group's set contains them by construction); others
//! survive with probability ½ per sweep. The cost and round behaviour —
//! `O(k)` bits, `O(log k)` sweeps — match \[HW07\]; only the constant in the
//! bits-per-element differs (≈ 2.2 vs 1). Documented in DESIGN.md §1.1.

use crate::iterlog::ceil_log2;
use crate::sets::{ElementSet, ProblemSpec};
use intersect_comm::bits::BitBuf;
use intersect_comm::chan::Chan;
use intersect_comm::coins::CoinSource;
use intersect_comm::encode::{get_gamma, get_gamma0, put_gamma, put_gamma0};
use intersect_comm::error::ProtocolError;
use intersect_comm::runner::Side;
use intersect_hash::pairwise::PairwiseHash;

/// The grouped Håstad–Wigderson disjointness protocol.
///
/// Returns `true` iff the inputs are judged disjoint; both parties return
/// the same verdict. One-sided error: a `true` verdict can only be wrong
/// with the final-check probability `2^{-final_check_bits}`; `false` on
/// disjoint inputs is similarly unlikely… in fact a `false` verdict implies
/// a fingerprint match in the final check, so both error directions are
/// bounded by the final check.
///
/// # Examples
///
/// ```
/// use intersect_core::hw07::HwDisjointness;
/// use intersect_core::sets::{ElementSet, ProblemSpec};
/// use intersect_comm::runner::{run_two_party, RunConfig, Side};
///
/// let spec = ProblemSpec::new(1 << 20, 8);
/// let s = ElementSet::from_iter([1u64, 3, 5, 7]);
/// let t = ElementSet::from_iter([0u64, 2, 4, 6]);
/// let proto = HwDisjointness::default();
/// let out = run_two_party(
///     &RunConfig::with_seed(1),
///     |chan, coins| proto.run(chan, &coins.fork("hw"), Side::Alice, spec, &s),
///     |chan, coins| proto.run(chan, &coins.fork("hw"), Side::Bob, spec, &t),
/// )?;
/// assert!(out.alice && out.bob);
/// # Ok::<(), intersect_comm::error::ProtocolError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HwDisjointness {
    /// Target elements per announced superset (the searched space is
    /// `~2^target`, so keep this modest).
    pub group_target: usize,
    /// Error exponent of the final verification.
    pub final_check_bits: usize,
}

impl Default for HwDisjointness {
    fn default() -> Self {
        HwDisjointness {
            group_target: 12,
            final_check_bits: 20,
        }
    }
}

/// Search horizon for superset indices: `Pr[miss] ≤ (1 − 2^{-cap})^{2^22}`
/// is negligible for subchunks of ≤ `cap` elements.
const SEARCH_LIMIT: u64 = 1 << 22;
/// A sentinel index meaning "no set found — treat `Z` as the full universe"
/// (keeps correctness; costs a wasted sweep with negligible probability).
const SENTINEL: u64 = SEARCH_LIMIT + 1;

impl HwDisjointness {
    /// Runs the protocol; see [module docs](self).
    ///
    /// # Errors
    ///
    /// Fails on invalid inputs or transport errors.
    pub fn run(
        &self,
        chan: &mut dyn Chan,
        coins: &CoinSource,
        side: Side,
        spec: ProblemSpec,
        input: &ElementSet,
    ) -> Result<bool, ProtocolError> {
        spec.validate(input).map_err(ProtocolError::InvalidInput)?;
        let cap = self.group_target.clamp(1, 16);
        let mut mine: Vec<u64> = input.iter().collect();
        let max_sweeps = 2 * ceil_log2(spec.k.max(2)) + 6;
        // Sizes announced at each sweep — known to BOTH parties, so both
        // apply the same stop rule and stay in lockstep.
        let mut announced: Vec<u64> = Vec::new();

        for sweep in 0..max_sweeps {
            let sweep_coins = coins.fork(&format!("sweep{sweep}"));
            let i_send = (sweep % 2 == 0) == side.is_alice();
            if i_send {
                if mine.is_empty() {
                    let mut msg = BitBuf::new();
                    put_gamma0(&mut msg, 0);
                    chan.send(msg)?;
                    return Ok(true);
                }
                announced.push(mine.len() as u64);
                let msg = self.announce(&sweep_coins, spec, &mine, cap);
                chan.send(msg)?;
            } else {
                let msg = chan.recv()?;
                let mut r = msg.reader();
                let sender_size = get_gamma0(&mut r)?;
                if sender_size == 0 {
                    return Ok(true);
                }
                announced.push(sender_size);
                mine = self.filter(&sweep_coins, spec, &mine, sender_size, &msg, r)?;
            }
            // Shared stop rule: once each side announces the same size
            // twice in a row, the shrink has stalled at the intersection.
            let t = announced.len();
            if t >= 4
                && announced[t - 1] == announced[t - 3]
                && announced[t - 2] == announced[t - 4]
            {
                break;
            }
        }

        // Final check: compare fingerprints of the survivors.
        self.final_check(chan, &coins.fork("final"), side, spec, &mine)
    }

    /// Builds a sweep announcement: own size, then per-group subchunk
    /// counts and superset indices.
    fn announce(
        &self,
        sweep_coins: &CoinSource,
        spec: ProblemSpec,
        mine: &[u64],
        cap: usize,
    ) -> BitBuf {
        let groups = (mine.len().div_ceil(cap)).max(1) as u64;
        let gh = PairwiseHash::sample(&mut sweep_coins.fork("group").rng(), spec.n, groups);
        let mut grouped: Vec<Vec<u64>> = vec![Vec::new(); groups as usize];
        for &x in mine {
            grouped[gh.eval(x) as usize].push(x);
        }
        let mut msg = BitBuf::new();
        put_gamma0(&mut msg, mine.len() as u64);
        for (gamma_idx, group) in grouped.iter().enumerate() {
            let chunks: Vec<&[u64]> = group.chunks(cap).collect();
            put_gamma0(&mut msg, chunks.len() as u64);
            for (c, chunk) in chunks.iter().enumerate() {
                let j = self.find_superset(sweep_coins, gamma_idx as u64, c as u64, chunk);
                put_gamma(&mut msg, j);
            }
        }
        msg
    }

    /// Smallest `j` with `chunk ⊆ Z_{γ,c,j}`, or the sentinel.
    fn find_superset(&self, sweep_coins: &CoinSource, gamma: u64, c: u64, chunk: &[u64]) -> u64 {
        let ctx = gamma << 20 | c;
        'search: for j in 1..=SEARCH_LIMIT {
            for &x in chunk {
                if sweep_coins.mix64(ctx.wrapping_mul(SEARCH_LIMIT).wrapping_add(j), x) & 1 == 0 {
                    continue 'search;
                }
            }
            return j;
        }
        SENTINEL
    }

    /// Applies a received announcement to the local set.
    fn filter(
        &self,
        sweep_coins: &CoinSource,
        spec: ProblemSpec,
        mine: &[u64],
        sender_size: u64,
        _msg: &BitBuf,
        mut r: intersect_comm::bits::BitReader<'_>,
    ) -> Result<Vec<u64>, ProtocolError> {
        let cap = self.group_target.clamp(1, 16);
        let groups = ((sender_size as usize).div_ceil(cap)).max(1) as u64;
        let gh = PairwiseHash::sample(&mut sweep_coins.fork("group").rng(), spec.n, groups);
        let mut indices: Vec<Vec<u64>> = Vec::with_capacity(groups as usize);
        for _ in 0..groups {
            let chunk_count = get_gamma0(&mut r)?;
            let mut js = Vec::with_capacity(chunk_count as usize);
            for _ in 0..chunk_count {
                js.push(get_gamma(&mut r)?);
            }
            indices.push(js);
        }
        Ok(mine
            .iter()
            .copied()
            .filter(|&y| {
                let gamma = gh.eval(y);
                let ctx = gamma << 20;
                indices[gamma as usize].iter().enumerate().any(|(c, &j)| {
                    j == SENTINEL
                        || sweep_coins.mix64(
                            (ctx | c as u64).wrapping_mul(SEARCH_LIMIT).wrapping_add(j),
                            y,
                        ) & 1
                            == 1
                })
            })
            .collect())
    }

    /// Compares the surviving sets with fingerprint precision
    /// `2^{-final_check_bits}`; returns `true` iff judged disjoint.
    fn final_check(
        &self,
        chan: &mut dyn Chan,
        coins: &CoinSource,
        side: Side,
        spec: ProblemSpec,
        mine: &[u64],
    ) -> Result<bool, ProtocolError> {
        let e = self.final_check_bits.max(8);
        let range = 1u64 << e.min(60);
        let h = PairwiseHash::sample(&mut coins.fork("h").rng(), spec.n, range);
        match side {
            Side::Alice => {
                let mut msg = BitBuf::new();
                put_gamma0(&mut msg, mine.len() as u64);
                for &x in mine {
                    msg.push_bits(h.eval(x), e.min(60));
                }
                chan.send(msg)?;
                let reply = chan.recv()?;
                Ok(reply.get(0).unwrap_or(false))
            }
            Side::Bob => {
                let msg = chan.recv()?;
                let mut r = msg.reader();
                let count = get_gamma0(&mut r)?;
                let mut theirs = std::collections::HashSet::new();
                for _ in 0..count {
                    theirs.insert(r.read_bits(e.min(60))?);
                }
                let disjoint = !mine.iter().any(|&y| theirs.contains(&h.eval(y)));
                let mut verdict = BitBuf::new();
                verdict.push_bit(disjoint);
                chan.send(verdict)?;
                Ok(disjoint)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sets::InputPair;
    use intersect_comm::runner::{run_two_party, RunConfig};
    use intersect_comm::stats::CostReport;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn run_hw(
        seed: u64,
        spec: ProblemSpec,
        s: &ElementSet,
        t: &ElementSet,
    ) -> (bool, bool, CostReport) {
        let proto = HwDisjointness::default();
        let out = run_two_party(
            &RunConfig::with_seed(seed),
            |chan, coins| proto.run(chan, &coins.fork("hw"), Side::Alice, spec, s),
            |chan, coins| proto.run(chan, &coins.fork("hw"), Side::Bob, spec, t),
        )
        .unwrap();
        (out.alice, out.bob, out.report)
    }

    #[test]
    fn disjoint_inputs_judged_disjoint() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let spec = ProblemSpec::new(1 << 24, 64);
        for seed in 0..20 {
            let pair = InputPair::random_with_overlap(&mut rng, spec, 64, 0);
            let (a, b, _) = run_hw(seed, spec, &pair.s, &pair.t);
            assert_eq!(a, b);
            assert!(a, "seed {seed}: disjoint inputs misjudged");
        }
    }

    #[test]
    fn intersecting_inputs_judged_intersecting() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let spec = ProblemSpec::new(1 << 24, 64);
        for overlap in [1usize, 2, 32, 64] {
            let pair = InputPair::random_with_overlap(&mut rng, spec, 64, overlap);
            let (a, b, _) = run_hw(overlap as u64, spec, &pair.s, &pair.t);
            assert_eq!(a, b);
            assert!(!a, "overlap {overlap} misjudged as disjoint");
        }
    }

    #[test]
    fn cost_is_linear_in_k_for_disjoint_inputs() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut per_k = Vec::new();
        for k in [128usize, 512] {
            let spec = ProblemSpec::new(1 << 40, k as u64);
            let pair = InputPair::random_with_overlap(&mut rng, spec, k, 0);
            let (a, _, report) = run_hw(1, spec, &pair.s, &pair.t);
            assert!(a);
            per_k.push(report.total_bits() as f64 / k as f64);
        }
        assert!(
            per_k[1] < per_k[0] * 1.8,
            "per-element cost grew: {per_k:?}"
        );
        assert!(per_k[1] < 20.0, "per-element cost too high: {per_k:?}");
    }

    #[test]
    fn rounds_are_logarithmic() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let spec = ProblemSpec::new(1 << 30, 256);
        let pair = InputPair::random_with_overlap(&mut rng, spec, 256, 0);
        let (_, _, report) = run_hw(1, spec, &pair.s, &pair.t);
        assert!(
            report.rounds <= 2 * 8 + 10,
            "rounds = {} for k = 256",
            report.rounds
        );
    }

    #[test]
    fn empty_sets_are_disjoint() {
        let spec = ProblemSpec::new(100, 4);
        let empty = ElementSet::new();
        let t = ElementSet::from_iter([1u64, 2]);
        let (a, b, _) = run_hw(1, spec, &empty, &t);
        assert!(a && b);
        let (a, b, _) = run_hw(2, spec, &t, &empty);
        assert!(a && b);
    }

    #[test]
    fn single_shared_element_is_found() {
        // The hardest case: exactly one common element among many.
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let spec = ProblemSpec::new(1 << 30, 128);
        let mut wrong = 0;
        for seed in 0..20 {
            let pair = InputPair::random_with_overlap(&mut rng, spec, 128, 1);
            let (a, _, _) = run_hw(seed, spec, &pair.s, &pair.t);
            if a {
                wrong += 1;
            }
        }
        assert_eq!(wrong, 0, "{wrong}/20 single-element intersections missed");
    }
}
