//! Difference-proportional intersection via invertible Bloom lookup
//! tables (IBLTs) — a modern-practice baseline the paper predates.
//!
//! Set-reconciliation folklore (Eppstein–Goodrich–Uyeda–Varghese's
//! "What's the Difference?", and the Minisketch line of work) recovers the
//! *symmetric difference* `S Δ T` at cost `O(d·(log n + λ))` bits where
//! `d = |S Δ T|` — independent of `k`. Since
//! `S ∩ T = S ∖ (S ∖ T)`, this also recovers the intersection, and for
//! *mostly-overlapping* sets (`d ≪ k / log n`) it beats the paper's
//! `O(k)` bound; for small overlaps (`d ≈ 2k`) it degrades to
//! `O(k·log n)` — worse than even the trivial exchange. Experiment E14
//! locates the crossover. The paper's protocols are optimal in the
//! worst case over inputs with `|S|,|T| ≤ k`; this baseline shows what
//! input-adaptivity (parameterizing by `d` instead of `k`) buys.
//!
//! The IBLT here is the classic 3-subtable design: each element occupies
//! one cell per subtable; a cell holds a signed count, an XOR of keys, and
//! an XOR of key checksums. Alice sends her table; Bob subtracts his and
//! *peels* pure cells (count ±1 with a matching checksum) until the table
//! drains. Since neither party knows `d` in advance, the protocol doubles
//! the table size until peeling succeeds — expected `O(log d)` attempts
//! from a small initial size, each a 2-message round trip.

use crate::api::SetIntersection;
use crate::sets::{ElementSet, ProblemSpec};
use intersect_comm::bits::{bit_width_for, BitBuf};
use intersect_comm::chan::Chan;
use intersect_comm::coins::CoinSource;
use intersect_comm::encode::{get_gamma0, put_gamma0, RiceSubsetCodec};
use intersect_comm::error::ProtocolError;
use intersect_comm::runner::Side;
use intersect_hash::tabulation::TabulationHash;

/// Number of subtables (hash functions); 3 gives the classic peeling
/// threshold of ≈ 1.22·d cells.
const SUBTABLES: usize = 3;

/// One IBLT cell.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct Cell {
    count: i64,
    key_sum: u64,
    check_sum: u64,
}

impl Cell {
    fn is_empty(&self) -> bool {
        self.count == 0 && self.key_sum == 0 && self.check_sum == 0
    }
}

/// An invertible Bloom lookup table over `u64` keys.
///
/// Typically used through [`IbltReconcile`]; exposed for direct use and
/// testing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Iblt {
    /// `SUBTABLES` contiguous regions of `per_table` cells each.
    cells: Vec<Cell>,
    per_table: usize,
}

/// The hash functions an [`Iblt`] indexes with; both parties must build
/// them from the same coins, with the same checksum width (checksums are
/// truncated on the wire, so they must be truncated identically locally).
#[derive(Debug, Clone)]
pub struct IbltHasher {
    index: Vec<TabulationHash>,
    check: TabulationHash,
    check_bits: usize,
}

impl IbltHasher {
    /// Derives the hasher from shared coins.
    pub fn from_coins(coins: &CoinSource, check_bits: usize) -> Self {
        IbltHasher {
            index: (0..SUBTABLES)
                .map(|i| TabulationHash::sample(&mut coins.fork_index(i as u64).rng()))
                .collect(),
            check: TabulationHash::sample(&mut coins.fork("check").rng()),
            check_bits: check_bits.clamp(8, 64),
        }
    }

    fn checksum(&self, key: u64) -> u64 {
        self.check.eval(key) & mask(self.check_bits)
    }
}

impl Iblt {
    /// An empty table with `per_table` cells per subtable
    /// (`3 · per_table` total).
    pub fn new(per_table: usize) -> Self {
        Iblt {
            cells: vec![Cell::default(); SUBTABLES * per_table.max(1)],
            per_table: per_table.max(1),
        }
    }

    /// Total cell count.
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    fn slots(&self, h: &IbltHasher, key: u64) -> [usize; SUBTABLES] {
        let mut out = [0usize; SUBTABLES];
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = i * self.per_table + h.index[i].eval_range(key, self.per_table as u64) as usize;
        }
        out
    }

    /// Inserts a key (toward positive counts).
    pub fn insert(&mut self, h: &IbltHasher, key: u64) {
        let check = h.checksum(key);
        for slot in self.slots(h, key) {
            let cell = &mut self.cells[slot];
            cell.count += 1;
            cell.key_sum ^= key;
            cell.check_sum ^= check;
        }
    }

    /// Cell-wise subtraction: the result encodes `self Δ other` with signs.
    pub fn subtract(&self, other: &Iblt) -> Iblt {
        assert_eq!(self.per_table, other.per_table, "table geometry mismatch");
        let cells = self
            .cells
            .iter()
            .zip(&other.cells)
            .map(|(a, b)| Cell {
                count: a.count - b.count,
                key_sum: a.key_sum ^ b.key_sum,
                check_sum: a.check_sum ^ b.check_sum,
            })
            .collect();
        Iblt {
            cells,
            per_table: self.per_table,
        }
    }

    /// Peels the table. On success returns `(positives, negatives)` — the
    /// keys with net count `+1` and `−1` respectively; `None` if peeling
    /// stalls (table too small or corrupt).
    pub fn peel(mut self, h: &IbltHasher) -> Option<(Vec<u64>, Vec<u64>)> {
        let mut positives = Vec::new();
        let mut negatives = Vec::new();
        let mut queue: Vec<usize> = (0..self.cells.len()).collect();
        while let Some(slot) = queue.pop() {
            let cell = self.cells[slot];
            if cell.count.abs() != 1 {
                continue;
            }
            let key = cell.key_sum;
            if h.checksum(key) != cell.check_sum {
                continue; // not pure (multiple keys collided here)
            }
            let sign = cell.count;
            if sign > 0 {
                positives.push(key);
            } else {
                negatives.push(key);
            }
            let check = cell.check_sum;
            for s in self.slots(h, key) {
                let c = &mut self.cells[s];
                c.count -= sign;
                c.key_sum ^= key;
                c.check_sum ^= check;
                queue.push(s);
            }
        }
        if self.cells.iter().all(Cell::is_empty) {
            positives.sort_unstable();
            negatives.sort_unstable();
            Some((positives, negatives))
        } else {
            None
        }
    }

    /// Serializes the table: non-empty cells are sparse-coded by index.
    pub fn write(&self, buf: &mut BitBuf, key_bits: usize, check_bits: usize) {
        put_gamma0(buf, self.per_table as u64);
        let occupied: Vec<usize> = (0..self.cells.len())
            .filter(|&i| !self.cells[i].is_empty())
            .collect();
        put_gamma0(buf, occupied.len() as u64);
        let mut prev = 0u64;
        for &i in &occupied {
            put_gamma0(buf, i as u64 - prev);
            prev = i as u64;
            let cell = &self.cells[i];
            // Zigzag the signed count.
            let zig = if cell.count >= 0 {
                (cell.count as u64) << 1
            } else {
                ((-cell.count as u64) << 1) - 1
            };
            put_gamma0(buf, zig);
            buf.push_bits(cell.key_sum & mask(key_bits), key_bits);
            buf.push_bits(cell.check_sum & mask(check_bits), check_bits);
        }
    }

    /// Deserializes a table written by [`write`](Self::write).
    ///
    /// # Errors
    ///
    /// Returns a codec error on malformed input.
    pub fn read(
        r: &mut intersect_comm::bits::BitReader<'_>,
        key_bits: usize,
        check_bits: usize,
    ) -> Result<Self, ProtocolError> {
        let per_table = get_gamma0(r)? as usize;
        if per_table > (1 << 24) {
            return Err(ProtocolError::Internal(
                "iblt table size on the wire is implausibly large".into(),
            ));
        }
        let mut table = Iblt::new(per_table);
        let occupied = get_gamma0(r)?;
        let mut idx = 0u64;
        for j in 0..occupied {
            let gap = get_gamma0(r)?;
            idx = if j == 0 { gap } else { idx + gap };
            let zig = get_gamma0(r)?;
            let count = if zig & 1 == 0 {
                (zig >> 1) as i64
            } else {
                -(((zig + 1) >> 1) as i64)
            };
            let key_sum = r.read_bits(key_bits)?;
            let check_sum = r.read_bits(check_bits)?;
            let cell = table
                .cells
                .get_mut(idx as usize)
                .ok_or(ProtocolError::Internal(
                    "iblt cell index out of range".into(),
                ))?;
            *cell = Cell {
                count,
                key_sum,
                check_sum,
            };
        }
        Ok(table)
    }
}

fn mask(bits: usize) -> u64 {
    if bits >= 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    }
}

/// Difference-proportional intersection by IBLT reconciliation with table
/// doubling.
///
/// # Examples
///
/// ```
/// use intersect_core::reconcile::IbltReconcile;
/// use intersect_core::api::{execute, SetIntersection};
/// use intersect_core::sets::{InputPair, ProblemSpec};
/// use rand::SeedableRng;
///
/// let spec = ProblemSpec::new(1 << 30, 512);
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(4);
/// // Mostly-overlapping sets: the sweet spot for reconciliation.
/// let pair = InputPair::random_with_overlap(&mut rng, spec, 512, 490);
/// let run = execute(&IbltReconcile::default(), spec, &pair, 7)?;
/// assert!(run.matches(&pair.ground_truth()));
/// # Ok::<(), intersect_comm::error::ProtocolError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IbltReconcile {
    /// Initial cells per subtable (doubles on failure).
    pub initial_cells: usize,
    /// Checksum width: false-peel probability ≈ `2^-checksum_bits` per cell.
    pub checksum_bits: usize,
    /// Doubling cap.
    pub max_attempts: u32,
}

impl Default for IbltReconcile {
    fn default() -> Self {
        IbltReconcile {
            initial_cells: 8,
            checksum_bits: 32,
            max_attempts: 16,
        }
    }
}

impl SetIntersection for IbltReconcile {
    fn name(&self) -> String {
        "iblt-reconcile".to_string()
    }

    // Table sizes double on peel failure — transcript-dependent, so
    // nothing input-independent can be hoisted.
    fn prepare(&self, spec: ProblemSpec) -> std::sync::Arc<dyn crate::prepared::PreparedProtocol> {
        std::sync::Arc::new(crate::prepared::FallbackPlan::new(*self, spec))
    }

    fn run(
        &self,
        chan: &mut dyn Chan,
        coins: &CoinSource,
        side: Side,
        spec: ProblemSpec,
        input: &ElementSet,
    ) -> Result<ElementSet, ProtocolError> {
        spec.validate(input).map_err(ProtocolError::InvalidInput)?;
        let key_bits = bit_width_for(spec.n.max(2));
        let check_bits = self.checksum_bits.clamp(8, 64);
        let mut per_table = self.initial_cells.max(1);
        for attempt in 0..self.max_attempts.max(1) {
            // Early returns drop the guard, emitting duration without a
            // delta; the fall-through (failed attempt) finishes with one.
            let attempt_span = intersect_obs::phase::span("core", "attempt");
            let before = chan.stats();
            let hasher =
                IbltHasher::from_coins(&coins.fork(&format!("iblt/a{attempt}")), check_bits);
            match side {
                Side::Alice => {
                    // Send my table; learn (success, S∖T) back.
                    let mut table = Iblt::new(per_table);
                    for x in input.iter() {
                        table.insert(&hasher, x);
                    }
                    let mut msg = BitBuf::new();
                    table.write(&mut msg, key_bits, check_bits);
                    chan.send(msg)?;
                    let reply = chan.recv()?;
                    let mut r = reply.reader();
                    if r.read_bit().map_err(ProtocolError::Codec)? {
                        let codec = RiceSubsetCodec::new(spec.n, spec.k);
                        let mine_only = codec.decode(&mut r)?;
                        let missing: ElementSet = mine_only.into_iter().collect();
                        // Sanity: everything Bob claims I hold alone must
                        // really be mine. A violation means a false peel
                        // slipped past the checksums (probability
                        // ≈ 2^-checksum_bits); Bob has already accepted, so
                        // surface the failure instead of desynchronizing.
                        if !missing.iter().all(|x| input.contains(x)) {
                            return Err(ProtocolError::Internal(
                                "reconciliation produced foreign elements".into(),
                            ));
                        }
                        return Ok(input.difference(&missing));
                    }
                }
                Side::Bob => {
                    let msg = chan.recv()?;
                    let theirs = Iblt::read(&mut msg.reader(), key_bits, check_bits)?;
                    let mut mine = Iblt::new(theirs.per_table);
                    for y in input.iter() {
                        mine.insert(&hasher, y);
                    }
                    let diff = theirs.subtract(&mine);
                    let mut reply = BitBuf::new();
                    match diff.peel(&hasher) {
                        Some((alice_only, bob_only))
                            if alice_only.len() + bob_only.len() <= 2 * spec.k as usize
                                && bob_only.iter().all(|y| input.contains(*y))
                                && alice_only.len() as u64 <= spec.k =>
                        {
                            reply.push_bit(true);
                            let codec = RiceSubsetCodec::new(spec.n, spec.k);
                            let valid: Vec<u64> =
                                alice_only.iter().copied().filter(|&x| x < spec.n).collect();
                            reply.extend_from(&codec.encode(&valid));
                            chan.send(reply)?;
                            let bob_only: ElementSet = bob_only.into_iter().collect();
                            return Ok(input.difference(&bob_only));
                        }
                        _ => {
                            reply.push_bit(false);
                            chan.send(reply)?;
                        }
                    }
                }
            }
            attempt_span.finish(chan.stats().delta_since(&before));
            per_table *= 2;
        }
        Err(ProtocolError::Internal(
            "iblt reconciliation did not converge".into(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::execute;
    use crate::sets::InputPair;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn hasher(seed: u64) -> IbltHasher {
        IbltHasher::from_coins(&CoinSource::from_seed(seed), 32)
    }

    #[test]
    fn iblt_insert_subtract_peel_round_trip() {
        let h = hasher(1);
        let mut a = Iblt::new(32);
        let mut b = Iblt::new(32);
        for x in [1u64, 2, 3, 100, 200] {
            a.insert(&h, x);
        }
        for y in [3u64, 100, 999, 1234] {
            b.insert(&h, y);
        }
        let (pos, neg) = a.subtract(&b).peel(&h).expect("peel succeeds");
        assert_eq!(pos, vec![1, 2, 200]); // in a only
        assert_eq!(neg, vec![999, 1234]); // in b only
    }

    #[test]
    fn identical_tables_peel_to_nothing() {
        let h = hasher(2);
        let mut a = Iblt::new(4);
        for x in 0..100u64 {
            a.insert(&h, x * 17);
        }
        let (pos, neg) = a.subtract(&a.clone()).peel(&h).unwrap();
        assert!(pos.is_empty() && neg.is_empty());
    }

    #[test]
    fn undersized_table_fails_to_peel() {
        let h = hasher(3);
        let mut a = Iblt::new(2);
        let b = Iblt::new(2);
        for x in 0..200u64 {
            a.insert(&h, x * 3 + 1);
        }
        assert!(a.subtract(&b).peel(&h).is_none());
    }

    #[test]
    fn serialization_round_trip() {
        let h = hasher(4);
        let mut a = Iblt::new(16);
        for x in [5u64, 50, 500] {
            a.insert(&h, x);
        }
        let mut buf = BitBuf::new();
        a.write(&mut buf, 40, 32);
        let back = Iblt::read(&mut buf.reader(), 40, 32).unwrap();
        // Checksums are truncated to 32 bits on the wire; compare by
        // peeling behaviour on the truncated domain instead of raw cells.
        assert_eq!(back.per_table, a.per_table);
        assert_eq!(back.cell_count(), a.cell_count());
    }

    #[test]
    fn protocol_recovers_intersection_across_overlaps() {
        let spec = ProblemSpec::new(1 << 30, 256);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        for overlap in [256usize, 250, 200, 128, 10, 0] {
            let pair = InputPair::random_with_overlap(&mut rng, spec, 256, overlap);
            let run = execute(&IbltReconcile::default(), spec, &pair, overlap as u64).unwrap();
            assert!(
                run.matches(&pair.ground_truth()),
                "overlap {overlap}: got {} elements",
                run.alice.len()
            );
        }
    }

    #[test]
    fn cost_scales_with_difference_not_cardinality() {
        let spec = ProblemSpec::new(1 << 40, 4096);
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        // d = 16 vs d = 1024 at the same k.
        let near = InputPair::random_with_overlap(&mut rng, spec, 4096, 4088);
        let far = InputPair::random_with_overlap(&mut rng, spec, 4096, 3584);
        let run_near = execute(&IbltReconcile::default(), spec, &near, 1).unwrap();
        let run_far = execute(&IbltReconcile::default(), spec, &far, 1).unwrap();
        assert!(run_near.matches(&near.ground_truth()));
        assert!(run_far.matches(&far.ground_truth()));
        assert!(
            run_near.report.total_bits() * 8 < run_far.report.total_bits(),
            "near {} vs far {}",
            run_near.report.total_bits(),
            run_far.report.total_bits()
        );
        // And the near case must beat O(k): fewer bits than even 4 bits/elem.
        assert!(run_near.report.total_bits() < 4 * 4096);
    }

    #[test]
    fn equal_sets_cost_only_the_initial_table() {
        // d = 0: cost is the initial 3·initial_cells table (every cell is
        // occupied by sums over S, but there are only O(initial) cells) —
        // constant in k.
        let spec = ProblemSpec::new(1 << 30, 1024);
        let s: ElementSet = (0..1024u64).map(|i| i * 331).collect();
        let pair = InputPair {
            s: s.clone(),
            t: s.clone(),
        };
        let run = execute(&IbltReconcile::default(), spec, &pair, 2).unwrap();
        assert_eq!(run.alice, s);
        let proto = IbltReconcile::default();
        let floor = (3 * proto.initial_cells) as u64 * (30 + proto.checksum_bits as u64 + 25);
        assert!(
            run.report.total_bits() < floor,
            "{} vs floor {floor}",
            run.report.total_bits()
        );
        // Constant in k: far below one bit per element… times a few.
        assert!(run.report.total_bits() < 4 * 1024);
    }

    #[test]
    fn empty_sets() {
        let spec = ProblemSpec::new(1000, 8);
        let pair = InputPair {
            s: ElementSet::new(),
            t: ElementSet::from_iter([1u64, 2]),
        };
        let run = execute(&IbltReconcile::default(), spec, &pair, 3).unwrap();
        assert!(run.alice.is_empty() && run.bob.is_empty());
    }
}
