//! Protocol phase spans account for every bit on the wire.
//!
//! With a subscriber installed, the spans a protocol emits (reduce,
//! bucket, verify, repair, …) tile its execution: summing their bit and
//! round deltas per party must reproduce that party's final channel
//! stats exactly. Lives in its own test binary so no sibling test
//! installs a competing subscriber.

use intersect_comm::runner::{run_two_party, RunConfig, Side};
use intersect_core::sets::{ElementSet, InputPair, ProblemSpec};
use intersect_core::tree::TreeProtocol;
use intersect_core::tree_pipelined::PipelinedTree;
use intersect_obs as obs;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Sums the top-level span deltas for one party's thread. Nested spans
/// (Basic-Intersection's `sizes`/`hashes` under `verify`/`repair`) are
/// excluded by only counting spans whose enclosing phase is empty.
fn summed(events: &[obs::Event], party: obs::Party) -> (u64, u64, u64) {
    let mut sent = 0;
    let mut received = 0;
    let mut rounds = 0;
    for ev in events {
        if ev.party != Some(party) || !ev.phase.is_empty() {
            continue;
        }
        if let Some(d) = ev.delta() {
            sent += d.bits_sent;
            received += d.bits_received;
            rounds += d.rounds;
        }
    }
    (sent, received, rounds)
}

fn assert_spans_tile(events: &[obs::Event], report: &intersect_comm::stats::CostReport) {
    let (a_sent, a_recv, a_rounds) = summed(events, obs::Party::Alice);
    let (b_sent, b_recv, b_rounds) = summed(events, obs::Party::Bob);
    assert_eq!(a_sent, report.bits_alice, "alice sent bits");
    assert_eq!(b_sent, report.bits_bob, "bob sent bits");
    assert_eq!(a_recv, report.bits_bob, "alice received = bob sent");
    assert_eq!(b_recv, report.bits_alice, "bob received = alice sent");
    // Phases run back-to-back, so clock deltas telescope to the final
    // clock; the report's round count is the max over both parties.
    assert_eq!(a_rounds.max(b_rounds), report.rounds, "rounds");
}

fn run_instrumented<F>(seed: u64, run: F) -> (Vec<obs::Event>, intersect_comm::stats::CostReport)
where
    F: Fn(
            &mut dyn intersect_comm::chan::Chan,
            &intersect_comm::coins::CoinSource,
            Side,
        ) -> Result<ElementSet, intersect_comm::error::ProtocolError>
        + Send
        + Sync,
{
    let sub = obs::Subscriber::new();
    let guard = sub.install();
    let out = run_two_party(
        &RunConfig::with_seed(seed),
        |chan, coins| {
            let _scope = obs::phase::SessionScope::enter(seed, obs::Party::Alice);
            run(chan, coins, Side::Alice)
        },
        |chan, coins| {
            let _scope = obs::phase::SessionScope::enter(seed, obs::Party::Bob);
            run(chan, coins, Side::Bob)
        },
    )
    .unwrap();
    drop(guard);
    (sub.take_events(), out.report)
}

#[test]
fn tree_phase_spans_sum_to_cost_report() {
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let spec = ProblemSpec::new(1 << 30, 64);
    let pair = InputPair::random_with_overlap(&mut rng, spec, 64, 20);
    for r in 1..=3u32 {
        let proto = TreeProtocol::new(r);
        let (events, report) = run_instrumented(10 + r as u64, |chan, coins, side| {
            let input = if side == Side::Alice {
                &pair.s
            } else {
                &pair.t
            };
            proto.run(chan, &coins.fork("tree"), side, spec, input)
        });
        assert!(report.total_bits() > 0);
        assert_spans_tile(&events, &report);
        // The expected phases all appear.
        let names: Vec<&str> = events.iter().map(|e| e.name.as_str()).collect();
        assert!(names.contains(&"reduce"), "r={r}: {names:?}");
        if r > 1 {
            assert!(names.contains(&"bucket") && names.contains(&"verify"));
        }
    }
}

#[test]
fn pipelined_tree_phase_spans_sum_to_cost_report() {
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let spec = ProblemSpec::new(1 << 30, 128);
    let pair = InputPair::random_with_overlap(&mut rng, spec, 128, 50);
    let proto = PipelinedTree::new(3);
    let (events, report) = run_instrumented(77, |chan, coins, side| {
        let input = if side == Side::Alice {
            &pair.s
        } else {
            &pair.t
        };
        proto.run(chan, &coins.fork("pt"), side, spec, input)
    });
    assert_spans_tile(&events, &report);
}

#[test]
fn message_events_carry_phase_labels() {
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let spec = ProblemSpec::new(1 << 30, 32);
    let pair = InputPair::random_with_overlap(&mut rng, spec, 32, 10);
    let proto = TreeProtocol::new(2);
    let (events, _) = run_instrumented(5, |chan, coins, side| {
        let input = if side == Side::Alice {
            &pair.s
        } else {
            &pair.t
        };
        proto.run(chan, &coins.fork("tree"), side, spec, input)
    });
    let messages: Vec<&obs::Event> = events
        .iter()
        .filter(|e| matches!(e.kind, obs::EventKind::Message { .. }))
        .collect();
    assert!(!messages.is_empty());
    // Every wire message lands inside some protocol phase.
    assert!(
        messages.iter().all(|e| !e.phase.is_empty()),
        "unlabelled message events: {:?}",
        messages
            .iter()
            .filter(|e| e.phase.is_empty())
            .collect::<Vec<_>>()
    );
}
