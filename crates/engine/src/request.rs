//! Session requests: what a client asks the engine to compute.
//!
//! A request describes one two-party intersection session by its
//! workload parameters — universe, cardinality bound, set size, overlap,
//! and a seed — rather than by explicit sets, so a single text line can
//! describe a session and the engine (or any reference harness) can
//! regenerate the identical inputs deterministically.

use intersect_core::api::ProtocolChoice;
use intersect_core::sets::{InputPair, ProblemSpec};
use intersect_obs::tracing::TraceContext;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// One session to serve: workload parameters plus scheduling metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionRequest {
    /// Client-assigned session id (echoed in the outcome).
    pub id: u64,
    /// Seed for both the input generator and the session's common
    /// random string; sessions with distinct seeds share no randomness.
    pub seed: u64,
    /// The `INT_k` instance parameters.
    pub spec: ProblemSpec,
    /// Size of each party's set (`≤ spec.k`).
    pub size: usize,
    /// Exact intersection size of the generated inputs.
    pub overlap: usize,
    /// Per-session protocol override; `None` defers to the engine's
    /// routing policy.
    pub protocol: Option<ProtocolChoice>,
    /// Client-pair identity for streamed sessions: sessions sharing a
    /// `pair` reuse that pair's precomputed randomness context.
    pub pair: Option<u64>,
    /// Index of this session within its pair's stream. Together with
    /// `pair` it pins the session's coin seed to
    /// `stream_session_seed(pair, stream)`, making a streamed session
    /// reproducible standalone.
    pub stream: Option<u64>,
    /// Distributed trace context. The engine (or a remote client) mints
    /// one deterministically from `(id, seed)` at submission when unset,
    /// and it rides the request line through intersect-net `Open` frames
    /// so the server's Bob spans join the client's trace.
    pub trace: Option<TraceContext>,
}

impl SessionRequest {
    /// A request with `size = k`, `seed = id`, and routed protocol.
    pub fn new(id: u64, spec: ProblemSpec, overlap: usize) -> Self {
        SessionRequest {
            id,
            seed: id,
            spec,
            size: spec.k as usize,
            overlap,
            protocol: None,
            pair: None,
            stream: None,
            trace: None,
        }
    }

    /// The trace context every execution path agrees on for this
    /// request: the one already carried, or the deterministic mint from
    /// `(id, seed)`.
    pub fn trace_context(&self) -> TraceContext {
        self.trace
            .unwrap_or_else(|| TraceContext::mint(self.id, self.seed))
    }

    /// Tags the request as session `stream` of pair `pair`'s stream.
    pub fn in_stream(mut self, pair: u64, stream: u64) -> Self {
        self.pair = Some(pair);
        self.stream = Some(stream);
        self
    }

    /// The session's common-random-string seed: for a streamed session
    /// (both `pair` and `stream` set) the pair-derived
    /// [`stream_session_seed`](intersect_comm::coins::stream_session_seed),
    /// else the request's own `seed`. Every execution path — engine
    /// worker, remote server, one-shot audit rerun — derives the seed
    /// through this one method, which is what makes a streamed session
    /// bit-identical to its standalone rerun.
    pub fn coin_seed(&self) -> u64 {
        match (self.pair, self.stream) {
            (Some(pair), Some(stream)) => intersect_comm::coins::stream_session_seed(pair, stream),
            _ => self.seed,
        }
    }

    /// Checks the generator constraints (`overlap ≤ size ≤ k`,
    /// `2·size − overlap ≤ n`).
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the violation.
    pub fn validate(&self) -> Result<(), String> {
        if self.size == 0 {
            return Err("size must be positive".into());
        }
        if self.overlap > self.size {
            return Err(format!(
                "overlap {} exceeds set size {}",
                self.overlap, self.size
            ));
        }
        if self.size as u64 > self.spec.k {
            return Err(format!(
                "size {} exceeds cardinality bound k = {}",
                self.size, self.spec.k
            ));
        }
        let distinct = 2 * self.size - self.overlap;
        if distinct as u64 > self.spec.n {
            return Err(format!(
                "need {distinct} distinct elements but universe has {}",
                self.spec.n
            ));
        }
        Ok(())
    }

    /// Deterministically regenerates this session's input sets.
    ///
    /// Anyone holding the request can reproduce the exact inputs; this is
    /// what makes engine runs auditable against single-session reruns.
    pub fn input_pair(&self) -> InputPair {
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        InputPair::random_with_overlap(&mut rng, self.spec, self.size, self.overlap)
    }

    /// Parses the line format emitted by [`to_line`](Self::to_line):
    /// whitespace-separated `key=value` tokens with keys `id`, `seed`,
    /// `n`, `k`, `size`, `overlap`, `protocol`. `n` and `k` are required
    /// (`2^<e>` accepted); the rest default as in [`new`](Self::new).
    /// Returns `Ok(None)` for blank lines and `#` comments.
    ///
    /// # Errors
    ///
    /// Rejects unknown keys, malformed values, and infeasible parameters.
    ///
    /// # Examples
    ///
    /// ```
    /// use intersect_engine::SessionRequest;
    ///
    /// let req = SessionRequest::parse_line("id=3 n=2^20 k=64 overlap=16 seed=7")?
    ///     .expect("not a comment");
    /// assert_eq!(req.id, 3);
    /// assert_eq!(req.spec.n, 1 << 20);
    /// assert_eq!(req.size, 64);
    /// assert!(req.protocol.is_none());
    /// # Ok::<(), String>(())
    /// ```
    pub fn parse_line(line: &str) -> Result<Option<SessionRequest>, String> {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            return Ok(None);
        }
        let mut id = None;
        let mut seed = None;
        let mut n = None;
        let mut k = None;
        let mut size = None;
        let mut overlap = 0usize;
        let mut protocol = None;
        let mut pair = None;
        let mut stream = None;
        let mut trace = None;
        let mut span = None;
        for token in line.split_whitespace() {
            let (key, value) = token
                .split_once('=')
                .ok_or_else(|| format!("expected key=value, got {token:?}"))?;
            let int = || -> Result<u64, String> {
                parse_u64(value).ok_or_else(|| format!("bad integer for {key}: {value:?}"))
            };
            match key {
                "id" => id = Some(int()?),
                "seed" => seed = Some(int()?),
                "n" => n = Some(int()?),
                "k" => k = Some(int()?),
                "size" => size = Some(int()? as usize),
                "overlap" => overlap = int()? as usize,
                "protocol" => protocol = Some(value.parse::<ProtocolChoice>()?),
                "pair" => pair = Some(int()?),
                "stream" => stream = Some(int()?),
                "trace" => {
                    trace = Some(
                        TraceContext::parse_trace_hex(value)
                            .ok_or_else(|| format!("bad trace id (want 32 hex): {value:?}"))?,
                    )
                }
                "span" => {
                    span = Some(
                        TraceContext::parse_span_hex(value)
                            .ok_or_else(|| format!("bad span id (want 16 hex): {value:?}"))?,
                    )
                }
                other => return Err(format!("unknown key {other:?}")),
            }
        }
        let trace = match (trace, span) {
            (Some(trace_id), Some(span_id)) => Some(TraceContext { trace_id, span_id }),
            (None, None) => None,
            (Some(_), None) => return Err("trace= requires a span= token".into()),
            (None, Some(_)) => return Err("span= requires a trace= token".into()),
        };
        let n = n.ok_or("missing required key n")?;
        let k = k.ok_or("missing required key k")?;
        if k == 0 || k > n {
            return Err(format!("infeasible spec: n={n} k={k}"));
        }
        let id = id.unwrap_or(0);
        let req = SessionRequest {
            id,
            seed: seed.unwrap_or(id),
            spec: ProblemSpec::new(n, k),
            size: size.unwrap_or(k as usize),
            overlap,
            protocol,
            pair,
            stream,
            trace,
        };
        req.validate()?;
        Ok(Some(req))
    }

    /// Renders the request in the [`parse_line`](Self::parse_line) format.
    pub fn to_line(&self) -> String {
        let mut out = format!(
            "id={} seed={} n={} k={} size={} overlap={}",
            self.id, self.seed, self.spec.n, self.spec.k, self.size, self.overlap
        );
        if let Some(p) = self.protocol {
            out.push_str(&format!(" protocol={p}"));
        }
        if let Some(pair) = self.pair {
            out.push_str(&format!(" pair={pair}"));
        }
        if let Some(stream) = self.stream {
            out.push_str(&format!(" stream={stream}"));
        }
        if let Some(t) = self.trace {
            out.push_str(&format!(" trace={} span={}", t.trace_hex(), t.span_hex()));
        }
        out
    }
}

fn parse_u64(s: &str) -> Option<u64> {
    if let Some(exp) = s.strip_prefix("2^") {
        return 1u64.checked_shl(exp.parse().ok()?);
    }
    s.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lines_round_trip() {
        let spec = ProblemSpec::new(1 << 20, 64);
        let mut req = SessionRequest::new(9, spec, 16);
        req.protocol = Some(ProtocolChoice::TreePipelined(3));
        let parsed = SessionRequest::parse_line(&req.to_line()).unwrap().unwrap();
        assert_eq!(parsed, req);
    }

    #[test]
    fn trace_tags_round_trip_and_mint_deterministically() {
        let spec = ProblemSpec::new(1 << 20, 64);
        let mut req = SessionRequest::new(9, spec, 16);
        // Unset trace: the context is minted from (id, seed) on demand.
        assert_eq!(req.trace_context(), TraceContext::mint(9, 9));
        assert!(!req.to_line().contains("trace="));
        // Carried trace: the line round-trips it exactly.
        req.trace = Some(TraceContext::mint(9, 9));
        let parsed = SessionRequest::parse_line(&req.to_line()).unwrap().unwrap();
        assert_eq!(parsed, req);
        assert_eq!(parsed.trace_context(), TraceContext::mint(9, 9));
        // Half a context is malformed.
        assert!(SessionRequest::parse_line(&format!(
            "n=1024 k=8 trace={}",
            TraceContext::mint(1, 1).trace_hex()
        ))
        .is_err());
        assert!(SessionRequest::parse_line(&format!(
            "n=1024 k=8 span={}",
            TraceContext::mint(1, 1).span_hex()
        ))
        .is_err());
        assert!(SessionRequest::parse_line("n=1024 k=8 trace=zz span=00aa00aa00aa00aa").is_err());
    }

    #[test]
    fn stream_tags_round_trip_and_pin_the_coin_seed() {
        let spec = ProblemSpec::new(1 << 20, 64);
        let req = SessionRequest::new(9, spec, 16).in_stream(0xbeef, 3);
        let parsed = SessionRequest::parse_line(&req.to_line()).unwrap().unwrap();
        assert_eq!(parsed, req);
        assert_eq!(
            parsed.coin_seed(),
            intersect_comm::coins::stream_session_seed(0xbeef, 3)
        );
        // Plain requests keep using their own seed.
        assert_eq!(SessionRequest::new(9, spec, 16).coin_seed(), 9);
    }

    #[test]
    fn comments_and_blanks_are_skipped() {
        assert_eq!(SessionRequest::parse_line(""), Ok(None));
        assert_eq!(SessionRequest::parse_line("   # note"), Ok(None));
        let req = SessionRequest::parse_line("n=1024 k=8 # trailing comment")
            .unwrap()
            .unwrap();
        assert_eq!(req.spec.k, 8);
        assert_eq!(req.size, 8);
        assert_eq!(req.seed, 0);
    }

    #[test]
    fn malformed_lines_are_rejected() {
        assert!(SessionRequest::parse_line("n=1024").is_err()); // missing k
        assert!(SessionRequest::parse_line("n=16 k=64").is_err()); // k > n
        assert!(SessionRequest::parse_line("n=1024 k=8 overlap=9").is_err());
        assert!(SessionRequest::parse_line("n=1024 k=8 bogus=1").is_err());
        assert!(SessionRequest::parse_line("n=1024 k=8 protocol=warp").is_err());
        assert!(SessionRequest::parse_line("nonsense").is_err());
    }

    #[test]
    fn input_pairs_are_deterministic_and_honor_overlap() {
        let req = SessionRequest::parse_line("n=2^16 k=32 overlap=10 seed=5")
            .unwrap()
            .unwrap();
        let a = req.input_pair();
        let b = req.input_pair();
        assert_eq!(a, b);
        assert_eq!(a.ground_truth().len(), 10);
        assert_eq!(a.s.len(), 32);
    }
}
