//! The session scheduler: many concurrent two-party sessions on a
//! bounded pool of reusable session runners.
//!
//! # Architecture
//!
//! ```text
//! submit ──▶ [admission queue, bounded] ──▶ dispatcher ──▶ [work queue] ──▶ W workers
//!                 │ full? Rejected              │ gates in-flight ≤ M        │
//!                 ▼                             ▼                            ▼
//!             registry.rejected          whole sessions, FIFO      one SessionRunner each
//! ```
//!
//! Each worker owns a long-lived [`SessionRunner`]: Alice's half runs on
//! the worker thread itself and Bob's half on the runner's paired
//! thread, over a channel pair that is *reset* between sessions rather
//! than rebuilt. Steady state therefore spawns **zero threads and
//! builds zero channels per session** — the overhead that dominated the
//! old spawn-per-session path — and a panicking protocol is contained
//! by the runner instead of poisoning the pool. Since a worker always
//! executes a whole session (both halves paired by construction), no
//! scheduling order can deadlock.
//!
//! # Determinism
//!
//! A runner session is built from the same primitives as a dedicated
//! [`intersect_comm::runner::run_two_party`] call — endpoint pairs with
//! identical metering, a per-session [`CoinSource`] derived from the
//! request seed, costs folded by [`intersect_comm::runner::assemble_report`]
//! — so a session
//! served by the engine is bit-for-bit identical to the same request
//! served by a dedicated `execute` call, and the deterministic half of
//! the registry is independent of worker count.

use crate::multiparty::{MultipartyRequest, MultipartySessionOutcome};
use crate::pair_context::PairContextCache;
use crate::plan_cache::PlanCache;
use crate::registry::{EngineSnapshot, EngineWatch, Registry};
use crate::request::SessionRequest;
use crate::router::calibration::{describe_calibration_metrics, CalibrationConfig, Calibrator};
use crate::router::{route_calibrated, theory_envelope, RoutePolicy};
use crate::timeline::{SessionTimeline, TimelineStamps};
use crossbeam_channel::{
    bounded, unbounded, Receiver, RecvTimeoutError, Sender, TryRecvError, TrySendError,
};
use intersect_comm::chan::{Chan, Endpoint};
use intersect_comm::coins::CoinSource;
use intersect_comm::error::ProtocolError;
use intersect_comm::net::LinkSet;
use intersect_comm::runner::{primary_error, RunConfig, SessionRunner, Side};
use intersect_comm::stats::{ChannelStats, CostReport, NetworkReport};
use intersect_comm::trace::{Direction, PhaseSummary, Traced};
use intersect_core::api::ProtocolChoice;
use intersect_core::prepared::{PairContext, PreparedProtocol, SessionCtx};
use intersect_core::sets::{ElementSet, InputPair};
use intersect_core::topology::PreparedTournament;
use intersect_obs as obs;
use intersect_obs::conformance::{ConformanceConfig, ConformanceMonitor, ConformanceReport};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Emits a session-lifecycle instant (`submit`, `reject`, `admit`,
/// `route`, `complete`, `fail`) attributed to a session id from a thread
/// that holds no [`obs::phase::SessionScope`], carrying the session's
/// distributed trace context so lifecycle instants stitch into the same
/// trace as the execution spans. Free when disabled.
fn lifecycle(name: &'static str, session: u64, trace: Option<obs::TraceContext>) {
    if !obs::enabled() {
        return;
    }
    obs::emit_with(|ts| obs::Event {
        ts_micros: ts,
        target: "engine",
        name: name.to_string(),
        session: Some(session),
        party: None,
        phase: String::new(),
        trace,
        kind: obs::EventKind::Instant,
    });
}

/// Stamps the session's deterministic trace context at submission when
/// the client did not supply one. Minting is a pure function of
/// `(id, seed)` — no clocks, no global counters — so tracing changes no
/// bits and a replayed or re-submitted request joins the same trace.
fn mint_trace(request: &mut SessionRequest) {
    if request.trace.is_none() {
        request.trace = Some(obs::TraceContext::mint(request.id, request.seed));
        obs::counter_add("trace_contexts_minted_total", 1);
    }
}

/// Tuning knobs for an [`Engine`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineConfig {
    /// Worker threads in the pool (clamped to at least 2: each session
    /// needs both of its halves running to make progress).
    pub workers: usize,
    /// Admission-queue depth; a full queue rejects further submissions.
    pub queue_capacity: usize,
    /// Sessions allowed in flight at once. The dispatcher withholds new
    /// sessions beyond this, which is what lets the admission queue back
    /// up and exercise rejection.
    pub max_in_flight: usize,
    /// Protocol selection for requests without an override.
    pub policy: RoutePolicy,
    /// If set, the session with this id records a phase-by-phase bit
    /// breakdown (from Alice's perspective) into its outcome.
    pub debug_session: Option<u64>,
    /// If set, every successful session's [`CostReport`] is checked
    /// against its calibrated theory envelope (see
    /// [`theory_envelope`]); violations are tallied on the engine's
    /// [`ConformanceMonitor`] and surface through metrics, events, and
    /// the shared [`Health`](obs::Health) flag.
    pub conformance: Option<ConformanceConfig>,
    /// If set, every successful session's cost residual
    /// (observed/predicted bits and rounds) is folded into the engine's
    /// [`Calibrator`], and the auto-router ranks candidates by
    /// *corrected* predicted costs — so persistent drift can change
    /// which protocol a regime routes to. Conformance envelopes stay
    /// pinned to the uncorrected theory prediction.
    pub calibration: Option<CalibrationConfig>,
    /// Capacity of the recently-finished-session ring retained for the
    /// `/sessions` endpoint (clamped to at least 1). Larger rings give
    /// live dashboards more history at a small memory cost.
    pub ring: usize,
}

impl EngineConfig {
    /// A configuration with `workers` workers, in-flight cap equal to
    /// the worker count, a 64-deep admission queue, and auto routing.
    pub fn new(workers: usize) -> Self {
        EngineConfig {
            workers,
            queue_capacity: 64,
            max_in_flight: workers,
            policy: RoutePolicy::default(),
            debug_session: None,
            conformance: None,
            calibration: None,
            ring: 64,
        }
    }
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig::new(4)
    }
}

/// Why a submission was not admitted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// Admission control turned the session away.
    Rejected {
        /// `true` when the admission queue was at capacity (backpressure);
        /// `false` when the engine is shutting down.
        queue_full: bool,
    },
    /// The request's parameters are infeasible.
    Invalid(String),
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Rejected { queue_full: true } => f.write_str("rejected: queue full"),
            SubmitError::Rejected { queue_full: false } => f.write_str("rejected: shutting down"),
            SubmitError::Invalid(why) => write!(f, "invalid request: {why}"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// The final record of one session.
#[derive(Debug, Clone)]
pub struct SessionOutcome {
    /// The request that produced this session.
    pub request: SessionRequest,
    /// The protocol the router (or an override) selected.
    pub protocol: ProtocolChoice,
    /// The instantiated protocol's display name.
    pub protocol_name: String,
    /// Alice's output, if her half succeeded.
    pub alice: Option<ElementSet>,
    /// Bob's output, if his half succeeded.
    pub bob: Option<ElementSet>,
    /// The primary failure, if any (secondary hangups are suppressed
    /// exactly as in [`run_two_party`]).
    pub error: Option<ProtocolError>,
    /// Exact communication cost, identical to what a dedicated
    /// [`run_two_party`] call would report for this session.
    pub report: CostReport,
    /// Wall-clock admission-to-outcome latency in microseconds.
    pub latency_micros: u64,
    /// The session's latency waterfall: submitted-to-settled wall clock
    /// decomposed into named segments that tile the span.
    pub timeline: SessionTimeline,
    /// Phase-by-phase bit breakdown, present only for the configured
    /// [`EngineConfig::debug_session`].
    pub trace: Option<Vec<PhaseSummary>>,
}

impl SessionOutcome {
    /// `true` iff both parties finished and agree on the intersection.
    pub fn succeeded(&self) -> bool {
        match (&self.alice, &self.bob) {
            (Some(a), Some(b)) => a == b,
            _ => false,
        }
    }
}

/// Everything an engine run produced: the final snapshot plus every
/// session outcome, sorted by request id.
#[derive(Debug, Clone)]
pub struct EngineReport {
    /// Final registry snapshot.
    pub snapshot: EngineSnapshot,
    /// One outcome per admitted two-party session.
    pub outcomes: Vec<SessionOutcome>,
    /// One outcome per admitted m-party session (see
    /// [`Engine::submit_multiparty`]), sorted by request id.
    pub multiparty: Vec<MultipartySessionOutcome>,
    /// Settled conformance tally, present iff the engine was started
    /// with [`EngineConfig::conformance`] set.
    pub conformance: Option<ConformanceReport>,
}

/// One admitted session, ready to run whole on any worker. Carries the
/// prepared plan from the shared [`PlanCache`], not a bare protocol:
/// parameter derivation already happened at dispatch.
struct SessionTask {
    request: SessionRequest,
    choice: ProtocolChoice,
    plan: Arc<dyn PreparedProtocol>,
    traced: bool,
    submitted_at: Instant,
    dispatched_at: Instant,
    admitted_at: Instant,
}

/// One admitted batch: `B` same-spec sessions that run back-to-back on
/// one worker's warm runner, sharing a single plan-cache lookup.
struct BatchTask {
    requests: Vec<SessionRequest>,
    choice: ProtocolChoice,
    plan: Arc<dyn PreparedProtocol>,
    submitted_at: Instant,
    dispatched_at: Instant,
    admitted_at: Instant,
}

/// One admitted stream submission: same-spec sessions of one client
/// pair, pipelined on the pair's affine worker with coin seeds drawn
/// from the pair's [`PairContext`].
struct StreamTask {
    requests: Vec<SessionRequest>,
    pair: u64,
    choice: ProtocolChoice,
    ctx: Arc<PairContext>,
    submitted_at: Instant,
    dispatched_at: Instant,
    admitted_at: Instant,
}

/// One admitted m-party session, ready to run whole on any worker: the
/// request plus its prepared tournament plan from the shared
/// [`PlanCache`] (which is also what its conformance envelope derives
/// from).
struct MultipartyTask {
    request: MultipartyRequest,
    plan: Arc<PreparedTournament>,
    submitted_at: Instant,
    dispatched_at: Instant,
    admitted_at: Instant,
}

/// What the dispatcher hands to workers.
enum WorkItem {
    Single(SessionTask),
    Batch(BatchTask),
    Stream(StreamTask),
    Multiparty(MultipartyTask),
}

/// What clients hand to the admission queue, stamped with the moment of
/// submission so the dispatcher can attribute queue wait.
enum Submission {
    Single(SessionRequest, Instant),
    Batch(Vec<SessionRequest>, Instant),
    Stream(u64, Vec<SessionRequest>, Instant),
    Multiparty(MultipartyRequest, Instant),
}

/// A handle for one pair's session stream, from [`Engine::open_stream`].
///
/// Carries the client-pair identity whose [`PairContext`] every
/// [`submit_stream`](Engine::submit_stream) through this handle reuses,
/// plus an engine-assigned ordinal for metrics and debugging.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StreamId {
    /// The client-pair identity; sessions of one pair share correlated
    /// randomness and land on the same affine worker.
    pub pair: u64,
    /// Engine-assigned stream ordinal (monotone per engine).
    pub stream: u64,
}

/// Everything a worker needs besides its runner and the work queue.
struct WorkerCtx {
    registry: Arc<Registry>,
    outcome_tx: Sender<SessionOutcome>,
    mp_outcome_tx: Sender<MultipartySessionOutcome>,
    done_tx: Sender<()>,
    conformance: Option<(ConformanceConfig, Arc<ConformanceMonitor>)>,
    calibration: Option<Arc<Calibrator>>,
}

/// Folds a raw event log into per-round bit totals for the debug dump.
fn round_summaries(events: &[intersect_comm::trace::TraceEvent]) -> Vec<PhaseSummary> {
    let mut out: Vec<PhaseSummary> = Vec::new();
    for ev in events {
        let label = format!("round {}", ev.clock);
        let entry = match out.iter_mut().find(|p| p.label == label) {
            Some(e) => e,
            None => {
                out.push(PhaseSummary {
                    label,
                    bits_sent: 0,
                    bits_received: 0,
                    messages: 0,
                });
                out.last_mut().expect("just pushed")
            }
        };
        entry.messages += 1;
        match ev.direction {
            Direction::Sent => entry.bits_sent += ev.bits as u64,
            Direction::Received => entry.bits_received += ev.bits as u64,
        }
    }
    out
}

/// Opens the per-half instrumentation exactly as the dedicated path
/// would see it: a session scope attributing every emission to the
/// session and party, the session's distributed trace scope (so every
/// span and message the half emits carries the trace context), the busy
/// gauge, and the half's "session" span. Returns the scope guards and
/// the open span; the caller finishes the span with the endpoint's final
/// stats so the two session spans of a session sum to exactly its
/// [`CostReport`].
fn half_span(
    session: u64,
    side: Side,
    trace: Option<obs::TraceContext>,
) -> (
    obs::phase::SessionScope,
    Option<obs::TraceScope>,
    obs::phase::SpanGuard,
) {
    let party = if side.is_alice() {
        obs::Party::Alice
    } else {
        obs::Party::Bob
    };
    let scope = obs::phase::SessionScope::enter(session, party);
    let trace_scope = trace.map(obs::TraceScope::enter);
    obs::gauge_add("engine_workers_busy", 1);
    (scope, trace_scope, obs::phase::span("engine", "session"))
}

fn finish_half_span(span: obs::phase::SpanGuard, stats: ChannelStats) {
    span.finish(obs::CostDelta {
        bits_sent: stats.bits_sent,
        bits_received: stats.bits_received,
        rounds: stats.clock,
    });
    obs::gauge_add("engine_workers_busy", -1);
}

/// Settles one session: folds its halves into a [`SessionOutcome`],
/// records it everywhere an outcome is accounted (registry, lifecycle
/// events, metrics, conformance), and streams it out. Shared by the
/// single-session and batch paths, so both settle identically.
#[allow(clippy::too_many_arguments)]
fn emit_outcome(
    ctx: &WorkerCtx,
    request: SessionRequest,
    choice: ProtocolChoice,
    protocol_name: String,
    res_a: Result<ElementSet, ProtocolError>,
    res_b: Result<ElementSet, ProtocolError>,
    report: CostReport,
    latency_micros: u64,
    stamps: TimelineStamps,
    trace: Option<Vec<PhaseSummary>>,
) {
    let error = match (&res_a, &res_b) {
        (Ok(_), Ok(_)) => None,
        (Err(e), Ok(_)) | (Ok(_), Err(e)) => Some(e.clone()),
        (Err(ea), Err(eb)) => Some(primary_error(ea.clone(), eb.clone())),
    };
    let timeline = stamps.settle();
    let outcome = SessionOutcome {
        request,
        protocol: choice,
        protocol_name,
        alice: res_a.ok(),
        bob: res_b.ok(),
        error,
        report,
        latency_micros,
        timeline,
        trace,
    };
    ctx.registry.record_outcome(
        outcome.request.id,
        &outcome.protocol_name,
        &report,
        outcome.succeeded(),
        outcome.latency_micros,
    );
    if outcome.succeeded() {
        lifecycle("complete", outcome.request.id, outcome.request.trace);
        obs::counter_add("engine_sessions_completed", 1);
        obs::flight::record(
            obs::flight::CODE_COMPLETE,
            outcome.request.id,
            report.total_bits(),
            outcome.latency_micros,
        );
        // The report hook: every successful session is checked against
        // its calibrated theory envelope the moment it settles.
        if let Some((config, monitor)) = &ctx.conformance {
            let envelope = theory_envelope(
                outcome.protocol,
                &outcome.protocol_name,
                outcome.request.spec,
                Some(outcome.request.overlap as u64),
                *config,
            );
            monitor.check(&envelope, report.total_bits(), report.rounds);
        }
        // The feedback hook: the same observed costs, folded as a
        // residual against the *uncorrected* prediction so the router
        // learns where the cost model's constants are off.
        if let Some(calibrator) = &ctx.calibration {
            let predicted = outcome
                .protocol
                .predicted_cost(outcome.request.spec, Some(outcome.request.overlap as u64));
            calibrator.fold(
                outcome.protocol,
                outcome.request.spec.k,
                predicted,
                report.total_bits(),
                report.rounds,
            );
        }
    } else {
        lifecycle("fail", outcome.request.id, outcome.request.trace);
        obs::counter_add("engine_sessions_failed", 1);
        obs::flight::record(
            obs::flight::CODE_FAIL,
            outcome.request.id,
            report.total_bits(),
            outcome.latency_micros,
        );
    }
    obs::counter_add("engine_bits_total", report.total_bits());
    obs::observe("engine_session_latency_micros", outcome.latency_micros);
    obs::observe("engine_session_bits", report.total_bits());
    if obs::enabled() {
        for (segment, micros) in timeline.segments() {
            obs::observe(
                &obs::metrics::labeled("engine_segment_micros", &[("segment", segment)]),
                micros,
            );
        }
    }
    obs::gauge_add("engine_in_flight", -1);
    let _ = ctx.outcome_tx.send(outcome);
}

/// Runs one whole session on this worker's reusable runner and emits
/// its outcome.
fn run_session(runner: &mut SessionRunner, task: SessionTask, ctx: &WorkerCtx) {
    let started_at = Instant::now();
    let SessionTask {
        request,
        choice,
        plan,
        traced,
        submitted_at,
        dispatched_at,
        admitted_at,
    } = task;
    let id = request.id;
    let trace_ctx = request.trace;
    let pair = request.input_pair();
    // `coin_seed`, not `seed`: a stream-tagged request resubmitted alone
    // must reproduce its streamed transcript bit for bit.
    let cfg = RunConfig::with_seed(request.coin_seed());
    let coins_ready_at = Instant::now();

    // Alice's half runs on this thread, so it can hand the trace log out
    // through a captured slot; Bob's half runs on the runner's paired
    // thread and owns its captures.
    let mut trace_events: Option<Vec<intersect_comm::trace::TraceEvent>> = None;
    let alice_input = pair.s;
    let bob_input = pair.t;
    let plan_a = Arc::clone(&plan);
    let plan_b = Arc::clone(&plan);
    let events_slot = &mut trace_events;

    let parts = runner.run_parts(
        &cfg,
        move |ep: &mut Endpoint, coins: &CoinSource| {
            let (_scope, _trace, span) = half_span(id, Side::Alice, trace_ctx);
            let (result, stats) = if traced {
                let mut tr = Traced::new(ep);
                let result = plan_a.execute(&mut tr, coins, Side::Alice, &alice_input);
                let stats = tr.stats();
                *events_slot = Some(tr.into_events());
                (result, stats)
            } else {
                let result = plan_a.execute(ep, coins, Side::Alice, &alice_input);
                (result, ep.stats())
            };
            finish_half_span(span, stats);
            result
        },
        move |ep: &mut Endpoint, coins: &CoinSource| {
            let (_scope, _trace, span) = half_span(id, Side::Bob, trace_ctx);
            let result = plan_b.execute(ep, coins, Side::Bob, &bob_input);
            finish_half_span(span, ep.stats());
            result
        },
    );
    let executed_at = Instant::now();

    let (res_a, res_b, report) = match parts {
        Ok(parts) => (parts.alice, parts.bob, parts.report),
        // Runner infrastructure failure: both halves share the blame and
        // no bits were reliably metered.
        Err(e) => (Err(e.clone()), Err(e), CostReport::default()),
    };
    let trace = trace_events.as_deref().map(round_summaries);
    emit_outcome(
        ctx,
        request,
        choice,
        plan.name(),
        res_a,
        res_b,
        report,
        admitted_at.elapsed().as_micros() as u64,
        TimelineStamps {
            submitted_at,
            dispatched_at,
            planned_at: admitted_at,
            started_at,
            coins_ready_at,
            executed_at,
        },
        trace,
    );
    // The dispatcher may already be gone during drain; that's fine.
    let _ = ctx.done_tx.send(());
}

/// One finished session from a batch: each party's output and the cost report.
type SessionResults = (
    Result<ElementSet, ProtocolError>,
    Result<ElementSet, ProtocolError>,
    CostReport,
);

/// Runs a whole batch back-to-back on this worker's runner: one job
/// hand-off, one warm channel pair, one coin-source reseed per session.
/// Session `i` is bit-identical to the same request served alone.
fn run_batch_session(runner: &mut SessionRunner, task: BatchTask, ctx: &WorkerCtx) {
    let started_at = Instant::now();
    let BatchTask {
        requests,
        choice,
        plan,
        submitted_at,
        dispatched_at,
        admitted_at,
    } = task;
    let pairs: Vec<InputPair> = requests.iter().map(|r| r.input_pair()).collect();
    let seeds: Vec<u64> = requests.iter().map(|r| r.coin_seed()).collect();
    let ids: Vec<u64> = requests.iter().map(|r| r.id).collect();
    let traces: Vec<Option<obs::TraceContext>> = requests.iter().map(|r| r.trace).collect();
    let cfg = RunConfig::with_seed(seeds[0]);
    let coins_ready_at = Instant::now();
    let plan_a = Arc::clone(&plan);
    let plan_b = Arc::clone(&plan);
    let bob_inputs: Vec<ElementSet> = pairs.iter().map(|p| p.t.clone()).collect();
    let ids_b = ids.clone();
    let traces_b = traces.clone();

    let parts = runner.run_batch_parts(
        &cfg,
        &seeds,
        |i, ep: &mut Endpoint, coins: &CoinSource| {
            let (_scope, _trace, span) = half_span(ids[i], Side::Alice, traces[i]);
            let result = plan_a.execute(ep, coins, Side::Alice, &pairs[i].s);
            finish_half_span(span, ep.stats());
            result
        },
        move |i, ep: &mut Endpoint, coins: &CoinSource| {
            let (_scope, _trace, span) = half_span(ids_b[i], Side::Bob, traces_b[i]);
            let result = plan_b.execute(ep, coins, Side::Bob, &bob_inputs[i]);
            finish_half_span(span, ep.stats());
            result
        },
    );
    let executed_at = Instant::now();

    let sessions: Vec<SessionResults> = match parts {
        Ok(parts) => parts
            .into_iter()
            .map(|p| (p.alice, p.bob, p.report))
            .collect(),
        // Runner infrastructure failure fails the whole batch.
        Err(e) => requests
            .iter()
            .map(|_| (Err(e.clone()), Err(e.clone()), CostReport::default()))
            .collect(),
    };
    let latency_micros = admitted_at.elapsed().as_micros() as u64;
    let stamps = TimelineStamps {
        submitted_at,
        dispatched_at,
        planned_at: admitted_at,
        started_at,
        coins_ready_at,
        executed_at,
    };
    for (request, (res_a, res_b, report)) in requests.into_iter().zip(sessions) {
        emit_outcome(
            ctx,
            request,
            choice,
            plan.name(),
            res_a,
            res_b,
            report,
            latency_micros,
            stamps,
            None,
        );
    }
    let _ = ctx.done_tx.send(());
}

/// Runs one streamed submission on the pair's affine worker: coin seeds
/// drawn from the pair's [`PairContext`], input-independent randomness
/// presampled off the hot path, and the sessions pipelined without
/// per-session rendezvous. Session `stream = i` is bit-identical to the
/// tagged request served alone (the coin seed is the same pure function
/// of `(pair, i)` either way).
fn run_stream_session(runner: &mut SessionRunner, task: StreamTask, ctx: &WorkerCtx) {
    let started_at = Instant::now();
    let StreamTask {
        mut requests,
        pair,
        choice,
        ctx: pair_ctx,
        submitted_at,
        dispatched_at,
        admitted_at,
    } = task;
    let count = requests.len();
    // The offline phase's output: this block's stream indices and their
    // pre-derived coin seeds. Tag each request with its index so its
    // outcome is auditable by a standalone rerun.
    let (base, seeds) = pair_ctx.take_block(count);
    for (i, req) in requests.iter_mut().enumerate() {
        req.pair = Some(pair);
        req.stream = Some(base + i as u64);
    }
    let plan = Arc::clone(pair_ctx.plan());
    let presampled = plan.presample(&seeds);
    let pairs: Vec<InputPair> = requests.iter().map(|r| r.input_pair()).collect();
    let ids: Vec<u64> = requests.iter().map(|r| r.id).collect();
    let traces: Vec<Option<obs::TraceContext>> = requests.iter().map(|r| r.trace).collect();
    let cfg = RunConfig::with_seed(seeds[0]);
    let coins_ready_at = Instant::now();
    let plan_a = Arc::clone(&plan);
    let plan_b = Arc::clone(&plan);
    let pre_a = presampled.clone();
    let pre_b = presampled;
    let bob_inputs: Vec<ElementSet> = pairs.iter().map(|p| p.t.clone()).collect();
    let ids_b = ids.clone();
    let traces_b = traces.clone();

    let parts = runner.run_stream_parts(
        &cfg,
        &seeds,
        |i, ep: &mut Endpoint, coins: &CoinSource| {
            let (_scope, _trace, span) = half_span(ids[i], Side::Alice, traces[i]);
            let sctx = SessionCtx {
                index: base + i as u64,
                slot: i,
                presampled: pre_a.as_deref(),
            };
            let result = plan_a.execute_in(&sctx, ep, coins, Side::Alice, &pairs[i].s);
            finish_half_span(span, ep.stats());
            result
        },
        move |i, ep: &mut Endpoint, coins: &CoinSource| {
            let (_scope, _trace, span) = half_span(ids_b[i], Side::Bob, traces_b[i]);
            let sctx = SessionCtx {
                index: base + i as u64,
                slot: i,
                presampled: pre_b.as_deref(),
            };
            let result = plan_b.execute_in(&sctx, ep, coins, Side::Bob, &bob_inputs[i]);
            finish_half_span(span, ep.stats());
            result
        },
    );

    let mut sessions: Vec<SessionResults> = match parts {
        Ok(parts) => parts
            .into_iter()
            .map(|p| (p.alice, p.bob, p.report))
            .collect(),
        // Runner infrastructure failure fails the whole submission.
        Err(e) => requests
            .iter()
            .map(|_| (Err(e.clone()), Err(e.clone()), CostReport::default()))
            .collect(),
    };
    // A stream aborts at its first failing session; serve the rest
    // one-shot on a fresh runner. Coin seeds are pure, so the reruns are
    // bit-identical to the sessions the stream would have run.
    if sessions.len() < count {
        if runner.is_broken() {
            *runner = SessionRunner::start();
        }
        for i in sessions.len()..count {
            let plan_a = Arc::clone(&plan);
            let plan_b = Arc::clone(&plan);
            let cfg = RunConfig::with_seed(seeds[i]);
            let alice_input = pairs[i].s.clone();
            let bob_input = pairs[i].t.clone();
            let id = ids[i];
            let trace_ctx = traces[i];
            let res = runner.run_parts(
                &cfg,
                move |ep: &mut Endpoint, coins: &CoinSource| {
                    let (_scope, _trace, span) = half_span(id, Side::Alice, trace_ctx);
                    let result = plan_a.execute(ep, coins, Side::Alice, &alice_input);
                    finish_half_span(span, ep.stats());
                    result
                },
                move |ep: &mut Endpoint, coins: &CoinSource| {
                    let (_scope, _trace, span) = half_span(id, Side::Bob, trace_ctx);
                    let result = plan_b.execute(ep, coins, Side::Bob, &bob_input);
                    finish_half_span(span, ep.stats());
                    result
                },
            );
            sessions.push(match res {
                Ok(p) => (p.alice, p.bob, p.report),
                Err(e) => (Err(e.clone()), Err(e), CostReport::default()),
            });
        }
    }
    obs::counter_add("engine_stream_sessions_total", count as u64);
    let executed_at = Instant::now();
    let latency_micros = admitted_at.elapsed().as_micros() as u64;
    let stamps = TimelineStamps {
        submitted_at,
        dispatched_at,
        planned_at: admitted_at,
        started_at,
        coins_ready_at,
        executed_at,
    };
    for (request, (res_a, res_b, report)) in requests.into_iter().zip(sessions) {
        emit_outcome(
            ctx,
            request,
            choice,
            plan.name(),
            res_a,
            res_b,
            report,
            latency_micros,
            stamps,
            None,
        );
    }
    let _ = ctx.done_tx.send(());
}

/// Runs one whole m-party session on this worker and emits its outcome.
///
/// The worker keeps one reusable [`LinkSet`] per party count in `pool`,
/// *reset* (re-seeded, clocks zeroed) between sessions rather than
/// rebuilt — the m-party analogue of the two-party [`SessionRunner`]:
/// steady state builds zero channels per session. All `m` player halves
/// run on parallel scoped threads with pairwise links, so every
/// tournament level's matches proceed concurrently; the transcript is
/// bit-identical to a harness-only `execute` of the same request (same
/// generated inputs, same common random string, same pair-labeled coin
/// forks).
fn run_multiparty_session(
    pool: &mut HashMap<usize, LinkSet>,
    task: MultipartyTask,
    ctx: &WorkerCtx,
) {
    let started_at = Instant::now();
    let MultipartyTask {
        request,
        plan,
        submitted_at,
        dispatched_at,
        admitted_at,
    } = task;
    let m = request.players;
    let id = request.id;
    let choice = request.choice;
    let sets = request.player_sets();
    let links = pool
        .entry(m)
        .or_insert_with(|| LinkSet::new(m, request.seed, Duration::from_secs(30)));
    links.reset(request.seed);
    let coins_ready_at = Instant::now();
    obs::gauge_add("engine_workers_busy", 1);
    let spec = request.spec;
    let tree_rounds = request.tree_rounds;
    let run = links.run(|pctx| choice.run_player(spec, tree_rounds, pctx, &sets[pctx.id()]));
    obs::gauge_add("engine_workers_busy", -1);
    let executed_at = Instant::now();

    let (outputs, report, error) = match run {
        Ok(out) => (out.outputs, out.report, None),
        Err(e) => (Vec::new(), NetworkReport::default(), Some(e)),
    };
    let holder = outputs.iter().position(|o| o.intersection.is_some());
    let result = holder.and_then(|h| outputs[h].intersection.clone());
    let verdicts: Vec<Option<bool>> = outputs.iter().map(|o| o.verdict).collect();
    let envelope_bits = request.envelope_bits(&plan);
    let within_envelope = (report.max_bits_per_player() as f64) <= envelope_bits;
    let latency_micros = admitted_at.elapsed().as_micros() as u64;
    let timeline = TimelineStamps {
        submitted_at,
        dispatched_at,
        planned_at: admitted_at,
        started_at,
        coins_ready_at,
        executed_at,
    }
    .settle();
    let outcome = MultipartySessionOutcome {
        request,
        holder,
        result,
        verdicts,
        error,
        report,
        envelope_bits,
        within_envelope,
        latency_micros,
        timeline,
    };
    let succeeded = outcome.succeeded();
    ctx.registry.record_multiparty(
        id,
        choice.name(),
        m,
        &outcome.report,
        succeeded,
        latency_micros,
    );
    if succeeded {
        lifecycle("complete", id, None);
        obs::counter_add("engine_sessions_completed", 1);
        obs::flight::record(
            obs::flight::CODE_COMPLETE,
            id,
            outcome.report.total_bits(),
            latency_micros,
        );
    } else {
        lifecycle("fail", id, None);
        obs::counter_add("engine_sessions_failed", 1);
        obs::flight::record(
            obs::flight::CODE_FAIL,
            id,
            outcome.report.total_bits(),
            latency_micros,
        );
    }
    obs::counter_add(
        &obs::metrics::labeled("multiparty_sessions_total", &[("m", &m.to_string())]),
        1,
    );
    obs::counter_add("multiparty_bits_total", outcome.report.total_bits());
    for (sent, received) in outcome
        .report
        .bits_sent
        .iter()
        .zip(&outcome.report.bits_received)
    {
        obs::observe("multiparty_player_bits", sent + received);
    }
    if !outcome.within_envelope {
        obs::counter_add("multiparty_envelope_violations_total", 1);
    }
    obs::observe("engine_session_latency_micros", latency_micros);
    if obs::enabled() {
        for (segment, micros) in outcome.timeline.segments() {
            obs::observe(
                &obs::metrics::labeled("engine_segment_micros", &[("segment", segment)]),
                micros,
            );
        }
    }
    obs::gauge_add("engine_in_flight", -1);
    let _ = ctx.mp_outcome_tx.send(outcome);
    let _ = ctx.done_tx.send(());
}

/// A running session engine. Submit requests from any thread; call
/// [`finish`](Engine::finish) to drain and collect the outcomes.
///
/// # Examples
///
/// ```
/// use intersect_core::sets::ProblemSpec;
/// use intersect_engine::{Engine, EngineConfig, SessionRequest};
///
/// let engine = Engine::start(EngineConfig::new(2));
/// for id in 0..4 {
///     let req = SessionRequest::new(id, ProblemSpec::new(1 << 16, 16), 5);
///     engine.submit(req)?;
/// }
/// let report = engine.finish();
/// assert_eq!(report.outcomes.len(), 4);
/// assert!(report.outcomes.iter().all(|o| o.succeeded()));
/// assert_eq!(report.snapshot.metrics.completed, 4);
/// # Ok::<(), intersect_engine::SubmitError>(())
/// ```
#[derive(Debug)]
pub struct Engine {
    admit_tx: Sender<Submission>,
    outcome_rx: Receiver<SessionOutcome>,
    mp_outcome_rx: Receiver<MultipartySessionOutcome>,
    registry: Arc<Registry>,
    cache: Arc<PlanCache>,
    pair_contexts: Arc<PairContextCache>,
    streams_opened: AtomicU64,
    workers: usize,
    dispatcher: JoinHandle<()>,
    worker_handles: Vec<JoinHandle<()>>,
    monitor: Option<Arc<ConformanceMonitor>>,
    calibrator: Option<Arc<Calibrator>>,
}

/// Registers `# HELP` texts for every metric the engine emits, so the
/// Prometheus exposition is self-describing. No-op while no subscriber
/// is installed.
fn describe_engine_metrics() {
    for (name, help) in [
        (
            "engine_sessions_submitted",
            "Sessions admitted into the queue",
        ),
        (
            "engine_sessions_completed",
            "Sessions finished with both parties agreeing on the intersection",
        ),
        (
            "engine_sessions_failed",
            "Sessions finished with a protocol error",
        ),
        (
            "engine_sessions_rejected",
            "Sessions turned away by admission control (queue full)",
        ),
        (
            "engine_bits_total",
            "Total bits on the wire across finished sessions",
        ),
        (
            "engine_queue_depth",
            "Requests waiting in the admission queue",
        ),
        ("engine_in_flight", "Sessions currently running on the pool"),
        (
            "engine_workers_busy",
            "Worker threads currently inside a session half",
        ),
        (
            "engine_session_latency_micros",
            "Admission-to-outcome latency per session, microseconds",
        ),
        ("engine_session_bits", "Total bits on the wire per session"),
        (
            "engine_plan_cache_hits",
            "Plan-cache lookups served from a live prepared plan",
        ),
        (
            "engine_plan_cache_misses",
            "Plan-cache lookups that ran the parameter phase",
        ),
        (
            "engine_plan_cache_entries",
            "Prepared plans currently cached by (protocol, spec)",
        ),
        (
            "engine_batch_depth",
            "Sessions per admitted batch submission",
        ),
        (
            "pair_context_hits",
            "Pair-context lookups served from a live context",
        ),
        (
            "pair_context_misses",
            "Pair-context lookups that ran the offline phase",
        ),
        (
            "pair_context_entries",
            "Pair randomness contexts currently cached by (pair, protocol, spec)",
        ),
        (
            "coin_block_refills_total",
            "Pair coin-block refills: a stream outran its presampled seed block",
        ),
        (
            "engine_streams_opened_total",
            "Pair streams opened via Engine::open_stream",
        ),
        (
            "engine_stream_sessions_total",
            "Sessions served through pair streams",
        ),
        (
            "engine_stream_depth",
            "Sessions per admitted stream submission",
        ),
        (
            "conformance_checks_total",
            "Completed sessions checked against theory envelopes",
        ),
        (
            "conformance_violations_total",
            "Envelope breaches by protocol and bound (bits or rounds)",
        ),
        (
            "trace_contexts_minted_total",
            "Distributed trace contexts minted at submission (one per untagged session)",
        ),
        (
            "engine_segment_micros",
            "Per-session latency by waterfall segment (admit-queue, plan-cache, wire-wait, coin-refill, rounds-execute, drain)",
        ),
        (
            "multiparty_sessions_total",
            "Engine-hosted m-party sessions finished, labeled by party count m",
        ),
        (
            "multiparty_bits_total",
            "Total bits on the wire across engine-hosted m-party sessions",
        ),
        (
            "multiparty_player_bits",
            "Per-player bits (sent + received) per m-party session",
        ),
        (
            "multiparty_envelope_violations_total",
            "M-party sessions whose heaviest player exceeded the tournament-plan envelope",
        ),
    ] {
        obs::describe(name, help);
    }
    describe_calibration_metrics();
}

impl Engine {
    /// Spawns the worker pool and dispatcher and starts admitting.
    pub fn start(config: EngineConfig) -> Engine {
        let workers = config.workers.max(2);
        let max_in_flight = config.max_in_flight.max(1);
        let (admit_tx, admit_rx) = bounded::<Submission>(config.queue_capacity.max(1));
        let (work_tx, work_rx) = unbounded::<WorkItem>();
        let (outcome_tx, outcome_rx) = unbounded::<SessionOutcome>();
        let (mp_outcome_tx, mp_outcome_rx) = unbounded::<MultipartySessionOutcome>();
        let (done_tx, done_rx) = unbounded::<()>();
        let registry = Arc::new(Registry::with_capacity(config.ring));
        let cache = Arc::new(PlanCache::new());
        let pair_contexts = Arc::new(PairContextCache::new());
        describe_engine_metrics();
        let monitor = config
            .conformance
            .map(|cfg| (cfg, Arc::new(ConformanceMonitor::new())));
        // The calibrator shares the conformance monitor's health flag
        // when both are armed, so `/healthz` reports drift and
        // violations through one signal.
        let calibrator = config.calibration.map(|cfg| {
            Arc::new(match &monitor {
                Some((_, m)) => Calibrator::with_health(cfg, m.health()),
                None => Calibrator::new(cfg),
            })
        });

        // Each worker also owns a private queue for pair-affine stream
        // work: the dispatcher routes a pair's streams to worker
        // `pair % workers`, so a pair's sessions always find the same
        // warm runner.
        let (stream_txs, stream_rxs): (Vec<Sender<WorkItem>>, Vec<Receiver<WorkItem>>) =
            (0..workers).map(|_| unbounded::<WorkItem>()).unzip();
        let worker_handles: Vec<JoinHandle<()>> = stream_rxs
            .into_iter()
            .map(|stream_rx| {
                let work_rx = work_rx.clone();
                let ctx = WorkerCtx {
                    registry: Arc::clone(&registry),
                    outcome_tx: outcome_tx.clone(),
                    mp_outcome_tx: mp_outcome_tx.clone(),
                    done_tx: done_tx.clone(),
                    conformance: monitor.as_ref().map(|(cfg, m)| (*cfg, Arc::clone(m))),
                    calibration: calibrator.clone(),
                };
                std::thread::spawn(move || {
                    // Each worker owns one reusable runner for its whole
                    // life: zero thread spawns per session in steady state.
                    let mut runner = SessionRunner::start();
                    // And one reusable link mesh per party count it has
                    // hosted, reset between m-party sessions.
                    let mut link_pool: HashMap<usize, LinkSet> = HashMap::new();
                    let mut shared_open = true;
                    let mut affine_open = true;
                    while shared_open || affine_open {
                        // Drain pair-affine stream work first; when both
                        // queues are live, poll the shared queue with a
                        // short timeout so neither starves. The vendored
                        // channel has no `select!`, hence the poll loop.
                        let item = if !affine_open {
                            match work_rx.recv() {
                                Ok(item) => Some(item),
                                Err(_) => {
                                    shared_open = false;
                                    None
                                }
                            }
                        } else if !shared_open {
                            match stream_rx.recv() {
                                Ok(item) => Some(item),
                                Err(_) => {
                                    affine_open = false;
                                    None
                                }
                            }
                        } else {
                            match stream_rx.try_recv() {
                                Ok(item) => Some(item),
                                Err(TryRecvError::Disconnected) => {
                                    affine_open = false;
                                    None
                                }
                                Err(TryRecvError::Empty) => {
                                    match work_rx.recv_timeout(Duration::from_millis(1)) {
                                        Ok(item) => Some(item),
                                        Err(RecvTimeoutError::Timeout) => None,
                                        Err(RecvTimeoutError::Disconnected) => {
                                            shared_open = false;
                                            None
                                        }
                                    }
                                }
                            }
                        };
                        match item {
                            Some(WorkItem::Single(task)) => run_session(&mut runner, task, &ctx),
                            Some(WorkItem::Batch(task)) => {
                                run_batch_session(&mut runner, task, &ctx)
                            }
                            Some(WorkItem::Stream(task)) => {
                                run_stream_session(&mut runner, task, &ctx)
                            }
                            Some(WorkItem::Multiparty(task)) => {
                                run_multiparty_session(&mut link_pool, task, &ctx)
                            }
                            None => {}
                        }
                    }
                })
            })
            .collect();
        drop(work_rx);

        let dispatcher = {
            let policy = config.policy;
            let debug_session = config.debug_session;
            let cache = Arc::clone(&cache);
            let pair_contexts = Arc::clone(&pair_contexts);
            let calibrator = calibrator.clone();
            std::thread::spawn(move || {
                let mut in_flight = 0usize;
                for submission in admit_rx.iter() {
                    while in_flight >= max_in_flight {
                        if done_rx.recv().is_err() {
                            return; // all workers gone
                        }
                        in_flight -= 1;
                    }
                    let dispatched_at = Instant::now();
                    let item = match submission {
                        Submission::Single(request, submitted_at) => {
                            lifecycle("admit", request.id, request.trace);
                            obs::gauge_add("engine_queue_depth", -1);
                            let choice = route_calibrated(&request, policy, calibrator.as_deref());
                            lifecycle("route", request.id, request.trace);
                            // One cache lookup replaces per-session
                            // parameter derivation; a miss prepares once
                            // for every later session of this shape.
                            let plan = cache.get_or_prepare(choice, request.spec);
                            obs::gauge_add("engine_in_flight", 1);
                            WorkItem::Single(SessionTask {
                                traced: debug_session == Some(request.id),
                                request,
                                choice,
                                plan,
                                submitted_at,
                                dispatched_at,
                                admitted_at: Instant::now(),
                            })
                        }
                        Submission::Batch(requests, submitted_at) => {
                            for request in &requests {
                                lifecycle("admit", request.id, request.trace);
                            }
                            obs::gauge_add("engine_queue_depth", -(requests.len() as i64));
                            // submit_batch guarantees a uniform spec and
                            // override, so the first request routes for all.
                            let choice =
                                route_calibrated(&requests[0], policy, calibrator.as_deref());
                            for request in &requests {
                                lifecycle("route", request.id, request.trace);
                            }
                            let plan = cache.get_or_prepare(choice, requests[0].spec);
                            obs::gauge_add("engine_in_flight", requests.len() as i64);
                            obs::observe("engine_batch_depth", requests.len() as u64);
                            WorkItem::Batch(BatchTask {
                                requests,
                                choice,
                                plan,
                                submitted_at,
                                dispatched_at,
                                admitted_at: Instant::now(),
                            })
                        }
                        Submission::Stream(pair, requests, submitted_at) => {
                            for request in &requests {
                                lifecycle("admit", request.id, request.trace);
                            }
                            obs::gauge_add("engine_queue_depth", -(requests.len() as i64));
                            // submit_stream guarantees a uniform spec and
                            // override, so the first request routes for all.
                            let choice =
                                route_calibrated(&requests[0], policy, calibrator.as_deref());
                            for request in &requests {
                                lifecycle("route", request.id, request.trace);
                            }
                            // One context lookup replaces the pair's
                            // offline phase; a miss forks the pair's coin
                            // block and reduction slot once for every
                            // later stream of this pair.
                            let ctx =
                                pair_contexts.get_or_create(pair, choice, requests[0].spec, &cache);
                            obs::gauge_add("engine_in_flight", requests.len() as i64);
                            obs::observe("engine_stream_depth", requests.len() as u64);
                            WorkItem::Stream(StreamTask {
                                requests,
                                pair,
                                choice,
                                ctx,
                                submitted_at,
                                dispatched_at,
                                admitted_at: Instant::now(),
                            })
                        }
                        Submission::Multiparty(request, submitted_at) => {
                            lifecycle("admit", request.id, None);
                            obs::gauge_add("engine_queue_depth", -1);
                            // The tournament plan is derived once per
                            // (protocol, spec, m) shape and shared; the
                            // session's conformance envelope reads it too.
                            let plan = cache.get_or_tournament(
                                request.choice,
                                request.spec,
                                request.players,
                            );
                            lifecycle("route", request.id, None);
                            obs::gauge_add("engine_in_flight", 1);
                            WorkItem::Multiparty(MultipartyTask {
                                request,
                                plan,
                                submitted_at,
                                dispatched_at,
                                admitted_at: Instant::now(),
                            })
                        }
                    };
                    // Streams go to the pair's affine worker; everything
                    // else to the shared queue.
                    let sent = match item {
                        WorkItem::Stream(task) => {
                            let target = (task.pair as usize) % stream_txs.len();
                            stream_txs[target].send(WorkItem::Stream(task))
                        }
                        other => work_tx.send(other),
                    };
                    if sent.is_err() {
                        return;
                    }
                    in_flight += 1;
                }
            })
        };

        Engine {
            admit_tx,
            outcome_rx,
            mp_outcome_rx,
            registry,
            cache,
            pair_contexts,
            streams_opened: AtomicU64::new(0),
            workers,
            dispatcher,
            worker_handles,
            monitor: monitor.map(|(_, m)| m),
            calibrator,
        }
    }

    /// A cloneable `'static` handle for the telemetry plane: live
    /// snapshots and the recent-session ring, scrapeable from another
    /// thread while workers are still serving.
    pub fn watch(&self) -> EngineWatch {
        EngineWatch {
            registry: Arc::clone(&self.registry),
            workers: self.workers as u64,
        }
    }

    /// The engine's conformance monitor, present iff
    /// [`EngineConfig::conformance`] was set. `/healthz` keeps the
    /// monitor's [`Health`](obs::Health) handle.
    pub fn conformance_monitor(&self) -> Option<Arc<ConformanceMonitor>> {
        self.monitor.clone()
    }

    /// The engine's router calibrator, present iff
    /// [`EngineConfig::calibration`] was set. The telemetry plane's
    /// `/calibration` endpoint serves its
    /// [`snapshot`](Calibrator::snapshot), and embedders can
    /// [`inject`](Calibrator::inject) deliberate miscalibrations to
    /// exercise the feedback loop.
    pub fn calibrator(&self) -> Option<Arc<Calibrator>> {
        self.calibrator.clone()
    }

    /// Non-blocking admission: rejects immediately when the queue is full.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Rejected`] with `queue_full: true` under
    /// backpressure, and [`SubmitError::Invalid`] for infeasible requests
    /// (which never reach the queue).
    pub fn try_submit(&self, mut request: SessionRequest) -> Result<(), SubmitError> {
        request.validate().map_err(SubmitError::Invalid)?;
        mint_trace(&mut request);
        let id = request.id;
        let trace = request.trace;
        match self
            .admit_tx
            .try_send(Submission::Single(request, Instant::now()))
        {
            Ok(()) => {
                self.registry.record_submitted();
                lifecycle("submit", id, trace);
                obs::counter_add("engine_sessions_submitted", 1);
                obs::gauge_add("engine_queue_depth", 1);
                Ok(())
            }
            Err(TrySendError::Full(_)) => {
                self.registry.record_rejected();
                lifecycle("reject", id, trace);
                obs::counter_add("engine_sessions_rejected", 1);
                obs::flight::record(obs::flight::CODE_REJECT, id, 0, 0);
                Err(SubmitError::Rejected { queue_full: true })
            }
            Err(TrySendError::Disconnected(_)) => Err(SubmitError::Rejected { queue_full: false }),
        }
    }

    /// Blocking admission: waits for queue space instead of rejecting.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Invalid`] for infeasible requests;
    /// [`SubmitError::Rejected`] only if the engine is shutting down.
    pub fn submit(&self, mut request: SessionRequest) -> Result<(), SubmitError> {
        request.validate().map_err(SubmitError::Invalid)?;
        mint_trace(&mut request);
        let id = request.id;
        let trace = request.trace;
        self.admit_tx
            .send(Submission::Single(request, Instant::now()))
            .map_err(|_| SubmitError::Rejected { queue_full: false })?;
        self.registry.record_submitted();
        lifecycle("submit", id, trace);
        obs::counter_add("engine_sessions_submitted", 1);
        obs::gauge_add("engine_queue_depth", 1);
        Ok(())
    }

    /// Blocking batch admission: `requests.len()` same-spec sessions
    /// that will run back-to-back on one worker's warm runner with a
    /// single plan-cache lookup, one coin-source reseed per session.
    /// Each session settles as its own [`SessionOutcome`], bit-identical
    /// to the same request submitted alone; the batch occupies one
    /// in-flight slot.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Invalid`] if the batch is empty, any request is
    /// infeasible, or the requests disagree on spec or protocol
    /// override; [`SubmitError::Rejected`] only on shutdown.
    pub fn submit_batch(&self, mut requests: Vec<SessionRequest>) -> Result<(), SubmitError> {
        let first = requests
            .first()
            .ok_or_else(|| SubmitError::Invalid("empty batch".into()))?;
        let (spec, protocol) = (first.spec, first.protocol);
        for request in &mut requests {
            request.validate().map_err(SubmitError::Invalid)?;
            if request.spec != spec || request.protocol != protocol {
                return Err(SubmitError::Invalid(
                    "batch requests must share one spec and protocol override".into(),
                ));
            }
            mint_trace(request);
        }
        let tags: Vec<(u64, Option<obs::TraceContext>)> =
            requests.iter().map(|r| (r.id, r.trace)).collect();
        self.admit_tx
            .send(Submission::Batch(requests, Instant::now()))
            .map_err(|_| SubmitError::Rejected { queue_full: false })?;
        for (id, trace) in &tags {
            self.registry.record_submitted();
            lifecycle("submit", *id, *trace);
        }
        obs::counter_add("engine_sessions_submitted", tags.len() as u64);
        obs::gauge_add("engine_queue_depth", tags.len() as i64);
        Ok(())
    }

    /// Blocking admission of one m-party session: the engine regenerates
    /// all `m` input sets from the request, hosts the session on one
    /// worker's reusable link mesh with the `m` player halves running on
    /// parallel threads, and settles it as a
    /// [`MultipartySessionOutcome`] (collected by
    /// [`finish`](Engine::finish) into [`EngineReport::multiparty`]).
    /// The session occupies one in-flight slot and is bit-identical to
    /// the same request served by a harness-only
    /// [`execute`](intersect_multiparty::AverageCase::execute) call.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Invalid`] for infeasible requests;
    /// [`SubmitError::Rejected`] only if the engine is shutting down.
    pub fn submit_multiparty(&self, request: MultipartyRequest) -> Result<(), SubmitError> {
        request.validate().map_err(SubmitError::Invalid)?;
        let id = request.id;
        self.admit_tx
            .send(Submission::Multiparty(request, Instant::now()))
            .map_err(|_| SubmitError::Rejected { queue_full: false })?;
        self.registry.record_submitted();
        lifecycle("submit", id, None);
        obs::counter_add("engine_sessions_submitted", 1);
        obs::gauge_add("engine_queue_depth", 1);
        Ok(())
    }

    /// Opens a session stream for client pair `pair`. Streams are
    /// lightweight handles: opening one allocates nothing — the pair's
    /// [`PairContext`] materializes (or is reused) when the first
    /// [`submit_stream`](Engine::submit_stream) is dispatched.
    pub fn open_stream(&self, pair: u64) -> StreamId {
        let stream = self.streams_opened.fetch_add(1, Ordering::Relaxed);
        obs::counter_add("engine_streams_opened_total", 1);
        StreamId { pair, stream }
    }

    /// Blocking stream admission: `requests.len()` same-spec sessions of
    /// one client pair, pipelined on the pair's affine worker with coin
    /// seeds drawn from the pair's [`PairContext`]. Each session settles
    /// as its own [`SessionOutcome`] whose request carries `pair`/`stream`
    /// tags, bit-identical to that tagged request submitted alone; the
    /// submission occupies one in-flight slot.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Invalid`] if the submission is empty, any request
    /// is infeasible, or the requests disagree on spec or protocol
    /// override; [`SubmitError::Rejected`] only on shutdown.
    pub fn submit_stream(
        &self,
        stream: StreamId,
        mut requests: Vec<SessionRequest>,
    ) -> Result<(), SubmitError> {
        let first = requests
            .first()
            .ok_or_else(|| SubmitError::Invalid("empty stream submission".into()))?;
        let (spec, protocol) = (first.spec, first.protocol);
        for request in &mut requests {
            request.validate().map_err(SubmitError::Invalid)?;
            if request.spec != spec || request.protocol != protocol {
                return Err(SubmitError::Invalid(
                    "stream requests must share one spec and protocol override".into(),
                ));
            }
            mint_trace(request);
        }
        let tags: Vec<(u64, Option<obs::TraceContext>)> =
            requests.iter().map(|r| (r.id, r.trace)).collect();
        self.admit_tx
            .send(Submission::Stream(stream.pair, requests, Instant::now()))
            .map_err(|_| SubmitError::Rejected { queue_full: false })?;
        for (id, trace) in &tags {
            self.registry.record_submitted();
            lifecycle("submit", *id, *trace);
        }
        obs::counter_add("engine_sessions_submitted", tags.len() as u64);
        obs::gauge_add("engine_queue_depth", tags.len() as i64);
        Ok(())
    }

    /// The engine's shared plan cache: dispatch goes through it, and
    /// embedders may share it (or call
    /// [`invalidate`](PlanCache::invalidate) after reconfiguration).
    pub fn plan_cache(&self) -> Arc<PlanCache> {
        Arc::clone(&self.cache)
    }

    /// The engine's pair-context cache: streamed dispatch goes through
    /// it, and embedders may inspect hit rates or call
    /// [`invalidate`](PairContextCache::invalidate) after
    /// reconfiguration (pair streams resume from fresh contexts with
    /// unchanged coin-seed derivations).
    pub fn pair_contexts(&self) -> Arc<PairContextCache> {
        Arc::clone(&self.pair_contexts)
    }

    /// A live view of the aggregate metrics (sessions may still be in
    /// flight; use [`finish`](Engine::finish) for the settled totals).
    pub fn snapshot(&self) -> EngineSnapshot {
        self.registry.snapshot(self.workers as u64)
    }

    /// Outcomes that have already settled, in completion order. Mostly
    /// useful for streaming consumers; [`finish`](Engine::finish) returns
    /// everything sorted.
    pub fn drain_outcomes(&self) -> Vec<SessionOutcome> {
        self.outcome_rx.try_iter().collect()
    }

    /// M-party outcomes that have already settled, in completion order.
    pub fn drain_multiparty_outcomes(&self) -> Vec<MultipartySessionOutcome> {
        self.mp_outcome_rx.try_iter().collect()
    }

    /// Stops admitting, drains every in-flight session, joins the pool,
    /// and returns the settled report. Outcomes are sorted by request id.
    pub fn finish(self) -> EngineReport {
        let Engine {
            admit_tx,
            outcome_rx,
            mp_outcome_rx,
            registry,
            cache: _,
            pair_contexts: _,
            streams_opened: _,
            workers,
            dispatcher,
            worker_handles,
            monitor,
            calibrator: _,
        } = self;
        drop(admit_tx);
        dispatcher.join().expect("dispatcher panicked");
        for handle in worker_handles {
            handle.join().expect("worker panicked");
        }
        let mut outcomes: Vec<SessionOutcome> = outcome_rx.try_iter().collect();
        outcomes.sort_by_key(|o| o.request.id);
        let mut multiparty: Vec<MultipartySessionOutcome> = mp_outcome_rx.try_iter().collect();
        multiparty.sort_by_key(|o| o.request.id);
        EngineReport {
            snapshot: registry.snapshot(workers as u64),
            outcomes,
            multiparty,
            conformance: monitor.map(|m| m.report()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use intersect_core::api::execute;
    use intersect_core::sets::ProblemSpec;

    fn mixed_requests(count: u64) -> Vec<SessionRequest> {
        let shapes = [
            (1u64 << 16, 16u64),
            (1 << 18, 32),
            (1 << 20, 64),
            (1 << 16, 8),
        ];
        (0..count)
            .map(|id| {
                let (n, k) = shapes[(id % shapes.len() as u64) as usize];
                let mut req = SessionRequest::new(id, ProblemSpec::new(n, k), (id % k) as usize);
                req.seed = id.wrapping_mul(0x9e37_79b9) + 1;
                req
            })
            .collect()
    }

    #[test]
    fn engine_outcomes_match_dedicated_runs_bit_for_bit() {
        let engine = Engine::start(EngineConfig::new(4));
        let requests = mixed_requests(24);
        for req in &requests {
            engine.submit(req.clone()).unwrap();
        }
        let report = engine.finish();
        assert_eq!(report.outcomes.len(), 24);
        for outcome in &report.outcomes {
            let req = &outcome.request;
            let pair = req.input_pair();
            let reference = execute(
                outcome.protocol.build(req.spec).as_ref(),
                req.spec,
                &pair,
                req.seed,
            )
            .unwrap();
            assert!(outcome.succeeded(), "session {} failed", req.id);
            assert_eq!(outcome.alice.as_ref().unwrap(), &pair.ground_truth());
            assert_eq!(outcome.report, reference.report, "session {}", req.id);
        }
    }

    #[test]
    fn batch_submissions_settle_bit_identically_to_singles() {
        let spec = ProblemSpec::new(1 << 18, 32);
        let requests: Vec<SessionRequest> = (0..16)
            .map(|id| {
                let mut req = SessionRequest::new(id, spec, (id % 33) as usize);
                req.seed = id * 7 + 1;
                req
            })
            .collect();

        let engine = Engine::start(EngineConfig::new(2));
        engine.submit_batch(requests.clone()).unwrap();
        let batched = engine.finish();

        let engine = Engine::start(EngineConfig::new(2));
        for req in requests {
            engine.submit(req).unwrap();
        }
        let singles = engine.finish();

        assert_eq!(batched.outcomes.len(), 16);
        for (b, s) in batched.outcomes.iter().zip(&singles.outcomes) {
            assert!(b.succeeded(), "session {} failed in batch", b.request.id);
            assert_eq!(b.report, s.report, "session {}", b.request.id);
            assert_eq!(b.alice, s.alice, "session {}", b.request.id);
            assert_eq!(b.protocol, s.protocol, "session {}", b.request.id);
        }
        // The deterministic half of the snapshot is identical too.
        assert_eq!(batched.snapshot.metrics, singles.snapshot.metrics);
    }

    #[test]
    fn streamed_sessions_match_tagged_one_shot_reruns_bit_for_bit() {
        let spec = ProblemSpec::new(1 << 18, 32);
        let make = |id: u64| {
            let mut req = SessionRequest::new(id, spec, (id % 33) as usize);
            req.seed = id * 11 + 3;
            req
        };
        let engine = Engine::start(EngineConfig::new(2));
        let stream = engine.open_stream(0xbeef);
        engine
            .submit_stream(stream, (0..8).map(make).collect())
            .unwrap();
        engine
            .submit_stream(stream, (8..16).map(make).collect())
            .unwrap();
        let report = engine.finish();
        assert_eq!(report.outcomes.len(), 16);
        for (i, outcome) in report.outcomes.iter().enumerate() {
            let req = &outcome.request;
            assert!(outcome.succeeded(), "session {} failed", req.id);
            // Both submissions hit one monotone stream of the pair.
            assert_eq!(req.pair, Some(0xbeef));
            assert_eq!(req.stream, Some(i as u64));
            // The tagged request reproduces its streamed transcript in a
            // dedicated run: inputs from `seed`, coins from `coin_seed`.
            let pair = req.input_pair();
            let reference = execute(
                outcome.protocol.build(spec).as_ref(),
                spec,
                &pair,
                req.coin_seed(),
            )
            .unwrap();
            assert_eq!(outcome.alice.as_ref().unwrap(), &pair.ground_truth());
            assert_eq!(outcome.report, reference.report, "session {}", req.id);
        }
    }

    #[test]
    fn stream_tagged_singles_reuse_the_streamed_coin_seed() {
        // A streamed session resubmitted alone (tags intact) must settle
        // with the identical transcript — the audit path for streams.
        let spec = ProblemSpec::new(1 << 18, 32);
        let req = SessionRequest::new(5, spec, 9).in_stream(0xbeef, 5);

        let engine = Engine::start(EngineConfig::new(2));
        let stream = engine.open_stream(0xbeef);
        let batch: Vec<SessionRequest> =
            (0..6).map(|id| SessionRequest::new(id, spec, 9)).collect();
        engine.submit_stream(stream, batch).unwrap();
        let streamed = engine.finish();

        let engine = Engine::start(EngineConfig::new(2));
        engine.submit(req).unwrap();
        let single = engine.finish();

        let s = &streamed.outcomes[5];
        let o = &single.outcomes[0];
        assert_eq!(s.request, o.request);
        assert_eq!(s.report, o.report);
        assert_eq!(s.alice, o.alice);
    }

    #[test]
    fn pair_contexts_are_cached_across_stream_submissions() {
        let spec = ProblemSpec::new(1 << 18, 32);
        let engine = Engine::start(EngineConfig::new(2));
        let contexts = engine.pair_contexts();
        let stream = engine.open_stream(1);
        for round in 0..3 {
            let batch: Vec<SessionRequest> = (round * 4..round * 4 + 4)
                .map(|id| SessionRequest::new(id, spec, 4))
                .collect();
            engine.submit_stream(stream, batch).unwrap();
        }
        let other = engine.open_stream(2);
        engine
            .submit_stream(other, vec![SessionRequest::new(100, spec, 4)])
            .unwrap();
        let report = engine.finish();
        assert_eq!(report.outcomes.len(), 13);
        assert!(report.outcomes.iter().all(|o| o.succeeded()));
        let stats = contexts.stats();
        // One offline phase per pair; later submissions hit.
        assert_eq!(stats.misses, 2, "{stats:?}");
        assert_eq!(stats.hits, 2, "{stats:?}");
        assert_eq!(stats.entries, 2, "{stats:?}");
    }

    #[test]
    fn mixed_spec_stream_submissions_are_rejected_as_invalid() {
        let engine = Engine::start(EngineConfig::new(2));
        let stream = engine.open_stream(7);
        let batch = vec![
            SessionRequest::new(0, ProblemSpec::new(1 << 16, 16), 4),
            SessionRequest::new(1, ProblemSpec::new(1 << 18, 16), 4),
        ];
        assert!(matches!(
            engine.submit_stream(stream, batch),
            Err(SubmitError::Invalid(_))
        ));
        assert!(matches!(
            engine.submit_stream(stream, Vec::new()),
            Err(SubmitError::Invalid(_))
        ));
        let report = engine.finish();
        assert_eq!(report.snapshot.metrics.submitted, 0);
    }

    #[test]
    fn mixed_spec_batches_are_rejected_as_invalid() {
        let engine = Engine::start(EngineConfig::new(2));
        let batch = vec![
            SessionRequest::new(0, ProblemSpec::new(1 << 16, 16), 4),
            SessionRequest::new(1, ProblemSpec::new(1 << 18, 16), 4),
        ];
        assert!(matches!(
            engine.submit_batch(batch),
            Err(SubmitError::Invalid(_))
        ));
        assert!(matches!(
            engine.submit_batch(Vec::new()),
            Err(SubmitError::Invalid(_))
        ));
        let report = engine.finish();
        assert_eq!(report.snapshot.metrics.submitted, 0);
    }

    #[test]
    fn plan_cache_is_shared_across_sessions() {
        let engine = Engine::start(EngineConfig::new(2));
        let cache = engine.plan_cache();
        for req in mixed_requests(16) {
            engine.submit(req).unwrap();
        }
        let report = engine.finish();
        assert_eq!(report.outcomes.len(), 16);
        let stats = cache.stats();
        // 16 sessions over 4 workload shapes: one parameter derivation
        // per shape, everything else a hit.
        assert_eq!(stats.hits + stats.misses, 16);
        assert_eq!(stats.misses, 4, "{stats:?}");
        assert_eq!(stats.entries, 4, "{stats:?}");
    }

    #[test]
    fn backpressure_rejects_when_queue_and_pool_are_full() {
        // Two workers serve exactly one session at a time; the queue holds
        // one more. A burst must therefore overflow into rejections.
        let mut config = EngineConfig::new(2);
        config.max_in_flight = 1;
        config.queue_capacity = 1;
        let engine = Engine::start(config);
        let mut rejected = 0;
        let mut admitted = 0;
        for req in mixed_requests(64) {
            match engine.try_submit(req) {
                Ok(()) => admitted += 1,
                Err(SubmitError::Rejected { queue_full }) => {
                    assert!(queue_full);
                    rejected += 1;
                }
                Err(other) => panic!("unexpected: {other}"),
            }
        }
        assert!(
            rejected > 0,
            "burst of 64 into a depth-1 queue never rejected"
        );
        let report = engine.finish();
        assert_eq!(report.snapshot.metrics.rejected, rejected);
        assert_eq!(report.snapshot.metrics.submitted, admitted);
        assert_eq!(report.outcomes.len() as u64, admitted);
        assert!(report.outcomes.iter().all(|o| o.succeeded()));
    }

    #[test]
    fn invalid_requests_never_reach_the_queue() {
        let engine = Engine::start(EngineConfig::new(2));
        let mut bad = SessionRequest::new(0, ProblemSpec::new(1 << 16, 16), 0);
        bad.size = 17; // exceeds k
        assert!(matches!(
            engine.try_submit(bad),
            Err(SubmitError::Invalid(_))
        ));
        let report = engine.finish();
        assert_eq!(report.snapshot.metrics.submitted, 0);
        assert_eq!(report.snapshot.metrics.rejected, 0);
    }

    #[test]
    fn debug_session_records_a_phase_breakdown() {
        let mut config = EngineConfig::new(2);
        config.debug_session = Some(7);
        let engine = Engine::start(config);
        for req in mixed_requests(9) {
            engine.submit(req).unwrap();
        }
        let report = engine.finish();
        for outcome in &report.outcomes {
            if outcome.request.id == 7 {
                let trace = outcome.trace.as_ref().expect("flagged session traced");
                assert!(!trace.is_empty());
                let traced_bits: u64 = trace.iter().map(|p| p.bits_sent + p.bits_received).sum();
                assert_eq!(traced_bits, outcome.report.total_bits());
            } else {
                assert!(outcome.trace.is_none(), "only the flagged session traces");
            }
        }
    }

    #[test]
    fn conformance_hook_checks_every_completed_session() {
        let mut config = EngineConfig::new(2);
        config.conformance = Some(ConformanceConfig::default());
        let engine = Engine::start(config);
        let monitor = engine.conformance_monitor().expect("monitor configured");
        assert!(monitor.health().ok());
        for req in mixed_requests(12) {
            engine.submit(req).unwrap();
        }
        let report = engine.finish();
        let conf = report.conformance.expect("conformance tally present");
        assert_eq!(conf.checked, 12);
        assert!(
            conf.all_conformant(),
            "default slack must pass honest sessions: {:?}",
            conf.violations
        );
        assert!(monitor.health().ok());
    }

    #[test]
    fn zero_slack_flags_every_session_and_degrades_health() {
        let mut config = EngineConfig::new(2);
        config.conformance = Some(ConformanceConfig::with_slack(0.0));
        let engine = Engine::start(config);
        let health = engine.conformance_monitor().unwrap().health();
        for req in mixed_requests(4) {
            engine.submit(req).unwrap();
        }
        let report = engine.finish();
        let conf = report.conformance.unwrap();
        assert_eq!(conf.checked, 4);
        assert!(conf.violation_count > 0);
        assert!(!health.ok());
    }

    #[test]
    fn outcomes_carry_minted_traces_and_tiled_timelines() {
        let engine = Engine::start(EngineConfig::new(2));
        for req in mixed_requests(6) {
            engine.submit(req).unwrap();
        }
        let report = engine.finish();
        assert_eq!(report.outcomes.len(), 6);
        for outcome in &report.outcomes {
            // Minting is a pure function of (id, seed): the outcome's
            // trace context is reproducible from the request alone.
            let trace = outcome.request.trace.expect("trace minted at submission");
            assert_eq!(
                trace,
                obs::TraceContext::mint(outcome.request.id, outcome.request.seed),
                "session {}",
                outcome.request.id
            );
            // The waterfall tiles the submitted-to-settled span: the
            // rounds dominate, and the segment sum covers the whole
            // admission-to-outcome latency up to per-segment truncation.
            let t = &outcome.timeline;
            let sum: u64 = t.segments().iter().map(|(_, micros)| micros).sum();
            assert_eq!(sum, t.total_micros());
            assert!(
                t.rounds_execute_micros > 0,
                "session {} executed in 0µs",
                outcome.request.id
            );
            assert!(
                t.total_micros() + 6 >= outcome.latency_micros,
                "session {}: waterfall {}µs < latency {}µs",
                outcome.request.id,
                t.total_micros(),
                outcome.latency_micros
            );
        }
    }

    #[test]
    fn client_supplied_trace_contexts_are_preserved() {
        let spec = ProblemSpec::new(1 << 16, 16);
        let mut req = SessionRequest::new(3, spec, 4);
        let supplied = obs::TraceContext::mint(999, 7);
        req.trace = Some(supplied);
        let engine = Engine::start(EngineConfig::new(2));
        engine.submit(req).unwrap();
        let report = engine.finish();
        assert_eq!(report.outcomes[0].request.trace, Some(supplied));
    }

    #[test]
    fn ring_capacity_reaches_the_watch_and_sessions_doc() {
        let mut config = EngineConfig::new(2);
        config.ring = 4;
        let engine = Engine::start(config);
        let watch = engine.watch();
        for req in mixed_requests(10) {
            engine.submit(req).unwrap();
        }
        engine.finish();
        assert_eq!(watch.ring(), 4);
        assert_eq!(watch.recent_sessions().len(), 4);
        assert!(watch.sessions_json().contains("\"ring\": 4"));
    }

    #[test]
    fn watch_stays_valid_across_finish() {
        let engine = Engine::start(EngineConfig::new(2));
        let watch = engine.watch();
        for req in mixed_requests(3) {
            engine.submit(req).unwrap();
        }
        let report = engine.finish();
        let snap = watch.snapshot();
        assert_eq!(snap, report.snapshot);
        assert_eq!(watch.recent_sessions().len(), 3);
    }

    #[test]
    fn multiparty_sessions_match_harness_execute_bit_for_bit() {
        use intersect_multiparty::choice::MultipartyChoice;
        use intersect_multiparty::{AverageCase, MultipartyDisjointness, WorstCase};

        let spec = ProblemSpec::new(1 << 16, 16);
        let engine = Engine::start(EngineConfig::new(2));
        let mut id = 0u64;
        let mut expected = Vec::new();
        for choice in MultipartyChoice::ALL {
            for m in [2usize, 4, 8] {
                let mut req = MultipartyRequest::new(id, spec, m, 3, choice);
                req.seed = id * 31 + 7;
                expected.push(req.clone());
                engine.submit_multiparty(req).unwrap();
                id += 1;
            }
        }
        let report = engine.finish();
        assert_eq!(report.multiparty.len(), expected.len());
        assert_eq!(report.snapshot.metrics.completed, expected.len() as u64);
        assert_eq!(report.snapshot.metrics.multiparty_sessions[&4], 3);
        for (outcome, req) in report.multiparty.iter().zip(&expected) {
            assert!(outcome.succeeded(), "session {} failed", req.id);
            assert!(
                outcome.within_envelope,
                "session {}: {} bits/player > envelope {}",
                req.id,
                outcome.report.max_bits_per_player(),
                outcome.envelope_bits
            );
            let sets = req.player_sets();
            let truth = req.ground_truth();
            match req.choice {
                MultipartyChoice::AverageCase => {
                    let reference = AverageCase::new(spec, req.tree_rounds)
                        .execute(&sets, req.seed)
                        .unwrap();
                    assert_eq!(outcome.report, reference.report, "session {}", req.id);
                    assert_eq!(outcome.result.as_ref(), Some(&reference.result));
                    assert_eq!(outcome.result.as_ref(), Some(&truth));
                }
                MultipartyChoice::WorstCase => {
                    let reference = WorstCase::new(spec, req.tree_rounds)
                        .execute(&sets, req.seed)
                        .unwrap();
                    assert_eq!(outcome.report, reference.report, "session {}", req.id);
                    assert_eq!(outcome.result.as_ref(), Some(&reference.result));
                    assert_eq!(outcome.result.as_ref(), Some(&truth));
                }
                MultipartyChoice::Disjointness => {
                    let reference = MultipartyDisjointness::new(spec, req.tree_rounds)
                        .execute(&sets, req.seed)
                        .unwrap();
                    assert_eq!(outcome.report, reference.report, "session {}", req.id);
                    assert_eq!(reference.disjoint, truth.is_empty());
                    assert!(outcome
                        .verdicts
                        .iter()
                        .all(|v| *v == Some(reference.disjoint)));
                }
            }
        }
    }

    #[test]
    fn multiparty_plans_are_cached_and_pair_path_is_undisturbed() {
        use intersect_multiparty::choice::MultipartyChoice;

        let spec = ProblemSpec::new(1 << 16, 16);
        let engine = Engine::start(EngineConfig::new(2));
        let cache = engine.plan_cache();
        for id in 0..6 {
            engine
                .submit_multiparty(MultipartyRequest::new(
                    id,
                    spec,
                    4,
                    2,
                    MultipartyChoice::AverageCase,
                ))
                .unwrap();
        }
        // Interleave two-party work: both worlds share one engine.
        for req in mixed_requests(8) {
            engine.submit(req.clone()).unwrap();
        }
        let report = engine.finish();
        assert_eq!(report.multiparty.len(), 6);
        assert_eq!(report.outcomes.len(), 8);
        assert!(report.multiparty.iter().all(|o| o.succeeded()));
        assert!(report.outcomes.iter().all(|o| o.succeeded()));
        assert_eq!(report.snapshot.metrics.completed, 14);
        let stats = cache.stats();
        // 6 same-shape tournament lookups -> 1 miss; 8 two-party
        // sessions over 4 shapes -> 4 misses.
        assert_eq!(stats.misses, 5, "{stats:?}");
        assert_eq!(stats.hits, 9, "{stats:?}");
        assert_eq!(stats.entries, 5, "{stats:?}");
        // The m-party timeline tiles the same six segments.
        for outcome in &report.multiparty {
            let t = &outcome.timeline;
            let sum: u64 = t.segments().iter().map(|(_, micros)| micros).sum();
            assert_eq!(sum, t.total_micros());
            assert!(t.rounds_execute_micros > 0);
        }
    }

    #[test]
    fn invalid_multiparty_requests_never_reach_the_queue() {
        use intersect_multiparty::choice::MultipartyChoice;

        let engine = Engine::start(EngineConfig::new(2));
        let spec = ProblemSpec::new(1 << 16, 16);
        let zero = MultipartyRequest::new(0, spec, 0, 2, MultipartyChoice::AverageCase);
        assert!(matches!(
            engine.submit_multiparty(zero),
            Err(SubmitError::Invalid(_))
        ));
        let overfull = MultipartyRequest::new(0, spec, 4, 17, MultipartyChoice::AverageCase);
        assert!(matches!(
            engine.submit_multiparty(overfull),
            Err(SubmitError::Invalid(_))
        ));
        let report = engine.finish();
        assert_eq!(report.snapshot.metrics.submitted, 0);
        assert!(report.multiparty.is_empty());
    }

    #[test]
    fn fixed_policy_and_overrides_reach_the_outcomes() {
        let mut config = EngineConfig::new(2);
        config.policy = RoutePolicy::Fixed(ProtocolChoice::Trivial);
        let engine = Engine::start(config);
        let spec = ProblemSpec::new(1 << 16, 16);
        engine.submit(SessionRequest::new(0, spec, 4)).unwrap();
        let mut pinned = SessionRequest::new(1, spec, 4);
        pinned.protocol = Some(ProtocolChoice::Sqrt);
        engine.submit(pinned).unwrap();
        let report = engine.finish();
        assert_eq!(report.outcomes[0].protocol, ProtocolChoice::Trivial);
        assert_eq!(report.outcomes[1].protocol, ProtocolChoice::Sqrt);
        assert_eq!(report.snapshot.metrics.per_protocol.len(), 2);
    }
}
