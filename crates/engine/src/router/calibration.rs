//! Online router recalibration from observed cost residuals.
//!
//! The paper fixes the *shape* of every protocol's cost curve — `O(k)`
//! bits in `O(√k)` rounds, `O(k·log^{(r)} k)` within `O(r)` rounds —
//! but the constants in [`PredictedCost`] are machine-dependent fits.
//! A constant that drifts (new hardware, a regressed encoder, an
//! adversarial workload) silently makes the router rank candidates by a
//! wrong model and pick losing protocols forever: the conformance
//! monitor *sees* the gap between predicted and actual cost, but until
//! this module nothing ever fed it back.
//!
//! The [`Calibrator`] closes that loop. Every completed session folds a
//! **residual** — the ratio of observed to predicted bits (and rounds) —
//! into a per-`(protocol, k-bucket)` EWMA. A hysteresis band separates
//! the EWMA estimate from the **applied** correction factor the router
//! actually multiplies into its [`PredictedCost`] comparisons: the
//! applied factor only snaps to the estimate once the estimate leaves
//! the band, so boundary residuals cannot flap the routing decision,
//! and every routing-relevant change is a counted
//! `router_recalibration_total` event. Entries that receive no traffic
//! decay geometrically toward the theory prior (factor 1.0), which is
//! what lets a *miscalibrated* entry — one whose inflated factor
//! de-routed its protocol, starving it of residuals — recover: the
//! stale correction fades, the protocol wins routing again, and fresh
//! residuals either confirm the theory constant or re-learn the drift.
//!
//! A correction that settles far from 1.0 on real samples is **drift**:
//! the implementation and the calibrated model disagree persistently.
//! That flips the shared [`Health`] to degraded (the same state
//! `/healthz` serves for conformance violations) and emits a
//! `router_drift_total` event, because a routing table running on
//! corrections instead of theory is an operator-visible condition, not
//! a silent adaptation.
//!
//! Corrections never touch protocol *execution* — a session's
//! transcript is bit-identical whether or not calibration is enabled;
//! only which protocol the auto-router picks can change. Conformance
//! envelopes also stay pinned to the uncorrected theory prediction:
//! calibration adapts routing, not the definition of correctness.

use intersect_core::api::ProtocolChoice;
use intersect_core::cost::PredictedCost;
use intersect_obs as obs;
use intersect_obs::conformance::Health;
use intersect_obs::metrics::labeled;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Buckets a cardinality bound `k` by its binary order of magnitude:
/// bucket `b` covers `[2^b, 2^{b+1})`. Residuals are keyed per bucket
/// because the fitted constants err differently at different scales —
/// a correction learned at `k = 16` says little about `k = 4096`.
pub fn k_bucket(k: u64) -> u32 {
    k.max(1).ilog2()
}

/// The display label for a bucket (`2^b`), used on metric labels and in
/// the `/calibration` table.
pub fn bucket_label(bucket: u32) -> String {
    format!("2^{bucket}")
}

/// Tuning knobs for the feedback loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CalibrationConfig {
    /// EWMA weight on each new residual (in log-space). Higher adapts
    /// faster but is noisier.
    pub alpha: f64,
    /// Per-fold geometric decay toward factor 1.0 for entries that did
    /// *not* receive the residual. This is the forgetting that lets a
    /// de-routed (hence unsampled) protocol's stale correction fade and
    /// the protocol re-enter routing.
    pub decay: f64,
    /// Hysteresis band half-width, as a ratio: the applied factor only
    /// snaps to the EWMA estimate once `max(e/a, a/e) > enter_band`
    /// where `e` is the estimate and `a` the applied factor. Residuals
    /// that keep the estimate inside the band change nothing.
    pub enter_band: f64,
    /// An applied factor beyond `[1/drift_band, drift_band]` (with at
    /// least [`min_samples`](CalibrationConfig::min_samples) real
    /// residuals behind it) declares drift and degrades [`Health`].
    pub drift_band: f64,
    /// Samples required before an entry can declare drift; injected
    /// priors carry zero samples and so never degrade health by
    /// themselves.
    pub min_samples: u64,
}

impl Default for CalibrationConfig {
    fn default() -> Self {
        CalibrationConfig {
            alpha: 0.2,
            decay: 0.98,
            enter_band: 1.25,
            drift_band: 2.0,
            min_samples: 16,
        }
    }
}

/// Correction factors the router multiplies into one candidate's
/// predicted cost. `(1.0, 1.0)` means "trust the theory constant".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Correction {
    /// Multiplier on predicted bits.
    pub bits: f64,
    /// Multiplier on predicted rounds.
    pub rounds: f64,
}

impl Correction {
    /// The identity correction.
    pub const NONE: Correction = Correction {
        bits: 1.0,
        rounds: 1.0,
    };
}

/// One entry of the calibration table. All factors are stored in
/// log-space internally; this is the exported linear view.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CalEntrySnapshot {
    /// Display name of the protocol (`ProtocolChoice` rendering).
    pub protocol: String,
    /// k-bucket index (`k ∈ [2^bucket, 2^{bucket+1})`).
    pub k_bucket: u32,
    /// Real residuals folded into this entry (injections not counted).
    pub samples: u64,
    /// Current EWMA estimate of observed/predicted bits.
    pub bits_estimate: f64,
    /// The bits factor routing actually uses (behind the hysteresis band).
    pub bits_applied: f64,
    /// Current EWMA estimate of observed/predicted rounds.
    pub rounds_estimate: f64,
    /// The rounds factor routing actually uses.
    pub rounds_applied: f64,
    /// Times the applied factors snapped to the estimate.
    pub recalibrations: u64,
    /// `true` while the applied factor sits outside the drift band on
    /// real samples.
    pub drifting: bool,
}

/// A point-in-time copy of the whole calibration table, served on
/// `/calibration` and rendered by `intersect-top`.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CalibrationSnapshot {
    /// One row per `(protocol, k-bucket)` pair that has ever been
    /// sampled or injected, sorted by protocol name then bucket.
    pub entries: Vec<CalEntrySnapshot>,
}

impl CalibrationSnapshot {
    /// Renders the table as pretty-printed JSON (the `/calibration`
    /// endpoint body).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("calibration snapshot is serializable")
    }
}

/// Internal per-key state; factors in log-space (`0.0` = factor 1).
#[derive(Debug, Clone, Copy, Default)]
struct CalEntry {
    bits_est: f64,
    bits_applied: f64,
    rounds_est: f64,
    rounds_applied: f64,
    samples: u64,
    recalibrations: u64,
    drifting: bool,
}

/// What one fold decided to announce, gathered under the lock and
/// emitted after it is released (obs hooks never run under the mutex).
/// Recalibrations carry their own `(protocol, bucket)` because decay
/// snaps hit entries other than the folded key.
struct FoldEffects {
    recalibrated: Vec<(ProtocolChoice, u32, &'static str, f64)>,
    drifted: bool,
    applied_bits: f64,
    bits_ratio: f64,
    rounds_ratio: f64,
}

/// The feedback controller: folds completed-session residuals and hands
/// the router corrected costs.
///
/// # Examples
///
/// ```
/// use intersect_core::api::ProtocolChoice;
/// use intersect_core::cost::PredictedCost;
/// use intersect_engine::calibration::{CalibrationConfig, Calibrator};
///
/// let cal = Calibrator::new(CalibrationConfig::default());
/// let predicted = PredictedCost { bits: 1000.0, rounds: 10.0 };
/// // Sessions keep costing ~4x the prediction: the correction climbs.
/// for _ in 0..64 {
///     cal.fold(ProtocolChoice::Sqrt, 256, predicted, 4000, 10);
/// }
/// let c = cal.correction(ProtocolChoice::Sqrt, 256);
/// assert!(c.bits > 2.0, "learned factor {:.2}", c.bits);
/// assert!(!cal.health().ok(), "persistent 4x drift degrades health");
/// ```
#[derive(Debug)]
pub struct Calibrator {
    config: CalibrationConfig,
    health: Arc<Health>,
    entries: Mutex<HashMap<(ProtocolChoice, u32), CalEntry>>,
}

/// Registers `# HELP` texts for the calibration metrics (no-op without
/// an installed subscriber).
pub fn describe_calibration_metrics() {
    for (name, help) in [
        (
            "router_recalibration_total",
            "Applied correction-factor snaps by protocol, k-bucket, and bound",
        ),
        (
            "router_drift_total",
            "Entries whose applied correction left the drift band on real samples",
        ),
        (
            "router_correction_factor_milli",
            "Applied bits correction factor x1000 by protocol and k-bucket",
        ),
        (
            "router_residual_bits_permille",
            "Observed/predicted bits ratio x1000 per completed session",
        ),
        (
            "router_residual_rounds_permille",
            "Observed/predicted rounds ratio x1000 per completed session",
        ),
    ] {
        obs::describe(name, help);
    }
}

impl Calibrator {
    /// A calibrator with its own fresh health flag.
    pub fn new(config: CalibrationConfig) -> Self {
        Calibrator::with_health(config, Arc::new(Health::default()))
    }

    /// A calibrator reporting drift on a shared health flag (the engine
    /// passes the conformance monitor's, so `/healthz` covers both).
    pub fn with_health(config: CalibrationConfig, health: Arc<Health>) -> Self {
        Calibrator {
            config,
            health,
            entries: Mutex::new(HashMap::new()),
        }
    }

    /// The health flag drift reports land on.
    pub fn health(&self) -> Arc<Health> {
        Arc::clone(&self.health)
    }

    /// Seeds a prior correction factor for one `(protocol, k-bucket)`
    /// entry — the deliberate-miscalibration knob used by E22 and
    /// `--miscalibrate`. Carries no samples, so it cannot declare drift
    /// until real residuals confirm it.
    pub fn inject(&self, choice: ProtocolChoice, bucket: u32, factor: f64) {
        let log = factor.max(1e-6).ln();
        let mut entries = self.lock();
        let entry = entries.entry((choice, bucket)).or_default();
        entry.bits_est = log;
        entry.bits_applied = log;
    }

    /// The correction factors routing should apply to this candidate.
    pub fn correction(&self, choice: ProtocolChoice, k: u64) -> Correction {
        let entries = self.lock();
        match entries.get(&(choice, k_bucket(k))) {
            Some(e) => Correction {
                bits: e.bits_applied.exp(),
                rounds: e.rounds_applied.exp(),
            },
            None => Correction::NONE,
        }
    }

    /// Folds one completed session's residual: updates the sampled
    /// entry's EWMA, decays every other entry toward the theory prior,
    /// applies the hysteresis gate, and checks for drift. Metrics and
    /// events are emitted after the table lock is released.
    pub fn fold(
        &self,
        choice: ProtocolChoice,
        k: u64,
        predicted: PredictedCost,
        observed_bits: u64,
        observed_rounds: u64,
    ) {
        let bits_ratio = observed_bits as f64 / predicted.bits.max(1.0);
        let rounds_ratio = observed_rounds as f64 / predicted.rounds.max(1.0);
        // Ratios are clamped to a sane window so one pathological
        // session cannot catapult the EWMA.
        let bits_log = bits_ratio.clamp(1.0 / 64.0, 64.0).ln();
        let rounds_log = rounds_ratio.clamp(1.0 / 64.0, 64.0).ln();
        let bucket = k_bucket(k);
        let cfg = self.config;
        let enter = cfg.enter_band.ln();
        let drift = cfg.drift_band.ln();

        let effects = {
            let mut entries = self.lock();
            let mut recalibrated = Vec::new();
            // Forgetting: every entry that did not produce this residual
            // relaxes toward the theory prior. This is what re-admits a
            // protocol whose stale correction de-routed it.
            for (key, entry) in entries.iter_mut() {
                if *key != (choice, bucket) {
                    entry.bits_est *= cfg.decay;
                    entry.rounds_est *= cfg.decay;
                    // The applied factor follows through the same
                    // hysteresis gate as sampled updates, and decay
                    // snaps are announced like any other: recovery from
                    // a miscalibration happens mostly on this path.
                    if (entry.bits_est - entry.bits_applied).abs() > enter {
                        entry.bits_applied = entry.bits_est;
                        entry.recalibrations += 1;
                        recalibrated.push((key.0, key.1, "bits", entry.bits_applied.exp()));
                    }
                    if (entry.rounds_est - entry.rounds_applied).abs() > enter {
                        entry.rounds_applied = entry.rounds_est;
                        entry.recalibrations += 1;
                        recalibrated.push((key.0, key.1, "rounds", entry.rounds_applied.exp()));
                    }
                }
            }
            let entry = entries.entry((choice, bucket)).or_default();
            entry.samples += 1;
            entry.bits_est = (1.0 - cfg.alpha) * entry.bits_est + cfg.alpha * bits_log;
            entry.rounds_est = (1.0 - cfg.alpha) * entry.rounds_est + cfg.alpha * rounds_log;

            if (entry.bits_est - entry.bits_applied).abs() > enter {
                entry.bits_applied = entry.bits_est;
                entry.recalibrations += 1;
                recalibrated.push((choice, bucket, "bits", entry.bits_applied.exp()));
            }
            if (entry.rounds_est - entry.rounds_applied).abs() > enter {
                entry.rounds_applied = entry.rounds_est;
                entry.recalibrations += 1;
                recalibrated.push((choice, bucket, "rounds", entry.rounds_applied.exp()));
            }
            let out_of_band =
                entry.bits_applied.abs() > drift || entry.rounds_applied.abs() > drift;
            let drifted = out_of_band && entry.samples >= cfg.min_samples && !entry.drifting;
            if drifted {
                entry.drifting = true;
            } else if !out_of_band {
                entry.drifting = false;
            }
            FoldEffects {
                recalibrated,
                drifted,
                applied_bits: entry.bits_applied.exp(),
                bits_ratio,
                rounds_ratio,
            }
        };

        if !obs::enabled() && !effects.drifted {
            return;
        }
        let protocol = choice.to_string();
        let bucket_name = bucket_label(bucket);
        let labels: &[(&str, &str)] = &[("protocol", &protocol), ("k_bucket", &bucket_name)];
        obs::observe(
            &labeled("router_residual_bits_permille", labels),
            (effects.bits_ratio * 1000.0) as u64,
        );
        obs::observe(
            &labeled("router_residual_rounds_permille", labels),
            (effects.rounds_ratio * 1000.0) as u64,
        );
        obs::gauge_set(
            &labeled("router_correction_factor_milli", labels),
            (effects.applied_bits * 1000.0) as i64,
        );
        for (snap_choice, snap_bucket, bound, factor) in &effects.recalibrated {
            let snap_protocol = snap_choice.to_string();
            let snap_bucket_name = bucket_label(*snap_bucket);
            obs::counter_add(
                &labeled(
                    "router_recalibration_total",
                    &[
                        ("protocol", &snap_protocol),
                        ("k_bucket", &snap_bucket_name),
                        ("bound", bound),
                    ],
                ),
                1,
            );
            obs::instant(
                "router",
                format!(
                    "recalibration protocol={snap_protocol} k_bucket={snap_bucket_name} \
                     bound={bound} factor={factor:.3}"
                ),
            );
        }
        if effects.drifted {
            self.health.record_drift(1);
            obs::counter_add(&labeled("router_drift_total", labels), 1);
            obs::instant(
                "router",
                format!(
                    "drift protocol={protocol} k_bucket={bucket_name} \
                     factor={:.3}",
                    effects.applied_bits
                ),
            );
        }
    }

    /// A copy of the calibration table, sorted by protocol then bucket.
    pub fn snapshot(&self) -> CalibrationSnapshot {
        let entries = self.lock();
        let mut rows: Vec<CalEntrySnapshot> = entries
            .iter()
            .map(|((choice, bucket), e)| CalEntrySnapshot {
                protocol: choice.to_string(),
                k_bucket: *bucket,
                samples: e.samples,
                bits_estimate: e.bits_est.exp(),
                bits_applied: e.bits_applied.exp(),
                rounds_estimate: e.rounds_est.exp(),
                rounds_applied: e.rounds_applied.exp(),
                recalibrations: e.recalibrations,
                drifting: e.drifting,
            })
            .collect();
        rows.sort_by(|a, b| (&a.protocol, a.k_bucket).cmp(&(&b.protocol, b.k_bucket)));
        CalibrationSnapshot { entries: rows }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HashMap<(ProtocolChoice, u32), CalEntry>> {
        self.entries.lock().expect("calibration table poisoned")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn predicted() -> PredictedCost {
        PredictedCost {
            bits: 1000.0,
            rounds: 10.0,
        }
    }

    #[test]
    fn k_buckets_cover_powers_of_two() {
        assert_eq!(k_bucket(1), 0);
        assert_eq!(k_bucket(2), 1);
        assert_eq!(k_bucket(3), 1);
        assert_eq!(k_bucket(64), 6);
        assert_eq!(k_bucket(127), 6);
        assert_eq!(k_bucket(128), 7);
        assert_eq!(bucket_label(6), "2^6");
    }

    #[test]
    fn residuals_from_different_buckets_stay_separate() {
        let cal = Calibrator::new(CalibrationConfig::default());
        for _ in 0..64 {
            cal.fold(ProtocolChoice::Sqrt, 64, predicted(), 4000, 10);
        }
        assert!(cal.correction(ProtocolChoice::Sqrt, 64).bits > 2.0);
        // Same protocol, different scale: untouched.
        assert_eq!(cal.correction(ProtocolChoice::Sqrt, 4096), Correction::NONE);
        // Same bucket, different protocol: untouched.
        assert_eq!(
            cal.correction(ProtocolChoice::Trivial, 64),
            Correction::NONE
        );
        // k = 127 shares the 2^6 bucket with k = 64.
        assert!(cal.correction(ProtocolChoice::Sqrt, 127).bits > 2.0);
    }

    #[test]
    fn ewma_converges_to_the_observed_ratio() {
        let cal = Calibrator::new(CalibrationConfig::default());
        for _ in 0..64 {
            cal.fold(ProtocolChoice::Sqrt, 256, predicted(), 3000, 20);
        }
        let snap = cal.snapshot();
        let entry = &snap.entries[0];
        assert!((entry.bits_estimate - 3.0).abs() < 0.2, "{entry:?}");
        assert!((entry.rounds_estimate - 2.0).abs() < 0.2, "{entry:?}");
        // The applied factor trails the estimate by at most one
        // hysteresis band (1.25x) by construction.
        assert!(
            entry.bits_applied > 3.0 / 1.3 && entry.bits_applied <= 3.1,
            "{entry:?}"
        );
        assert_eq!(entry.samples, 64);
    }

    #[test]
    fn boundary_residuals_inside_the_band_never_recalibrate() {
        let cal = Calibrator::new(CalibrationConfig::default());
        // Alternating residuals at ±20%: the EWMA wobbles strictly
        // inside the 1.25x band around the applied factor 1.0, so the
        // applied factor must never move.
        for i in 0..200 {
            let bits = if i % 2 == 0 { 1200 } else { 830 };
            cal.fold(ProtocolChoice::Sqrt, 256, predicted(), bits, 10);
        }
        let entry = &cal.snapshot().entries[0];
        assert_eq!(entry.recalibrations, 0, "{entry:?}");
        assert_eq!(entry.bits_applied, 1.0);
        assert!(cal.health().ok());
    }

    #[test]
    fn leaving_the_band_snaps_the_applied_factor_once() {
        let cal = Calibrator::new(CalibrationConfig::default());
        // A sustained 1.8x residual must eventually pull the EWMA out of
        // the band and snap the applied factor; once snapped and
        // re-centered, the same residual stream causes no further snaps.
        for _ in 0..64 {
            cal.fold(ProtocolChoice::Sqrt, 256, predicted(), 1800, 10);
        }
        let entry = &cal.snapshot().entries[0];
        assert!(entry.bits_applied > 1.4, "{entry:?}");
        assert!(
            entry.recalibrations >= 1 && entry.recalibrations <= 3,
            "hysteresis should snap a handful of times, not per-residual: {entry:?}"
        );
        let before = entry.recalibrations;
        for _ in 0..100 {
            cal.fold(ProtocolChoice::Sqrt, 256, predicted(), 1800, 10);
        }
        assert_eq!(
            cal.snapshot().entries[0].recalibrations,
            before,
            "steady residuals at the settled factor must not flap"
        );
    }

    #[test]
    fn persistent_drift_degrades_shared_health() {
        let health = Arc::new(Health::default());
        let cal = Calibrator::with_health(CalibrationConfig::default(), Arc::clone(&health));
        for i in 0..CalibrationConfig::default().min_samples {
            cal.fold(ProtocolChoice::Sqrt, 256, predicted(), 4000, 10);
            if i + 1 < CalibrationConfig::default().min_samples {
                assert!(health.ok(), "drift must wait for min_samples");
            }
        }
        // 4x residuals push the applied factor past the 2x drift band.
        for _ in 0..32 {
            cal.fold(ProtocolChoice::Sqrt, 256, predicted(), 4000, 10);
        }
        assert!(!health.ok());
        assert_eq!(health.drifts(), 1, "drift is declared once, not per-fold");
        assert!(cal.snapshot().entries[0].drifting);
    }

    #[test]
    fn injected_priors_decay_back_to_the_theory_constant() {
        let cal = Calibrator::new(CalibrationConfig::default());
        cal.inject(ProtocolChoice::Sqrt, 8, 8.0);
        assert!((cal.correction(ProtocolChoice::Sqrt, 256).bits - 8.0).abs() < 1e-9);
        // Traffic lands on a different protocol; every fold decays the
        // unsampled sqrt entry toward 1.0.
        for _ in 0..300 {
            cal.fold(ProtocolChoice::Trivial, 256, predicted(), 1000, 10);
        }
        let c = cal.correction(ProtocolChoice::Sqrt, 256);
        assert!(c.bits < 1.1, "stale prior must fade: {:.3}", c.bits);
        // An injected prior alone never declares drift (zero samples).
        assert!(cal.health().ok());
    }

    #[test]
    fn snapshot_is_sorted_and_round_trips() {
        let cal = Calibrator::new(CalibrationConfig::default());
        cal.fold(ProtocolChoice::Trivial, 16, predicted(), 1000, 10);
        cal.fold(ProtocolChoice::Sqrt, 256, predicted(), 1000, 10);
        cal.fold(ProtocolChoice::Sqrt, 16, predicted(), 1000, 10);
        let snap = cal.snapshot();
        let keys: Vec<(String, u32)> = snap
            .entries
            .iter()
            .map(|e| (e.protocol.clone(), e.k_bucket))
            .collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
        let back: CalibrationSnapshot = serde_json::from_str(&snap.to_json()).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn fold_emits_metrics_on_an_installed_subscriber() {
        let sub = obs::Subscriber::new();
        let _g = sub.install();
        let cal = Calibrator::new(CalibrationConfig::default());
        for _ in 0..64 {
            cal.fold(ProtocolChoice::Sqrt, 256, predicted(), 1800, 10);
        }
        let recal = sub.metrics().counter(
            "router_recalibration_total{protocol=\"sqrt\",k_bucket=\"2^8\",bound=\"bits\"}",
        );
        assert!(recal >= 1, "recalibration counter missing");
        let gauge = sub
            .metrics()
            .gauge("router_correction_factor_milli{protocol=\"sqrt\",k_bucket=\"2^8\"}");
        assert!(gauge > 1400, "gauge {gauge}");
        assert!(sub
            .events()
            .iter()
            .any(|e| e.target == "router" && e.name.starts_with("recalibration")));
    }
}
