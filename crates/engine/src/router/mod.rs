//! Adaptive protocol routing.
//!
//! Each admitted session is assigned a protocol from the catalogue in
//! `intersect_core::api`. By default the router ranks every candidate by
//! the calibrated cost model ([`PredictedCost`]) and picks the cheapest
//! under a configurable bits-per-round trade-off; operators can pin a
//! single protocol engine-wide, and any request can override the router
//! per session.

pub mod calibration;

use crate::request::SessionRequest;
use calibration::Calibrator;
use intersect_core::api::ProtocolChoice;
use intersect_core::sets::ProblemSpec;
use intersect_obs::conformance::{ConformanceConfig, Envelope};

#[cfg(doc)]
use intersect_core::prelude::PredictedCost;

/// How the engine picks a protocol for requests that do not name one.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RoutePolicy {
    /// Rank the catalogue by [`PredictedCost::score`] and take the argmin.
    /// `round_penalty` is the number of extra bits the operator would pay
    /// to save one round; 0 ranks by bits alone.
    Auto {
        /// Bits-per-round toll fed to [`PredictedCost::score`].
        round_penalty: f64,
    },
    /// Serve every session with this protocol (manual override knob).
    Fixed(ProtocolChoice),
}

impl Default for RoutePolicy {
    /// Bit-optimal routing: rank candidates by predicted bits alone.
    fn default() -> Self {
        RoutePolicy::Auto { round_penalty: 0.0 }
    }
}

/// Deepest tree round budget the auto-router will consider. `log* k` for
/// any feasible `k` is at most 5, so budget 4 plus the explicit
/// [`ProtocolChoice::TreeLogStar`] entry covers the whole useful range.
pub const MAX_TREE_ROUNDS: u32 = 4;

/// Resolves a request to the protocol that will serve it.
///
/// Precedence: the request's own `protocol` field, then a
/// [`RoutePolicy::Fixed`] pin, then the cost-model argmin. The session's
/// declared overlap is forwarded to the model so difference-proportional
/// protocols are priced fairly.
///
/// # Examples
///
/// ```
/// use intersect_core::api::ProtocolChoice;
/// use intersect_core::sets::ProblemSpec;
/// use intersect_engine::{route, RoutePolicy, SessionRequest};
///
/// // Nearly identical sets: reconciliation beats everything.
/// let spec = ProblemSpec::new(1 << 30, 1024);
/// let warm = SessionRequest::new(1, spec, 1020);
/// assert_eq!(route(&warm, RoutePolicy::default()), ProtocolChoice::IbltReconcile);
///
/// // A per-request override always wins.
/// let mut pinned = warm.clone();
/// pinned.protocol = Some(ProtocolChoice::Trivial);
/// assert_eq!(route(&pinned, RoutePolicy::default()), ProtocolChoice::Trivial);
/// ```
pub fn route(request: &SessionRequest, policy: RoutePolicy) -> ProtocolChoice {
    route_calibrated(request, policy, None)
}

/// [`route`] with an optional calibration table: each candidate's
/// predicted bits and rounds are multiplied by the learned correction
/// factors for its `(protocol, k-bucket)` before ranking, so sustained
/// cost residuals can change which protocol wins a regime. Pins and
/// per-request overrides still take precedence — calibration only
/// reorders the auto-router's argmin.
pub fn route_calibrated(
    request: &SessionRequest,
    policy: RoutePolicy,
    calibrator: Option<&Calibrator>,
) -> ProtocolChoice {
    if let Some(choice) = request.protocol {
        return choice;
    }
    let round_penalty = match policy {
        RoutePolicy::Fixed(choice) => return choice,
        RoutePolicy::Auto { round_penalty } => round_penalty,
    };
    let overlap = Some(request.overlap as u64);
    ProtocolChoice::all(MAX_TREE_ROUNDS)
        .into_iter()
        .map(|choice| {
            let mut cost = choice.predicted_cost(request.spec, overlap);
            if let Some(cal) = calibrator {
                let c = cal.correction(choice, request.spec.k);
                cost.bits *= c.bits;
                cost.rounds *= c.rounds;
            }
            (choice, cost.score(round_penalty))
        })
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .map(|(choice, _)| choice)
        .expect("catalogue is never empty")
}

/// Additive bits floor on every envelope. The cost model is purely
/// multiplicative, but sessions carry fixed costs it does not model —
/// length framing, and sketch minimums like the IBLT's smallest table —
/// which dominate when the predicted cost is tiny (e.g. reconciliation
/// at symmetric difference 1). One kilobit covers those without
/// meaningfully loosening any envelope the model prices in the
/// thousands of bits.
const ENVELOPE_FLOOR_BITS: u64 = 1024;

/// Additive rounds floor on every envelope (request/response framing).
const ENVELOPE_FLOOR_ROUNDS: u64 = 2;

/// Derives the calibrated theoretical envelope for one session: the
/// cost model's prediction ([`PredictedCost`]) times the configured
/// slack, plus the additive floors above so tiny instances (where fixed
/// framing costs dominate) don't flap.
///
/// The conformance monitor checks every completed session's
/// `CostReport` against this envelope; at default slack a violation
/// means the implementation has drifted from the paper's bounds, not
/// that the model was coarse.
pub fn theory_envelope(
    choice: ProtocolChoice,
    protocol_name: &str,
    spec: ProblemSpec,
    overlap: Option<u64>,
    config: ConformanceConfig,
) -> Envelope {
    let predicted = choice.predicted_cost(spec, overlap);
    Envelope {
        protocol: protocol_name.to_string(),
        max_bits: (predicted.bits * config.bits_slack).ceil() as u64 + ENVELOPE_FLOOR_BITS,
        max_rounds: (predicted.rounds * config.rounds_slack).ceil() as u64 + ENVELOPE_FLOOR_ROUNDS,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_policy_pins_the_protocol() {
        let req = SessionRequest::new(1, ProblemSpec::new(1 << 20, 64), 0);
        let got = route(&req, RoutePolicy::Fixed(ProtocolChoice::Basic));
        assert_eq!(got, ProtocolChoice::Basic);
    }

    #[test]
    fn request_override_beats_fixed_policy() {
        let mut req = SessionRequest::new(1, ProblemSpec::new(1 << 20, 64), 0);
        req.protocol = Some(ProtocolChoice::Sqrt);
        let got = route(&req, RoutePolicy::Fixed(ProtocolChoice::Basic));
        assert_eq!(got, ProtocolChoice::Sqrt);
    }

    #[test]
    fn envelope_scales_with_slack_and_keeps_the_floor() {
        let spec = ProblemSpec::new(1 << 20, 256);
        let tight = theory_envelope(
            ProtocolChoice::Sqrt,
            "sqrt-fknn",
            spec,
            Some(0),
            ConformanceConfig::with_slack(1.0),
        );
        let loose = theory_envelope(
            ProtocolChoice::Sqrt,
            "sqrt-fknn",
            spec,
            Some(0),
            ConformanceConfig::with_slack(2.0),
        );
        assert_eq!(tight.protocol, "sqrt-fknn");
        // Doubling the slack doubles the model term (up to ceil rounding);
        // the additive floors are constant.
        let doubled = 2 * (tight.max_bits - ENVELOPE_FLOOR_BITS);
        assert!(loose.max_bits - ENVELOPE_FLOOR_BITS >= doubled.saturating_sub(2));
        assert!(loose.max_bits - ENVELOPE_FLOOR_BITS <= doubled);
        assert!(loose.max_rounds >= tight.max_rounds);
        assert!(
            tight.max_bits > 2 * ENVELOPE_FLOOR_BITS,
            "model term must dominate the floor"
        );

        // Zero slack leaves only the floor: the deliberate-violation knob.
        let zero = theory_envelope(
            ProtocolChoice::Sqrt,
            "sqrt-fknn",
            spec,
            Some(0),
            ConformanceConfig::with_slack(0.0),
        );
        assert_eq!(zero.max_bits, ENVELOPE_FLOOR_BITS);
        assert_eq!(zero.max_rounds, ENVELOPE_FLOOR_ROUNDS);
    }

    #[test]
    fn auto_routing_adapts_to_the_workload_shape() {
        // Large disjoint sets: the O(k)-bit bucketed protocol wins on bits.
        let big = SessionRequest::new(1, ProblemSpec::new(1 << 30, 1 << 12), 0);
        assert_eq!(
            route(&big, RoutePolicy::default()),
            ProtocolChoice::Sqrt,
            "bit-optimal routing should pick the Θ(k)-bit protocol"
        );

        // Same shape under a stiff round toll: √k rounds become untenable.
        let lan = route(
            &big,
            RoutePolicy::Auto {
                round_penalty: 1000.0,
            },
        );
        assert_ne!(lan, ProtocolChoice::Sqrt);

        // Nearly identical sets: difference-proportional reconciliation wins.
        let warm = SessionRequest::new(2, ProblemSpec::new(1 << 30, 1 << 12), (1 << 12) - 4);
        assert_eq!(
            route(&warm, RoutePolicy::default()),
            ProtocolChoice::IbltReconcile
        );
    }

    #[test]
    fn calibration_corrections_can_change_the_routing_choice() {
        use calibration::{k_bucket, CalibrationConfig, Calibrator};

        let req = SessionRequest::new(1, ProblemSpec::new(1 << 30, 1 << 12), 0);
        let policy = RoutePolicy::default();
        let uncorrected = route(&req, policy);
        assert_eq!(uncorrected, ProtocolChoice::Sqrt);

        // An empty table changes nothing.
        let cal = Calibrator::new(CalibrationConfig::default());
        assert_eq!(route_calibrated(&req, policy, Some(&cal)), uncorrected);

        // A learned 8x bits correction on the winner dethrones it.
        cal.inject(uncorrected, k_bucket(req.spec.k), 8.0);
        let corrected = route_calibrated(&req, policy, Some(&cal));
        assert_ne!(corrected, uncorrected);

        // Pins and per-request overrides still bypass the table.
        let mut pinned = req.clone();
        pinned.protocol = Some(uncorrected);
        assert_eq!(route_calibrated(&pinned, policy, Some(&cal)), uncorrected);
        assert_eq!(
            route_calibrated(&req, RoutePolicy::Fixed(uncorrected), Some(&cal)),
            uncorrected
        );
    }
}
