//! A concurrent cache of prepared protocol plans, keyed by
//! `(ProtocolChoice, ProblemSpec)`.
//!
//! Preparation (`SetIntersection::prepare`) hoists every
//! input-independent derivation a protocol needs — hash-family field
//! primes, tree layouts, per-stage error schedules. Those depend only on
//! the protocol's parameters and the problem spec, so an engine serving
//! many sessions of the same shape should derive them once. This cache
//! makes that sharing safe and observable:
//!
//! - **Sharded**: keys hash onto independent `RwLock` shards, so
//!   concurrent lookups from the dispatcher and scrape threads never
//!   contend on one lock.
//! - **Generation-tagged**: [`invalidate`](PlanCache::invalidate) bumps
//!   a global generation; entries stamped with an older generation are
//!   never served again, even if a racing insert lands after the clear.
//! - **Counted**: hits, misses, and live entries surface through
//!   [`stats`](PlanCache::stats) and as `engine_plan_cache_*` metrics on
//!   `/metrics`.
//!
//! Sharing plans never changes transcripts: a prepared execution is
//! bit-identical to a cold run (the `prepared` module's contract), so a
//! cache hit affects latency only.

use intersect_core::api::{ProtocolChoice, SetIntersection};
use intersect_core::prepared::PreparedProtocol;
use intersect_core::sets::ProblemSpec;
use intersect_core::topology::PreparedTournament;
use intersect_multiparty::choice::MultipartyChoice;
use intersect_obs as obs;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Shard count: a small power of two is plenty — the map is tiny (one
/// entry per distinct workload shape); sharding is about lock traffic.
const SHARDS: usize = 16;

#[derive(Debug)]
struct Entry {
    generation: u64,
    plan: Arc<dyn PreparedProtocol>,
}

type Shard = RwLock<HashMap<(ProtocolChoice, ProblemSpec), Entry>>;

#[derive(Debug)]
struct TournamentEntry {
    generation: u64,
    plan: Arc<PreparedTournament>,
}

/// Tournament plans are keyed by `(protocol, spec, players)` — the spec
/// fixes the group size (`2k`), the player count fixes the recursion
/// depth, and the protocol fixes the per-level match shape.
type TournamentShard = RwLock<HashMap<(MultipartyChoice, ProblemSpec, usize), TournamentEntry>>;

/// Point-in-time counters for a [`PlanCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Lookups served from a live entry.
    pub hits: u64,
    /// Lookups that had to run the parameter phase.
    pub misses: u64,
    /// Live entries across all shards.
    pub entries: u64,
    /// Invalidation generation (starts at 0).
    pub generation: u64,
}

/// A sharded, generation-tagged map from `(protocol, spec)` to its
/// prepared plan. Shared by the engine dispatcher (every routed session)
/// and any embedder that wants warm plans (e.g. batch submitters).
///
/// # Examples
///
/// ```
/// use intersect_core::api::ProtocolChoice;
/// use intersect_core::sets::ProblemSpec;
/// use intersect_engine::plan_cache::PlanCache;
///
/// let cache = PlanCache::new();
/// let spec = ProblemSpec::new(1 << 20, 32);
/// let a = cache.get_or_prepare(ProtocolChoice::TreeLogStar, spec);
/// let b = cache.get_or_prepare(ProtocolChoice::TreeLogStar, spec);
/// assert!(std::sync::Arc::ptr_eq(&a, &b)); // second lookup is a hit
/// assert_eq!(cache.stats().hits, 1);
/// assert_eq!(cache.stats().misses, 1);
/// ```
#[derive(Debug)]
pub struct PlanCache {
    shards: Vec<Shard>,
    tournaments: TournamentShard,
    generation: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Default for PlanCache {
    fn default() -> Self {
        PlanCache::new()
    }
}

impl PlanCache {
    /// An empty cache.
    pub fn new() -> PlanCache {
        PlanCache {
            shards: (0..SHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
            tournaments: RwLock::new(HashMap::new()),
            generation: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &(ProtocolChoice, ProblemSpec)) -> &Shard {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % SHARDS]
    }

    /// Returns the cached plan for `(choice, spec)`, running the
    /// parameter phase (under an `engine/prepare` span) on first use or
    /// after an invalidation.
    pub fn get_or_prepare(
        &self,
        choice: ProtocolChoice,
        spec: ProblemSpec,
    ) -> Arc<dyn PreparedProtocol> {
        let key = (choice, spec);
        let generation = self.generation.load(Ordering::Acquire);
        let shard = self.shard(&key);
        if let Some(entry) = shard.read().expect("plan cache poisoned").get(&key) {
            if entry.generation == generation {
                self.hits.fetch_add(1, Ordering::Relaxed);
                obs::counter_add("engine_plan_cache_hits", 1);
                return Arc::clone(&entry.plan);
            }
        }
        // Prepare under the write lock: preparation is a short,
        // deterministic derivation, and holding the lock means a burst of
        // same-shape sessions runs it exactly once.
        let mut guard = shard.write().expect("plan cache poisoned");
        if let Some(entry) = guard.get(&key) {
            if entry.generation == generation {
                self.hits.fetch_add(1, Ordering::Relaxed);
                obs::counter_add("engine_plan_cache_hits", 1);
                return Arc::clone(&entry.plan);
            }
        }
        let span = obs::phase::span("engine", "prepare");
        let plan = choice.build(spec).prepare(spec);
        span.finish(obs::CostDelta::default());
        let stale = guard
            .insert(
                key,
                Entry {
                    generation,
                    plan: Arc::clone(&plan),
                },
            )
            .is_some();
        self.misses.fetch_add(1, Ordering::Relaxed);
        obs::counter_add("engine_plan_cache_misses", 1);
        if !stale {
            obs::gauge_add("engine_plan_cache_entries", 1);
        }
        plan
    }

    /// Returns the cached [`PreparedTournament`] for an `m`-player
    /// session of `choice` at `spec`, deriving it (under an
    /// `engine/prepare` span) on first use or after an invalidation.
    ///
    /// Tournament plans share the two-party cache's generation tag and
    /// hit/miss counters: one [`invalidate`](PlanCache::invalidate)
    /// clears both worlds.
    pub fn get_or_tournament(
        &self,
        choice: MultipartyChoice,
        spec: ProblemSpec,
        players: usize,
    ) -> Arc<PreparedTournament> {
        let key = (choice, spec, players);
        let generation = self.generation.load(Ordering::Acquire);
        if let Some(entry) = self
            .tournaments
            .read()
            .expect("plan cache poisoned")
            .get(&key)
        {
            if entry.generation == generation {
                self.hits.fetch_add(1, Ordering::Relaxed);
                obs::counter_add("engine_plan_cache_hits", 1);
                return Arc::clone(&entry.plan);
            }
        }
        let mut guard = self.tournaments.write().expect("plan cache poisoned");
        if let Some(entry) = guard.get(&key) {
            if entry.generation == generation {
                self.hits.fetch_add(1, Ordering::Relaxed);
                obs::counter_add("engine_plan_cache_hits", 1);
                return Arc::clone(&entry.plan);
            }
        }
        let span = obs::phase::span("engine", "prepare");
        let plan = Arc::new(choice.plan(spec, players));
        span.finish(obs::CostDelta::default());
        let stale = guard
            .insert(
                key,
                TournamentEntry {
                    generation,
                    plan: Arc::clone(&plan),
                },
            )
            .is_some();
        self.misses.fetch_add(1, Ordering::Relaxed);
        obs::counter_add("engine_plan_cache_misses", 1);
        if !stale {
            obs::gauge_add("engine_plan_cache_entries", 1);
        }
        plan
    }

    /// Drops every cached plan and bumps the generation, so entries a
    /// racing lookup inserted under the old generation are never served.
    pub fn invalidate(&self) {
        self.generation.fetch_add(1, Ordering::AcqRel);
        let mut evicted = 0i64;
        for shard in &self.shards {
            let mut guard = shard.write().expect("plan cache poisoned");
            evicted += guard.len() as i64;
            guard.clear();
        }
        {
            let mut guard = self.tournaments.write().expect("plan cache poisoned");
            evicted += guard.len() as i64;
            guard.clear();
        }
        obs::gauge_add("engine_plan_cache_entries", -evicted);
    }

    /// Live entries across all shards (tournament plans included).
    pub fn entries(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.read().expect("plan cache poisoned").len() as u64)
            .sum::<u64>()
            + self.tournaments.read().expect("plan cache poisoned").len() as u64
    }

    /// Current hit/miss/entry counters.
    pub fn stats(&self) -> PlanCacheStats {
        PlanCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.entries(),
            generation: self.generation.load(Ordering::Acquire),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn caches_by_protocol_and_spec() {
        let cache = PlanCache::new();
        let spec_a = ProblemSpec::new(1 << 20, 32);
        let spec_b = ProblemSpec::new(1 << 24, 32);
        let p1 = cache.get_or_prepare(ProtocolChoice::TreeLogStar, spec_a);
        let p2 = cache.get_or_prepare(ProtocolChoice::TreeLogStar, spec_a);
        let p3 = cache.get_or_prepare(ProtocolChoice::TreeLogStar, spec_b);
        let p4 = cache.get_or_prepare(ProtocolChoice::Sqrt, spec_a);
        assert!(Arc::ptr_eq(&p1, &p2));
        assert!(!Arc::ptr_eq(&p1, &p3));
        assert!(!Arc::ptr_eq(&p1, &p4));
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 3);
        assert_eq!(stats.entries, 3);
    }

    #[test]
    fn tournament_plans_share_the_cache_and_its_generation() {
        let cache = PlanCache::new();
        let spec = ProblemSpec::new(1 << 20, 16);
        let a = cache.get_or_tournament(MultipartyChoice::WorstCase, spec, 8);
        let b = cache.get_or_tournament(MultipartyChoice::WorstCase, spec, 8);
        let c = cache.get_or_tournament(MultipartyChoice::AverageCase, spec, 8);
        let d = cache.get_or_tournament(MultipartyChoice::WorstCase, spec, 16);
        assert!(Arc::ptr_eq(&a, &b));
        assert!(!Arc::ptr_eq(&a, &c));
        assert!(!Arc::ptr_eq(&a, &d));
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 3);
        assert_eq!(stats.entries, 3);
        cache.invalidate();
        assert_eq!(cache.entries(), 0);
        let after = cache.get_or_tournament(MultipartyChoice::WorstCase, spec, 8);
        assert!(!Arc::ptr_eq(&a, &after));
    }

    #[test]
    fn invalidation_reprepares_and_bumps_generation() {
        let cache = PlanCache::new();
        let spec = ProblemSpec::new(1 << 20, 16);
        let before = cache.get_or_prepare(ProtocolChoice::Tree(2), spec);
        cache.invalidate();
        assert_eq!(cache.entries(), 0);
        let after = cache.get_or_prepare(ProtocolChoice::Tree(2), spec);
        assert!(!Arc::ptr_eq(&before, &after));
        let stats = cache.stats();
        assert_eq!(stats.generation, 1);
        assert_eq!(stats.misses, 2);
    }

    #[test]
    fn concurrent_lookups_agree_on_one_plan() {
        let cache = Arc::new(PlanCache::new());
        let spec = ProblemSpec::new(1 << 30, 64);
        let plans: Vec<_> = std::thread::scope(|s| {
            (0..8)
                .map(|_| {
                    let cache = Arc::clone(&cache);
                    s.spawn(move || cache.get_or_prepare(ProtocolChoice::TreeLogStar, spec))
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        assert!(plans.windows(2).all(|w| Arc::ptr_eq(&w[0], &w[1])));
        let stats = cache.stats();
        assert_eq!(stats.misses, 1, "parameter phase ran exactly once");
        assert_eq!(stats.hits, 7);
        assert_eq!(stats.entries, 1);
    }

    #[test]
    fn cached_plans_execute_bit_identically_to_cold_runs() {
        use intersect_core::prelude::*;
        use rand::SeedableRng;
        let cache = PlanCache::new();
        let spec = ProblemSpec::new(1 << 24, 32);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(5);
        let pair = InputPair::random_with_overlap(&mut rng, spec, 32, 9);
        for choice in [
            ProtocolChoice::OneRound,
            ProtocolChoice::TreeLogStar,
            ProtocolChoice::Sqrt,
        ] {
            cache.get_or_prepare(choice, spec); // warm the entry
            let plan = cache.get_or_prepare(choice, spec);
            let warm = execute_prepared(&plan, &pair, 11).unwrap();
            let cold = execute(choice.build(spec).as_ref(), spec, &pair, 11).unwrap();
            assert_eq!(warm, cold, "{choice}");
        }
    }
}
