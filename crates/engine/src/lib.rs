//! # intersect-engine
//!
//! A concurrent session engine that serves intersection protocols at
//! scale: many two-party `INT_k` sessions multiplexed over a bounded
//! worker pool, with adaptive protocol routing, admission control, and
//! engine-wide cost accounting.
//!
//! The single-session story lives in `intersect-core` (the protocol
//! catalogue) and `intersect-comm` (the metered transport and
//! [`run_two_party`](intersect_comm::runner::run_two_party) executor).
//! This crate answers the operational question on top of them: *what
//! does it take to serve thousands of such sessions?* Four pieces:
//!
//! - [`SessionRequest`] — a one-line description of a session (universe,
//!   cardinality bound, set size, overlap, seed) from which the exact
//!   inputs are regenerated deterministically;
//! - [`route`] / [`RoutePolicy`] — picks a protocol per session from the
//!   catalogue using the calibrated cost model in `intersect_core::cost`,
//!   with engine-wide and per-request overrides;
//! - [`Engine`] — the scheduler: a bounded admission queue (full ⇒
//!   [`SubmitError::Rejected`]), a dispatcher that caps sessions in
//!   flight, and a pool of workers each running *half* a session at a
//!   time (see `scheduler` module docs for the deadlock-freedom
//!   argument);
//! - [`EngineSnapshot`] — aggregated metrics (bits, rounds histogram,
//!   per-protocol tallies, latency percentiles), renderable as markdown
//!   or JSON.
//!
//! The engine's defining invariant: a session served by the pool is
//! **bit-for-bit identical** to the same request served by a dedicated
//! [`execute`](intersect_core::api::execute) call — same inputs, same
//! coins, same transcript, same [`CostReport`](intersect_comm::stats::CostReport).
//!
//! # Examples
//!
//! ```
//! use intersect_core::sets::ProblemSpec;
//! use intersect_engine::prelude::*;
//!
//! let engine = Engine::start(EngineConfig::new(4));
//! for id in 0..10 {
//!     engine.submit(SessionRequest::new(id, ProblemSpec::new(1 << 18, 32), 8))?;
//! }
//! let report = engine.finish();
//! assert!(report.outcomes.iter().all(|o| o.succeeded()));
//! println!("{}", report.snapshot.to_markdown());
//! # Ok::<(), intersect_engine::SubmitError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod multiparty;
pub mod pair_context;
pub mod plan_cache;
pub mod registry;
pub mod request;
pub mod router;
pub mod scheduler;
pub mod timeline;

pub use multiparty::{MultipartyRequest, MultipartySessionOutcome};
pub use pair_context::{PairContextCache, PairContextStats};
pub use plan_cache::{PlanCache, PlanCacheStats};
pub use registry::{
    EngineMetrics, EngineSnapshot, EngineWatch, LatencySummary, ProtocolTally, SessionSummary,
};
pub use request::SessionRequest;
pub use router::calibration::{self, CalibrationConfig, CalibrationSnapshot, Calibrator};
pub use router::{route, route_calibrated, theory_envelope, RoutePolicy};
pub use scheduler::{Engine, EngineConfig, EngineReport, SessionOutcome, StreamId, SubmitError};
pub use timeline::SessionTimeline;

/// The most commonly used items, for glob import.
pub mod prelude {
    pub use crate::multiparty::{MultipartyRequest, MultipartySessionOutcome};
    pub use crate::pair_context::{PairContextCache, PairContextStats};
    pub use crate::plan_cache::{PlanCache, PlanCacheStats};
    pub use crate::registry::{EngineMetrics, EngineSnapshot, EngineWatch, LatencySummary};
    pub use crate::request::SessionRequest;
    pub use crate::router::calibration::{CalibrationConfig, CalibrationSnapshot, Calibrator};
    pub use crate::router::{route, route_calibrated, theory_envelope, RoutePolicy};
    pub use crate::scheduler::{
        Engine, EngineConfig, EngineReport, SessionOutcome, StreamId, SubmitError,
    };
    pub use crate::timeline::SessionTimeline;
    pub use intersect_multiparty::choice::MultipartyChoice;
}
