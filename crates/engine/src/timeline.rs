//! Per-session latency waterfalls.
//!
//! A session's admission-to-settlement latency is one number; this
//! module decomposes it into the named segments an operator can act on:
//!
//! | segment          | boundary                                        |
//! |------------------|-------------------------------------------------|
//! | `admit-queue`    | submitted → dispatcher picked the submission up |
//! | `plan-cache`     | dispatched → routed + plan/context resolved     |
//! | `wire-wait`      | planned → a worker started the session          |
//! | `coin-refill`    | started → coin seeds/presamples materialized    |
//! | `rounds-execute` | coins ready → protocol rounds finished          |
//! | `drain`          | executed → outcome folded and settled           |
//!
//! The segments are computed from consecutive wall-clock stamps, so by
//! construction they **tile** the submitted-to-settled span exactly — up
//! to one microsecond of truncation per segment, which is the ε the
//! tiling tests allow. The stamps never feed back into scheduling or
//! protocol execution: timelines are observability-only and change no
//! bits on the wire.

use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Stable segment names, in waterfall order. These are the `segment`
/// label values of the `engine_segment_micros` metric family.
pub const SEGMENTS: [&str; 6] = [
    "admit-queue",
    "plan-cache",
    "wire-wait",
    "coin-refill",
    "rounds-execute",
    "drain",
];

/// One settled session's latency waterfall, microseconds per segment.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SessionTimeline {
    /// Waiting in the bounded admission queue (plus the dispatcher's
    /// in-flight gate) before dispatch.
    pub admit_queue_micros: u64,
    /// Routing and plan-cache (or pair-context) resolution on the
    /// dispatcher thread.
    pub plan_cache_micros: u64,
    /// Waiting in the work queue for a free worker; for remote sessions
    /// this is where transport hand-off latency lands.
    pub wire_wait_micros: u64,
    /// Coin-seed derivation and randomness presampling on the worker.
    pub coin_refill_micros: u64,
    /// The protocol rounds themselves, both halves.
    pub rounds_execute_micros: u64,
    /// Folding results, reports, and accounting after the last round.
    pub drain_micros: u64,
}

impl SessionTimeline {
    /// The waterfall as `(segment, micros)` rows in [`SEGMENTS`] order.
    pub fn segments(&self) -> [(&'static str, u64); 6] {
        [
            (SEGMENTS[0], self.admit_queue_micros),
            (SEGMENTS[1], self.plan_cache_micros),
            (SEGMENTS[2], self.wire_wait_micros),
            (SEGMENTS[3], self.coin_refill_micros),
            (SEGMENTS[4], self.rounds_execute_micros),
            (SEGMENTS[5], self.drain_micros),
        ]
    }

    /// Sum of all segments: the submitted-to-settled span (up to one
    /// microsecond of truncation per segment).
    pub fn total_micros(&self) -> u64 {
        self.segments().iter().map(|(_, micros)| micros).sum()
    }

    /// Folds another timeline in, segment by segment (used by reporters
    /// that aggregate per-workload attribution tables).
    pub fn accumulate(&mut self, other: &SessionTimeline) {
        self.admit_queue_micros += other.admit_queue_micros;
        self.plan_cache_micros += other.plan_cache_micros;
        self.wire_wait_micros += other.wire_wait_micros;
        self.coin_refill_micros += other.coin_refill_micros;
        self.rounds_execute_micros += other.rounds_execute_micros;
        self.drain_micros += other.drain_micros;
    }
}

/// The raw wall-clock stamps a session accumulates on its way through
/// the engine; [`settle`](TimelineStamps::settle) turns them into a
/// [`SessionTimeline`] at emission time.
#[derive(Debug, Clone, Copy)]
pub(crate) struct TimelineStamps {
    /// Client thread handed the submission to the admission queue.
    pub submitted_at: Instant,
    /// Dispatcher pulled the submission past the in-flight gate.
    pub dispatched_at: Instant,
    /// Routing and plan resolution finished; handed to the work queue.
    pub planned_at: Instant,
    /// A worker picked the session up.
    pub started_at: Instant,
    /// Coin seeds and presamples were ready on the worker.
    pub coins_ready_at: Instant,
    /// The protocol rounds finished.
    pub executed_at: Instant,
}

impl TimelineStamps {
    /// Closes the waterfall now: each segment is the span between two
    /// consecutive stamps, so the segments tile submitted-to-settled by
    /// construction. Saturating, so clock adjustments can't panic.
    pub(crate) fn settle(self) -> SessionTimeline {
        let settled_at = Instant::now();
        let span = |a: Instant, b: Instant| b.saturating_duration_since(a).as_micros() as u64;
        SessionTimeline {
            admit_queue_micros: span(self.submitted_at, self.dispatched_at),
            plan_cache_micros: span(self.dispatched_at, self.planned_at),
            wire_wait_micros: span(self.planned_at, self.started_at),
            coin_refill_micros: span(self.started_at, self.coins_ready_at),
            rounds_execute_micros: span(self.coins_ready_at, self.executed_at),
            drain_micros: span(self.executed_at, settled_at),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn segments_tile_the_settled_span() {
        let t0 = Instant::now();
        let stamps = TimelineStamps {
            submitted_at: t0,
            dispatched_at: t0,
            planned_at: t0,
            started_at: t0,
            coins_ready_at: t0,
            executed_at: t0,
        };
        std::thread::sleep(Duration::from_millis(2));
        let before = t0.elapsed().as_micros() as u64;
        let timeline = stamps.settle();
        let after = t0.elapsed().as_micros() as u64;
        let total = timeline.total_micros();
        // Everything landed in `drain`; the five earlier segments are 0
        // and the sum brackets the end-to-end span within per-segment
        // truncation (each segment may under-report by < 1µs).
        assert_eq!(timeline.segments().len(), SEGMENTS.len());
        assert!(total >= 2_000, "slept 2ms but total is {total}µs");
        assert!(
            total + SEGMENTS.len() as u64 >= before,
            "tiling gap: total {total}µs < {before}µs minus truncation ε"
        );
        assert!(total <= after, "tiling overshot: {total}µs > {after}µs");
    }

    #[test]
    fn accumulate_sums_segment_by_segment() {
        let mut acc = SessionTimeline::default();
        let one = SessionTimeline {
            admit_queue_micros: 1,
            plan_cache_micros: 2,
            wire_wait_micros: 3,
            coin_refill_micros: 4,
            rounds_execute_micros: 5,
            drain_micros: 6,
        };
        acc.accumulate(&one);
        acc.accumulate(&one);
        assert_eq!(acc.total_micros(), 42);
        assert_eq!(acc.rounds_execute_micros, 10);
    }

    #[test]
    fn timeline_round_trips_through_json() {
        let t = SessionTimeline {
            admit_queue_micros: 10,
            plan_cache_micros: 0,
            wire_wait_micros: 7,
            coin_refill_micros: 1,
            rounds_execute_micros: 900,
            drain_micros: 2,
        };
        let json = serde_json::to_string(&t).unwrap();
        let back: SessionTimeline = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
    }
}
