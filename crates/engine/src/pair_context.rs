//! A concurrent cache of per-pair randomness contexts, keyed by
//! `(pair, ProtocolChoice, ProblemSpec)`.
//!
//! Where the [`PlanCache`](crate::plan_cache::PlanCache) amortizes the
//! *parameter phase* across sessions of one workload shape, this cache
//! amortizes the *offline phase* across sessions of one client pair: a
//! [`PairContext`] holds the pair's prepared plan, its forked coin
//! block, and its lazily sampled universe reduction, so a stream of
//! sessions between the same two parties pays for correlated-randomness
//! setup once. The structure deliberately mirrors the plan cache:
//!
//! - **Sharded**: keys hash onto independent `RwLock` shards.
//! - **Generation-tagged**: [`invalidate`](PairContextCache::invalidate)
//!   bumps a global generation; contexts stamped with an older
//!   generation are never served again, even if a racing insert lands
//!   after the clear. Plans inside a fresh context come from the shared
//!   plan cache, so the two caches stay consistent when both are
//!   invalidated together.
//! - **Counted**: hits, misses, and live entries surface through
//!   [`stats`](PairContextCache::stats) and as `pair_context_*` metrics
//!   on `/metrics`.
//!
//! Reusing a context never changes transcripts: session `i` of a pair's
//! stream draws the coin seed `stream_session_seed(pair, i)` from the
//! context's [`CoinBlock`](intersect_comm::coins::CoinBlock), the same
//! pure derivation a standalone rerun of the tagged request performs.

use crate::plan_cache::PlanCache;
use intersect_core::api::ProtocolChoice;
use intersect_core::prepared::PairContext;
use intersect_core::sets::ProblemSpec;
use intersect_obs as obs;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Shard count: matches the plan cache — the map holds one entry per
/// live (pair, shape), sharding is about lock traffic.
const SHARDS: usize = 16;

#[derive(Debug)]
struct Entry {
    generation: u64,
    ctx: Arc<PairContext>,
}

type Key = (u64, ProtocolChoice, ProblemSpec);
type Shard = RwLock<HashMap<Key, Entry>>;

/// Point-in-time counters for a [`PairContextCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PairContextStats {
    /// Lookups served from a live context.
    pub hits: u64,
    /// Lookups that built a fresh context (offline phase ran).
    pub misses: u64,
    /// Live contexts across all shards.
    pub entries: u64,
    /// Invalidation generation (starts at 0).
    pub generation: u64,
}

/// A sharded, generation-tagged map from `(pair, protocol, spec)` to the
/// pair's [`PairContext`]. Shared by the engine dispatcher (every
/// streamed submission) and the remote server, which keys contexts by
/// the `pair=` tag on incoming `Open` frames.
///
/// # Examples
///
/// ```
/// use intersect_core::api::ProtocolChoice;
/// use intersect_core::sets::ProblemSpec;
/// use intersect_engine::pair_context::PairContextCache;
/// use intersect_engine::plan_cache::PlanCache;
///
/// let plans = PlanCache::new();
/// let pairs = PairContextCache::new();
/// let spec = ProblemSpec::new(1 << 20, 32);
/// let a = pairs.get_or_create(7, ProtocolChoice::TreeLogStar, spec, &plans);
/// let b = pairs.get_or_create(7, ProtocolChoice::TreeLogStar, spec, &plans);
/// assert!(std::sync::Arc::ptr_eq(&a, &b)); // second lookup is a hit
/// assert_eq!(pairs.stats().hits, 1);
/// assert_eq!(pairs.stats().misses, 1);
/// ```
#[derive(Debug)]
pub struct PairContextCache {
    shards: Vec<Shard>,
    generation: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Default for PairContextCache {
    fn default() -> Self {
        PairContextCache::new()
    }
}

impl PairContextCache {
    /// An empty cache.
    pub fn new() -> PairContextCache {
        PairContextCache {
            shards: (0..SHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
            generation: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &Key) -> &Shard {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % SHARDS]
    }

    /// Returns the live context for `(pair, choice, spec)`, building one
    /// (plan lookup through the shared cache, coin block fork, reduction
    /// slot) under an `engine/pair_setup` span on first use or after an
    /// invalidation.
    pub fn get_or_create(
        &self,
        pair: u64,
        choice: ProtocolChoice,
        spec: ProblemSpec,
        plans: &PlanCache,
    ) -> Arc<PairContext> {
        let key = (pair, choice, spec);
        let generation = self.generation.load(Ordering::Acquire);
        let shard = self.shard(&key);
        if let Some(entry) = shard.read().expect("pair context cache poisoned").get(&key) {
            if entry.generation == generation {
                self.hits.fetch_add(1, Ordering::Relaxed);
                obs::counter_add("pair_context_hits", 1);
                return Arc::clone(&entry.ctx);
            }
        }
        // Build under the write lock, as the plan cache does: the
        // offline phase is short and deterministic, and holding the lock
        // means a burst of same-pair sessions runs it exactly once.
        let mut guard = shard.write().expect("pair context cache poisoned");
        if let Some(entry) = guard.get(&key) {
            if entry.generation == generation {
                self.hits.fetch_add(1, Ordering::Relaxed);
                obs::counter_add("pair_context_hits", 1);
                return Arc::clone(&entry.ctx);
            }
        }
        let span = obs::phase::span("engine", "pair_setup");
        let plan = plans.get_or_prepare(choice, spec);
        let ctx = Arc::new(PairContext::with_generation(plan, pair, generation));
        span.finish(obs::CostDelta::default());
        let stale = guard
            .insert(
                key,
                Entry {
                    generation,
                    ctx: Arc::clone(&ctx),
                },
            )
            .is_some();
        self.misses.fetch_add(1, Ordering::Relaxed);
        obs::counter_add("pair_context_misses", 1);
        if !stale {
            obs::gauge_add("pair_context_entries", 1);
        }
        ctx
    }

    /// Drops every context and bumps the generation, so contexts a
    /// racing lookup inserted under the old generation are never served.
    /// Pair streams resume from fresh coin blocks — still seeded by the
    /// pure `stream_session_seed` derivation, so replays stay exact.
    pub fn invalidate(&self) {
        self.generation.fetch_add(1, Ordering::AcqRel);
        let mut evicted = 0i64;
        for shard in &self.shards {
            let mut guard = shard.write().expect("pair context cache poisoned");
            evicted += guard.len() as i64;
            guard.clear();
        }
        obs::gauge_add("pair_context_entries", -evicted);
    }

    /// Live contexts across all shards.
    pub fn entries(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.read().expect("pair context cache poisoned").len() as u64)
            .sum()
    }

    /// Current hit/miss/entry counters.
    pub fn stats(&self) -> PairContextStats {
        PairContextStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.entries(),
            generation: self.generation.load(Ordering::Acquire),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contexts_are_keyed_by_pair_and_shape() {
        let plans = PlanCache::new();
        let cache = PairContextCache::new();
        let spec_a = ProblemSpec::new(1 << 20, 32);
        let spec_b = ProblemSpec::new(1 << 24, 32);
        let c1 = cache.get_or_create(1, ProtocolChoice::TreeLogStar, spec_a, &plans);
        let c2 = cache.get_or_create(1, ProtocolChoice::TreeLogStar, spec_a, &plans);
        let c3 = cache.get_or_create(2, ProtocolChoice::TreeLogStar, spec_a, &plans);
        let c4 = cache.get_or_create(1, ProtocolChoice::TreeLogStar, spec_b, &plans);
        assert!(Arc::ptr_eq(&c1, &c2));
        assert!(!Arc::ptr_eq(&c1, &c3));
        assert!(!Arc::ptr_eq(&c1, &c4));
        assert_eq!(c1.pair_seed(), 1);
        assert_eq!(c3.pair_seed(), 2);
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 3);
        assert_eq!(stats.entries, 3);
    }

    #[test]
    fn contexts_share_plans_through_the_plan_cache() {
        let plans = PlanCache::new();
        let cache = PairContextCache::new();
        let spec = ProblemSpec::new(1 << 20, 16);
        let c1 = cache.get_or_create(1, ProtocolChoice::Tree(2), spec, &plans);
        let c2 = cache.get_or_create(2, ProtocolChoice::Tree(2), spec, &plans);
        assert!(Arc::ptr_eq(c1.plan(), c2.plan()));
        // Two pair misses, but only one parameter derivation.
        assert_eq!(plans.stats().misses, 1);
        assert_eq!(plans.stats().hits, 1);
    }

    #[test]
    fn invalidation_rebuilds_contexts_with_a_fresh_generation() {
        let plans = PlanCache::new();
        let cache = PairContextCache::new();
        let spec = ProblemSpec::new(1 << 20, 16);
        let before = cache.get_or_create(9, ProtocolChoice::Tree(2), spec, &plans);
        before.take_block(3);
        cache.invalidate();
        assert_eq!(cache.entries(), 0);
        let after = cache.get_or_create(9, ProtocolChoice::Tree(2), spec, &plans);
        assert!(!Arc::ptr_eq(&before, &after));
        assert_eq!(after.generation(), 1);
        // The rebuilt context restarts its stream index; the coin seeds
        // it hands out are the same pure function of (pair, index).
        assert_eq!(after.sessions(), 0);
        assert_eq!(after.take_block(3), before_first_block(&before));
        let stats = cache.stats();
        assert_eq!(stats.generation, 1);
        assert_eq!(stats.misses, 2);
    }

    fn before_first_block(ctx: &Arc<PairContext>) -> (u64, Vec<u64>) {
        let seeds = (0..3)
            .map(|i| intersect_comm::coins::stream_session_seed(ctx.pair_seed(), i))
            .collect();
        (0, seeds)
    }

    #[test]
    fn concurrent_lookups_agree_on_one_context() {
        let plans = Arc::new(PlanCache::new());
        let cache = Arc::new(PairContextCache::new());
        let spec = ProblemSpec::new(1 << 30, 64);
        let ctxs: Vec<_> = std::thread::scope(|s| {
            (0..8)
                .map(|_| {
                    let plans = Arc::clone(&plans);
                    let cache = Arc::clone(&cache);
                    s.spawn(move || {
                        cache.get_or_create(3, ProtocolChoice::TreeLogStar, spec, &plans)
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        assert!(ctxs.windows(2).all(|w| Arc::ptr_eq(&w[0], &w[1])));
        let stats = cache.stats();
        assert_eq!(stats.misses, 1, "offline phase ran exactly once");
        assert_eq!(stats.hits, 7);
        assert_eq!(stats.entries, 1);
    }
}
