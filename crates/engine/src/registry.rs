//! The session registry: aggregate accounting for an engine run.
//!
//! Every admitted session deposits its [`CostReport`] here; the registry
//! folds them into engine-wide metrics (total bits, a rounds histogram,
//! per-protocol tallies, rejection counts) and wall-clock latency
//! percentiles. Snapshots split cleanly in two: [`EngineMetrics`] is a
//! pure function of the admitted workload — byte-identical across runs
//! and worker counts — while [`LatencySummary`] is wall-clock and
//! inherently nondeterministic. Tests that pin down engine determinism
//! compare only the former.

use intersect_comm::stats::{CostReport, NetworkReport};
use intersect_obs::LogHistogram;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};
use std::sync::{Arc, Mutex};

/// Default capacity of the recently-finished-session ring retained for
/// the `/sessions` endpoint; `EngineConfig::ring` (and the
/// `intersect-serve --ring` flag) override it per engine.
const RECENT_CAP: usize = 64;

/// Aggregate communication cost of all sessions served by one protocol.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProtocolTally {
    /// Sessions completed with this protocol.
    pub sessions: u64,
    /// Total bits across those sessions.
    pub bits: u64,
    /// Worst round complexity observed.
    pub max_rounds: u64,
}

/// Deterministic engine-wide counters: a pure fold over the per-session
/// [`CostReport`]s, independent of scheduling order and worker count.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineMetrics {
    /// Sessions admitted into the queue.
    pub submitted: u64,
    /// Sessions that finished with both parties agreeing on the output.
    pub completed: u64,
    /// Sessions that finished with a protocol error.
    pub failed: u64,
    /// Sessions turned away by admission control (queue full).
    pub rejected: u64,
    /// Total bits on the wire across all finished sessions.
    pub total_bits: u64,
    /// Total messages across all finished sessions.
    pub total_messages: u64,
    /// Finished sessions by round complexity.
    pub rounds_histogram: BTreeMap<u64, u64>,
    /// Finished sessions grouped by protocol name.
    pub per_protocol: BTreeMap<String, ProtocolTally>,
    /// Finished m-party sessions keyed by party count `m` (two-party
    /// sessions are not counted here; `m = 2` means an engine-hosted
    /// multiparty session that happens to have two players).
    #[serde(default)]
    pub multiparty_sessions: BTreeMap<u64, u64>,
}

/// Wall-clock latency percentiles over finished sessions, in microseconds
/// from admission to outcome. Nondeterministic by nature; kept separate
/// from [`EngineMetrics`] so determinism tests can ignore it.
///
/// Percentiles come from a streaming [`LogHistogram`] rather than an
/// exact sort: constant memory however many sessions run, at most 6.25 %
/// overshoot per quantile, and `min`/`max` stay exact.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Fastest session.
    pub min_micros: u64,
    /// Median session latency.
    pub p50_micros: u64,
    /// 90th-percentile session latency.
    pub p90_micros: u64,
    /// 99th-percentile session latency.
    pub p99_micros: u64,
    /// Slowest session.
    pub max_micros: u64,
}

/// A one-line record of a finished session, retained in a bounded ring
/// for live introspection (`/sessions`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SessionSummary {
    /// Client-assigned session id.
    pub id: u64,
    /// Display name of the protocol that served it.
    pub protocol: String,
    /// Total bits on the wire.
    pub bits: u64,
    /// Round complexity.
    pub rounds: u64,
    /// Admission-to-outcome latency in microseconds.
    pub latency_micros: u64,
    /// `true` iff both parties finished and agreed.
    pub ok: bool,
}

/// A point-in-time view of an engine's accounting.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct EngineSnapshot {
    /// Size of the worker pool that produced the snapshot.
    pub workers: u64,
    /// Deterministic aggregate counters.
    pub metrics: EngineMetrics,
    /// Wall-clock latency percentiles.
    pub latency: LatencySummary,
}

impl EngineSnapshot {
    /// Renders the snapshot as aligned markdown tables (the same layout
    /// conventions as the experiment reports in `intersect-bench`).
    pub fn to_markdown(&self) -> String {
        let m = &self.metrics;
        let mut out = format!("### engine snapshot — {} workers\n\n", self.workers);
        out.push_str(&render_table(
            &[
                "submitted",
                "completed",
                "failed",
                "rejected",
                "total bits",
                "messages",
            ],
            &[vec![
                m.submitted.to_string(),
                m.completed.to_string(),
                m.failed.to_string(),
                m.rejected.to_string(),
                m.total_bits.to_string(),
                m.total_messages.to_string(),
            ]],
        ));
        out.push('\n');
        out.push_str(&render_table(
            &["protocol", "sessions", "bits", "max rounds"],
            &m.per_protocol
                .iter()
                .map(|(name, t)| {
                    vec![
                        name.clone(),
                        t.sessions.to_string(),
                        t.bits.to_string(),
                        t.max_rounds.to_string(),
                    ]
                })
                .collect::<Vec<_>>(),
        ));
        out.push('\n');
        out.push_str(&render_table(
            &["rounds", "sessions"],
            &m.rounds_histogram
                .iter()
                .map(|(rounds, count)| vec![rounds.to_string(), count.to_string()])
                .collect::<Vec<_>>(),
        ));
        if !m.multiparty_sessions.is_empty() {
            out.push('\n');
            out.push_str(&render_table(
                &["players (m)", "sessions"],
                &m.multiparty_sessions
                    .iter()
                    .map(|(players, count)| vec![players.to_string(), count.to_string()])
                    .collect::<Vec<_>>(),
            ));
        }
        out.push('\n');
        out.push_str(&render_table(
            &["latency min", "p50", "p90", "p99", "max"],
            &[vec![
                format!("{}µs", self.latency.min_micros),
                format!("{}µs", self.latency.p50_micros),
                format!("{}µs", self.latency.p90_micros),
                format!("{}µs", self.latency.p99_micros),
                format!("{}µs", self.latency.max_micros),
            ]],
        ));
        out
    }

    /// Renders the snapshot as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("snapshot is serializable")
    }
}

/// Right-aligned markdown table, matching `intersect-bench`'s layout.
fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let fmt_row = |cells: &[String]| -> String {
        let padded: Vec<String> = cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}", w = *w))
            .collect();
        format!("| {} |\n", padded.join(" | "))
    };
    let mut out = fmt_row(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>());
    out.push_str(&fmt_row(
        &widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>(),
    ));
    for row in rows {
        out.push_str(&fmt_row(row));
    }
    out
}

/// Thread-safe accumulator shared by the dispatcher and the workers.
#[derive(Debug, Default)]
pub(crate) struct Registry {
    inner: Mutex<RegistryInner>,
}

#[derive(Debug)]
struct RegistryInner {
    metrics: EngineMetrics,
    latency: LogHistogram,
    recent: VecDeque<SessionSummary>,
    recent_cap: usize,
}

impl Default for RegistryInner {
    fn default() -> Self {
        RegistryInner {
            metrics: EngineMetrics::default(),
            latency: LogHistogram::default(),
            recent: VecDeque::new(),
            recent_cap: RECENT_CAP,
        }
    }
}

impl Registry {
    /// A registry whose recent-session ring holds `cap` entries
    /// (clamped to at least 1).
    pub(crate) fn with_capacity(cap: usize) -> Registry {
        let registry = Registry::default();
        registry.lock().recent_cap = cap.max(1);
        registry
    }

    /// The recent-session ring's capacity.
    pub(crate) fn recent_capacity(&self) -> usize {
        self.lock().recent_cap
    }

    pub(crate) fn record_submitted(&self) {
        self.lock().metrics.submitted += 1;
    }

    pub(crate) fn record_rejected(&self) {
        self.lock().metrics.rejected += 1;
    }

    pub(crate) fn record_outcome(
        &self,
        id: u64,
        protocol_name: &str,
        report: &CostReport,
        succeeded: bool,
        latency_micros: u64,
    ) {
        let mut inner = self.lock();
        let m = &mut inner.metrics;
        if succeeded {
            m.completed += 1;
        } else {
            m.failed += 1;
        }
        m.total_bits += report.total_bits();
        m.total_messages += report.messages;
        *m.rounds_histogram.entry(report.rounds).or_insert(0) += 1;
        let tally = m.per_protocol.entry(protocol_name.to_string()).or_default();
        tally.sessions += 1;
        tally.bits += report.total_bits();
        tally.max_rounds = tally.max_rounds.max(report.rounds);
        inner.latency.record(latency_micros);
        while inner.recent.len() >= inner.recent_cap {
            inner.recent.pop_front();
        }
        inner.recent.push_back(SessionSummary {
            id,
            protocol: protocol_name.to_string(),
            bits: report.total_bits(),
            rounds: report.rounds,
            latency_micros,
            ok: succeeded,
        });
    }

    /// Folds one finished m-party session: the aggregate counters see it
    /// like any other session (bits, messages, rounds, per-protocol
    /// tally under the `mp/*` name), plus the m-keyed session count.
    pub(crate) fn record_multiparty(
        &self,
        id: u64,
        protocol_name: &str,
        players: usize,
        report: &NetworkReport,
        succeeded: bool,
        latency_micros: u64,
    ) {
        let mut inner = self.lock();
        let m = &mut inner.metrics;
        if succeeded {
            m.completed += 1;
        } else {
            m.failed += 1;
        }
        m.total_bits += report.total_bits();
        m.total_messages += report.messages;
        *m.rounds_histogram.entry(report.rounds).or_insert(0) += 1;
        let tally = m.per_protocol.entry(protocol_name.to_string()).or_default();
        tally.sessions += 1;
        tally.bits += report.total_bits();
        tally.max_rounds = tally.max_rounds.max(report.rounds);
        *m.multiparty_sessions.entry(players as u64).or_insert(0) += 1;
        inner.latency.record(latency_micros);
        while inner.recent.len() >= inner.recent_cap {
            inner.recent.pop_front();
        }
        inner.recent.push_back(SessionSummary {
            id,
            protocol: protocol_name.to_string(),
            bits: report.total_bits(),
            rounds: report.rounds,
            latency_micros,
            ok: succeeded,
        });
    }

    pub(crate) fn recent(&self) -> Vec<SessionSummary> {
        self.lock().recent.iter().cloned().collect()
    }

    pub(crate) fn snapshot(&self, workers: u64) -> EngineSnapshot {
        let inner = self.lock();
        let h = &inner.latency;
        EngineSnapshot {
            workers,
            metrics: inner.metrics.clone(),
            latency: LatencySummary {
                min_micros: h.min(),
                p50_micros: h.percentile(0.50),
                p90_micros: h.percentile(0.90),
                p99_micros: h.percentile(0.99),
                max_micros: h.max(),
            },
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, RegistryInner> {
        self.inner.lock().expect("registry poisoned")
    }
}

/// A cloneable, `'static` handle onto a running (or finished) engine's
/// registry: the snapshot API the telemetry plane scrapes while workers
/// are still serving. Obtained from `Engine::watch`; stays valid after
/// `Engine::finish` consumes the engine itself.
#[derive(Debug, Clone)]
pub struct EngineWatch {
    pub(crate) registry: Arc<Registry>,
    pub(crate) workers: u64,
}

impl EngineWatch {
    /// A live [`EngineSnapshot`] (sessions may still be in flight).
    pub fn snapshot(&self) -> EngineSnapshot {
        self.registry.snapshot(self.workers)
    }

    /// The most recently finished sessions, oldest first (bounded ring).
    pub fn recent_sessions(&self) -> Vec<SessionSummary> {
        self.registry.recent()
    }

    /// The recent-session ring's capacity (`EngineConfig::ring`).
    pub fn ring(&self) -> usize {
        self.registry.recent_capacity()
    }

    /// The `/sessions` document: the live snapshot, the configured ring
    /// capacity, and the recent-session ring, as pretty-printed JSON.
    pub fn sessions_json(&self) -> String {
        #[derive(Serialize)]
        struct SessionsDoc {
            snapshot: EngineSnapshot,
            ring: usize,
            recent: Vec<SessionSummary>,
        }
        serde_json::to_string_pretty(&SessionsDoc {
            snapshot: self.snapshot(),
            ring: self.ring(),
            recent: self.recent_sessions(),
        })
        .expect("sessions document is serializable")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report(bits: u64, rounds: u64) -> CostReport {
        CostReport {
            bits_alice: bits / 2,
            bits_bob: bits - bits / 2,
            messages: rounds,
            rounds,
        }
    }

    #[test]
    fn registry_folds_outcomes_into_metrics() {
        let reg = Registry::default();
        for _ in 0..3 {
            reg.record_submitted();
        }
        reg.record_rejected();
        reg.record_outcome(0, "tree(r=2)", &sample_report(100, 6), true, 40);
        reg.record_outcome(1, "tree(r=2)", &sample_report(50, 8), true, 10);
        reg.record_outcome(2, "sqrt-fknn", &sample_report(30, 40), false, 90);
        let snap = reg.snapshot(4);
        assert_eq!(snap.workers, 4);
        assert_eq!(snap.metrics.submitted, 3);
        assert_eq!(snap.metrics.rejected, 1);
        assert_eq!(snap.metrics.completed, 2);
        assert_eq!(snap.metrics.failed, 1);
        assert_eq!(snap.metrics.total_bits, 180);
        assert_eq!(snap.metrics.rounds_histogram[&6], 1);
        assert_eq!(snap.metrics.rounds_histogram[&8], 1);
        let tree = &snap.metrics.per_protocol["tree(r=2)"];
        assert_eq!(tree.sessions, 2);
        assert_eq!(tree.bits, 150);
        assert_eq!(tree.max_rounds, 8);
        // Histogram percentiles: exact at the edges (min/max), within one
        // sub-bucket elsewhere (40 lands in the [40, 42) bucket → 41).
        assert_eq!(snap.latency.min_micros, 10);
        assert_eq!(snap.latency.p50_micros, 41);
        assert_eq!(snap.latency.p90_micros, 90);
        assert_eq!(snap.latency.p99_micros, 90);
        assert_eq!(snap.latency.max_micros, 90);
    }

    #[test]
    fn registry_folds_multiparty_outcomes() {
        let reg = Registry::default();
        let report = NetworkReport {
            bits_sent: vec![40, 30, 20, 10],
            bits_received: vec![25, 25, 25, 25],
            messages: 12,
            rounds: 5,
        };
        reg.record_multiparty(9, "mp/average", 4, &report, true, 33);
        reg.record_multiparty(10, "mp/average", 4, &report, false, 35);
        let snap = reg.snapshot(2);
        assert_eq!(snap.metrics.completed, 1);
        assert_eq!(snap.metrics.failed, 1);
        assert_eq!(snap.metrics.total_bits, 200);
        assert_eq!(snap.metrics.total_messages, 24);
        assert_eq!(snap.metrics.rounds_histogram[&5], 2);
        assert_eq!(snap.metrics.multiparty_sessions[&4], 2);
        assert_eq!(snap.metrics.per_protocol["mp/average"].sessions, 2);
        assert!(snap.to_markdown().contains("players (m)"));
        let back: EngineSnapshot = serde_json::from_str(&snap.to_json()).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn empty_snapshot_is_safe() {
        let snap = Registry::default().snapshot(1);
        assert_eq!(snap.latency, LatencySummary::default());
        assert!(snap.to_markdown().contains("| 0 |") || snap.to_markdown().contains("0"));
    }

    #[test]
    fn recent_ring_is_bounded_and_ordered() {
        let reg = Registry::default();
        for id in 0..(RECENT_CAP as u64 + 10) {
            reg.record_outcome(id, "trivial", &sample_report(10, 2), true, 1);
        }
        let recent = reg.recent();
        assert_eq!(recent.len(), RECENT_CAP);
        assert_eq!(recent.first().unwrap().id, 10); // oldest evicted
        assert_eq!(recent.last().unwrap().id, RECENT_CAP as u64 + 9);
    }

    #[test]
    fn ring_capacity_is_configurable_and_clamped() {
        let reg = Registry::with_capacity(3);
        assert_eq!(reg.recent_capacity(), 3);
        for id in 0..8 {
            reg.record_outcome(id, "trivial", &sample_report(10, 2), true, 1);
        }
        let recent = reg.recent();
        assert_eq!(recent.len(), 3);
        assert_eq!(recent.first().unwrap().id, 5);
        assert_eq!(Registry::with_capacity(0).recent_capacity(), 1);
    }

    #[test]
    fn watch_serves_live_snapshots_and_sessions_json() {
        let registry = Arc::new(Registry::default());
        let watch = EngineWatch {
            registry: Arc::clone(&registry),
            workers: 4,
        };
        registry.record_submitted();
        registry.record_outcome(7, "sqrt-fknn", &sample_report(96, 30), true, 55);
        assert_eq!(watch.snapshot().metrics.completed, 1);
        assert_eq!(watch.recent_sessions()[0].id, 7);
        let json = watch.sessions_json();
        let doc: serde_json::Value = serde_json::from_str(&json).unwrap();
        let snapshot = doc.get("snapshot").expect("snapshot field");
        assert_eq!(snapshot.get("workers").unwrap().as_u64(), Some(4));
        assert_eq!(doc.get("ring").unwrap().as_u64(), Some(64));
        let recent = match doc.get("recent").expect("recent field") {
            serde_json::Value::Array(items) => items,
            other => panic!("recent is not an array: {other:?}"),
        };
        assert_eq!(recent.len(), 1);
        assert_eq!(
            recent[0].get("protocol").unwrap().as_str(),
            Some("sqrt-fknn")
        );
        assert_eq!(recent[0].get("bits").unwrap().as_u64(), Some(96));
        assert!(matches!(
            recent[0].get("ok"),
            Some(serde_json::Value::Bool(true))
        ));
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let reg = Registry::default();
        reg.record_submitted();
        reg.record_outcome(0, "trivial", &sample_report(64, 2), true, 5);
        let snap = reg.snapshot(2);
        let json = snap.to_json();
        let back: EngineSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn markdown_tables_are_aligned() {
        let reg = Registry::default();
        reg.record_submitted();
        reg.record_outcome(0, "tree(r=2)", &sample_report(12345, 6), true, 77);
        let md = reg.snapshot(8).to_markdown();
        assert!(md.starts_with("### engine snapshot — 8 workers"));
        // Within each table, all pipe-rows have equal width (in chars:
        // the formatter pads by char count, and "µ" is two bytes).
        for block in md.split("\n\n").filter(|b| b.contains('|')) {
            let lens: Vec<usize> = block
                .lines()
                .filter(|l| l.starts_with('|'))
                .map(|l| l.chars().count())
                .collect();
            assert!(lens.windows(2).all(|w| w[0] == w[1]), "misaligned: {block}");
        }
    }
}
