//! m-party session workloads: requests, outcomes, and conformance
//! envelopes for engine-hosted multiparty sessions.
//!
//! A [`MultipartyRequest`] is the m-party analogue of
//! [`SessionRequest`](crate::SessionRequest): a one-line description —
//! universe, cardinality bound, party count, overlap, protocol, seed —
//! from which every player's input set regenerates deterministically.
//! The engine hosts such a session on one worker's reusable
//! [`LinkSet`](intersect_comm::net::LinkSet) (allocation-free at steady
//! state, like the two-party runner pairs), running all `m` player
//! halves on parallel threads with pairwise links per tournament level.
//! The defining invariant carries over from the pair path: an
//! engine-hosted m-party session is **bit-for-bit identical** to the
//! same request served by the harness-only
//! [`execute`](intersect_multiparty::AverageCase::execute) calls.

use crate::timeline::SessionTimeline;
use intersect_comm::error::ProtocolError;
use intersect_comm::stats::NetworkReport;
use intersect_core::api::ProtocolChoice;
use intersect_core::sets::{ElementSet, ProblemSpec};
use intersect_core::topology::PreparedTournament;
use intersect_multiparty::choice::MultipartyChoice;
use intersect_multiparty::common::PairwiseConfig;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Default slack factor for per-player conformance envelopes: generous
/// enough to absorb certificate retries (an expected `O(1)` event) while
/// still catching protocols that blow their per-player budget outright.
pub const MULTIPARTY_ENVELOPE_SLACK: f64 = 8.0;

/// One m-party session to serve: workload parameters plus the protocol
/// choice, regenerable into exact inputs by anyone holding the line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MultipartyRequest {
    /// Client-assigned session id (echoed in the outcome).
    pub id: u64,
    /// Seed for the input generator and the session's common random
    /// string.
    pub seed: u64,
    /// The `INT_k` instance parameters, shared by all players.
    pub spec: ProblemSpec,
    /// Number of players `m`.
    pub players: usize,
    /// Size of the common core planted in every player's set; the
    /// global intersection contains at least these `overlap` elements.
    pub overlap: usize,
    /// Which Section 4 protocol to run.
    pub choice: MultipartyChoice,
    /// Round budget `r` of the inner verification-tree protocol.
    pub tree_rounds: u32,
    /// For remote sessions: the player index the connecting client
    /// drives itself (the server hosts the rest). `None` for fully
    /// engine-hosted sessions.
    pub player: Option<usize>,
}

impl MultipartyRequest {
    /// A request with `seed = id` and tree round budget 2.
    pub fn new(
        id: u64,
        spec: ProblemSpec,
        players: usize,
        overlap: usize,
        choice: MultipartyChoice,
    ) -> Self {
        MultipartyRequest {
            id,
            seed: id,
            spec,
            players,
            overlap,
            choice,
            tree_rounds: 2,
            player: None,
        }
    }

    /// Checks the generator constraints.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the violation.
    pub fn validate(&self) -> Result<(), String> {
        if self.players == 0 {
            return Err("players must be positive".into());
        }
        if self.players > 4096 {
            return Err(format!("players {} exceeds the cap 4096", self.players));
        }
        if let Some(p) = self.player {
            if p >= self.players {
                return Err(format!(
                    "player index {p} out of range for {} players",
                    self.players
                ));
            }
        }
        if self.overlap as u64 > self.spec.k {
            return Err(format!(
                "overlap {} exceeds cardinality bound k = {}",
                self.overlap, self.spec.k
            ));
        }
        if self.overlap as u64 > self.spec.n / 2 {
            return Err(format!(
                "core of {} elements exceeds the lower half-universe {}",
                self.overlap,
                self.spec.n / 2
            ));
        }
        if self.spec.k > self.spec.n - self.spec.n / 2 {
            return Err(format!(
                "per-player fill needs up to k = {} elements but the upper half-universe has {}",
                self.spec.k,
                self.spec.n - self.spec.n / 2
            ));
        }
        Ok(())
    }

    /// Deterministically regenerates every player's input set: a common
    /// core of `overlap` elements from the lower half-universe, each
    /// player filled up to `k` with private elements from the upper half
    /// (the same generator the multiparty harness tests use). Anyone
    /// holding the request reproduces the exact inputs — the audit path
    /// for engine-hosted and remote m-party sessions alike.
    pub fn player_sets(&self) -> Vec<ElementSet> {
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let core = ElementSet::random(&mut rng, self.spec.n / 2, self.overlap);
        (0..self.players)
            .map(|_| {
                let mut elems: Vec<u64> = core.iter().collect();
                while elems.len() < self.spec.k as usize {
                    let x = rng.gen_range(self.spec.n / 2..self.spec.n);
                    if !elems.contains(&x) {
                        elems.push(x);
                    }
                }
                elems.into_iter().collect()
            })
            .collect()
    }

    /// The exact global intersection of [`player_sets`](Self::player_sets).
    pub fn ground_truth(&self) -> ElementSet {
        let sets = self.player_sets();
        sets.iter()
            .skip(1)
            .fold(sets[0].clone(), |acc, s| acc.intersection(s))
    }

    /// The session's per-player conformance envelope in bits, derived
    /// from the prepared tournament plan and the calibrated
    /// [`PredictedCost`](intersect_core::cost::PredictedCost) of one
    /// certified pairwise run.
    pub fn envelope_bits(&self, plan: &PreparedTournament) -> f64 {
        let pairwise = ProtocolChoice::Tree(self.tree_rounds)
            .predicted_cost(self.spec, None)
            .bits
            + PairwiseConfig::for_spec(self.spec, self.tree_rounds).certificate_bits as f64;
        plan.player_envelope_bits(pairwise, MULTIPARTY_ENVELOPE_SLACK)
    }

    /// Parses the line format emitted by [`to_line`](Self::to_line):
    /// whitespace-separated `key=value` tokens with keys `id`, `seed`,
    /// `n`, `k`, `overlap`, `players`, `player`, `mp`, `rounds`. The
    /// `players` and `mp` keys are what distinguish a multiparty Open
    /// line from a two-party one on the wire. Returns `Ok(None)` for
    /// blank lines and `#` comments.
    ///
    /// # Errors
    ///
    /// Rejects unknown keys, malformed values, and infeasible parameters.
    pub fn parse_line(line: &str) -> Result<Option<MultipartyRequest>, String> {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            return Ok(None);
        }
        let mut id = None;
        let mut seed = None;
        let mut n = None;
        let mut k = None;
        let mut overlap = 0usize;
        let mut players = None;
        let mut player = None;
        let mut choice = None;
        let mut tree_rounds = 2u32;
        for token in line.split_whitespace() {
            let (key, value) = token
                .split_once('=')
                .ok_or_else(|| format!("expected key=value, got {token:?}"))?;
            let int = || -> Result<u64, String> {
                parse_u64(value).ok_or_else(|| format!("bad integer for {key}: {value:?}"))
            };
            match key {
                "id" => id = Some(int()?),
                "seed" => seed = Some(int()?),
                "n" => n = Some(int()?),
                "k" => k = Some(int()?),
                "overlap" => overlap = int()? as usize,
                "players" => players = Some(int()? as usize),
                "player" => player = Some(int()? as usize),
                "mp" => choice = Some(value.parse::<MultipartyChoice>()?),
                "rounds" => tree_rounds = int()? as u32,
                other => return Err(format!("unknown key {other:?}")),
            }
        }
        let n = n.ok_or("missing required key n")?;
        let k = k.ok_or("missing required key k")?;
        if k == 0 || k > n {
            return Err(format!("infeasible spec: n={n} k={k}"));
        }
        let id = id.unwrap_or(0);
        let req = MultipartyRequest {
            id,
            seed: seed.unwrap_or(id),
            spec: ProblemSpec::new(n, k),
            players: players.ok_or("missing required key players")?,
            overlap,
            choice: choice.ok_or("missing required key mp")?,
            tree_rounds,
            player,
        };
        req.validate()?;
        Ok(Some(req))
    }

    /// Renders the request in the [`parse_line`](Self::parse_line) format.
    pub fn to_line(&self) -> String {
        let mut out = format!(
            "id={} seed={} n={} k={} overlap={} players={} mp={} rounds={}",
            self.id,
            self.seed,
            self.spec.n,
            self.spec.k,
            self.overlap,
            self.players,
            self.choice,
            self.tree_rounds
        );
        if let Some(p) = self.player {
            out.push_str(&format!(" player={p}"));
        }
        out
    }
}

fn parse_u64(s: &str) -> Option<u64> {
    if let Some(exp) = s.strip_prefix("2^") {
        return 1u64.checked_shl(exp.parse().ok()?);
    }
    s.parse().ok()
}

/// The final record of one engine-hosted m-party session.
#[derive(Debug, Clone)]
pub struct MultipartySessionOutcome {
    /// The request that produced this session.
    pub request: MultipartyRequest,
    /// The player left holding the intersection (intersection protocols
    /// only).
    pub holder: Option<usize>,
    /// The computed global intersection, from the holder.
    pub result: Option<ElementSet>,
    /// Per-player disjointness verdicts (decision protocols only).
    pub verdicts: Vec<Option<bool>>,
    /// The primary failure, if any.
    pub error: Option<ProtocolError>,
    /// Exact per-player communication and round accounting, identical
    /// to what a harness-only `execute` call reports for this request.
    pub report: NetworkReport,
    /// The per-player conformance envelope the session was checked
    /// against (bits, from the prepared tournament plan).
    pub envelope_bits: f64,
    /// `true` iff the heaviest player stayed within the envelope.
    pub within_envelope: bool,
    /// Wall-clock admission-to-outcome latency in microseconds.
    pub latency_micros: u64,
    /// The session's latency waterfall; the same six segments tile
    /// m-party sessions too.
    pub timeline: SessionTimeline,
}

impl MultipartySessionOutcome {
    /// `true` iff every player half finished without error and the
    /// protocol produced its output (a holder, or unanimous verdicts).
    pub fn succeeded(&self) -> bool {
        if self.error.is_some() {
            return false;
        }
        match self.request.choice {
            MultipartyChoice::Disjointness => {
                let mut verdicts = self.verdicts.iter().flatten();
                match verdicts.next() {
                    Some(first) => verdicts.all(|v| v == first),
                    None => false,
                }
            }
            _ => self.holder.is_some() && self.result.is_some(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lines_round_trip() {
        let spec = ProblemSpec::new(1 << 20, 16);
        let mut req = MultipartyRequest::new(7, spec, 8, 3, MultipartyChoice::WorstCase);
        let parsed = MultipartyRequest::parse_line(&req.to_line())
            .unwrap()
            .unwrap();
        assert_eq!(parsed, req);
        req.player = Some(2);
        let parsed = MultipartyRequest::parse_line(&req.to_line())
            .unwrap()
            .unwrap();
        assert_eq!(parsed, req);
    }

    #[test]
    fn malformed_lines_are_rejected() {
        // A two-party line is not a multiparty line and vice versa.
        assert!(MultipartyRequest::parse_line("n=1024 k=8").is_err()); // no players/mp
        assert!(MultipartyRequest::parse_line("n=1024 k=8 players=4").is_err()); // no mp
        assert!(MultipartyRequest::parse_line("n=1024 k=8 players=4 mp=warp").is_err());
        assert!(
            MultipartyRequest::parse_line("n=1024 k=8 players=4 mp=mp/average player=4").is_err()
        );
        assert!(
            MultipartyRequest::parse_line("n=1024 k=8 players=4 mp=mp/average size=8").is_err()
        );
        assert_eq!(MultipartyRequest::parse_line("# comment"), Ok(None));
    }

    #[test]
    fn player_sets_are_deterministic_and_honor_overlap() {
        let spec = ProblemSpec::new(1 << 16, 16);
        let req = MultipartyRequest::new(3, spec, 5, 4, MultipartyChoice::AverageCase);
        let a = req.player_sets();
        let b = req.player_sets();
        assert_eq!(a, b);
        assert_eq!(a.len(), 5);
        assert!(a.iter().all(|s| s.len() == 16));
        // The planted core survives into the global intersection.
        assert!(req.ground_truth().len() >= 4);
    }

    #[test]
    fn envelope_scales_with_the_plan() {
        let spec = ProblemSpec::new(1 << 20, 16);
        let small = MultipartyRequest::new(0, spec, 2, 4, MultipartyChoice::AverageCase);
        let large = MultipartyRequest::new(0, spec, 64, 4, MultipartyChoice::AverageCase);
        let e_small = small.envelope_bits(&small.choice.plan(spec, 2));
        let e_large = large.envelope_bits(&large.choice.plan(spec, 64));
        // The star coordinator of a 32-wide group carries more matches
        // than a pair's single match.
        assert!(e_large > e_small);
    }
}
