//! Table-driven theory-conformance coverage: every catalogue protocol,
//! across several set sizes and overlaps, must stay inside its
//! calibrated envelope at the default slack — and a deliberately
//! inflated report must trip the monitor.

use intersect_core::api::ProtocolChoice;
use intersect_core::sets::ProblemSpec;
use intersect_engine::prelude::*;
use intersect_engine::EngineConfig;
use intersect_obs::conformance::{ConformanceConfig, ConformanceMonitor};

/// One engine per protocol, fed sessions at several `k` and overlap
/// shapes. Default slack must yield a 100 % envelope pass rate: the
/// cost model is calibrated to within 2× on bits and 3.5× on rounds,
/// and the envelope grants 3×/4× plus an additive floor.
#[test]
fn every_catalogue_protocol_conforms_at_default_slack() {
    for choice in ProtocolChoice::all(3) {
        let mut config = EngineConfig::new(2);
        config.policy = RoutePolicy::Fixed(choice);
        config.conformance = Some(ConformanceConfig::default());
        let engine = Engine::start(config);
        let mut id = 0u64;
        for k in [16u64, 64, 256] {
            let spec = ProblemSpec::new(1 << 20, k);
            for overlap in [0usize, (k / 2) as usize, (k - 1) as usize] {
                let mut req = SessionRequest::new(id, spec, overlap);
                req.seed = id.wrapping_mul(0x9e37_79b9) + 7;
                engine.submit(req).unwrap();
                id += 1;
            }
        }
        let report = engine.finish();
        assert!(
            report.outcomes.iter().all(|o| o.succeeded()),
            "{choice:?}: session failed"
        );
        let conf = report.conformance.expect("conformance configured");
        assert_eq!(conf.checked, 9, "{choice:?}");
        assert!(
            conf.all_conformant(),
            "{choice:?} breached its envelope at default slack: {:?}",
            conf.violations
        );
    }
}

/// The negative control: the same calibrated envelopes reject a report
/// whose costs are inflated far beyond anything a correct run produces.
#[test]
fn inflated_reports_are_flagged_as_violations() {
    let spec = ProblemSpec::new(1 << 20, 64);
    let monitor = ConformanceMonitor::new();
    let mut checked = 0u64;
    for choice in ProtocolChoice::all(3) {
        let name = choice.build(spec).name();
        let envelope = theory_envelope(choice, &name, spec, Some(16), ConformanceConfig::default());
        // 100× the bit limit and 100× the round limit: both bounds breach.
        let breached = monitor.check(
            &envelope,
            envelope.max_bits * 100,
            envelope.max_rounds * 100,
        );
        assert_eq!(breached, 2, "{name}");
        checked += 1;
    }
    let report = monitor.report();
    assert_eq!(report.checked, checked);
    assert_eq!(report.violation_count, checked * 2);
    assert!(!monitor.health().ok());
    assert_eq!(monitor.health().violations(), checked * 2);
}

/// The operator-facing deliberate-violation knob (`--slack` near zero)
/// must degrade health on an otherwise honest workload end to end.
#[test]
fn near_zero_slack_degrades_health_on_honest_traffic() {
    let mut config = EngineConfig::new(2);
    config.conformance = Some(ConformanceConfig::with_slack(0.01));
    let engine = Engine::start(config);
    let health = engine.conformance_monitor().unwrap().health();
    assert!(health.ok());
    for id in 0..6 {
        let req = SessionRequest::new(id, ProblemSpec::new(1 << 18, 64), 16);
        engine.submit(req).unwrap();
    }
    let report = engine.finish();
    let conf = report.conformance.unwrap();
    assert_eq!(conf.checked, 6);
    assert!(conf.violation_count > 0, "0.01 slack must flag honest runs");
    assert!(!health.ok());
}
