//! Worker-count invariance: the deterministic half of an engine snapshot
//! is a pure function of the admitted workload. Two engines serving the
//! identical request sequence with different pool sizes must produce
//! byte-identical metrics.

use intersect_core::sets::ProblemSpec;
use intersect_engine::prelude::*;
use proptest::prelude::*;

fn run_batch(requests: &[SessionRequest], workers: usize) -> EngineReport {
    let engine = Engine::start(EngineConfig::new(workers));
    for req in requests {
        engine.submit(req.clone()).unwrap();
    }
    engine.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn metrics_are_invariant_under_worker_count(
        sessions in prop::collection::vec(
            (0usize..4, 0u64..=16, any::<u64>()),
            5..25,
        ),
        workers_a in 2usize..5,
        workers_b in 5usize..9,
    ) {
        let shapes = [
            (1u64 << 16, 8u64),
            (1 << 16, 16),
            (1 << 18, 16),
            (1 << 18, 32),
        ];
        let requests: Vec<SessionRequest> = sessions
            .iter()
            .enumerate()
            .map(|(id, &(shape, overlap, seed))| {
                let (n, k) = shapes[shape];
                let mut req =
                    SessionRequest::new(id as u64, ProblemSpec::new(n, k), (overlap % (k + 1)) as usize);
                req.seed = seed;
                req
            })
            .collect();

        let narrow = run_batch(&requests, workers_a);
        let wide = run_batch(&requests, workers_b);

        // The deterministic half of the snapshot is identical down to the
        // serialized bytes; only wall-clock latency may differ.
        prop_assert_eq!(&narrow.snapshot.metrics, &wide.snapshot.metrics);
        prop_assert_eq!(
            serde_json::to_string(&narrow.snapshot.metrics).unwrap(),
            serde_json::to_string(&wide.snapshot.metrics).unwrap()
        );

        // Stronger: every individual session settled identically.
        prop_assert_eq!(narrow.outcomes.len(), wide.outcomes.len());
        for (a, b) in narrow.outcomes.iter().zip(&wide.outcomes) {
            prop_assert_eq!(&a.request, &b.request);
            prop_assert_eq!(a.protocol, b.protocol);
            prop_assert_eq!(a.report, b.report);
            prop_assert_eq!(&a.alice, &b.alice);
            prop_assert_eq!(&a.bob, &b.bob);
        }
    }
}
