//! The engine-hosted m-party invariant, table-driven: for every
//! multiparty protocol, party count m ∈ {2, 4, 8}, and cardinality bound
//! k ∈ {16, 64}, a session served by `Engine::submit_multiparty` is
//! bit-for-bit identical to the same request served by the harness-only
//! `execute` calls — same inputs, same coins, same per-player
//! communication accounting. Wired into `scripts/check.sh`.

use intersect_core::sets::ProblemSpec;
use intersect_engine::prelude::*;
use intersect_multiparty::{AverageCase, MultipartyDisjointness, WorstCase};

#[test]
fn engine_multiparty_sessions_are_bit_identical_to_harness_runs() {
    let mut table = Vec::new();
    let mut id = 0u64;
    for choice in MultipartyChoice::ALL {
        for m in [2usize, 4, 8] {
            for k in [16u64, 64] {
                let spec = ProblemSpec::new(1 << 16, k);
                let overlap = (k / 8) as usize;
                let mut req = MultipartyRequest::new(id, spec, m, overlap, choice);
                req.seed = id.wrapping_mul(0x9e37_79b9) + 1;
                table.push(req);
                id += 1;
            }
        }
    }

    let engine = Engine::start(EngineConfig::new(4));
    for req in &table {
        engine.submit_multiparty(req.clone()).unwrap();
    }
    let report = engine.finish();
    assert_eq!(report.multiparty.len(), table.len());
    assert_eq!(report.snapshot.metrics.completed, table.len() as u64);

    for (outcome, req) in report.multiparty.iter().zip(&table) {
        let label = format!("{} m={} k={}", req.choice, req.players, req.spec.k);
        assert!(outcome.succeeded(), "{label}: session failed");
        assert!(outcome.within_envelope, "{label}: envelope breached");
        let sets = req.player_sets();
        let truth = req.ground_truth();
        match req.choice {
            MultipartyChoice::AverageCase => {
                let reference = AverageCase::new(req.spec, req.tree_rounds)
                    .execute(&sets, req.seed)
                    .unwrap();
                assert_eq!(outcome.report, reference.report, "{label}");
                assert_eq!(outcome.result.as_ref(), Some(&reference.result), "{label}");
                assert_eq!(reference.result, truth, "{label}");
            }
            MultipartyChoice::WorstCase => {
                let reference = WorstCase::new(req.spec, req.tree_rounds)
                    .execute(&sets, req.seed)
                    .unwrap();
                assert_eq!(outcome.report, reference.report, "{label}");
                assert_eq!(outcome.result.as_ref(), Some(&reference.result), "{label}");
                assert_eq!(reference.result, truth, "{label}");
            }
            MultipartyChoice::Disjointness => {
                let reference = MultipartyDisjointness::new(req.spec, req.tree_rounds)
                    .execute(&sets, req.seed)
                    .unwrap();
                assert_eq!(outcome.report, reference.report, "{label}");
                assert_eq!(reference.disjoint, truth.is_empty(), "{label}");
                assert!(
                    outcome
                        .verdicts
                        .iter()
                        .all(|v| *v == Some(reference.disjoint)),
                    "{label}: verdicts diverge: {:?}",
                    outcome.verdicts
                );
            }
        }
    }
}
