//! Engine stress test: ten thousand mixed-shape concurrent sessions,
//! every one checked for an exact intersection and a communication cost
//! bit-for-bit identical to a dedicated single-session run.
//!
//! The engine runs with an observability subscriber installed, so this
//! test simultaneously proves (a) instrumentation does not perturb any
//! session — the dedicated reference runs execute *after* the subscriber
//! is gone and must match bit-for-bit — and (b) every session's two
//! `session` spans account for its CostReport exactly.

use intersect_core::api::{execute, ProtocolChoice};
use intersect_core::sets::ProblemSpec;
use intersect_engine::prelude::*;
use intersect_obs as obs;
use std::collections::BTreeMap;

/// A varied workload: four set sizes, three universes, sweeping overlaps,
/// per-session seeds, and a sprinkling of explicit protocol overrides so
/// the whole catalogue sees traffic.
fn mixed_workload(count: u64) -> Vec<SessionRequest> {
    let shapes = [
        (1u64 << 16, 8u64),
        (1 << 16, 16),
        (1 << 18, 32),
        (1 << 20, 64),
        (1 << 18, 16),
        (1 << 20, 32),
    ];
    let overrides = [
        ProtocolChoice::Trivial,
        ProtocolChoice::OneRound,
        ProtocolChoice::Tree(2),
        ProtocolChoice::TreeLogStar,
        ProtocolChoice::TreePipelined(2),
        ProtocolChoice::Sqrt,
        ProtocolChoice::IbltReconcile,
    ];
    (0..count)
        .map(|id| {
            let (n, k) = shapes[(id % shapes.len() as u64) as usize];
            let overlap = (id % (k + 1)) as usize;
            let mut req = SessionRequest::new(id, ProblemSpec::new(n, k), overlap);
            req.seed = id.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0xdead_beef;
            if id % 5 == 0 {
                req.protocol = Some(overrides[(id / 5 % overrides.len() as u64) as usize]);
            }
            req
        })
        .collect()
}

#[test]
fn ten_thousand_sessions_are_exact_and_bit_identical_to_dedicated_runs() {
    const SESSIONS: u64 = 10_000;
    let sub = obs::Subscriber::new();
    let installed = sub.install();
    let engine = Engine::start(EngineConfig::new(8));
    for req in mixed_workload(SESSIONS) {
        engine.submit(req).unwrap();
    }
    let report = engine.finish();
    drop(installed); // reference runs below must be uninstrumented
    assert_eq!(report.outcomes.len() as u64, SESSIONS);

    // Per-session span accounting: each session emits one `session` span
    // per party whose delta is that endpoint's final stats, so summing
    // the two spans' sent bits reproduces the session's total cost, and
    // the larger clock delta is its round count.
    let mut span_bits: BTreeMap<u64, u64> = BTreeMap::new();
    let mut span_rounds: BTreeMap<u64, u64> = BTreeMap::new();
    let mut span_count = 0u64;
    for ev in sub.take_events() {
        if ev.target != "engine" || ev.name != "session" {
            continue;
        }
        let session = ev.session.expect("session spans are attributed");
        let delta = ev.delta().expect("session spans carry deltas");
        *span_bits.entry(session).or_insert(0) += delta.bits_sent;
        let r = span_rounds.entry(session).or_insert(0);
        *r = (*r).max(delta.rounds);
        span_count += 1;
    }
    assert_eq!(span_count, 2 * SESSIONS, "two session spans per session");

    let mut per_protocol_seen = std::collections::BTreeSet::new();
    let mut monte_carlo_misses = 0u64;
    let mut disagreements = 0u64;
    for outcome in &report.outcomes {
        let req = &outcome.request;
        assert!(
            outcome.error.is_none(),
            "session {}: {:?}",
            req.id,
            outcome.error
        );
        let pair = req.input_pair();
        let truth = pair.ground_truth();
        assert_eq!(truth.len(), req.overlap, "generator broke its contract");

        // The defining invariant: scheduling on the shared pool changes
        // nothing about the session itself. Rerun it dedicated and demand
        // the identical outputs and the identical cost report.
        let reference = execute(
            outcome.protocol.build(req.spec).as_ref(),
            req.spec,
            &pair,
            req.seed,
        )
        .unwrap();
        assert_eq!(
            outcome.report, reference.report,
            "session {} ({}): engine cost differs from dedicated run",
            req.id, outcome.protocol_name
        );
        assert_eq!(
            outcome.alice.as_ref(),
            Some(&reference.alice),
            "session {}",
            req.id
        );
        assert_eq!(
            outcome.bob.as_ref(),
            Some(&reference.bob),
            "session {}",
            req.id
        );

        // Span accounting matches the cost report exactly.
        assert_eq!(
            span_bits.get(&req.id).copied(),
            Some(outcome.report.total_bits()),
            "session {}: span bit deltas disagree with the report",
            req.id
        );
        assert_eq!(
            span_rounds.get(&req.id).copied(),
            Some(outcome.report.rounds),
            "session {}: span round deltas disagree with the report",
            req.id
        );

        // Exactness: the one-round hash protocol is Monte Carlo and may
        // return a superset on a hash collision. Any such miss must be an
        // inherent property of (protocol, seed) — reproduced identically
        // by the dedicated run above — never an engine artifact, and the
        // aggregate rate must stay within the protocol's error budget.
        if outcome.alice.as_ref() != Some(&truth) || outcome.bob.as_ref() != Some(&truth) {
            assert!(
                outcome.protocol == ProtocolChoice::OneRound,
                "session {}: {} is not allowed to err",
                req.id,
                outcome.protocol_name
            );
            monte_carlo_misses += 1;
        }
        if !outcome.succeeded() {
            disagreements += 1;
        }
        per_protocol_seen.insert(outcome.protocol_name.clone());
    }
    assert!(
        monte_carlo_misses <= SESSIONS / 100,
        "{monte_carlo_misses} Monte Carlo misses in {SESSIONS} sessions"
    );

    // A disagreement between the two sides is always a truth-miss too.
    assert!(disagreements <= monte_carlo_misses);

    // The registry agrees with the outcomes it aggregated.
    let m = &report.snapshot.metrics;
    assert_eq!(m.submitted, SESSIONS);
    assert_eq!(m.completed, SESSIONS - disagreements);
    assert_eq!(m.failed, disagreements);
    assert_eq!(m.rejected, 0);
    let bits: u64 = report.outcomes.iter().map(|o| o.report.total_bits()).sum();
    assert_eq!(m.total_bits, bits);
    assert_eq!(m.rounds_histogram.values().sum::<u64>(), SESSIONS);
    assert_eq!(
        m.per_protocol.keys().cloned().collect::<Vec<_>>(),
        per_protocol_seen.into_iter().collect::<Vec<_>>()
    );
    assert!(
        m.per_protocol.len() >= 6,
        "workload too uniform: only {:?}",
        m.per_protocol.keys().collect::<Vec<_>>()
    );
}
