//! Property-based tests for the hashing substrate.

use intersect_comm::bits::BitBuf;
use intersect_hash::fks::FksTable;
use intersect_hash::kwise::KWiseHash;
use intersect_hash::pairwise::PairwiseHash;
use intersect_hash::prime::{is_prime, mul_mod, next_prime, pow_mod};
use intersect_hash::reduce::ModPrimeReduction;
use intersect_hash::tabulation::TabulationHash;
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

proptest! {
    #[test]
    fn mul_mod_matches_u128(a in any::<u64>(), b in any::<u64>(), m in 1u64..) {
        prop_assert_eq!(mul_mod(a, b, m) as u128, (a as u128 * b as u128) % m as u128);
    }

    #[test]
    fn pow_mod_matches_square_and_multiply_oracle(b in any::<u64>(), e in 0u64..64, m in 1u64..) {
        let mut oracle = if m == 1 { 0u128 } else { 1u128 };
        for _ in 0..e {
            oracle = oracle * (b % m) as u128 % m as u128;
        }
        prop_assert_eq!(pow_mod(b, e, m) as u128, oracle);
    }

    #[test]
    fn next_prime_is_minimal(n in 0u64..1_000_000) {
        let p = next_prime(n);
        prop_assert!(p >= n.max(2));
        prop_assert!(is_prime(p));
        // No prime strictly between n and p (bounded scan).
        for q in n..p {
            prop_assert!(!is_prime(q));
        }
    }

    #[test]
    fn pairwise_seed_round_trip(seed in any::<u64>(), universe in 2u64..1_000_000, range in 1u64..100_000) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let h = PairwiseHash::sample(&mut rng, universe, range);
        let mut buf = BitBuf::new();
        h.write_seed(&mut buf);
        prop_assert_eq!(buf.len(), PairwiseHash::seed_bits(universe));
        let h2 = PairwiseHash::read_seed(&mut buf.reader(), universe, range).unwrap();
        prop_assert_eq!(&h, &h2);
        // Spot-check agreement on a few points.
        for x in [0, universe / 2, universe - 1] {
            prop_assert_eq!(h.eval(x), h2.eval(x));
            prop_assert!(h.eval(x) < range);
        }
    }

    #[test]
    fn kwise_seed_round_trip(seed in any::<u64>(), ind in 1usize..8, universe in 2u64..100_000) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let h = KWiseHash::sample(&mut rng, ind, universe, 997);
        let mut buf = BitBuf::new();
        h.write_seed(&mut buf);
        let h2 = KWiseHash::read_seed(&mut buf.reader(), ind, universe, 997).unwrap();
        prop_assert_eq!(&h, &h2);
        prop_assert_eq!(h.eval(universe - 1), h2.eval(universe - 1));
    }

    #[test]
    fn fks_membership_is_exact(keys in prop::collection::btree_set(0u64..1_000_000, 0..200),
                               probes in prop::collection::vec(0u64..1_000_000, 0..50),
                               seed in any::<u64>()) {
        let key_vec: Vec<u64> = keys.iter().copied().collect();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let table = FksTable::build(&mut rng, 1_000_000, &key_vec);
        for &k in &key_vec {
            prop_assert!(table.contains(k));
        }
        for &p in &probes {
            prop_assert_eq!(table.contains(p), keys.contains(&p));
        }
        // Linear space bound.
        prop_assert!(table.slot_count() <= 4 * key_vec.len().max(1) + key_vec.len());
    }

    #[test]
    fn reduction_seed_round_trip(seed in any::<u64>(), log_n in 10u32..60, k in 1u64..512) {
        let n = 1u64 << log_n;
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let red = ModPrimeReduction::sample(&mut rng, n, k);
        let mut buf = BitBuf::new();
        red.write_seed(&mut buf);
        prop_assert_eq!(buf.len(), ModPrimeReduction::seed_bits(n, k));
        let red2 = ModPrimeReduction::read_seed(&mut buf.reader(), n, k).unwrap();
        prop_assert_eq!(&red, &red2);
        prop_assert!(is_prime(red.reduced_universe()));
    }

    #[test]
    fn tabulation_is_deterministic_function(seed in any::<u64>(), keys in prop::collection::vec(any::<u64>(), 1..50)) {
        let h1 = TabulationHash::sample(&mut ChaCha8Rng::seed_from_u64(seed));
        let h2 = TabulationHash::sample(&mut ChaCha8Rng::seed_from_u64(seed));
        for &k in &keys {
            prop_assert_eq!(h1.eval(k), h2.eval(k));
            prop_assert!(h1.eval_range(k, 100) < 100);
        }
    }
}
