//! `k`-wise independent hashing via random polynomials.
//!
//! A degree-`(k-1)` polynomial with uniform coefficients over a prime field
//! is a `k`-wise independent function. The protocols in this project mostly
//! need pairwise independence, but the equality tests of Fact 3.5 use
//! fingerprints whose error analysis is cleanest with higher independence,
//! and the FKS table builder benefits from it on adversarial key sets.

use crate::prime::{mul_mod, next_prime};
use intersect_comm::bits::{bit_width_for, BitBuf, BitReader};
use intersect_comm::error::CodecError;
use rand::Rng;

/// A `k`-wise independent hash function `[universe] → [range]`.
///
/// # Examples
///
/// ```
/// use intersect_hash::kwise::KWiseHash;
/// use rand::SeedableRng;
///
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
/// let h = KWiseHash::sample(&mut rng, 4, 1 << 20, 256);
/// assert!(h.eval(999) < 256);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KWiseHash {
    p: u64,
    /// Coefficients, constant term first; length = independence.
    coeffs: Vec<u64>,
    universe: u64,
    range: u64,
}

impl KWiseHash {
    /// Samples a `k`-wise independent function (`k = independence ≥ 1`).
    ///
    /// # Panics
    ///
    /// Panics if `independence == 0`, `universe == 0`, or `range == 0`.
    pub fn sample<R: Rng + ?Sized>(
        rng: &mut R,
        independence: usize,
        universe: u64,
        range: u64,
    ) -> Self {
        assert!(independence >= 1, "independence must be at least 1");
        assert!(
            universe > 0 && range > 0,
            "domain and range must be non-empty"
        );
        let p = next_prime(universe.max(2));
        let coeffs = (0..independence).map(|_| rng.gen_range(0..p)).collect();
        KWiseHash {
            p,
            coeffs,
            universe,
            range,
        }
    }

    /// Evaluates the polynomial by Horner's rule and reduces into the range.
    ///
    /// # Panics
    ///
    /// Panics if `x` lies outside the universe.
    pub fn eval(&self, x: u64) -> u64 {
        assert!(
            x < self.universe,
            "{x} outside universe [{}]",
            self.universe
        );
        let mut acc = 0u64;
        for &c in self.coeffs.iter().rev() {
            acc = (mul_mod(acc, x, self.p) + c) % self.p;
        }
        acc % self.range
    }

    /// The independence `k` of the family this function was drawn from.
    pub fn independence(&self) -> usize {
        self.coeffs.len()
    }

    /// Number of seed bits: `independence · ⌈log₂ p⌉`.
    pub fn seed_bits(independence: usize, universe: u64) -> usize {
        independence * bit_width_for(next_prime(universe.max(2)))
    }

    /// Serializes the coefficient vector.
    pub fn write_seed(&self, buf: &mut BitBuf) {
        let w = bit_width_for(self.p);
        for &c in &self.coeffs {
            buf.push_bits(c, w);
        }
    }

    /// Reconstructs a function from a transmitted seed.
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] if the stream is short or a coefficient is
    /// out of field range.
    pub fn read_seed(
        r: &mut BitReader<'_>,
        independence: usize,
        universe: u64,
        range: u64,
    ) -> Result<Self, CodecError> {
        let p = next_prime(universe.max(2));
        let w = bit_width_for(p);
        let mut coeffs = Vec::with_capacity(independence);
        for _ in 0..independence {
            let c = r.read_bits(w)?;
            if c >= p {
                return Err(CodecError::ValueOutOfRange { value: c, bound: p });
            }
            coeffs.push(c);
        }
        Ok(KWiseHash {
            p,
            coeffs,
            universe,
            range,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn eval_is_deterministic_and_in_range() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let h = KWiseHash::sample(&mut rng, 5, 100_000, 77);
        for x in (0..100_000).step_by(111) {
            let v = h.eval(x);
            assert!(v < 77);
            assert_eq!(v, h.eval(x));
        }
    }

    #[test]
    fn degree_one_matches_affine_behavior() {
        // independence 2 = affine = pairwise; spot-check Horner's rule.
        let h = KWiseHash {
            p: 101,
            coeffs: vec![7, 3], // 7 + 3x mod 101
            universe: 101,
            range: 101,
        };
        assert_eq!(h.eval(0), 7);
        assert_eq!(h.eval(1), 10);
        assert_eq!(h.eval(50), (7 + 150) % 101);
    }

    #[test]
    fn four_wise_quadruple_collisions_are_rare() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let t = 32u64;
        let mut all_equal = 0;
        let trials = 4000;
        for _ in 0..trials {
            let h = KWiseHash::sample(&mut rng, 4, 1 << 20, t);
            let vals = [h.eval(1), h.eval(2), h.eval(3)];
            if vals[0] == vals[1] && vals[1] == vals[2] {
                all_equal += 1;
            }
        }
        // Pr[3-way collision] ≈ 1/t² = 1/1024; allow generous slack.
        assert!(
            (all_equal as f64) < trials as f64 * 4.0 / (t * t) as f64 + 8.0,
            "{all_equal} three-way collisions in {trials}"
        );
    }

    #[test]
    fn seed_round_trip() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let h = KWiseHash::sample(&mut rng, 6, 54_321, 99);
        let mut buf = BitBuf::new();
        h.write_seed(&mut buf);
        assert_eq!(buf.len(), KWiseHash::seed_bits(6, 54_321));
        let h2 = KWiseHash::read_seed(&mut buf.reader(), 6, 54_321, 99).unwrap();
        assert_eq!(h, h2);
    }

    #[test]
    fn independence_is_reported() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        assert_eq!(KWiseHash::sample(&mut rng, 3, 10, 10).independence(), 3);
    }
}
