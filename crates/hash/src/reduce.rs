//! Universe reduction by a random prime modulus (\[FKS84\], as used in
//! Theorem 3.1 of the paper).
//!
//! Mapping `x ↦ x mod q` for a random prime `q = Õ(k² log n)` is injective
//! on any fixed set of `O(k)` elements with probability `1 − 1/poly(k)`:
//! a collision means `q` divides some pairwise difference, each difference
//! `< n` has at most `log₂ n` prime factors above `Q`, and there are
//! `Θ(Q/ln Q)` primes to choose from against `O(k²)` differences.
//!
//! This is the step that makes the private-coin protocols *constructive*:
//! after reduction, the universe is `poly(k, log n)`, so the pairwise hash
//! seeds that follow cost only `O(log k + log log n)` bits to transmit —
//! the paper's claimed additive overhead — instead of `O(log n)`.

use crate::prime::random_prime_in;
use intersect_comm::bits::{bit_width_for, BitBuf, BitReader};
use intersect_comm::error::CodecError;
use rand::Rng;

/// A sampled reduction `x ↦ x mod q`, `q` prime.
///
/// # Examples
///
/// ```
/// use intersect_hash::reduce::ModPrimeReduction;
/// use rand::SeedableRng;
///
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(2);
/// let red = ModPrimeReduction::sample(&mut rng, 1 << 40, 64);
/// // The reduced universe is tiny compared to 2^40…
/// assert!(red.reduced_universe() < 1 << 26);
/// // …and maps consistently.
/// assert_eq!(red.map(123_456_789_000), 123_456_789_000 % red.reduced_universe());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModPrimeReduction {
    q: u64,
    /// Lower end of the sampling window (a protocol constant both parties
    /// can derive from `(n, k)`, used to serialize `q` compactly).
    window_lo: u64,
}

impl ModPrimeReduction {
    /// The sampling window `[Q, 2Q)` for a universe of size `n` and sets of
    /// size at most `k`: `Q = max(64, 16·k²·⌈log₂ n⌉)`.
    pub fn window(universe: u64, k: u64) -> (u64, u64) {
        let log_n = bit_width_for(universe.max(2)) as u64;
        let q = 64u64.max(16 * k.saturating_mul(k).saturating_mul(log_n));
        (q, 2 * q)
    }

    /// Samples a reduction for sets of at most `k` elements of `[universe]`.
    ///
    /// With probability `1 − O(1/k)` the sampled `q` has no collisions on
    /// any fixed pair set of `≤ 2k` elements; callers that need a
    /// collision-free map on a *known* set should use
    /// [`sample_injective_on`](Self::sample_injective_on).
    pub fn sample<R: Rng + ?Sized>(rng: &mut R, universe: u64, k: u64) -> Self {
        let (lo, hi) = Self::window(universe, k);
        ModPrimeReduction {
            q: random_prime_in(rng, lo, hi),
            window_lo: lo,
        }
    }

    /// Samples a reduction that is injective on `keys`, retrying as needed.
    ///
    /// # Panics
    ///
    /// Panics if no injective prime is found after many tries (only possible
    /// when `keys` is far larger than the `k` used for the window).
    pub fn sample_injective_on<R: Rng + ?Sized>(
        rng: &mut R,
        universe: u64,
        k: u64,
        keys: &[u64],
    ) -> Self {
        'outer: for _ in 0..1000 {
            let r = Self::sample(rng, universe, k);
            let mut seen = std::collections::HashSet::with_capacity(keys.len());
            for &key in keys {
                if !seen.insert(r.map(key)) {
                    continue 'outer;
                }
            }
            return r;
        }
        panic!("no injective modulus found for {} keys", keys.len());
    }

    /// Applies the reduction.
    pub fn map(&self, x: u64) -> u64 {
        x % self.q
    }

    /// The size of the reduced universe (the prime `q` itself).
    pub fn reduced_universe(&self) -> u64 {
        self.q
    }

    /// Number of seed bits for a `(universe, k)` window:
    /// `⌈log₂ Q⌉ = O(log k + log log n)`.
    pub fn seed_bits(universe: u64, k: u64) -> usize {
        let (lo, hi) = Self::window(universe, k);
        bit_width_for(hi - lo)
    }

    /// Serializes `q` as an offset into the sampling window.
    pub fn write_seed(&self, buf: &mut BitBuf) {
        let width = bit_width_for(self.window_lo); // window size == window_lo
        buf.push_bits(self.q - self.window_lo, width);
    }

    /// Reconstructs a reduction from a transmitted seed.
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] if the stream is short.
    pub fn read_seed(r: &mut BitReader<'_>, universe: u64, k: u64) -> Result<Self, CodecError> {
        let (lo, hi) = Self::window(universe, k);
        let width = bit_width_for(hi - lo);
        let offset = r.read_bits(width)?;
        let q = lo + offset;
        if q >= hi {
            return Err(CodecError::ValueOutOfRange {
                value: q,
                bound: hi,
            });
        }
        Ok(ModPrimeReduction { q, window_lo: lo })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prime::is_prime;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn sampled_modulus_is_prime_in_window() {
        let (lo, hi) = ModPrimeReduction::window(1 << 32, 100);
        for seed in 0..20 {
            let r = ModPrimeReduction::sample(&mut rng(seed), 1 << 32, 100);
            assert!(is_prime(r.reduced_universe()));
            assert!((lo..hi).contains(&r.reduced_universe()));
        }
    }

    #[test]
    fn collision_rate_on_random_sets_is_low() {
        // Empirically verify the 1 - 1/poly(k) injectivity guarantee.
        let k = 64u64;
        let n = 1u64 << 40;
        let mut failures = 0;
        let trials = 200;
        let mut r = rng(9);
        for _ in 0..trials {
            let keys: Vec<u64> = (0..2 * k).map(|_| r.gen_range(0..n)).collect();
            let red = ModPrimeReduction::sample(&mut r, n, k);
            let mut seen = std::collections::HashSet::new();
            let mut distinct = std::collections::HashSet::new();
            let mut collided = false;
            for &key in &keys {
                if distinct.insert(key) && !seen.insert(red.map(key)) {
                    collided = true;
                }
            }
            if collided {
                failures += 1;
            }
        }
        assert!(
            failures <= trials / 10,
            "{failures}/{trials} reductions collided"
        );
    }

    #[test]
    fn injective_sampling_never_collides() {
        let mut r = rng(4);
        let keys: Vec<u64> = (0..100u64).map(|i| i * 1_000_003 + 17).collect();
        let red = ModPrimeReduction::sample_injective_on(&mut r, 1 << 40, 50, &keys);
        let mut seen = std::collections::HashSet::new();
        for &k in &keys {
            assert!(seen.insert(red.map(k)));
        }
    }

    #[test]
    fn seed_bits_are_doubly_logarithmic_in_n() {
        // For fixed k, seed bits grow like log log n.
        let k = 256;
        let small = ModPrimeReduction::seed_bits(1 << 16, k);
        let large = ModPrimeReduction::seed_bits(1 << 60, k);
        assert!(large <= small + 3, "{small} -> {large}");
        // And like log k for fixed n.
        let k_small = ModPrimeReduction::seed_bits(1 << 32, 16);
        let k_large = ModPrimeReduction::seed_bits(1 << 32, 1 << 14);
        assert!(k_large >= k_small + 10);
    }

    #[test]
    fn seed_round_trip() {
        let mut r = rng(6);
        let red = ModPrimeReduction::sample(&mut r, 1 << 30, 32);
        let mut buf = BitBuf::new();
        red.write_seed(&mut buf);
        assert_eq!(buf.len(), ModPrimeReduction::seed_bits(1 << 30, 32));
        let red2 = ModPrimeReduction::read_seed(&mut buf.reader(), 1 << 30, 32).unwrap();
        assert_eq!(red, red2);
    }

    #[test]
    fn map_preserves_equality_always() {
        // x = y implies map(x) = map(y): reduction never destroys equality.
        let red = ModPrimeReduction::sample(&mut rng(2), 1 << 20, 8);
        for x in (0..(1 << 20)).step_by(10_007) {
            assert_eq!(red.map(x), red.map(x));
        }
    }
}
