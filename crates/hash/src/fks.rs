//! FKS perfect hashing (Fredman–Komlós–Szemerédi, JACM 1984).
//!
//! The paper uses \[FKS84\] for its universe-reduction trick (see
//! [`crate::reduce`]); this module implements the data structure itself — a
//! static two-level hash table with worst-case `O(1)` lookups and `O(|K|)`
//! space — which the local computation steps of the protocols use to
//! answer "is this candidate in my set?" queries, exactly the "storing a
//! sparse table" role the original paper gave it.
//!
//! Level one hashes the key set into `|K|` buckets; bucket `i` with `bᵢ`
//! keys gets a private collision-free level-two table of size `bᵢ²`. The
//! classic argument shows a random level-one function achieves
//! `Σ bᵢ² ≤ 4|K|` with probability ≥ 1/2, so expected construction time is
//! linear.

use crate::pairwise::PairwiseHash;
use rand::Rng;

/// A static perfect hash table over a set of `u64` keys.
///
/// # Examples
///
/// ```
/// use intersect_hash::fks::FksTable;
/// use rand::SeedableRng;
///
/// let keys = [3u64, 17, 99, 4096, 70_000];
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(5);
/// let table = FksTable::build(&mut rng, 100_000, &keys);
/// assert!(table.contains(17));
/// assert!(!table.contains(18));
/// assert_eq!(table.len(), 5);
/// ```
#[derive(Debug, Clone)]
pub struct FksTable {
    universe: u64,
    top: Option<PairwiseHash>,
    buckets: Vec<Bucket>,
    len: usize,
}

#[derive(Debug, Clone)]
struct Bucket {
    hash: Option<PairwiseHash>,
    /// `slots[j] = Some(key)` iff `key` hashes to slot `j`.
    slots: Vec<Option<u64>>,
}

impl FksTable {
    /// Builds a table for `keys ⊆ [universe]`.
    ///
    /// Expected construction time is `O(|keys|)`; space is `O(|keys|)`
    /// words by the `Σ bᵢ² ≤ 4|keys|` level-one acceptance criterion.
    ///
    /// # Panics
    ///
    /// Panics if `keys` contains duplicates or an element `≥ universe`.
    pub fn build<R: Rng + ?Sized>(rng: &mut R, universe: u64, keys: &[u64]) -> Self {
        {
            let mut sorted = keys.to_vec();
            sorted.sort_unstable();
            assert!(
                sorted.windows(2).all(|w| w[0] != w[1]),
                "keys must be distinct"
            );
            if let Some(&max) = sorted.last() {
                assert!(max < universe, "key {max} outside universe [{universe}]");
            }
        }
        if keys.is_empty() {
            return FksTable {
                universe,
                top: None,
                buckets: Vec::new(),
                len: 0,
            };
        }
        let b = keys.len() as u64;
        // Level one: retry until Σ bᵢ² ≤ 4·|keys| (succeeds w.p. ≥ 1/2).
        let (top, groups) = loop {
            let h = PairwiseHash::sample(rng, universe, b);
            let mut groups: Vec<Vec<u64>> = vec![Vec::new(); b as usize];
            for &k in keys {
                groups[h.eval(k) as usize].push(k);
            }
            let cost: u64 = groups.iter().map(|g| (g.len() * g.len()) as u64).sum();
            if cost <= 4 * b {
                break (h, groups);
            }
        };
        // Level two: per-bucket injective functions into bᵢ² slots.
        let buckets = groups
            .into_iter()
            .map(|group| match group.len() {
                0 => Bucket {
                    hash: None,
                    slots: Vec::new(),
                },
                1 => Bucket {
                    hash: None,
                    slots: vec![Some(group[0])],
                },
                s => {
                    let range = (s * s) as u64;
                    let h = PairwiseHash::sample_injective_on(rng, universe, range, &group);
                    let mut slots = vec![None; range as usize];
                    for &k in &group {
                        slots[h.eval(k) as usize] = Some(k);
                    }
                    Bucket {
                        hash: Some(h),
                        slots,
                    }
                }
            })
            .collect();
        FksTable {
            universe,
            top: Some(top),
            buckets,
            len: keys.len(),
        }
    }

    /// Number of keys stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Worst-case `O(1)` membership query.
    ///
    /// Keys outside the build universe are simply absent (no panic), so the
    /// table can be probed with arbitrary candidates.
    pub fn contains(&self, key: u64) -> bool {
        if key >= self.universe {
            return false;
        }
        let Some(top) = &self.top else {
            return false;
        };
        let bucket = &self.buckets[top.eval(key) as usize];
        match (&bucket.hash, bucket.slots.len()) {
            (None, 0) => false,
            (None, _) => bucket.slots[0] == Some(key),
            (Some(h), _) => bucket.slots[h.eval(key) as usize] == Some(key),
        }
    }

    /// Total number of level-two slots: the space bound `Σ bᵢ² ≤ 4|K|`.
    pub fn slot_count(&self) -> usize {
        self.buckets.iter().map(|b| b.slots.len()).sum()
    }

    /// Iterates over the stored keys in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        self.buckets
            .iter()
            .flat_map(|b| b.slots.iter().flatten().copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn empty_table() {
        let t = FksTable::build(&mut rng(1), 100, &[]);
        assert!(t.is_empty());
        assert!(!t.contains(5));
        assert_eq!(t.slot_count(), 0);
        assert_eq!(t.iter().count(), 0);
    }

    #[test]
    fn singleton_table() {
        let t = FksTable::build(&mut rng(1), 100, &[42]);
        assert!(t.contains(42));
        assert!(!t.contains(41));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn membership_is_exact_for_dense_keys() {
        let keys: Vec<u64> = (0..500).map(|i| i * 2).collect();
        let t = FksTable::build(&mut rng(2), 1000, &keys);
        for x in 0..1000 {
            assert_eq!(t.contains(x), x % 2 == 0, "x = {x}");
        }
    }

    #[test]
    fn membership_is_exact_for_sparse_keys() {
        let keys: Vec<u64> = (0..200u64)
            .map(|i| i.wrapping_mul(2_654_435_761) % (1 << 40))
            .collect();
        let mut distinct = keys.clone();
        distinct.sort_unstable();
        distinct.dedup();
        let t = FksTable::build(&mut rng(3), 1 << 40, &distinct);
        for &k in &distinct {
            assert!(t.contains(k));
        }
        for probe in [0u64, 1, 999_999_999, (1 << 40) - 1] {
            assert_eq!(t.contains(probe), distinct.contains(&probe));
        }
    }

    #[test]
    fn space_is_linear() {
        let keys: Vec<u64> = (0..2000u64).map(|i| i * 7 + 1).collect();
        let t = FksTable::build(&mut rng(4), 1 << 20, &keys);
        assert!(
            t.slot_count() <= 4 * keys.len() + keys.len(),
            "slots {} for {} keys",
            t.slot_count(),
            keys.len()
        );
    }

    #[test]
    fn probes_outside_universe_are_absent() {
        let t = FksTable::build(&mut rng(5), 100, &[1, 2, 3]);
        assert!(!t.contains(1 << 50));
    }

    #[test]
    fn iter_returns_exactly_the_keys() {
        let keys = [5u64, 10, 20, 40, 80];
        let t = FksTable::build(&mut rng(6), 1000, &keys);
        let mut got: Vec<u64> = t.iter().collect();
        got.sort_unstable();
        assert_eq!(got, keys);
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn duplicate_keys_rejected() {
        FksTable::build(&mut rng(7), 100, &[1, 1]);
    }

    #[test]
    fn adversarial_clustered_keys_still_work() {
        // Consecutive keys stress the level-one balance criterion.
        let keys: Vec<u64> = (1000..1512).collect();
        let t = FksTable::build(&mut rng(8), 1 << 30, &keys);
        for &k in &keys {
            assert!(t.contains(k));
        }
        assert!(!t.contains(999));
        assert!(!t.contains(1512));
    }
}
