//! Pairwise-independent hash functions with compact, transmittable seeds.
//!
//! The paper's Fact 2.2 needs a random hash function `h: [n] → [t]` that is
//! collision-free on a small set with high probability and is described by
//! `O(log n)` random bits. The classic Carter–Wegman family
//! `h(x) = ((a·x + b) mod p) mod t` delivers exactly that: for `x ≠ y`,
//! `Pr[h(x) = h(y)] ≤ 1/t + O(1/p)`, and the seed is the pair `(a, b)`.
//!
//! Seeds can be written to and read from a [`BitBuf`], which is how the
//! constructive private-coin protocols transmit them (their bit cost is
//! charged to the protocol like any other message).

use crate::prime::{mul_mod, next_prime};
use intersect_comm::bits::{bit_width_for, BitBuf, BitReader};
use intersect_comm::error::CodecError;
use rand::Rng;

/// A pairwise-independent hash function `[universe] → [range]`.
///
/// # Examples
///
/// ```
/// use intersect_hash::pairwise::PairwiseHash;
/// use rand::SeedableRng;
///
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
/// let h = PairwiseHash::sample(&mut rng, 1_000_000, 64);
/// assert!(h.eval(123_456) < 64);
/// // Same function, same value.
/// assert_eq!(h.eval(42), h.eval(42));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PairwiseHash {
    p: u64,
    a: u64,
    b: u64,
    universe: u64,
    range: u64,
}

/// A reusable handle on the Carter–Wegman family over one universe.
///
/// Constructing the family performs the input-independent work — the
/// deterministic search for the field prime `p ≥ universe` — once, so a
/// prepared protocol can sample many functions (one per session) without
/// re-running the primality search. Sampling draws exactly the same
/// random bits as [`PairwiseHash::sample`]: the prime search consumes no
/// randomness, so a function sampled through a family is bit-identical
/// to one sampled directly from the same RNG state.
///
/// # Examples
///
/// ```
/// use intersect_hash::pairwise::{PairwiseFamily, PairwiseHash};
/// use rand::SeedableRng;
///
/// let family = PairwiseFamily::new(1_000_000);
/// let mut rng_a = rand_chacha::ChaCha8Rng::seed_from_u64(1);
/// let mut rng_b = rng_a.clone();
/// assert_eq!(
///     family.sample(&mut rng_a, 64),
///     PairwiseHash::sample(&mut rng_b, 1_000_000, 64),
/// );
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PairwiseFamily {
    universe: u64,
    p: u64,
}

impl PairwiseFamily {
    /// Fixes the universe and finds the field prime.
    ///
    /// # Panics
    ///
    /// Panics if `universe == 0`.
    pub fn new(universe: u64) -> Self {
        assert!(universe > 0, "universe must be non-empty");
        PairwiseFamily {
            universe,
            p: PairwiseHash::field_prime(universe),
        }
    }

    /// Samples a function `[universe] → [range]`, drawing the seed pair
    /// `(a, b)` from `rng` exactly as [`PairwiseHash::sample`] does.
    ///
    /// # Panics
    ///
    /// Panics if `range == 0`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R, range: u64) -> PairwiseHash {
        assert!(range > 0, "range must be non-empty");
        PairwiseHash {
            p: self.p,
            a: rng.gen_range(1..self.p),
            b: rng.gen_range(0..self.p),
            universe: self.universe,
            range,
        }
    }

    /// The universe bound `n`.
    pub fn universe(&self) -> u64 {
        self.universe
    }

    /// The field prime `p`.
    pub fn prime(&self) -> u64 {
        self.p
    }
}

impl PairwiseHash {
    /// The field prime used for a given universe: the smallest prime
    /// `≥ universe` (so that `x ↦ x` is injective into the field).
    pub fn field_prime(universe: u64) -> u64 {
        next_prime(universe.max(2))
    }

    /// Samples a function `[universe] → [range]` from the family.
    ///
    /// # Panics
    ///
    /// Panics if `universe == 0` or `range == 0`.
    pub fn sample<R: Rng + ?Sized>(rng: &mut R, universe: u64, range: u64) -> Self {
        assert!(universe > 0, "universe must be non-empty");
        assert!(range > 0, "range must be non-empty");
        PairwiseFamily::new(universe).sample(rng, range)
    }

    /// Evaluates the hash.
    ///
    /// # Panics
    ///
    /// Panics if `x` lies outside the universe.
    pub fn eval(&self, x: u64) -> u64 {
        assert!(
            x < self.universe,
            "{x} outside universe [{}]",
            self.universe
        );
        (mul_mod(self.a, x, self.p) + self.b) % self.p % self.range
    }

    /// The range bound `t`.
    pub fn range(&self) -> u64 {
        self.range
    }

    /// The universe bound `n`.
    pub fn universe(&self) -> u64 {
        self.universe
    }

    /// Number of seed bits [`write_seed`](Self::write_seed) produces:
    /// `2·⌈log₂ p⌉ = O(log universe)`.
    pub fn seed_bits(universe: u64) -> usize {
        2 * bit_width_for(Self::field_prime(universe))
    }

    /// Serializes the seed `(a, b)`.
    ///
    /// The universe and range are protocol constants known to both parties
    /// and are not transmitted.
    pub fn write_seed(&self, buf: &mut BitBuf) {
        let w = bit_width_for(self.p);
        buf.push_bits(self.a, w);
        buf.push_bits(self.b, w);
    }

    /// Reconstructs a function from a transmitted seed.
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] if the stream is short or the seed is out of
    /// range for the field.
    pub fn read_seed(r: &mut BitReader<'_>, universe: u64, range: u64) -> Result<Self, CodecError> {
        let p = Self::field_prime(universe);
        let w = bit_width_for(p);
        let a = r.read_bits(w)?;
        let b = r.read_bits(w)?;
        if a == 0 || a >= p {
            return Err(CodecError::ValueOutOfRange { value: a, bound: p });
        }
        if b >= p {
            return Err(CodecError::ValueOutOfRange { value: b, bound: p });
        }
        Ok(PairwiseHash {
            p,
            a,
            b,
            universe,
            range,
        })
    }

    /// Samples a function that has **no collisions** on `keys`, retrying as
    /// needed (Fact 2.2: with `range ≥ |keys|²` a constant number of tries
    /// suffices in expectation).
    ///
    /// # Panics
    ///
    /// Panics if `range < |keys|` (injectivity impossible) or if an
    /// unreasonable number of retries fails, which indicates misuse.
    pub fn sample_injective_on<R: Rng + ?Sized>(
        rng: &mut R,
        universe: u64,
        range: u64,
        keys: &[u64],
    ) -> Self {
        assert!(range >= keys.len() as u64, "range smaller than key count");
        'outer: for _ in 0..1000 {
            let h = Self::sample(rng, universe, range);
            let mut seen = std::collections::HashSet::with_capacity(keys.len());
            for &k in keys {
                if !seen.insert(h.eval(k)) {
                    continue 'outer;
                }
            }
            return h;
        }
        panic!(
            "no injective hash found after 1000 tries (range {range} for {} keys)",
            keys.len()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn values_land_in_range() {
        let h = PairwiseHash::sample(&mut rng(1), 10_000, 37);
        for x in (0..10_000).step_by(13) {
            assert!(h.eval(x) < 37);
        }
    }

    #[test]
    fn collision_rate_is_near_uniform() {
        // Empirical pairwise collision probability ≈ 1/t.
        let t = 64u64;
        let trials = 2000;
        let mut collisions = 0u64;
        let mut r = rng(7);
        for _ in 0..trials {
            let h = PairwiseHash::sample(&mut r, 1 << 30, t);
            if h.eval(12_345) == h.eval(987_654) {
                collisions += 1;
            }
        }
        let rate = collisions as f64 / trials as f64;
        let expect = 1.0 / t as f64;
        assert!(
            rate < 3.0 * expect + 0.01,
            "collision rate {rate} vs expected {expect}"
        );
    }

    #[test]
    fn distribution_is_roughly_uniform() {
        let t = 16u64;
        let h = PairwiseHash::sample(&mut rng(3), 1 << 20, t);
        let mut counts = vec![0u64; t as usize];
        for x in 0..(1 << 14) {
            counts[h.eval(x) as usize] += 1;
        }
        let expect = (1 << 14) as f64 / t as f64;
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64) > expect * 0.5 && (c as f64) < expect * 1.5,
                "bucket {i} holds {c}, expected ≈ {expect}"
            );
        }
    }

    #[test]
    fn seed_round_trip_preserves_function() {
        let h = PairwiseHash::sample(&mut rng(11), 99_991, 1000);
        let mut buf = BitBuf::new();
        h.write_seed(&mut buf);
        assert_eq!(buf.len(), PairwiseHash::seed_bits(99_991));
        let h2 = PairwiseHash::read_seed(&mut buf.reader(), 99_991, 1000).unwrap();
        assert_eq!(h, h2);
        for x in (0..99_991).step_by(997) {
            assert_eq!(h.eval(x), h2.eval(x));
        }
    }

    #[test]
    fn seed_bits_are_logarithmic() {
        assert!(PairwiseHash::seed_bits(1 << 20) <= 2 * 22);
        assert!(PairwiseHash::seed_bits(1 << 40) <= 2 * 42);
    }

    #[test]
    fn read_seed_rejects_invalid() {
        let mut buf = BitBuf::new();
        let p = PairwiseHash::field_prime(100);
        let w = bit_width_for(p);
        buf.push_bits(0, w); // a = 0 is not a valid multiplier
        buf.push_bits(5, w);
        assert!(PairwiseHash::read_seed(&mut buf.reader(), 100, 10).is_err());
    }

    #[test]
    fn injective_sampling_has_no_collisions() {
        let keys: Vec<u64> = (0..50u64).map(|i| i * i + 3).collect();
        let h = PairwiseHash::sample_injective_on(&mut rng(5), 10_000, 50 * 50, &keys);
        let mut seen = std::collections::HashSet::new();
        for &k in &keys {
            assert!(seen.insert(h.eval(k)));
        }
    }

    #[test]
    #[should_panic(expected = "outside universe")]
    fn eval_outside_universe_panics() {
        let h = PairwiseHash::sample(&mut rng(1), 100, 10);
        h.eval(100);
    }

    #[test]
    fn family_sampling_matches_direct_sampling_bit_for_bit() {
        // A family handle hoists only the (deterministic) prime search;
        // the RNG sequence must be untouched, even across many draws.
        for universe in [2u64, 97, 1 << 20, (1 << 40) + 5] {
            let family = PairwiseFamily::new(universe);
            let mut via_family = rng(9);
            let mut direct = rng(9);
            for range in [1u64, 7, 64, universe] {
                assert_eq!(
                    family.sample(&mut via_family, range),
                    PairwiseHash::sample(&mut direct, universe, range),
                    "universe {universe}, range {range}"
                );
            }
            assert_eq!(family.prime(), PairwiseHash::field_prime(universe));
            assert_eq!(family.universe(), universe);
        }
    }
}
