//! Primality testing and random prime sampling.
//!
//! The FKS-style universe reduction (`x ↦ x mod q` for a random prime `q`)
//! and the prime-field hash families both need primes sampled from a seeded
//! RNG. We use a Miller–Rabin test with a base set that is *deterministic
//! and exact* for all 64-bit integers, so primality here is never
//! probabilistic.

use rand::Rng;

/// Modular multiplication `(a * b) mod m` without overflow.
#[inline]
pub fn mul_mod(a: u64, b: u64, m: u64) -> u64 {
    ((a as u128 * b as u128) % m as u128) as u64
}

/// Modular exponentiation `base^exp mod m`.
#[inline]
pub fn pow_mod(mut base: u64, mut exp: u64, m: u64) -> u64 {
    if m == 1 {
        return 0;
    }
    let mut acc = 1u64;
    base %= m;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = mul_mod(acc, base, m);
        }
        base = mul_mod(base, base, m);
        exp >>= 1;
    }
    acc
}

/// Witnesses that make Miller–Rabin exact for every `u64`
/// (Sinclair's base set).
const MR_BASES: [u64; 7] = [2, 325, 9375, 28178, 450775, 9780504, 1795265022];

/// Deterministically decides whether `n` is prime.
///
/// # Examples
///
/// ```
/// use intersect_hash::prime::is_prime;
/// assert!(is_prime(2));
/// assert!(is_prime((1 << 61) - 1)); // Mersenne prime M61
/// assert!(!is_prime(1));
/// assert!(!is_prime(3_215_031_751)); // strong pseudoprime to bases 2,3,5,7
/// ```
pub fn is_prime(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    for p in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        if n == p {
            return true;
        }
        if n.is_multiple_of(p) {
            return false;
        }
    }
    // Write n - 1 = d * 2^s with d odd.
    let mut d = n - 1;
    let s = d.trailing_zeros();
    d >>= s;
    'bases: for &a in &MR_BASES {
        let a = a % n;
        if a == 0 {
            continue;
        }
        let mut x = pow_mod(a, d, n);
        if x == 1 || x == n - 1 {
            continue;
        }
        for _ in 1..s {
            x = mul_mod(x, x, n);
            if x == n - 1 {
                continue 'bases;
            }
        }
        return false;
    }
    true
}

/// The smallest prime `≥ n`.
///
/// # Panics
///
/// Panics if no 64-bit prime `≥ n` exists (i.e. `n` exceeds the largest
/// 64-bit prime `2^64 - 59`).
pub fn next_prime(mut n: u64) -> u64 {
    if n <= 2 {
        return 2;
    }
    if n.is_multiple_of(2) {
        n += 1;
    }
    loop {
        if is_prime(n) {
            return n;
        }
        n = n.checked_add(2).expect("no u64 prime above n");
    }
}

/// Samples a uniformly random prime in `[lo, hi)` using `rng`.
///
/// Uses rejection sampling; by the prime number theorem the expected number
/// of attempts is `O(ln hi)`.
///
/// # Panics
///
/// Panics if the interval is empty or contains no prime.
pub fn random_prime_in<R: Rng + ?Sized>(rng: &mut R, lo: u64, hi: u64) -> u64 {
    assert!(lo < hi, "empty interval [{lo}, {hi})");
    // Expected O(ln hi) iterations; the generous cap only trips on
    // prime-free intervals.
    for _ in 0..10_000 {
        let candidate = rng.gen_range(lo..hi);
        let candidate = candidate | 1; // only odd candidates (2 handled below)
        if candidate < hi && candidate >= lo && is_prime(candidate) {
            return candidate;
        }
        if lo <= 2 && 2 < hi && rng.gen_ratio(1, 64) {
            return 2;
        }
    }
    panic!("no prime found in [{lo}, {hi})");
}

/// The Mersenne prime `2^61 - 1`, used as the default hashing field.
pub const M61: u64 = (1 << 61) - 1;

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn small_primes_classified() {
        let primes = [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 97, 101];
        for p in primes {
            assert!(is_prime(p), "{p}");
        }
        let composites = [0u64, 1, 4, 6, 9, 15, 21, 25, 49, 91, 100];
        for c in composites {
            assert!(!is_prime(c), "{c}");
        }
    }

    #[test]
    fn sieve_agreement_up_to_10000() {
        // Simple sieve as oracle.
        let n = 10_000usize;
        let mut sieve = vec![true; n];
        sieve[0] = false;
        sieve[1] = false;
        for i in 2..n {
            if sieve[i] {
                for j in (i * i..n).step_by(i) {
                    sieve[j] = false;
                }
            }
        }
        for (i, &expected) in sieve.iter().enumerate() {
            assert_eq!(is_prime(i as u64), expected, "n = {i}");
        }
    }

    #[test]
    fn known_strong_pseudoprimes_rejected() {
        // Composites that fool small-base Miller-Rabin variants.
        for n in [
            2_047u64,
            1_373_653,
            25_326_001,
            3_215_031_751,
            3_474_749_660_383,
            341_550_071_728_321,
        ] {
            assert!(!is_prime(n), "{n} is composite");
        }
    }

    #[test]
    fn large_primes_accepted() {
        assert!(is_prime(M61));
        assert!(is_prime(18_446_744_073_709_551_557)); // largest u64 prime
        assert!(is_prime(4_611_686_018_427_387_847)); // large prime < 2^62
    }

    #[test]
    fn next_prime_walks_forward() {
        assert_eq!(next_prime(0), 2);
        assert_eq!(next_prime(2), 2);
        assert_eq!(next_prime(3), 3);
        assert_eq!(next_prime(4), 5);
        assert_eq!(next_prime(90), 97);
        assert_eq!(next_prime(M61), M61);
    }

    #[test]
    fn next_prime_result_is_prime_and_minimal() {
        for n in (0..2_000u64).step_by(7) {
            let p = next_prime(n);
            assert!(is_prime(p));
            for q in n..p {
                assert!(!is_prime(q));
            }
        }
    }

    #[test]
    fn random_primes_land_in_range() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
        for _ in 0..100 {
            let p = random_prime_in(&mut rng, 1 << 20, 1 << 21);
            assert!((1 << 20..1 << 21).contains(&p));
            assert!(is_prime(p));
        }
    }

    #[test]
    fn random_primes_are_spread_out() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(2);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..50 {
            seen.insert(random_prime_in(&mut rng, 1000, 100_000));
        }
        assert!(seen.len() > 30, "only {} distinct primes", seen.len());
    }

    #[test]
    fn pow_mod_matches_naive() {
        for (b, e, m) in [(3u64, 7u64, 11u64), (2, 61, M61), (10, 0, 7), (5, 5, 1)] {
            let mut naive = if m == 1 { 0 } else { 1u128 };
            for _ in 0..e {
                naive = naive * b as u128 % m as u128;
            }
            assert_eq!(pow_mod(b, e, m) as u128, naive, "({b},{e},{m})");
        }
    }
}
