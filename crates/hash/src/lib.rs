//! # intersect-hash
//!
//! The hashing substrate for the `intersect` project: every hash-function
//! family the protocols of Brody et al. (PODC 2014) draw from their shared
//! random string, implemented with compact transmittable seeds so the
//! constructive private-coin variants can pay for them in counted bits.
//!
//! * [`prime`] — exact Miller–Rabin primality and seeded prime sampling.
//! * [`pairwise`] — Carter–Wegman pairwise-independent functions
//!   (the `h` of Fact 2.2, described by `O(log n)` bits).
//! * [`kwise`] — polynomial `k`-wise independent functions.
//! * [`fks`] — the FKS two-level perfect hash table (\[FKS84\]) used for
//!   `O(1)` local membership queries.
//! * [`reduce`] — the mod-random-prime universe reduction that shrinks
//!   `[n]` to `Õ(k² log n)` and makes private-coin seeds cost
//!   `O(log k + log log n)` bits.
//! * [`tabulation`] — simple tabulation hashing, the fast local family for
//!   shared-coin bulk hashing (min-wise sketches).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod fks;
pub mod kwise;
pub mod pairwise;
pub mod prime;
pub mod reduce;
pub mod tabulation;

/// The most commonly used items, for glob import.
pub mod prelude {
    pub use crate::fks::FksTable;
    pub use crate::kwise::KWiseHash;
    pub use crate::pairwise::PairwiseHash;
    pub use crate::prime::{is_prime, next_prime, random_prime_in, M61};
    pub use crate::reduce::ModPrimeReduction;
    pub use crate::tabulation::TabulationHash;
}
