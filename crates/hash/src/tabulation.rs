//! Simple tabulation hashing.
//!
//! Splits a 64-bit key into 8 bytes and XORs one random table entry per
//! byte. The family is 3-independent, and — by the celebrated analysis of
//! Pătrașcu–Thorup — behaves like a fully random function for hash tables,
//! linear probing, and min-wise estimation. The protocols' *transmittable*
//! hash needs are served by [`crate::pairwise`] (whose seeds are
//! `O(log n)` bits); tabulation is the substrate's **fast local** family,
//! used where a party hashes privately at volume (e.g. sketch building)
//! with shared-coin seeds that never cross the wire — its 16 KiB of tables
//! would be absurd to transmit but are free to derive from the common
//! random string.

use rand::Rng;

/// A simple-tabulation hash function for 64-bit keys.
///
/// # Examples
///
/// ```
/// use intersect_hash::tabulation::TabulationHash;
/// use rand::SeedableRng;
///
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
/// let h = TabulationHash::sample(&mut rng);
/// assert_eq!(h.eval(42), h.eval(42));
/// assert_ne!(h.eval(42), h.eval(43)); // almost surely
/// ```
#[derive(Clone)]
pub struct TabulationHash {
    tables: Box<[[u64; 256]; 8]>,
}

impl std::fmt::Debug for TabulationHash {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "TabulationHash({:016x}…)", self.tables[0][0])
    }
}

impl TabulationHash {
    /// Samples a function from the family (draws 2048 random words).
    pub fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        let mut tables = Box::new([[0u64; 256]; 8]);
        for table in tables.iter_mut() {
            for slot in table.iter_mut() {
                *slot = rng.gen();
            }
        }
        TabulationHash { tables }
    }

    /// Evaluates the hash on a 64-bit key.
    #[inline]
    pub fn eval(&self, key: u64) -> u64 {
        let mut acc = 0u64;
        for (i, table) in self.tables.iter().enumerate() {
            acc ^= table[((key >> (8 * i)) & 0xff) as usize];
        }
        acc
    }

    /// Evaluates and reduces into `[range)` by multiply-shift.
    ///
    /// # Panics
    ///
    /// Panics if `range == 0`.
    #[inline]
    pub fn eval_range(&self, key: u64, range: u64) -> u64 {
        assert!(range > 0, "range must be non-empty");
        ((self.eval(key) as u128 * range as u128) >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn hash(seed: u64) -> TabulationHash {
        TabulationHash::sample(&mut ChaCha8Rng::seed_from_u64(seed))
    }

    #[test]
    fn deterministic_and_seed_sensitive() {
        let h1 = hash(1);
        let h2 = hash(2);
        assert_eq!(h1.eval(777), h1.eval(777));
        assert_ne!(h1.eval(777), h2.eval(777));
    }

    #[test]
    fn no_collisions_on_small_dense_set() {
        let h = hash(3);
        let mut seen = std::collections::HashSet::new();
        for x in 0..10_000u64 {
            assert!(seen.insert(h.eval(x)), "collision at {x}");
        }
    }

    #[test]
    fn output_bits_are_balanced() {
        let h = hash(4);
        let mut ones = [0u32; 64];
        let samples = 4096;
        for x in 0..samples {
            let v = h.eval(x * 2_654_435_761);
            for (b, count) in ones.iter_mut().enumerate() {
                *count += ((v >> b) & 1) as u32;
            }
        }
        for (b, &count) in ones.iter().enumerate() {
            let frac = count as f64 / samples as f64;
            assert!((0.42..0.58).contains(&frac), "bit {b} biased: {frac:.3}");
        }
    }

    #[test]
    fn range_reduction_is_roughly_uniform() {
        let h = hash(5);
        let range = 16u64;
        let mut counts = vec![0u32; range as usize];
        let samples = 1 << 14;
        for x in 0..samples {
            counts[h.eval_range(x, range) as usize] += 1;
        }
        let expect = samples as f64 / range as f64;
        for (bucket, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64) > expect * 0.8 && (c as f64) < expect * 1.2,
                "bucket {bucket}: {c} vs {expect}"
            );
        }
    }

    #[test]
    fn single_byte_change_avalanches() {
        let h = hash(6);
        let base = h.eval(0x0123_4567_89ab_cdef);
        for byte in 0..8 {
            let flipped = 0x0123_4567_89ab_cdefu64 ^ (0xff << (8 * byte));
            let diff = (base ^ h.eval(flipped)).count_ones();
            assert!(diff >= 10, "byte {byte} changed only {diff} bits");
        }
    }
}
