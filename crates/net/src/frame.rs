//! The wire format: length-prefixed frames multiplexing many sessions
//! over one byte stream.
//!
//! Every frame is `u32` little-endian body length followed by the body;
//! every body starts with a one-byte frame type and the `u64` session id
//! it belongs to. Protocol messages ([`WireFrame::Msg`]) carry the
//! sender's causal depth, the payload's **exact bit length**, and the
//! payload packed into `ceil(bits/8)` bytes — so the receiving channel
//! can meter precisely the bits the in-process [`Endpoint`] would have
//! metered, never a byte-rounded approximation.
//!
//! ```text
//! +--------------+----------------------------------------------+
//! | len: u32 LE  | body (len bytes)                             |
//! +--------------+----------------------------------------------+
//! body := type: u8 | session: u64 LE | type-specific fields
//!
//! Open    1  line: UTF-8 SessionRequest line ("id=.. n=.. k=..")
//! Accept  2  protocol: UTF-8 ProtocolChoice name
//! Msg     3  depth: u64 | payload_bits: u64 | payload: ceil(bits/8) bytes
//! Fin     4  (empty) — sender's half of the session is over
//! Done    5  ChannelStats: 5 × u64 | result_len: u32 | elems: u64 × len
//! Error   6  message: UTF-8
//! Goodbye 7  (empty, session 0) — connection-level farewell on drain
//! ```
//!
//! Decoding is total: any byte sequence either yields a frame or a
//! descriptive [`FrameError`]; malformed input (oversized length prefix,
//! truncated body, unknown type, nonzero padding bits, trailing garbage)
//! must never panic. The property tests in `tests/frame_roundtrip.rs`
//! drive both directions.

use intersect_comm::bits::BitBuf;
use intersect_comm::stats::ChannelStats;
use std::io::{self, Read, Write};

/// Hard cap on the body length a peer may announce. Protocol payloads
/// are a few kilobits (the whole point of the paper is that they are
/// small); 16 MiB leaves three orders of magnitude of headroom while
/// bounding what a broken or hostile peer can make us buffer.
pub const MAX_BODY_BYTES: u32 = 1 << 24;

/// Frame type tags on the wire.
const T_OPEN: u8 = 1;
const T_ACCEPT: u8 = 2;
const T_MSG: u8 = 3;
const T_FIN: u8 = 4;
const T_DONE: u8 = 5;
const T_ERROR: u8 = 6;
const T_GOODBYE: u8 = 7;

/// One frame of the session-multiplexed wire protocol.
#[derive(Debug, Clone, PartialEq)]
pub enum WireFrame {
    /// Client → server: open session `session` described by a
    /// [`SessionRequest`](intersect_engine::SessionRequest) line.
    Open {
        /// Connection-scoped session id chosen by the client.
        session: u64,
        /// The request in [`SessionRequest::to_line`] format.
        line: String,
    },
    /// Server → client: session accepted and routed to `protocol`.
    Accept {
        /// Echoed session id.
        session: u64,
        /// The routed [`ProtocolChoice`](intersect_core::api::ProtocolChoice),
        /// in its `FromStr`-parseable rendering.
        protocol: String,
    },
    /// A protocol message: the only metered frame.
    Msg {
        /// Session this payload belongs to.
        session: u64,
        /// Sender's causal depth (`clock + 1` at send time), exactly as
        /// the in-process [`Endpoint`](intersect_comm::chan::Endpoint)
        /// stamps it.
        depth: u64,
        /// The payload, preserving its exact bit length.
        payload: BitBuf,
    },
    /// The sender's half of `session` is over; unmetered, mirrors the
    /// in-process `Frame::Fin`.
    Fin {
        /// Session being finished.
        session: u64,
    },
    /// Server → client: the server half completed. Carries the server
    /// endpoint's final counters (so the client can assemble the exact
    /// [`CostReport`](intersect_comm::stats::CostReport) via
    /// `assemble_report`) and the server's output set for verification.
    Done {
        /// Echoed session id.
        session: u64,
        /// The server-side channel counters at completion.
        stats: ChannelStats,
        /// The server party's computed intersection.
        result: Vec<u64>,
    },
    /// A session-level failure; `session == 0` means connection-level.
    Error {
        /// Session the error pertains to (0 for the connection).
        session: u64,
        /// Human-readable description.
        message: String,
    },
    /// Connection-level farewell: the sender will initiate no further
    /// sessions and the receiver should expect the stream to close once
    /// in-flight sessions drain.
    Goodbye,
}

impl WireFrame {
    /// The session id this frame addresses (0 for [`WireFrame::Goodbye`]).
    pub fn session(&self) -> u64 {
        match self {
            WireFrame::Open { session, .. }
            | WireFrame::Accept { session, .. }
            | WireFrame::Msg { session, .. }
            | WireFrame::Fin { session }
            | WireFrame::Done { session, .. }
            | WireFrame::Error { session, .. } => *session,
            WireFrame::Goodbye => 0,
        }
    }
}

/// Why a frame could not be read or decoded.
#[derive(Debug)]
pub enum FrameError {
    /// The underlying stream failed.
    Io(io::Error),
    /// The stream ended inside a frame (a clean end *between* frames is
    /// reported as `Ok(None)` by [`read_frame`]).
    Truncated,
    /// The length prefix exceeded [`MAX_BODY_BYTES`].
    Oversized {
        /// The announced body length.
        len: u32,
    },
    /// The body violated the format (bad type tag, short body, nonzero
    /// padding bits, non-UTF-8 text, trailing bytes…).
    Malformed(&'static str),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "transport i/o failure: {e}"),
            FrameError::Truncated => write!(f, "stream ended mid-frame"),
            FrameError::Oversized { len } => {
                write!(f, "frame body of {len} bytes exceeds cap {MAX_BODY_BYTES}")
            }
            FrameError::Malformed(what) => write!(f, "malformed frame: {what}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            FrameError::Truncated
        } else {
            FrameError::Io(e)
        }
    }
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Encodes one frame, including its length prefix.
pub fn encode(frame: &WireFrame) -> Vec<u8> {
    let mut body = Vec::with_capacity(32);
    match frame {
        WireFrame::Open { session, line } => {
            body.push(T_OPEN);
            put_u64(&mut body, *session);
            body.extend_from_slice(line.as_bytes());
        }
        WireFrame::Accept { session, protocol } => {
            body.push(T_ACCEPT);
            put_u64(&mut body, *session);
            body.extend_from_slice(protocol.as_bytes());
        }
        WireFrame::Msg {
            session,
            depth,
            payload,
        } => {
            body.push(T_MSG);
            put_u64(&mut body, *session);
            put_u64(&mut body, *depth);
            put_u64(&mut body, payload.len() as u64);
            let bytes = payload.len().div_ceil(8);
            body.reserve(bytes);
            let mut written = 0usize;
            for word in payload.words() {
                let take = (bytes - written).min(8);
                body.extend_from_slice(&word.to_le_bytes()[..take]);
                written += take;
                if written == bytes {
                    break;
                }
            }
        }
        WireFrame::Fin { session } => {
            body.push(T_FIN);
            put_u64(&mut body, *session);
        }
        WireFrame::Done {
            session,
            stats,
            result,
        } => {
            body.push(T_DONE);
            put_u64(&mut body, *session);
            put_u64(&mut body, stats.bits_sent);
            put_u64(&mut body, stats.bits_received);
            put_u64(&mut body, stats.messages_sent);
            put_u64(&mut body, stats.messages_received);
            put_u64(&mut body, stats.clock);
            put_u32(&mut body, result.len() as u32);
            for e in result {
                put_u64(&mut body, *e);
            }
        }
        WireFrame::Error { session, message } => {
            body.push(T_ERROR);
            put_u64(&mut body, *session);
            body.extend_from_slice(message.as_bytes());
        }
        WireFrame::Goodbye => {
            body.push(T_GOODBYE);
            put_u64(&mut body, 0);
        }
    }
    debug_assert!(body.len() as u64 <= MAX_BODY_BYTES as u64);
    let mut out = Vec::with_capacity(4 + body.len());
    put_u32(&mut out, body.len() as u32);
    out.extend_from_slice(&body);
    out
}

/// A cursor over a frame body with bounds-checked readers.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Cursor { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], FrameError> {
        if self.pos + n > self.bytes.len() {
            return Err(FrameError::Malformed("body shorter than declared fields"));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, FrameError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, FrameError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, FrameError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    fn rest_utf8(&mut self) -> Result<String, FrameError> {
        let rest = &self.bytes[self.pos..];
        self.pos = self.bytes.len();
        std::str::from_utf8(rest)
            .map(str::to_owned)
            .map_err(|_| FrameError::Malformed("text field is not UTF-8"))
    }

    fn finish(&self) -> Result<(), FrameError> {
        if self.pos != self.bytes.len() {
            return Err(FrameError::Malformed("trailing bytes after frame body"));
        }
        Ok(())
    }
}

/// Decodes one frame body (the bytes after the length prefix).
pub fn decode_body(body: &[u8]) -> Result<WireFrame, FrameError> {
    let mut c = Cursor::new(body);
    let tag = c.u8()?;
    let session = c.u64()?;
    let frame = match tag {
        T_OPEN => WireFrame::Open {
            session,
            line: c.rest_utf8()?,
        },
        T_ACCEPT => WireFrame::Accept {
            session,
            protocol: c.rest_utf8()?,
        },
        T_MSG => {
            let depth = c.u64()?;
            let bits64 = c.u64()?;
            // A payload longer than the frame cap in *bytes* cannot be
            // genuine; reject before any usize conversion can overflow.
            if bits64 > (MAX_BODY_BYTES as u64) * 8 {
                return Err(FrameError::Malformed("payload bit length exceeds cap"));
            }
            let bits = bits64 as usize;
            let bytes = c.take(bits.div_ceil(8))?;
            // Padding bits above `bits` must be zero: the encoder never
            // sets them, so a nonzero pad means corruption.
            if !bits.is_multiple_of(8) {
                let pad = bytes[bytes.len() - 1] >> (bits % 8);
                if pad != 0 {
                    return Err(FrameError::Malformed("nonzero padding bits in payload"));
                }
            }
            let mut payload = BitBuf::with_capacity(bits);
            for (i, chunk) in bytes.chunks(8).enumerate() {
                let mut word = [0u8; 8];
                word[..chunk.len()].copy_from_slice(chunk);
                let word = u64::from_le_bytes(word);
                let width = (bits - i * 64).min(64);
                payload.push_bits(word, width);
            }
            WireFrame::Msg {
                session,
                depth,
                payload,
            }
        }
        T_FIN => WireFrame::Fin { session },
        T_DONE => {
            let stats = ChannelStats {
                bits_sent: c.u64()?,
                bits_received: c.u64()?,
                messages_sent: c.u64()?,
                messages_received: c.u64()?,
                clock: c.u64()?,
            };
            let len = c.u32()? as usize;
            if len > (MAX_BODY_BYTES as usize) / 8 {
                return Err(FrameError::Malformed("result length exceeds cap"));
            }
            let mut result = Vec::with_capacity(len);
            for _ in 0..len {
                result.push(c.u64()?);
            }
            WireFrame::Done {
                session,
                stats,
                result,
            }
        }
        T_ERROR => WireFrame::Error {
            session,
            message: c.rest_utf8()?,
        },
        T_GOODBYE => WireFrame::Goodbye,
        _ => return Err(FrameError::Malformed("unknown frame type")),
    };
    c.finish()?;
    Ok(frame)
}

/// Reads one length-prefixed frame from `r`.
///
/// Returns `Ok(None)` on a clean end-of-stream at a frame boundary;
/// inside a frame the same condition is [`FrameError::Truncated`].
///
/// # Errors
///
/// Propagates stream failures and decode failures; see [`FrameError`].
pub fn read_frame(r: &mut impl Read) -> Result<Option<WireFrame>, FrameError> {
    let mut len_bytes = [0u8; 4];
    let mut got = 0usize;
    while got < 4 {
        match r.read(&mut len_bytes[got..]) {
            Ok(0) => {
                if got == 0 {
                    return Ok(None);
                }
                return Err(FrameError::Truncated);
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e.into()),
        }
    }
    let len = u32::from_le_bytes(len_bytes);
    if len > MAX_BODY_BYTES {
        return Err(FrameError::Oversized { len });
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body)?;
    let frame = decode_body(&body)?;
    crate::metrics::frame_observed("rx", 4 + len as u64);
    Ok(Some(frame))
}

/// Writes one frame (length prefix included) and flushes.
///
/// # Errors
///
/// Propagates stream failures.
pub fn write_frame(w: &mut impl Write, frame: &WireFrame) -> io::Result<()> {
    let bytes = encode(frame);
    w.write_all(&bytes)?;
    w.flush()?;
    crate::metrics::frame_observed("tx", bytes.len() as u64);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(frame: WireFrame) {
        let bytes = encode(&frame);
        let mut r = &bytes[..];
        let back = read_frame(&mut r).unwrap().unwrap();
        assert_eq!(back, frame);
        assert!(read_frame(&mut r).unwrap().is_none(), "stream consumed");
    }

    #[test]
    fn all_frame_types_round_trip() {
        let mut payload = BitBuf::new();
        payload.push_bits(0b1_0110, 5);
        round_trip(WireFrame::Open {
            session: 7,
            line: "id=7 n=1024 k=8".into(),
        });
        round_trip(WireFrame::Accept {
            session: 7,
            protocol: "tree-log-star".into(),
        });
        round_trip(WireFrame::Msg {
            session: 7,
            depth: 3,
            payload,
        });
        round_trip(WireFrame::Fin { session: 7 });
        round_trip(WireFrame::Done {
            session: 7,
            stats: ChannelStats {
                bits_sent: 1,
                bits_received: 2,
                messages_sent: 3,
                messages_received: 4,
                clock: 5,
            },
            result: vec![9, 11, 13],
        });
        round_trip(WireFrame::Error {
            session: 0,
            message: "nope".into(),
        });
        round_trip(WireFrame::Goodbye);
    }

    #[test]
    fn empty_payload_round_trips() {
        round_trip(WireFrame::Msg {
            session: 1,
            depth: 1,
            payload: BitBuf::new(),
        });
    }

    #[test]
    fn oversized_length_prefix_is_rejected() {
        let mut bytes = Vec::new();
        put_u32(&mut bytes, MAX_BODY_BYTES + 1);
        bytes.extend_from_slice(&[0; 16]);
        let err = read_frame(&mut &bytes[..]).unwrap_err();
        assert!(matches!(err, FrameError::Oversized { .. }), "{err:?}");
    }

    #[test]
    fn truncated_frames_are_rejected() {
        let full = encode(&WireFrame::Fin { session: 3 });
        for cut in 1..full.len() {
            let err = read_frame(&mut &full[..cut]).unwrap_err();
            assert!(matches!(err, FrameError::Truncated), "cut={cut} {err:?}");
        }
    }

    #[test]
    fn nonzero_padding_is_rejected() {
        let mut payload = BitBuf::new();
        payload.push_bits(0b101, 3);
        let mut bytes = encode(&WireFrame::Msg {
            session: 1,
            depth: 1,
            payload,
        });
        *bytes.last_mut().unwrap() |= 0b1000; // set a bit above len=3
        let err = read_frame(&mut &bytes[..]).unwrap_err();
        assert!(matches!(err, FrameError::Malformed(_)), "{err:?}");
    }

    #[test]
    fn unknown_type_and_trailing_bytes_are_rejected() {
        let mut body = vec![99u8];
        put_u64(&mut body, 1);
        assert!(matches!(
            decode_body(&body),
            Err(FrameError::Malformed("unknown frame type"))
        ));
        let mut ok = vec![T_FIN];
        put_u64(&mut ok, 1);
        ok.push(0xFF);
        assert!(matches!(
            decode_body(&ok),
            Err(FrameError::Malformed("trailing bytes after frame body"))
        ));
    }
}
