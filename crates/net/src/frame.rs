//! The wire format: length-prefixed frames multiplexing many sessions
//! over one byte stream.
//!
//! Every frame is `u32` little-endian body length followed by the body;
//! every body starts with a one-byte frame type and the `u64` session id
//! it belongs to. Protocol messages ([`WireFrame::Msg`]) carry the
//! sender's causal depth, the payload's **exact bit length**, and the
//! payload packed into `ceil(bits/8)` bytes — so the receiving channel
//! can meter precisely the bits the in-process [`Endpoint`] would have
//! metered, never a byte-rounded approximation.
//!
//! ```text
//! +--------------+----------------------------------------------+
//! | len: u32 LE  | body (len bytes)                             |
//! +--------------+----------------------------------------------+
//! body := type: u8 | session: u64 LE | type-specific fields
//!
//! Open    1  line: UTF-8 SessionRequest line ("id=.. n=.. k=..")
//! Accept  2  protocol: UTF-8 ProtocolChoice name
//! Msg     3  depth: u64 | payload_bits: u64 | payload: ceil(bits/8) bytes
//! Fin     4  (empty) — sender's half of the session is over
//! Done    5  ChannelStats: 5 × u64 | result_len: u32 | elems: u64 × len
//! Error   6  message: UTF-8
//! Goodbye 7  (empty, session 0) — connection-level farewell on drain
//! MpMsg   8  peer: u32 | depth: u64 | payload_bits: u64 | payload
//! MpOut   9  has_set: u8 | (set_len: u32 | elems)? | verdict: u8
//! MpDone 10  holder: u32 | result_len: u32 | elems | verdict_count: u32
//!            | verdicts: u8 × count | players: u32 | bits_sent: u64 × m
//!            | bits_received: u64 × m | messages: u64 | rounds: u64
//! ```
//!
//! The multiparty frames (8–10) extend the session plane to m-party
//! sessions where the client drives one player of an m-player mesh the
//! server hosts: an Open whose request line carries `players=`/`mp=`
//! keys (the party-count/player-index tag) negotiates such a session,
//! [`WireFrame::MpMsg`] is its metered protocol message with an explicit
//! peer tag for pairwise-link routing, [`WireFrame::MpOut`] delivers the
//! driven player's final output, and [`WireFrame::MpDone`] returns the
//! folded session outcome with the exact per-player
//! [`NetworkReport`](intersect_comm::stats::NetworkReport).
//!
//! Decoding is total: any byte sequence either yields a frame or a
//! descriptive [`FrameError`]; malformed input (oversized length prefix,
//! truncated body, unknown type, nonzero padding bits, trailing garbage)
//! must never panic. The property tests in `tests/frame_roundtrip.rs`
//! drive both directions.

use intersect_comm::bits::BitBuf;
use intersect_comm::stats::{ChannelStats, NetworkReport};
use std::io::{self, Read, Write};

/// Hard cap on the body length a peer may announce. Protocol payloads
/// are a few kilobits (the whole point of the paper is that they are
/// small); 16 MiB leaves three orders of magnitude of headroom while
/// bounding what a broken or hostile peer can make us buffer.
pub const MAX_BODY_BYTES: u32 = 1 << 24;

/// Frame type tags on the wire.
const T_OPEN: u8 = 1;
const T_ACCEPT: u8 = 2;
const T_MSG: u8 = 3;
const T_FIN: u8 = 4;
const T_DONE: u8 = 5;
const T_ERROR: u8 = 6;
const T_GOODBYE: u8 = 7;
const T_MP_MSG: u8 = 8;
const T_MP_OUT: u8 = 9;
const T_MP_DONE: u8 = 10;

/// Cap on the party count a multiparty frame may announce; mirrors the
/// request-side cap in `MultipartyRequest::validate`.
const MAX_PLAYERS: u32 = 4096;

/// One frame of the session-multiplexed wire protocol.
#[derive(Debug, Clone, PartialEq)]
pub enum WireFrame {
    /// Client → server: open session `session` described by a
    /// [`SessionRequest`](intersect_engine::SessionRequest) line.
    Open {
        /// Connection-scoped session id chosen by the client.
        session: u64,
        /// The request in [`SessionRequest::to_line`] format.
        line: String,
    },
    /// Server → client: session accepted and routed to `protocol`.
    Accept {
        /// Echoed session id.
        session: u64,
        /// The routed [`ProtocolChoice`](intersect_core::api::ProtocolChoice),
        /// in its `FromStr`-parseable rendering.
        protocol: String,
    },
    /// A protocol message: the only metered frame.
    Msg {
        /// Session this payload belongs to.
        session: u64,
        /// Sender's causal depth (`clock + 1` at send time), exactly as
        /// the in-process [`Endpoint`](intersect_comm::chan::Endpoint)
        /// stamps it.
        depth: u64,
        /// The payload, preserving its exact bit length.
        payload: BitBuf,
    },
    /// The sender's half of `session` is over; unmetered, mirrors the
    /// in-process `Frame::Fin`.
    Fin {
        /// Session being finished.
        session: u64,
    },
    /// Server → client: the server half completed. Carries the server
    /// endpoint's final counters (so the client can assemble the exact
    /// [`CostReport`](intersect_comm::stats::CostReport) via
    /// `assemble_report`) and the server's output set for verification.
    Done {
        /// Echoed session id.
        session: u64,
        /// The server-side channel counters at completion.
        stats: ChannelStats,
        /// The server party's computed intersection.
        result: Vec<u64>,
    },
    /// A session-level failure; `session == 0` means connection-level.
    Error {
        /// Session the error pertains to (0 for the connection).
        session: u64,
        /// Human-readable description.
        message: String,
    },
    /// Connection-level farewell: the sender will initiate no further
    /// sessions and the receiver should expect the stream to close once
    /// in-flight sessions drain.
    Goodbye,
    /// A multiparty protocol message: metered exactly like
    /// [`WireFrame::Msg`], plus the peer index that routes it onto the
    /// right pairwise link of the server-hosted mesh.
    MpMsg {
        /// Session this payload belongs to.
        session: u64,
        /// The mesh player on the other end of the pairwise link.
        peer: u32,
        /// Sender's causal depth, exactly as the in-process
        /// [`Link`](intersect_comm::net::Link) stamps it.
        depth: u64,
        /// The payload, preserving its exact bit length.
        payload: BitBuf,
    },
    /// Client → server: the driven player's half of the multiparty
    /// session finished with this output (it doubles as the session's
    /// Fin: the proxy player returns it into the mesh).
    MpOut {
        /// Session being finished.
        session: u64,
        /// The driven player's computed intersection, if it holds one.
        intersection: Option<Vec<u64>>,
        /// The driven player's disjointness verdict, if any.
        verdict: Option<bool>,
    },
    /// Server → client: the whole m-party session completed. Carries the
    /// folded outcome plus the exact per-player accounting, so the
    /// client's view is bit-identical to an in-process `LinkSet` run.
    MpDone {
        /// Echoed session id.
        session: u64,
        /// The player left holding the intersection, if any.
        holder: Option<u32>,
        /// The holder's computed global intersection.
        result: Vec<u64>,
        /// Per-player disjointness verdicts (empty slots for players
        /// that produce none).
        verdicts: Vec<Option<bool>>,
        /// Exact per-player communication and round accounting.
        report: NetworkReport,
    },
}

impl WireFrame {
    /// The session id this frame addresses (0 for [`WireFrame::Goodbye`]).
    pub fn session(&self) -> u64 {
        match self {
            WireFrame::Open { session, .. }
            | WireFrame::Accept { session, .. }
            | WireFrame::Msg { session, .. }
            | WireFrame::Fin { session }
            | WireFrame::Done { session, .. }
            | WireFrame::Error { session, .. }
            | WireFrame::MpMsg { session, .. }
            | WireFrame::MpOut { session, .. }
            | WireFrame::MpDone { session, .. } => *session,
            WireFrame::Goodbye => 0,
        }
    }
}

/// Why a frame could not be read or decoded.
#[derive(Debug)]
pub enum FrameError {
    /// The underlying stream failed.
    Io(io::Error),
    /// The stream ended inside a frame (a clean end *between* frames is
    /// reported as `Ok(None)` by [`read_frame`]).
    Truncated,
    /// The length prefix exceeded [`MAX_BODY_BYTES`].
    Oversized {
        /// The announced body length.
        len: u32,
    },
    /// The body violated the format (bad type tag, short body, nonzero
    /// padding bits, non-UTF-8 text, trailing bytes…).
    Malformed(&'static str),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "transport i/o failure: {e}"),
            FrameError::Truncated => write!(f, "stream ended mid-frame"),
            FrameError::Oversized { len } => {
                write!(f, "frame body of {len} bytes exceeds cap {MAX_BODY_BYTES}")
            }
            FrameError::Malformed(what) => write!(f, "malformed frame: {what}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            FrameError::Truncated
        } else {
            FrameError::Io(e)
        }
    }
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Writes a payload as `bits: u64 | packed bytes`, preserving the exact
/// bit length (the packing both [`WireFrame::Msg`] and
/// [`WireFrame::MpMsg`] use).
fn put_payload(body: &mut Vec<u8>, payload: &BitBuf) {
    put_u64(body, payload.len() as u64);
    let bytes = payload.len().div_ceil(8);
    body.reserve(bytes);
    let mut written = 0usize;
    for word in payload.words() {
        let take = (bytes - written).min(8);
        body.extend_from_slice(&word.to_le_bytes()[..take]);
        written += take;
        if written == bytes {
            break;
        }
    }
}

/// Encodes a tri-state verdict in one byte.
fn verdict_code(v: Option<bool>) -> u8 {
    match v {
        None => 0,
        Some(false) => 1,
        Some(true) => 2,
    }
}

/// Encodes one frame, including its length prefix.
pub fn encode(frame: &WireFrame) -> Vec<u8> {
    let mut body = Vec::with_capacity(32);
    match frame {
        WireFrame::Open { session, line } => {
            body.push(T_OPEN);
            put_u64(&mut body, *session);
            body.extend_from_slice(line.as_bytes());
        }
        WireFrame::Accept { session, protocol } => {
            body.push(T_ACCEPT);
            put_u64(&mut body, *session);
            body.extend_from_slice(protocol.as_bytes());
        }
        WireFrame::Msg {
            session,
            depth,
            payload,
        } => {
            body.push(T_MSG);
            put_u64(&mut body, *session);
            put_u64(&mut body, *depth);
            put_payload(&mut body, payload);
        }
        WireFrame::Fin { session } => {
            body.push(T_FIN);
            put_u64(&mut body, *session);
        }
        WireFrame::Done {
            session,
            stats,
            result,
        } => {
            body.push(T_DONE);
            put_u64(&mut body, *session);
            put_u64(&mut body, stats.bits_sent);
            put_u64(&mut body, stats.bits_received);
            put_u64(&mut body, stats.messages_sent);
            put_u64(&mut body, stats.messages_received);
            put_u64(&mut body, stats.clock);
            put_u32(&mut body, result.len() as u32);
            for e in result {
                put_u64(&mut body, *e);
            }
        }
        WireFrame::Error { session, message } => {
            body.push(T_ERROR);
            put_u64(&mut body, *session);
            body.extend_from_slice(message.as_bytes());
        }
        WireFrame::Goodbye => {
            body.push(T_GOODBYE);
            put_u64(&mut body, 0);
        }
        WireFrame::MpMsg {
            session,
            peer,
            depth,
            payload,
        } => {
            body.push(T_MP_MSG);
            put_u64(&mut body, *session);
            put_u32(&mut body, *peer);
            put_u64(&mut body, *depth);
            put_payload(&mut body, payload);
        }
        WireFrame::MpOut {
            session,
            intersection,
            verdict,
        } => {
            body.push(T_MP_OUT);
            put_u64(&mut body, *session);
            match intersection {
                Some(elems) => {
                    body.push(1);
                    put_u32(&mut body, elems.len() as u32);
                    for e in elems {
                        put_u64(&mut body, *e);
                    }
                }
                None => body.push(0),
            }
            body.push(verdict_code(*verdict));
        }
        WireFrame::MpDone {
            session,
            holder,
            result,
            verdicts,
            report,
        } => {
            body.push(T_MP_DONE);
            put_u64(&mut body, *session);
            put_u32(&mut body, holder.unwrap_or(u32::MAX));
            put_u32(&mut body, result.len() as u32);
            for e in result {
                put_u64(&mut body, *e);
            }
            put_u32(&mut body, verdicts.len() as u32);
            for v in verdicts {
                body.push(verdict_code(*v));
            }
            debug_assert_eq!(report.bits_sent.len(), report.bits_received.len());
            put_u32(&mut body, report.bits_sent.len() as u32);
            for b in &report.bits_sent {
                put_u64(&mut body, *b);
            }
            for b in &report.bits_received {
                put_u64(&mut body, *b);
            }
            put_u64(&mut body, report.messages);
            put_u64(&mut body, report.rounds);
        }
    }
    debug_assert!(body.len() as u64 <= MAX_BODY_BYTES as u64);
    let mut out = Vec::with_capacity(4 + body.len());
    put_u32(&mut out, body.len() as u32);
    out.extend_from_slice(&body);
    out
}

/// A cursor over a frame body with bounds-checked readers.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Cursor { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], FrameError> {
        if self.pos + n > self.bytes.len() {
            return Err(FrameError::Malformed("body shorter than declared fields"));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, FrameError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, FrameError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, FrameError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    fn rest_utf8(&mut self) -> Result<String, FrameError> {
        let rest = &self.bytes[self.pos..];
        self.pos = self.bytes.len();
        std::str::from_utf8(rest)
            .map(str::to_owned)
            .map_err(|_| FrameError::Malformed("text field is not UTF-8"))
    }

    fn finish(&self) -> Result<(), FrameError> {
        if self.pos != self.bytes.len() {
            return Err(FrameError::Malformed("trailing bytes after frame body"));
        }
        Ok(())
    }

    /// Reads a `bits: u64 | packed bytes` payload (see [`put_payload`]),
    /// rejecting oversized lengths and nonzero padding bits.
    fn payload(&mut self) -> Result<BitBuf, FrameError> {
        let bits64 = self.u64()?;
        // A payload longer than the frame cap in *bytes* cannot be
        // genuine; reject before any usize conversion can overflow.
        if bits64 > (MAX_BODY_BYTES as u64) * 8 {
            return Err(FrameError::Malformed("payload bit length exceeds cap"));
        }
        let bits = bits64 as usize;
        let bytes = self.take(bits.div_ceil(8))?;
        // Padding bits above `bits` must be zero: the encoder never
        // sets them, so a nonzero pad means corruption.
        if !bits.is_multiple_of(8) {
            let pad = bytes[bytes.len() - 1] >> (bits % 8);
            if pad != 0 {
                return Err(FrameError::Malformed("nonzero padding bits in payload"));
            }
        }
        let mut payload = BitBuf::with_capacity(bits);
        for (i, chunk) in bytes.chunks(8).enumerate() {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            let word = u64::from_le_bytes(word);
            let width = (bits - i * 64).min(64);
            payload.push_bits(word, width);
        }
        Ok(payload)
    }

    /// Reads one tri-state verdict byte (see [`verdict_code`]).
    fn verdict(&mut self) -> Result<Option<bool>, FrameError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(false)),
            2 => Ok(Some(true)),
            _ => Err(FrameError::Malformed("unknown verdict code")),
        }
    }
}

/// Decodes one frame body (the bytes after the length prefix).
pub fn decode_body(body: &[u8]) -> Result<WireFrame, FrameError> {
    let mut c = Cursor::new(body);
    let tag = c.u8()?;
    let session = c.u64()?;
    let frame = match tag {
        T_OPEN => WireFrame::Open {
            session,
            line: c.rest_utf8()?,
        },
        T_ACCEPT => WireFrame::Accept {
            session,
            protocol: c.rest_utf8()?,
        },
        T_MSG => {
            let depth = c.u64()?;
            let payload = c.payload()?;
            WireFrame::Msg {
                session,
                depth,
                payload,
            }
        }
        T_FIN => WireFrame::Fin { session },
        T_DONE => {
            let stats = ChannelStats {
                bits_sent: c.u64()?,
                bits_received: c.u64()?,
                messages_sent: c.u64()?,
                messages_received: c.u64()?,
                clock: c.u64()?,
            };
            let len = c.u32()? as usize;
            if len > (MAX_BODY_BYTES as usize) / 8 {
                return Err(FrameError::Malformed("result length exceeds cap"));
            }
            let mut result = Vec::with_capacity(len);
            for _ in 0..len {
                result.push(c.u64()?);
            }
            WireFrame::Done {
                session,
                stats,
                result,
            }
        }
        T_ERROR => WireFrame::Error {
            session,
            message: c.rest_utf8()?,
        },
        T_GOODBYE => WireFrame::Goodbye,
        T_MP_MSG => {
            let peer = c.u32()?;
            if peer >= MAX_PLAYERS {
                return Err(FrameError::Malformed("peer index exceeds player cap"));
            }
            let depth = c.u64()?;
            let payload = c.payload()?;
            WireFrame::MpMsg {
                session,
                peer,
                depth,
                payload,
            }
        }
        T_MP_OUT => {
            let intersection = match c.u8()? {
                0 => None,
                1 => {
                    let len = c.u32()? as usize;
                    if len > (MAX_BODY_BYTES as usize) / 8 {
                        return Err(FrameError::Malformed("result length exceeds cap"));
                    }
                    let mut elems = Vec::with_capacity(len);
                    for _ in 0..len {
                        elems.push(c.u64()?);
                    }
                    Some(elems)
                }
                _ => return Err(FrameError::Malformed("unknown intersection flag")),
            };
            let verdict = c.verdict()?;
            WireFrame::MpOut {
                session,
                intersection,
                verdict,
            }
        }
        T_MP_DONE => {
            let holder = match c.u32()? {
                u32::MAX => None,
                h if h < MAX_PLAYERS => Some(h),
                _ => return Err(FrameError::Malformed("holder index exceeds player cap")),
            };
            let len = c.u32()? as usize;
            if len > (MAX_BODY_BYTES as usize) / 8 {
                return Err(FrameError::Malformed("result length exceeds cap"));
            }
            let mut result = Vec::with_capacity(len);
            for _ in 0..len {
                result.push(c.u64()?);
            }
            let verdict_count = c.u32()?;
            if verdict_count > MAX_PLAYERS {
                return Err(FrameError::Malformed("verdict count exceeds player cap"));
            }
            let mut verdicts = Vec::with_capacity(verdict_count as usize);
            for _ in 0..verdict_count {
                verdicts.push(c.verdict()?);
            }
            let players = c.u32()?;
            if players > MAX_PLAYERS {
                return Err(FrameError::Malformed("player count exceeds cap"));
            }
            let mut report = NetworkReport {
                bits_sent: Vec::with_capacity(players as usize),
                bits_received: Vec::with_capacity(players as usize),
                messages: 0,
                rounds: 0,
            };
            for _ in 0..players {
                report.bits_sent.push(c.u64()?);
            }
            for _ in 0..players {
                report.bits_received.push(c.u64()?);
            }
            report.messages = c.u64()?;
            report.rounds = c.u64()?;
            WireFrame::MpDone {
                session,
                holder,
                result,
                verdicts,
                report,
            }
        }
        _ => return Err(FrameError::Malformed("unknown frame type")),
    };
    c.finish()?;
    Ok(frame)
}

/// Reads one length-prefixed frame from `r`.
///
/// Returns `Ok(None)` on a clean end-of-stream at a frame boundary;
/// inside a frame the same condition is [`FrameError::Truncated`].
///
/// # Errors
///
/// Propagates stream failures and decode failures; see [`FrameError`].
pub fn read_frame(r: &mut impl Read) -> Result<Option<WireFrame>, FrameError> {
    let mut len_bytes = [0u8; 4];
    let mut got = 0usize;
    while got < 4 {
        match r.read(&mut len_bytes[got..]) {
            Ok(0) => {
                if got == 0 {
                    return Ok(None);
                }
                return Err(FrameError::Truncated);
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e.into()),
        }
    }
    let len = u32::from_le_bytes(len_bytes);
    if len > MAX_BODY_BYTES {
        return Err(FrameError::Oversized { len });
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body)?;
    let frame = decode_body(&body)?;
    crate::metrics::frame_observed("rx", 4 + len as u64);
    Ok(Some(frame))
}

/// Writes one frame (length prefix included) and flushes.
///
/// # Errors
///
/// Propagates stream failures.
pub fn write_frame(w: &mut impl Write, frame: &WireFrame) -> io::Result<()> {
    let bytes = encode(frame);
    w.write_all(&bytes)?;
    w.flush()?;
    crate::metrics::frame_observed("tx", bytes.len() as u64);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(frame: WireFrame) {
        let bytes = encode(&frame);
        let mut r = &bytes[..];
        let back = read_frame(&mut r).unwrap().unwrap();
        assert_eq!(back, frame);
        assert!(read_frame(&mut r).unwrap().is_none(), "stream consumed");
    }

    #[test]
    fn all_frame_types_round_trip() {
        let mut payload = BitBuf::new();
        payload.push_bits(0b1_0110, 5);
        round_trip(WireFrame::Open {
            session: 7,
            line: "id=7 n=1024 k=8".into(),
        });
        round_trip(WireFrame::Accept {
            session: 7,
            protocol: "tree-log-star".into(),
        });
        round_trip(WireFrame::Msg {
            session: 7,
            depth: 3,
            payload,
        });
        round_trip(WireFrame::Fin { session: 7 });
        round_trip(WireFrame::Done {
            session: 7,
            stats: ChannelStats {
                bits_sent: 1,
                bits_received: 2,
                messages_sent: 3,
                messages_received: 4,
                clock: 5,
            },
            result: vec![9, 11, 13],
        });
        round_trip(WireFrame::Error {
            session: 0,
            message: "nope".into(),
        });
        round_trip(WireFrame::Goodbye);
    }

    #[test]
    fn multiparty_frame_types_round_trip() {
        let mut payload = BitBuf::new();
        payload.push_bits(0b110_1001, 7);
        round_trip(WireFrame::MpMsg {
            session: 9,
            peer: 3,
            depth: 17,
            payload,
        });
        round_trip(WireFrame::MpOut {
            session: 9,
            intersection: Some(vec![4, 8, 15]),
            verdict: None,
        });
        round_trip(WireFrame::MpOut {
            session: 9,
            intersection: None,
            verdict: Some(true),
        });
        round_trip(WireFrame::MpDone {
            session: 9,
            holder: Some(0),
            result: vec![4, 8, 15],
            verdicts: vec![None, Some(false), Some(true), None],
            report: NetworkReport {
                bits_sent: vec![10, 20, 30, 40],
                bits_received: vec![40, 30, 20, 10],
                messages: 12,
                rounds: 5,
            },
        });
        round_trip(WireFrame::MpDone {
            session: 10,
            holder: None,
            result: vec![],
            verdicts: vec![Some(true), Some(true)],
            report: NetworkReport {
                bits_sent: vec![7, 7],
                bits_received: vec![7, 7],
                messages: 2,
                rounds: 2,
            },
        });
    }

    #[test]
    fn multiparty_caps_are_enforced() {
        // A peer index past the player cap poisons the frame.
        let mut body = vec![T_MP_MSG];
        put_u64(&mut body, 1);
        put_u32(&mut body, MAX_PLAYERS);
        put_u64(&mut body, 1);
        put_u64(&mut body, 0);
        assert!(matches!(decode_body(&body), Err(FrameError::Malformed(_))));
        // An unknown verdict code is rejected, never folded to a bool.
        let mut body = vec![T_MP_OUT];
        put_u64(&mut body, 1);
        body.push(0); // no intersection
        body.push(9); // bogus verdict code
        assert!(matches!(decode_body(&body), Err(FrameError::Malformed(_))));
    }

    #[test]
    fn empty_payload_round_trips() {
        round_trip(WireFrame::Msg {
            session: 1,
            depth: 1,
            payload: BitBuf::new(),
        });
    }

    #[test]
    fn oversized_length_prefix_is_rejected() {
        let mut bytes = Vec::new();
        put_u32(&mut bytes, MAX_BODY_BYTES + 1);
        bytes.extend_from_slice(&[0; 16]);
        let err = read_frame(&mut &bytes[..]).unwrap_err();
        assert!(matches!(err, FrameError::Oversized { .. }), "{err:?}");
    }

    #[test]
    fn truncated_frames_are_rejected() {
        let full = encode(&WireFrame::Fin { session: 3 });
        for cut in 1..full.len() {
            let err = read_frame(&mut &full[..cut]).unwrap_err();
            assert!(matches!(err, FrameError::Truncated), "cut={cut} {err:?}");
        }
    }

    #[test]
    fn nonzero_padding_is_rejected() {
        let mut payload = BitBuf::new();
        payload.push_bits(0b101, 3);
        let mut bytes = encode(&WireFrame::Msg {
            session: 1,
            depth: 1,
            payload,
        });
        *bytes.last_mut().unwrap() |= 0b1000; // set a bit above len=3
        let err = read_frame(&mut &bytes[..]).unwrap_err();
        assert!(matches!(err, FrameError::Malformed(_)), "{err:?}");
    }

    #[test]
    fn unknown_type_and_trailing_bytes_are_rejected() {
        let mut body = vec![99u8];
        put_u64(&mut body, 1);
        assert!(matches!(
            decode_body(&body),
            Err(FrameError::Malformed("unknown frame type"))
        ));
        let mut ok = vec![T_FIN];
        put_u64(&mut ok, 1);
        ok.push(0xFF);
        assert!(matches!(
            decode_body(&ok),
            Err(FrameError::Malformed("trailing bytes after frame body"))
        ));
    }
}
