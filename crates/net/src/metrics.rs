//! Network-plane metrics, following the `describe_engine_metrics`
//! convention: every series the transport emits gets a `# HELP` text so
//! the Prometheus exposition on `/metrics` is self-describing, and all
//! increments go through [`intersect_obs`] so they cost one relaxed
//! atomic load while no subscriber is installed.

use intersect_obs as obs;
use intersect_obs::metrics::labeled;

/// Registers `# HELP` texts for every metric the network plane emits.
/// No-op while no subscriber is installed.
pub fn describe_net_metrics() {
    for (name, help) in [
        (
            "net_connections_open",
            "Transport connections currently accepted and serving",
        ),
        (
            "net_connections_total",
            "Transport connections accepted since start",
        ),
        (
            "net_frames_total",
            "Wire frames moved by this process, by direction",
        ),
        (
            "net_frame_bytes_total",
            "Wire bytes moved by this process (length prefixes included), by direction",
        ),
        (
            "net_sessions_multiplexed",
            "Remote sessions opened over the transport",
        ),
        (
            "net_sessions_active",
            "Remote sessions currently executing on the server",
        ),
        (
            "net_sessions_rejected",
            "Remote session opens refused (malformed, draining, or at capacity)",
        ),
        (
            "net_client_segment_micros",
            "Client-side remote-session latency by waterfall segment (open-wait, rounds-execute, drain)",
        ),
        // The m-party families the server emits when it hosts a mesh
        // for a remote player. Help texts match `describe_engine_metrics`
        // exactly — the transport and engine paths feed one family each.
        (
            "multiparty_sessions_total",
            "Engine-hosted m-party sessions finished, labeled by party count m",
        ),
        (
            "multiparty_bits_total",
            "Total bits on the wire across engine-hosted m-party sessions",
        ),
        (
            "multiparty_player_bits",
            "Per-player bits (sent + received) per m-party session",
        ),
    ] {
        obs::describe(name, help);
    }
}

/// Records one frame crossing the process boundary in direction `dir`
/// (`"tx"` or `"rx"`), `bytes` long on the wire.
pub fn frame_observed(dir: &str, bytes: u64) {
    obs::counter_add(&labeled("net_frames_total", &[("dir", dir)]), 1);
    obs::counter_add(&labeled("net_frame_bytes_total", &[("dir", dir)]), bytes);
}

/// Records a connection opening (`+1`) or closing (`-1`).
pub fn connection_delta(d: i64) {
    obs::gauge_add("net_connections_open", d);
    if d > 0 {
        obs::counter_add("net_connections_total", d as u64);
    }
}

/// Records one remote session admitted onto a connection.
pub fn session_opened() {
    obs::counter_add("net_sessions_multiplexed", 1);
    obs::gauge_add("net_sessions_active", 1);
}

/// Records one remote session leaving the active set.
pub fn session_closed() {
    obs::gauge_add("net_sessions_active", -1);
}

/// Records one refused session open.
pub fn session_rejected() {
    obs::counter_add("net_sessions_rejected", 1);
}
