//! The transport server: accepts connections, demultiplexes many
//! concurrent sessions per connection, and runs each session's server
//! half over the same router and plan cache the in-process engine uses.
//!
//! One thread accepts; one thread per connection reads and demuxes
//! frames into per-session queues; one thread per active session runs
//! the server (Bob) half of the routed protocol against a
//! [`RemoteChan`]. Writes from concurrent sessions share the
//! connection's write half under a mutex, one frame per acquisition.
//!
//! Shutdown is a drain, not a drop: [`NetServer::shutdown`] stops
//! admitting, waits for in-flight sessions to finish (bounded by the
//! configured drain window), sends [`WireFrame::Goodbye`] on every live
//! connection, and only then closes the sockets — so a SIGTERM during a
//! burst never kills a session mid-round.

use crate::chan::{RemoteChan, SessionEvent, SharedWriter};
use crate::frame::{read_frame, write_frame, FrameError, WireFrame};
use crate::metrics;
use crate::transport::{EndpointAddr, Listener, Stream};
use crossbeam_channel::Sender;
use intersect_comm::chan::Chan;
use intersect_comm::coins::CoinSource;
use intersect_comm::runner::Side;
use intersect_engine::{route, PairContextCache, PlanCache, RoutePolicy, SessionRequest};
use intersect_obs as obs;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server configuration.
#[derive(Debug, Clone)]
pub struct NetServerConfig {
    /// Where to listen.
    pub endpoint: EndpointAddr,
    /// Routing policy for requests without a per-line protocol override.
    pub policy: RoutePolicy,
    /// Cap on sessions executing concurrently across all connections;
    /// opens beyond it are refused with a clean error frame.
    pub max_active_sessions: usize,
    /// Per-receive timeout of each session's channel.
    pub session_timeout: Duration,
    /// How long [`NetServer::shutdown`] waits for in-flight sessions.
    pub drain_timeout: Duration,
}

impl NetServerConfig {
    /// Defaults: auto routing, 256 concurrent sessions, 30 s receives,
    /// 10 s drain.
    pub fn new(endpoint: EndpointAddr) -> NetServerConfig {
        NetServerConfig {
            endpoint,
            policy: RoutePolicy::default(),
            max_active_sessions: 256,
            session_timeout: Duration::from_secs(30),
            drain_timeout: Duration::from_secs(10),
        }
    }
}

/// Counters the server accumulated over its lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetSummary {
    /// Connections accepted.
    pub connections: u64,
    /// Sessions that ran to completion.
    pub sessions_served: u64,
    /// Sessions that failed with a protocol error.
    pub sessions_failed: u64,
    /// Session opens refused (draining, capacity, malformed).
    pub sessions_rejected: u64,
}

struct ConnCtl {
    writer: SharedWriter,
    stream: Stream,
}

struct Shared {
    policy: RoutePolicy,
    cache: PlanCache,
    pair_contexts: PairContextCache,
    max_active: usize,
    timeout: Duration,
    draining: AtomicBool,
    active: AtomicU64,
    connections: AtomicU64,
    served: AtomicU64,
    failed: AtomicU64,
    rejected: AtomicU64,
    conns: Mutex<HashMap<u64, ConnCtl>>,
    conn_threads: Mutex<Vec<JoinHandle<()>>>,
}

/// A running transport server. Dropping it shuts it down (with drain).
#[derive(Debug)]
pub struct NetServer {
    local: EndpointAddr,
    shared: Arc<Shared>,
    drain: Duration,
    accept_thread: Option<JoinHandle<()>>,
    stopped: bool,
}

impl std::fmt::Debug for Shared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Shared(active={}, draining={})",
            self.active.load(Ordering::Relaxed),
            self.draining.load(Ordering::Relaxed)
        )
    }
}

impl NetServer {
    /// Binds the endpoint and starts accepting.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn start(config: NetServerConfig) -> std::io::Result<NetServer> {
        metrics::describe_net_metrics();
        let listener = Listener::bind(&config.endpoint)?;
        let local = listener.local_addr();
        let shared = Arc::new(Shared {
            policy: config.policy,
            cache: PlanCache::new(),
            pair_contexts: PairContextCache::new(),
            max_active: config.max_active_sessions.max(1),
            timeout: config.session_timeout,
            draining: AtomicBool::new(false),
            active: AtomicU64::new(0),
            connections: AtomicU64::new(0),
            served: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            conns: Mutex::new(HashMap::new()),
            conn_threads: Mutex::new(Vec::new()),
        });
        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::spawn(move || accept_loop(listener, accept_shared));
        Ok(NetServer {
            local,
            shared,
            drain: config.drain_timeout,
            accept_thread: Some(accept_thread),
            stopped: false,
        })
    }

    /// The endpoint actually bound (real port for `tcp:…:0`).
    pub fn local_addr(&self) -> &EndpointAddr {
        &self.local
    }

    /// Sessions currently executing.
    pub fn active_sessions(&self) -> u64 {
        self.shared.active.load(Ordering::Acquire)
    }

    /// Lifetime counters so far.
    pub fn summary(&self) -> NetSummary {
        NetSummary {
            connections: self.shared.connections.load(Ordering::Relaxed),
            sessions_served: self.shared.served.load(Ordering::Relaxed),
            sessions_failed: self.shared.failed.load(Ordering::Relaxed),
            sessions_rejected: self.shared.rejected.load(Ordering::Relaxed),
        }
    }

    /// Drains and stops: refuses new sessions, waits (up to the drain
    /// window) for in-flight ones, says [`WireFrame::Goodbye`] on every
    /// live connection, closes sockets, and joins every thread.
    pub fn shutdown(&mut self) -> NetSummary {
        if self.stopped {
            return self.summary();
        }
        self.stopped = true;
        self.shared.draining.store(true, Ordering::Release);

        // Drain: in-flight sessions keep their connections and finish.
        let deadline = Instant::now() + self.drain;
        while self.shared.active.load(Ordering::Acquire) > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }

        // Farewell on every live connection, then unblock its reader.
        {
            let conns = self.shared.conns.lock().expect("conn registry poisoned");
            for ctl in conns.values() {
                if let Ok(mut w) = ctl.writer.lock() {
                    let _ = write_frame(&mut *w, &WireFrame::Goodbye);
                }
                ctl.stream.shutdown();
            }
        }

        // Unblock the accept loop with a throwaway connection; it checks
        // the draining flag before serving what it accepted.
        let _ = Stream::connect(&self.local);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        let threads: Vec<JoinHandle<()>> = std::mem::take(
            &mut *self
                .shared
                .conn_threads
                .lock()
                .expect("conn threads poisoned"),
        );
        for t in threads {
            let _ = t.join();
        }
        self.summary()
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: Listener, shared: Arc<Shared>) {
    let mut next_conn = 0u64;
    loop {
        let stream = match listener.accept() {
            Ok(s) => s,
            Err(_) => {
                if shared.draining.load(Ordering::Acquire) {
                    break;
                }
                continue;
            }
        };
        if shared.draining.load(Ordering::Acquire) {
            stream.shutdown();
            break;
        }
        next_conn += 1;
        let conn_id = next_conn;
        shared.connections.fetch_add(1, Ordering::Relaxed);
        metrics::connection_delta(1);
        let conn_shared = Arc::clone(&shared);
        let handle = std::thread::spawn(move || {
            conn_loop(conn_id, stream, conn_shared);
        });
        shared
            .conn_threads
            .lock()
            .expect("conn threads poisoned")
            .push(handle);
    }
    listener.cleanup();
}

type SessionMap = Arc<Mutex<HashMap<u64, Sender<SessionEvent>>>>;

fn conn_loop(conn_id: u64, stream: Stream, shared: Arc<Shared>) {
    let writer: SharedWriter = match stream.try_clone() {
        Ok(w) => Arc::new(Mutex::new(w)),
        Err(_) => {
            metrics::connection_delta(-1);
            return;
        }
    };
    if let Ok(ctl_stream) = stream.try_clone() {
        shared.conns.lock().expect("conn registry poisoned").insert(
            conn_id,
            ConnCtl {
                writer: Arc::clone(&writer),
                stream: ctl_stream,
            },
        );
    }
    let sessions: SessionMap = Arc::new(Mutex::new(HashMap::new()));
    let mut session_threads: Vec<JoinHandle<()>> = Vec::new();
    let mut reader = stream;

    loop {
        match read_frame(&mut reader) {
            Ok(Some(frame)) => {
                handle_frame(frame, &shared, &writer, &sessions, &mut session_threads)
            }
            // Clean end-of-stream at a frame boundary: client is done.
            Ok(None) => break,
            Err(FrameError::Io(_)) | Err(FrameError::Truncated) => break,
            // A framing violation poisons the byte stream (we can no
            // longer find the next frame boundary): report and hang up.
            Err(e) => {
                let mut w = writer.lock().expect("connection writer poisoned");
                let _ = write_frame(
                    &mut *w,
                    &WireFrame::Error {
                        session: 0,
                        message: format!("protocol violation: {e}"),
                    },
                );
                break;
            }
        }
    }

    // Whatever is still registered sees the connection close...
    {
        let map = sessions.lock().expect("session map poisoned");
        for tx in map.values() {
            let _ = tx.send(SessionEvent::Closed);
        }
    }
    // ...and every session half is joined before the connection retires.
    for t in session_threads {
        let _ = t.join();
    }
    shared
        .conns
        .lock()
        .expect("conn registry poisoned")
        .remove(&conn_id);
    metrics::connection_delta(-1);
}

fn refuse(writer: &SharedWriter, shared: &Shared, session: u64, message: String) {
    shared.rejected.fetch_add(1, Ordering::Relaxed);
    metrics::session_rejected();
    obs::flight::record(obs::flight::CODE_REJECT, session, 0, 0);
    let mut w = writer.lock().expect("connection writer poisoned");
    let _ = write_frame(&mut *w, &WireFrame::Error { session, message });
}

fn handle_frame(
    frame: WireFrame,
    shared: &Arc<Shared>,
    writer: &SharedWriter,
    sessions: &SessionMap,
    session_threads: &mut Vec<JoinHandle<()>>,
) {
    match frame {
        WireFrame::Open { session, line } => {
            if shared.draining.load(Ordering::Acquire) {
                refuse(writer, shared, session, "server is draining".into());
                return;
            }
            let req = match SessionRequest::parse_line(&line) {
                Ok(Some(req)) => req,
                Ok(None) => {
                    refuse(writer, shared, session, "empty request line".into());
                    return;
                }
                Err(e) => {
                    refuse(writer, shared, session, format!("bad request: {e}"));
                    return;
                }
            };
            if sessions
                .lock()
                .expect("session map poisoned")
                .contains_key(&session)
            {
                refuse(writer, shared, session, "session id already open".into());
                return;
            }
            // Reserve a slot; opens beyond the cap are refused rather
            // than queued so the client sees backpressure explicitly.
            let reserved = shared
                .active
                .fetch_update(Ordering::AcqRel, Ordering::Acquire, |a| {
                    (a < shared.max_active as u64).then_some(a + 1)
                })
                .is_ok();
            if !reserved {
                refuse(writer, shared, session, "server at session capacity".into());
                return;
            }
            let choice = route(&req, shared.policy);
            // A stream-tagged open (`pair=`/`stream=` on the request
            // line) goes through the pair-context cache, so remote
            // streams share the pair's offline randomness state and its
            // hit rate shows up on `/metrics`.
            let plan = match req.pair {
                Some(pair) if req.stream.is_some() => {
                    let ctx =
                        shared
                            .pair_contexts
                            .get_or_create(pair, choice, req.spec, &shared.cache);
                    Arc::clone(ctx.plan())
                }
                _ => shared.cache.get_or_prepare(choice, req.spec),
            };
            let (tx, rx) = crossbeam_channel::unbounded();
            sessions
                .lock()
                .expect("session map poisoned")
                .insert(session, tx);
            metrics::session_opened();
            {
                let mut w = writer.lock().expect("connection writer poisoned");
                if write_frame(
                    &mut *w,
                    &WireFrame::Accept {
                        session,
                        protocol: choice.to_string(),
                    },
                )
                .is_err()
                {
                    drop(w);
                    sessions
                        .lock()
                        .expect("session map poisoned")
                        .remove(&session);
                    shared.active.fetch_sub(1, Ordering::AcqRel);
                    metrics::session_closed();
                    return;
                }
            }
            let run_shared = Arc::clone(shared);
            let run_writer = Arc::clone(writer);
            let run_sessions = Arc::clone(sessions);
            session_threads.push(std::thread::spawn(move || {
                let chan =
                    RemoteChan::new(session, run_writer.clone(), rx, run_shared.timeout, None);
                run_session(session, req, plan, chan, &run_writer, &run_shared);
                run_sessions
                    .lock()
                    .expect("session map poisoned")
                    .remove(&session);
                run_shared.active.fetch_sub(1, Ordering::AcqRel);
                metrics::session_closed();
            }));
        }
        WireFrame::Msg {
            session,
            depth,
            payload,
        } => {
            let delivered = sessions
                .lock()
                .expect("session map poisoned")
                .get(&session)
                .map(|tx| tx.send(SessionEvent::Msg { depth, payload }).is_ok())
                .unwrap_or(false);
            if !delivered {
                let mut w = writer.lock().expect("connection writer poisoned");
                let _ = write_frame(
                    &mut *w,
                    &WireFrame::Error {
                        session,
                        message: format!("unknown session id {session}"),
                    },
                );
            }
        }
        WireFrame::Fin { session } => {
            // A fin for a session that already completed and removed
            // itself is a benign race, not an error.
            if let Some(tx) = sessions.lock().expect("session map poisoned").get(&session) {
                let _ = tx.send(SessionEvent::Fin);
            }
        }
        // A client farewell: nothing to do — the stream's EOF ends the
        // connection once its sessions drain.
        WireFrame::Goodbye => {}
        // Client-side error report: surface to the session if it is
        // still live, otherwise drop it.
        WireFrame::Error { session, message } => {
            if let Some(tx) = sessions.lock().expect("session map poisoned").get(&session) {
                let _ = tx.send(SessionEvent::Error(message));
            }
        }
        // Frames only a server sends, arriving at the server: a peer
        // bug. Answer with an error so the client can diagnose.
        WireFrame::Accept { session, .. } | WireFrame::Done { session, .. } => {
            let mut w = writer.lock().expect("connection writer poisoned");
            let _ = write_frame(
                &mut *w,
                &WireFrame::Error {
                    session,
                    message: "unexpected server-role frame".into(),
                },
            );
        }
    }
}

fn run_session(
    session: u64,
    req: SessionRequest,
    plan: std::sync::Arc<dyn intersect_core::prepared::PreparedProtocol>,
    mut chan: RemoteChan,
    writer: &SharedWriter,
    shared: &Shared,
) {
    // The trace context rides the Open frame's request line; an untagged
    // line falls back to the same deterministic mint the client (or the
    // engine) would perform, so both halves land in one trace either way.
    let trace = req.trace_context();
    let _session_scope = obs::phase::SessionScope::enter(req.id, obs::Party::Bob);
    let _trace_scope = obs::TraceScope::enter(trace);
    let span = obs::phase::span("net", "session");
    let pair = req.input_pair();
    // `coin_seed`, not `seed`: a stream-tagged remote session must share
    // the pair-derived common random string with its client half and
    // with any standalone audit rerun.
    let coins = CoinSource::from_seed(req.coin_seed());
    let result = plan.execute(&mut chan, &coins, Side::Bob, &pair.t);
    let stats = chan.stats();
    span.finish(obs::CostDelta {
        bits_sent: stats.bits_sent,
        bits_received: stats.bits_received,
        rounds: stats.clock,
    });
    match result {
        Ok(out) => {
            shared.served.fetch_add(1, Ordering::Relaxed);
            obs::flight::record(
                obs::flight::CODE_COMPLETE,
                req.id,
                stats.bits_sent + stats.bits_received,
                stats.clock,
            );
            let mut w = writer.lock().expect("connection writer poisoned");
            // Fin first (the half is over, mirroring the in-process
            // endpoint's fin-on-drop), then the counters and result.
            let _ = write_frame(&mut *w, &WireFrame::Fin { session });
            let _ = write_frame(
                &mut *w,
                &WireFrame::Done {
                    session,
                    stats: chan.stats(),
                    result: out.as_slice().to_vec(),
                },
            );
        }
        Err(e) => {
            shared.failed.fetch_add(1, Ordering::Relaxed);
            obs::flight::record(
                obs::flight::CODE_FAIL,
                req.id,
                stats.bits_sent + stats.bits_received,
                stats.clock,
            );
            let mut w = writer.lock().expect("connection writer poisoned");
            let _ = write_frame(
                &mut *w,
                &WireFrame::Error {
                    session,
                    message: e.to_string(),
                },
            );
        }
    }
}
