//! The transport server: accepts connections, demultiplexes many
//! concurrent sessions per connection, and runs each session's server
//! half over the same router and plan cache the in-process engine uses.
//!
//! One thread accepts; one thread per connection reads and demuxes
//! frames into per-session queues; one thread per active session runs
//! the server (Bob) half of the routed protocol against a
//! [`RemoteChan`]. Writes from concurrent sessions share the
//! connection's write half under a mutex, one frame per acquisition.
//!
//! Shutdown is a drain, not a drop: [`NetServer::shutdown`] stops
//! admitting, waits for in-flight sessions to finish (bounded by the
//! configured drain window), sends [`WireFrame::Goodbye`] on every live
//! connection, and only then closes the sockets — so a SIGTERM during a
//! burst never kills a session mid-round.

use crate::chan::{RemoteChan, SessionEvent, SharedWriter};
use crate::frame::{read_frame, write_frame, FrameError, WireFrame};
use crate::metrics;
use crate::transport::{EndpointAddr, Listener, Stream};
use crossbeam_channel::{Receiver, Sender};
use intersect_comm::chan::Chan;
use intersect_comm::coins::CoinSource;
use intersect_comm::error::ProtocolError;
use intersect_comm::net::{LinkSender, LinkSet, PlayerCtx};
use intersect_comm::runner::Side;
use intersect_core::sets::ElementSet;
use intersect_engine::{
    route, MultipartyRequest, PairContextCache, PlanCache, RoutePolicy, SessionRequest,
};
use intersect_multiparty::choice::PlayerOutput;
use intersect_obs as obs;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server configuration.
#[derive(Debug, Clone)]
pub struct NetServerConfig {
    /// Where to listen.
    pub endpoint: EndpointAddr,
    /// Routing policy for requests without a per-line protocol override.
    pub policy: RoutePolicy,
    /// Cap on sessions executing concurrently across all connections;
    /// opens beyond it are refused with a clean error frame.
    pub max_active_sessions: usize,
    /// Per-receive timeout of each session's channel.
    pub session_timeout: Duration,
    /// How long [`NetServer::shutdown`] waits for in-flight sessions.
    pub drain_timeout: Duration,
}

impl NetServerConfig {
    /// Defaults: auto routing, 256 concurrent sessions, 30 s receives,
    /// 10 s drain.
    pub fn new(endpoint: EndpointAddr) -> NetServerConfig {
        NetServerConfig {
            endpoint,
            policy: RoutePolicy::default(),
            max_active_sessions: 256,
            session_timeout: Duration::from_secs(30),
            drain_timeout: Duration::from_secs(10),
        }
    }
}

/// Counters the server accumulated over its lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetSummary {
    /// Connections accepted.
    pub connections: u64,
    /// Sessions that ran to completion.
    pub sessions_served: u64,
    /// Sessions that failed with a protocol error.
    pub sessions_failed: u64,
    /// Session opens refused (draining, capacity, malformed).
    pub sessions_rejected: u64,
}

struct ConnCtl {
    writer: SharedWriter,
    stream: Stream,
}

struct Shared {
    policy: RoutePolicy,
    cache: PlanCache,
    pair_contexts: PairContextCache,
    max_active: usize,
    timeout: Duration,
    draining: AtomicBool,
    active: AtomicU64,
    connections: AtomicU64,
    served: AtomicU64,
    failed: AtomicU64,
    rejected: AtomicU64,
    conns: Mutex<HashMap<u64, ConnCtl>>,
    conn_threads: Mutex<Vec<JoinHandle<()>>>,
}

/// A running transport server. Dropping it shuts it down (with drain).
#[derive(Debug)]
pub struct NetServer {
    local: EndpointAddr,
    shared: Arc<Shared>,
    drain: Duration,
    accept_thread: Option<JoinHandle<()>>,
    stopped: bool,
}

impl std::fmt::Debug for Shared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Shared(active={}, draining={})",
            self.active.load(Ordering::Relaxed),
            self.draining.load(Ordering::Relaxed)
        )
    }
}

impl NetServer {
    /// Binds the endpoint and starts accepting.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn start(config: NetServerConfig) -> std::io::Result<NetServer> {
        metrics::describe_net_metrics();
        let listener = Listener::bind(&config.endpoint)?;
        let local = listener.local_addr();
        let shared = Arc::new(Shared {
            policy: config.policy,
            cache: PlanCache::new(),
            pair_contexts: PairContextCache::new(),
            max_active: config.max_active_sessions.max(1),
            timeout: config.session_timeout,
            draining: AtomicBool::new(false),
            active: AtomicU64::new(0),
            connections: AtomicU64::new(0),
            served: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            conns: Mutex::new(HashMap::new()),
            conn_threads: Mutex::new(Vec::new()),
        });
        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::spawn(move || accept_loop(listener, accept_shared));
        Ok(NetServer {
            local,
            shared,
            drain: config.drain_timeout,
            accept_thread: Some(accept_thread),
            stopped: false,
        })
    }

    /// The endpoint actually bound (real port for `tcp:…:0`).
    pub fn local_addr(&self) -> &EndpointAddr {
        &self.local
    }

    /// Sessions currently executing.
    pub fn active_sessions(&self) -> u64 {
        self.shared.active.load(Ordering::Acquire)
    }

    /// Lifetime counters so far.
    pub fn summary(&self) -> NetSummary {
        NetSummary {
            connections: self.shared.connections.load(Ordering::Relaxed),
            sessions_served: self.shared.served.load(Ordering::Relaxed),
            sessions_failed: self.shared.failed.load(Ordering::Relaxed),
            sessions_rejected: self.shared.rejected.load(Ordering::Relaxed),
        }
    }

    /// Drains and stops: refuses new sessions, waits (up to the drain
    /// window) for in-flight ones, says [`WireFrame::Goodbye`] on every
    /// live connection, closes sockets, and joins every thread.
    pub fn shutdown(&mut self) -> NetSummary {
        if self.stopped {
            return self.summary();
        }
        self.stopped = true;
        self.shared.draining.store(true, Ordering::Release);

        // Drain: in-flight sessions keep their connections and finish.
        let deadline = Instant::now() + self.drain;
        while self.shared.active.load(Ordering::Acquire) > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }

        // Farewell on every live connection, then unblock its reader.
        {
            let conns = self.shared.conns.lock().expect("conn registry poisoned");
            for ctl in conns.values() {
                if let Ok(mut w) = ctl.writer.lock() {
                    let _ = write_frame(&mut *w, &WireFrame::Goodbye);
                }
                ctl.stream.shutdown();
            }
        }

        // Unblock the accept loop with a throwaway connection; it checks
        // the draining flag before serving what it accepted.
        let _ = Stream::connect(&self.local);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        let threads: Vec<JoinHandle<()>> = std::mem::take(
            &mut *self
                .shared
                .conn_threads
                .lock()
                .expect("conn threads poisoned"),
        );
        for t in threads {
            let _ = t.join();
        }
        self.summary()
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: Listener, shared: Arc<Shared>) {
    let mut next_conn = 0u64;
    loop {
        let stream = match listener.accept() {
            Ok(s) => s,
            Err(_) => {
                if shared.draining.load(Ordering::Acquire) {
                    break;
                }
                continue;
            }
        };
        if shared.draining.load(Ordering::Acquire) {
            stream.shutdown();
            break;
        }
        next_conn += 1;
        let conn_id = next_conn;
        shared.connections.fetch_add(1, Ordering::Relaxed);
        metrics::connection_delta(1);
        let conn_shared = Arc::clone(&shared);
        let handle = std::thread::spawn(move || {
            conn_loop(conn_id, stream, conn_shared);
        });
        shared
            .conn_threads
            .lock()
            .expect("conn threads poisoned")
            .push(handle);
    }
    listener.cleanup();
}

type SessionMap = Arc<Mutex<HashMap<u64, Sender<SessionEvent>>>>;

fn conn_loop(conn_id: u64, stream: Stream, shared: Arc<Shared>) {
    let writer: SharedWriter = match stream.try_clone() {
        Ok(w) => Arc::new(Mutex::new(w)),
        Err(_) => {
            metrics::connection_delta(-1);
            return;
        }
    };
    if let Ok(ctl_stream) = stream.try_clone() {
        shared.conns.lock().expect("conn registry poisoned").insert(
            conn_id,
            ConnCtl {
                writer: Arc::clone(&writer),
                stream: ctl_stream,
            },
        );
    }
    let sessions: SessionMap = Arc::new(Mutex::new(HashMap::new()));
    let mut session_threads: Vec<JoinHandle<()>> = Vec::new();
    let mut reader = stream;

    loop {
        match read_frame(&mut reader) {
            Ok(Some(frame)) => {
                handle_frame(frame, &shared, &writer, &sessions, &mut session_threads)
            }
            // Clean end-of-stream at a frame boundary: client is done.
            Ok(None) => break,
            Err(FrameError::Io(_)) | Err(FrameError::Truncated) => break,
            // A framing violation poisons the byte stream (we can no
            // longer find the next frame boundary): report and hang up.
            Err(e) => {
                let mut w = writer.lock().expect("connection writer poisoned");
                let _ = write_frame(
                    &mut *w,
                    &WireFrame::Error {
                        session: 0,
                        message: format!("protocol violation: {e}"),
                    },
                );
                break;
            }
        }
    }

    // Whatever is still registered sees the connection close...
    {
        let map = sessions.lock().expect("session map poisoned");
        for tx in map.values() {
            let _ = tx.send(SessionEvent::Closed);
        }
    }
    // ...and every session half is joined before the connection retires.
    for t in session_threads {
        let _ = t.join();
    }
    shared
        .conns
        .lock()
        .expect("conn registry poisoned")
        .remove(&conn_id);
    metrics::connection_delta(-1);
}

fn refuse(writer: &SharedWriter, shared: &Shared, session: u64, message: String) {
    shared.rejected.fetch_add(1, Ordering::Relaxed);
    metrics::session_rejected();
    obs::flight::record(obs::flight::CODE_REJECT, session, 0, 0);
    let mut w = writer.lock().expect("connection writer poisoned");
    let _ = write_frame(&mut *w, &WireFrame::Error { session, message });
}

fn handle_frame(
    frame: WireFrame,
    shared: &Arc<Shared>,
    writer: &SharedWriter,
    sessions: &SessionMap,
    session_threads: &mut Vec<JoinHandle<()>>,
) {
    match frame {
        WireFrame::Open { session, line } => {
            if shared.draining.load(Ordering::Acquire) {
                refuse(writer, shared, session, "server is draining".into());
                return;
            }
            // The party-count tag on the request line is what switches
            // an Open from the two-party path to a server-hosted mesh.
            if is_multiparty_line(&line) {
                open_multiparty(session, &line, shared, writer, sessions, session_threads);
                return;
            }
            let req = match SessionRequest::parse_line(&line) {
                Ok(Some(req)) => req,
                Ok(None) => {
                    refuse(writer, shared, session, "empty request line".into());
                    return;
                }
                Err(e) => {
                    refuse(writer, shared, session, format!("bad request: {e}"));
                    return;
                }
            };
            if sessions
                .lock()
                .expect("session map poisoned")
                .contains_key(&session)
            {
                refuse(writer, shared, session, "session id already open".into());
                return;
            }
            // Reserve a slot; opens beyond the cap are refused rather
            // than queued so the client sees backpressure explicitly.
            let reserved = shared
                .active
                .fetch_update(Ordering::AcqRel, Ordering::Acquire, |a| {
                    (a < shared.max_active as u64).then_some(a + 1)
                })
                .is_ok();
            if !reserved {
                refuse(writer, shared, session, "server at session capacity".into());
                return;
            }
            let choice = route(&req, shared.policy);
            // A stream-tagged open (`pair=`/`stream=` on the request
            // line) goes through the pair-context cache, so remote
            // streams share the pair's offline randomness state and its
            // hit rate shows up on `/metrics`.
            let plan = match req.pair {
                Some(pair) if req.stream.is_some() => {
                    let ctx =
                        shared
                            .pair_contexts
                            .get_or_create(pair, choice, req.spec, &shared.cache);
                    Arc::clone(ctx.plan())
                }
                _ => shared.cache.get_or_prepare(choice, req.spec),
            };
            let (tx, rx) = crossbeam_channel::unbounded();
            sessions
                .lock()
                .expect("session map poisoned")
                .insert(session, tx);
            metrics::session_opened();
            {
                let mut w = writer.lock().expect("connection writer poisoned");
                if write_frame(
                    &mut *w,
                    &WireFrame::Accept {
                        session,
                        protocol: choice.to_string(),
                    },
                )
                .is_err()
                {
                    drop(w);
                    sessions
                        .lock()
                        .expect("session map poisoned")
                        .remove(&session);
                    shared.active.fetch_sub(1, Ordering::AcqRel);
                    metrics::session_closed();
                    return;
                }
            }
            let run_shared = Arc::clone(shared);
            let run_writer = Arc::clone(writer);
            let run_sessions = Arc::clone(sessions);
            session_threads.push(std::thread::spawn(move || {
                let chan =
                    RemoteChan::new(session, run_writer.clone(), rx, run_shared.timeout, None);
                run_session(session, req, plan, chan, &run_writer, &run_shared);
                run_sessions
                    .lock()
                    .expect("session map poisoned")
                    .remove(&session);
                run_shared.active.fetch_sub(1, Ordering::AcqRel);
                metrics::session_closed();
            }));
        }
        WireFrame::Msg {
            session,
            depth,
            payload,
        } => {
            deliver_or_refuse(
                writer,
                sessions,
                session,
                SessionEvent::Msg { depth, payload },
            );
        }
        WireFrame::MpMsg {
            session,
            peer,
            depth,
            payload,
        } => {
            deliver_or_refuse(
                writer,
                sessions,
                session,
                SessionEvent::MpMsg {
                    peer: peer as usize,
                    depth,
                    payload,
                },
            );
        }
        WireFrame::MpOut {
            session,
            intersection,
            verdict,
        } => {
            deliver_or_refuse(
                writer,
                sessions,
                session,
                SessionEvent::MpOut {
                    intersection,
                    verdict,
                },
            );
        }
        WireFrame::Fin { session } => {
            // A fin for a session that already completed and removed
            // itself is a benign race, not an error.
            if let Some(tx) = sessions.lock().expect("session map poisoned").get(&session) {
                let _ = tx.send(SessionEvent::Fin);
            }
        }
        // A client farewell: nothing to do — the stream's EOF ends the
        // connection once its sessions drain.
        WireFrame::Goodbye => {}
        // Client-side error report: surface to the session if it is
        // still live, otherwise drop it.
        WireFrame::Error { session, message } => {
            if let Some(tx) = sessions.lock().expect("session map poisoned").get(&session) {
                let _ = tx.send(SessionEvent::Error(message));
            }
        }
        // Frames only a server sends, arriving at the server: a peer
        // bug. Answer with an error so the client can diagnose.
        WireFrame::Accept { session, .. }
        | WireFrame::Done { session, .. }
        | WireFrame::MpDone { session, .. } => {
            let mut w = writer.lock().expect("connection writer poisoned");
            let _ = write_frame(
                &mut *w,
                &WireFrame::Error {
                    session,
                    message: "unexpected server-role frame".into(),
                },
            );
        }
    }
}

/// Routes one mid-session event to its session, or answers with an
/// unknown-session error if nothing is registered under that id.
fn deliver_or_refuse(
    writer: &SharedWriter,
    sessions: &SessionMap,
    session: u64,
    event: SessionEvent,
) {
    let delivered = sessions
        .lock()
        .expect("session map poisoned")
        .get(&session)
        .map(|tx| tx.send(event).is_ok())
        .unwrap_or(false);
    if !delivered {
        let mut w = writer.lock().expect("connection writer poisoned");
        let _ = write_frame(
            &mut *w,
            &WireFrame::Error {
                session,
                message: format!("unknown session id {session}"),
            },
        );
    }
}

/// `true` iff an Open request line carries the multiparty tag — the
/// `players=`/`mp=` keys only [`MultipartyRequest`] lines use.
fn is_multiparty_line(line: &str) -> bool {
    line.split_whitespace()
        .any(|token| matches!(token.split_once('='), Some(("players" | "mp", _))))
}

/// Admits one remote m-party session: parses the multiparty request
/// line, reserves one session slot (the whole mesh counts as one
/// session), warms the tournament plan cache, answers Accept, and spawns
/// the session thread hosting the m−1 local players plus the proxy for
/// the remotely driven one.
fn open_multiparty(
    session: u64,
    line: &str,
    shared: &Arc<Shared>,
    writer: &SharedWriter,
    sessions: &SessionMap,
    session_threads: &mut Vec<JoinHandle<()>>,
) {
    let req = match MultipartyRequest::parse_line(line) {
        Ok(Some(req)) => req,
        Ok(None) => {
            refuse(writer, shared, session, "empty request line".into());
            return;
        }
        Err(e) => {
            refuse(writer, shared, session, format!("bad request: {e}"));
            return;
        }
    };
    if sessions
        .lock()
        .expect("session map poisoned")
        .contains_key(&session)
    {
        refuse(writer, shared, session, "session id already open".into());
        return;
    }
    let reserved = shared
        .active
        .fetch_update(Ordering::AcqRel, Ordering::Acquire, |a| {
            (a < shared.max_active as u64).then_some(a + 1)
        })
        .is_ok();
    if !reserved {
        refuse(writer, shared, session, "server at session capacity".into());
        return;
    }
    // Warm the generation-tagged tournament plan cache: repeated opens
    // of the same (protocol, spec, m) shape hit the cached plan exactly
    // like engine-hosted sessions do.
    let _plan = shared
        .cache
        .get_or_tournament(req.choice, req.spec, req.players);
    let (tx, rx) = crossbeam_channel::unbounded();
    sessions
        .lock()
        .expect("session map poisoned")
        .insert(session, tx);
    metrics::session_opened();
    {
        let mut w = writer.lock().expect("connection writer poisoned");
        if write_frame(
            &mut *w,
            &WireFrame::Accept {
                session,
                protocol: req.choice.to_string(),
            },
        )
        .is_err()
        {
            drop(w);
            sessions
                .lock()
                .expect("session map poisoned")
                .remove(&session);
            shared.active.fetch_sub(1, Ordering::AcqRel);
            metrics::session_closed();
            return;
        }
    }
    let run_shared = Arc::clone(shared);
    let run_writer = Arc::clone(writer);
    let run_sessions = Arc::clone(sessions);
    session_threads.push(std::thread::spawn(move || {
        run_multiparty_session(session, req, rx, &run_writer, &run_shared);
        run_sessions
            .lock()
            .expect("session map poisoned")
            .remove(&session);
        run_shared.active.fetch_sub(1, Ordering::AcqRel);
        metrics::session_closed();
    }));
}

/// Hosts one remote m-party session: builds the mesh, runs the m−1
/// local player halves with inputs regenerated from the request, proxies
/// the remotely driven player over the wire, and answers with the folded
/// [`WireFrame::MpDone`] outcome (or an error frame).
fn run_multiparty_session(
    session: u64,
    req: MultipartyRequest,
    rx: Receiver<SessionEvent>,
    writer: &SharedWriter,
    shared: &Shared,
) {
    let _session_scope = obs::phase::SessionScope::enter(req.id, obs::Party::Bob);
    let span = obs::phase::span("net", "mp-session");
    let driven = req.player.unwrap_or(0);
    let sets = req.player_sets();
    let mut links = LinkSet::new(req.players, req.seed, shared.timeout);
    let outcome = links.run(|pctx| {
        if pctx.id() == driven {
            proxy_remote_player(pctx, session, &rx, writer, shared.timeout)
        } else {
            req.choice
                .run_player(req.spec, req.tree_rounds, pctx, &sets[pctx.id()])
        }
    });
    match outcome {
        Ok(net) => {
            span.finish(obs::CostDelta {
                bits_sent: net.report.total_bits(),
                bits_received: net.report.total_bits(),
                rounds: net.report.rounds,
            });
            shared.served.fetch_add(1, Ordering::Relaxed);
            obs::flight::record(
                obs::flight::CODE_COMPLETE,
                req.id,
                net.report.total_bits(),
                net.report.rounds,
            );
            if obs::enabled() {
                let m = req.players.to_string();
                obs::counter_add(
                    &obs::metrics::labeled("multiparty_sessions_total", &[("m", &m)]),
                    1,
                );
                obs::counter_add("multiparty_bits_total", net.report.total_bits());
                // Pooled per-player summary, matching the engine's
                // family shape: one observation per player per session
                // keeps the cardinality bounded at any m.
                for (sent, received) in net.report.bits_sent.iter().zip(&net.report.bits_received) {
                    obs::observe("multiparty_player_bits", sent + received);
                }
            }
            let mut holder = None;
            let mut result = Vec::new();
            let mut verdicts = Vec::with_capacity(req.players);
            for (i, out) in net.outputs.iter().enumerate() {
                if holder.is_none() {
                    if let Some(set) = &out.intersection {
                        holder = Some(i as u32);
                        result = set.as_slice().to_vec();
                    }
                }
                verdicts.push(out.verdict);
            }
            let mut w = writer.lock().expect("connection writer poisoned");
            let _ = write_frame(
                &mut *w,
                &WireFrame::MpDone {
                    session,
                    holder,
                    result,
                    verdicts,
                    report: net.report,
                },
            );
        }
        Err(e) => {
            span.finish(obs::CostDelta::default());
            shared.failed.fetch_add(1, Ordering::Relaxed);
            obs::flight::record(obs::flight::CODE_FAIL, req.id, 0, 0);
            let mut w = writer.lock().expect("connection writer poisoned");
            let _ = write_frame(
                &mut *w,
                &WireFrame::Error {
                    session,
                    message: e.to_string(),
                },
            );
        }
    }
}

/// Represents the remotely driven player inside the server-hosted mesh.
///
/// Every pairwise link of the driven player is split into raw halves:
/// forwarder threads shuttle mesh→wire traffic as [`WireFrame::MpMsg`]
/// frames (depths stamped by the in-process senders, forwarded
/// verbatim), while this thread pumps wire→mesh traffic into the
/// matching [`LinkSender`] halves. The halves meter the driven player's
/// shared counters exactly like attached links, and the receiver
/// halves' folded depths merge back into the player clock at the end —
/// which is what makes the hosted session's [`NetworkReport`]
/// bit-identical to an all-local run (`split_halves_meter_like_whole_link`
/// in `intersect-comm` pins the substrate half of that argument).
fn proxy_remote_player(
    ctx: &mut PlayerCtx,
    session: u64,
    rx: &Receiver<SessionEvent>,
    writer: &SharedWriter,
    timeout: Duration,
) -> Result<PlayerOutput, ProtocolError> {
    let m = ctx.players();
    let driven = ctx.id();
    let stop = AtomicBool::new(false);
    let mut senders: Vec<Option<LinkSender>> = (0..m).map(|_| None).collect();
    let mut receivers = Vec::with_capacity(m.saturating_sub(1));
    for peer in (0..m).filter(|&p| p != driven) {
        let (tx_half, rx_half) = ctx.take_link(peer).split();
        senders[peer] = Some(tx_half);
        receivers.push((peer, rx_half));
    }
    let (mut result, receivers) = std::thread::scope(|scope| {
        let forwarders: Vec<_> = receivers
            .into_iter()
            .map(|(peer, mut rx_half)| {
                let stop = &stop;
                scope.spawn(move || {
                    let mut failure = None;
                    loop {
                        match rx_half.recv_raw(Duration::from_millis(5)) {
                            Ok(Some((depth, payload))) => {
                                let frame = WireFrame::MpMsg {
                                    session,
                                    peer: peer as u32,
                                    depth,
                                    payload,
                                };
                                let mut w = writer.lock().expect("connection writer poisoned");
                                if write_frame(&mut *w, &frame).is_err() {
                                    failure = Some(ProtocolError::ChannelClosed);
                                    break;
                                }
                            }
                            // recv_raw polls: Ok(None) is just "nothing
                            // yet" — keep draining until told to stop.
                            Ok(None) => {
                                if stop.load(Ordering::Acquire) {
                                    break;
                                }
                            }
                            Err(e) => {
                                if !stop.load(Ordering::Acquire) {
                                    failure = Some(e);
                                }
                                break;
                            }
                        }
                    }
                    (rx_half, failure)
                })
            })
            .collect();

        // Pump wire→mesh traffic until the driven player's output (or a
        // failure) arrives.
        let result = loop {
            match rx.recv_timeout(timeout) {
                Ok(SessionEvent::MpMsg {
                    peer,
                    depth,
                    payload,
                }) => match senders.get(peer).and_then(Option::as_ref) {
                    Some(tx) => {
                        if let Err(e) = tx.send_raw(depth, payload) {
                            break Err(e);
                        }
                    }
                    None => {
                        break Err(ProtocolError::Internal(format!(
                            "message addressed to invalid peer {peer}"
                        )))
                    }
                },
                Ok(SessionEvent::MpOut {
                    intersection,
                    verdict,
                }) => {
                    break Ok(PlayerOutput {
                        intersection: intersection.map(ElementSet::from_sorted),
                        verdict,
                    })
                }
                Ok(SessionEvent::Error(msg)) => {
                    break Err(ProtocolError::Internal(format!(
                        "remote player failed: {msg}"
                    )))
                }
                Ok(SessionEvent::Fin) | Ok(SessionEvent::Closed) => {
                    break Err(ProtocolError::ChannelClosed)
                }
                Ok(_) => {
                    break Err(ProtocolError::Internal(
                        "unexpected frame in multiparty session".into(),
                    ))
                }
                Err(crossbeam_channel::RecvTimeoutError::Timeout) => {
                    break Err(ProtocolError::Timeout)
                }
                Err(crossbeam_channel::RecvTimeoutError::Disconnected) => {
                    break Err(ProtocolError::ChannelClosed)
                }
            }
        };
        stop.store(true, Ordering::Release);
        let halves: Vec<_> = forwarders
            .into_iter()
            .map(|h| h.join().expect("forwarder panicked"))
            .collect();
        (result, halves)
    });
    // Merge the receiver halves' folded causal depths back into the
    // player clock, exactly as `return_link` would for an attached link.
    for (rx_half, failure) in receivers {
        ctx.fold_clock(rx_half.clock());
        if result.is_ok() {
            if let Some(e) = failure {
                result = Err(e);
            }
        }
    }
    result
}

fn run_session(
    session: u64,
    req: SessionRequest,
    plan: std::sync::Arc<dyn intersect_core::prepared::PreparedProtocol>,
    mut chan: RemoteChan,
    writer: &SharedWriter,
    shared: &Shared,
) {
    // The trace context rides the Open frame's request line; an untagged
    // line falls back to the same deterministic mint the client (or the
    // engine) would perform, so both halves land in one trace either way.
    let trace = req.trace_context();
    let _session_scope = obs::phase::SessionScope::enter(req.id, obs::Party::Bob);
    let _trace_scope = obs::TraceScope::enter(trace);
    let span = obs::phase::span("net", "session");
    let pair = req.input_pair();
    // `coin_seed`, not `seed`: a stream-tagged remote session must share
    // the pair-derived common random string with its client half and
    // with any standalone audit rerun.
    let coins = CoinSource::from_seed(req.coin_seed());
    let result = plan.execute(&mut chan, &coins, Side::Bob, &pair.t);
    let stats = chan.stats();
    span.finish(obs::CostDelta {
        bits_sent: stats.bits_sent,
        bits_received: stats.bits_received,
        rounds: stats.clock,
    });
    match result {
        Ok(out) => {
            shared.served.fetch_add(1, Ordering::Relaxed);
            obs::flight::record(
                obs::flight::CODE_COMPLETE,
                req.id,
                stats.bits_sent + stats.bits_received,
                stats.clock,
            );
            let mut w = writer.lock().expect("connection writer poisoned");
            // Fin first (the half is over, mirroring the in-process
            // endpoint's fin-on-drop), then the counters and result.
            let _ = write_frame(&mut *w, &WireFrame::Fin { session });
            let _ = write_frame(
                &mut *w,
                &WireFrame::Done {
                    session,
                    stats: chan.stats(),
                    result: out.as_slice().to_vec(),
                },
            );
        }
        Err(e) => {
            shared.failed.fetch_add(1, Ordering::Relaxed);
            obs::flight::record(
                obs::flight::CODE_FAIL,
                req.id,
                stats.bits_sent + stats.bits_received,
                stats.clock,
            );
            let mut w = writer.lock().expect("connection writer poisoned");
            let _ = write_frame(
                &mut *w,
                &WireFrame::Error {
                    session,
                    message: e.to_string(),
                },
            );
        }
    }
}
