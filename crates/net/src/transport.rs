//! Byte-stream transports: TCP and Unix-domain sockets behind one
//! blocking `Read + Write` surface, plus the `tcp:ADDR` / `unix:PATH`
//! endpoint syntax shared by `intersect-serve --transport`, the client,
//! and `loadgen`.

use std::io::{self, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::time::Duration;

/// A parsed transport endpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EndpointAddr {
    /// `tcp:HOST:PORT` (port 0 binds a free port).
    Tcp(String),
    /// `unix:PATH` (the server unlinks the path on shutdown).
    Unix(String),
}

impl EndpointAddr {
    /// Parses `tcp:ADDR` or `unix:PATH`.
    ///
    /// # Errors
    ///
    /// Describes the expected syntax on anything else.
    pub fn parse(spec: &str) -> Result<EndpointAddr, String> {
        if let Some(addr) = spec.strip_prefix("tcp:") {
            if addr.is_empty() {
                return Err("tcp endpoint needs an address, e.g. tcp:127.0.0.1:4000".into());
            }
            return Ok(EndpointAddr::Tcp(addr.to_string()));
        }
        if let Some(path) = spec.strip_prefix("unix:") {
            if path.is_empty() {
                return Err("unix endpoint needs a path, e.g. unix:/tmp/intersect.sock".into());
            }
            return Ok(EndpointAddr::Unix(path.to_string()));
        }
        Err(format!(
            "unrecognized transport {spec:?}: expected tcp:ADDR or unix:PATH"
        ))
    }
}

impl std::fmt::Display for EndpointAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EndpointAddr::Tcp(a) => write!(f, "tcp:{a}"),
            EndpointAddr::Unix(p) => write!(f, "unix:{p}"),
        }
    }
}

/// A connected byte stream over either transport.
#[derive(Debug)]
pub enum Stream {
    /// A TCP connection.
    Tcp(TcpStream),
    /// A Unix-domain connection.
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Stream {
    /// Connects to `addr`, with `TCP_NODELAY` set on TCP so one frame
    /// means one segment — the protocols here are round-trip bound.
    ///
    /// # Errors
    ///
    /// Propagates connect failures; on non-Unix platforms a `unix:`
    /// endpoint is unsupported.
    pub fn connect(addr: &EndpointAddr) -> io::Result<Stream> {
        match addr {
            EndpointAddr::Tcp(a) => {
                let s = TcpStream::connect(a)?;
                s.set_nodelay(true)?;
                Ok(Stream::Tcp(s))
            }
            #[cfg(unix)]
            EndpointAddr::Unix(p) => Ok(Stream::Unix(UnixStream::connect(p)?)),
            #[cfg(not(unix))]
            EndpointAddr::Unix(_) => Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "unix sockets are not available on this platform",
            )),
        }
    }

    /// A second handle to the same connection (for a reader thread).
    ///
    /// # Errors
    ///
    /// Propagates the OS duplication failure.
    pub fn try_clone(&self) -> io::Result<Stream> {
        match self {
            Stream::Tcp(s) => Ok(Stream::Tcp(s.try_clone()?)),
            #[cfg(unix)]
            Stream::Unix(s) => Ok(Stream::Unix(s.try_clone()?)),
        }
    }

    /// Shuts down both directions, unblocking any reader.
    pub fn shutdown(&self) {
        match self {
            Stream::Tcp(s) => {
                let _ = s.shutdown(Shutdown::Both);
            }
            #[cfg(unix)]
            Stream::Unix(s) => {
                let _ = s.shutdown(Shutdown::Both);
            }
        }
    }

    /// Bounds blocking reads so a dead peer cannot wedge a reader
    /// thread forever.
    ///
    /// # Errors
    ///
    /// Propagates the setsockopt failure.
    pub fn set_read_timeout(&self, dur: Option<Duration>) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.set_read_timeout(dur),
            #[cfg(unix)]
            Stream::Unix(s) => s.set_read_timeout(dur),
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Stream::Unix(s) => s.flush(),
        }
    }
}

/// A bound listener over either transport.
#[derive(Debug)]
pub enum Listener {
    /// A TCP listener.
    Tcp(TcpListener),
    /// A Unix-domain listener (remembers its path for unlink-on-drop).
    #[cfg(unix)]
    Unix(UnixListener, String),
}

impl Listener {
    /// Binds `addr`. An existing Unix socket path is unlinked first so a
    /// crashed predecessor does not block a restart.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn bind(addr: &EndpointAddr) -> io::Result<Listener> {
        match addr {
            EndpointAddr::Tcp(a) => Ok(Listener::Tcp(TcpListener::bind(a)?)),
            #[cfg(unix)]
            EndpointAddr::Unix(p) => {
                let _ = std::fs::remove_file(p);
                Ok(Listener::Unix(UnixListener::bind(p)?, p.clone()))
            }
            #[cfg(not(unix))]
            EndpointAddr::Unix(_) => Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "unix sockets are not available on this platform",
            )),
        }
    }

    /// The endpoint this listener is actually bound to (with the real
    /// port when `tcp:…:0` was requested).
    pub fn local_addr(&self) -> EndpointAddr {
        match self {
            Listener::Tcp(l) => EndpointAddr::Tcp(
                l.local_addr()
                    .map(|a| a.to_string())
                    .unwrap_or_else(|_| "?".into()),
            ),
            #[cfg(unix)]
            Listener::Unix(_, p) => EndpointAddr::Unix(p.clone()),
        }
    }

    /// Accepts the next connection (`TCP_NODELAY` set on TCP).
    ///
    /// # Errors
    ///
    /// Propagates accept failures.
    pub fn accept(&self) -> io::Result<Stream> {
        match self {
            Listener::Tcp(l) => {
                let (s, _) = l.accept()?;
                s.set_nodelay(true)?;
                Ok(Stream::Tcp(s))
            }
            #[cfg(unix)]
            Listener::Unix(l, _) => {
                let (s, _) = l.accept()?;
                Ok(Stream::Unix(s))
            }
        }
    }

    /// Removes a Unix listener's socket file (no-op for TCP).
    pub fn cleanup(&self) {
        #[cfg(unix)]
        if let Listener::Unix(_, p) = self {
            let _ = std::fs::remove_file(p);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoint_syntax_parses_and_displays() {
        assert_eq!(
            EndpointAddr::parse("tcp:127.0.0.1:0"),
            Ok(EndpointAddr::Tcp("127.0.0.1:0".into()))
        );
        assert_eq!(
            EndpointAddr::parse("unix:/tmp/x.sock"),
            Ok(EndpointAddr::Unix("/tmp/x.sock".into()))
        );
        assert!(EndpointAddr::parse("http:foo").is_err());
        assert!(EndpointAddr::parse("tcp:").is_err());
        assert!(EndpointAddr::parse("unix:").is_err());
        assert_eq!(
            EndpointAddr::parse("tcp:127.0.0.1:0").unwrap().to_string(),
            "tcp:127.0.0.1:0"
        );
    }
}
