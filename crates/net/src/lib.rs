//! # intersect-net
//!
//! The framed network transport plane: intersection sessions over real
//! sockets, with the exact bit accounting of the in-process substrate.
//!
//! Everything above this crate is written against the
//! [`Chan`](intersect_comm::chan::Chan) trait, whose in-process
//! implementation meters every payload bit and maintains a causal round
//! clock. This crate adds the missing production half: a
//! length-prefixed wire protocol ([`frame`]) carrying
//! [`BitBuf`](intersect_comm::bits::BitBuf) payloads with their exact
//! bit lengths plus session-multiplexing headers, a [`server`] that
//! demultiplexes many concurrent sessions per connection onto the
//! engine's router and plan cache, and a [`client`] exposing the same
//! session API against a remote endpoint.
//!
//! The design invariant, proven by experiment E21 and the integration
//! tests: **a remote session's transcript and
//! [`CostReport`](intersect_comm::stats::CostReport) are bit-identical
//! to the same session run in process.** Only
//! [`WireFrame::Msg`](frame::WireFrame::Msg) payload bits are metered;
//! framing (length prefixes, session ids, depth tags) and control
//! frames (Open/Accept/Fin/Done/Error/Goodbye) are transport overhead,
//! accounted separately in the `net_*` metrics ([`metrics`]).
//!
//! # Example
//!
//! ```
//! use intersect_net::prelude::*;
//! use intersect_core::sets::ProblemSpec;
//! use intersect_engine::SessionRequest;
//!
//! let mut server = NetServer::start(NetServerConfig::new(
//!     EndpointAddr::parse("tcp:127.0.0.1:0")?,
//! ))?;
//! let client = NetClient::connect(&server.local_addr().to_string())?;
//!
//! let req = SessionRequest::new(1, ProblemSpec::new(1 << 16, 16), 5);
//! let run = client.run(&req).expect("remote session");
//! assert!(run.matches(&req.input_pair().ground_truth()));
//!
//! drop(client);
//! server.shutdown();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod client;
pub mod frame;
pub mod metrics;
pub mod server;
pub mod transport;

mod chan;

/// The commonly used surface of the transport plane.
pub mod prelude {
    pub use crate::client::{ClientTimeline, NetClient, RemoteMultipartyRun, RemoteRun};
    pub use crate::frame::{WireFrame, MAX_BODY_BYTES};
    pub use crate::metrics::describe_net_metrics;
    pub use crate::server::{NetServer, NetServerConfig, NetSummary};
    pub use crate::transport::EndpointAddr;
}

pub use client::{ClientTimeline, NetClient, RemoteMultipartyRun, RemoteRun};
pub use server::{NetServer, NetServerConfig, NetSummary};
pub use transport::EndpointAddr;
