//! [`Chan`] over a framed socket: the remote counterpart of the
//! in-process [`Endpoint`](intersect_comm::chan::Endpoint).
//!
//! A [`RemoteChan`] meters exactly what the in-process endpoint meters —
//! payload bits and message counts on [`WireFrame::Msg`] frames only,
//! causal depth stamped as `clock + 1` on send and folded in with `max`
//! on receive — so a protocol half executed over a socket produces a
//! [`ChannelStats`] bit-identical to the same half executed in process.
//! Framing bytes (length prefixes, type tags, session ids) are
//! transport overhead, visible in `net_frame_bytes_total` but never in
//! `ChannelStats`: the paper's cost model counts protocol bits, and the
//! wire format is built so the two ledgers stay separable.

use crate::frame::{write_frame, WireFrame};
use crate::transport::Stream;
use crossbeam_channel::Receiver;
use intersect_comm::bits::BitBuf;
use intersect_comm::chan::Chan;
use intersect_comm::error::ProtocolError;
use intersect_comm::stats::{ChannelStats, NetworkReport};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// The write half of a connection, shared by every session multiplexed
/// onto it. One frame is written per lock acquisition, so frames from
/// concurrent sessions interleave but never tear.
pub(crate) type SharedWriter = Arc<Mutex<Stream>>;

/// What a connection's reader thread delivers to one session.
#[derive(Debug)]
pub(crate) enum SessionEvent {
    /// Server accepted the session and routed it to the named protocol.
    Accept(String),
    /// A protocol message.
    Msg {
        /// Sender's causal depth.
        depth: u64,
        /// The payload.
        payload: BitBuf,
    },
    /// The peer's half of the session is over.
    Fin,
    /// Server half completed: final counters plus its output.
    Done {
        /// Server-side channel counters.
        stats: ChannelStats,
        /// Server party's computed intersection.
        result: Vec<u64>,
    },
    /// The peer reported a session failure.
    Error(String),
    /// The connection itself went away.
    Closed,
    /// A multiparty protocol message for the pairwise link to `peer`.
    MpMsg {
        /// Mesh player on the other end of the link.
        peer: usize,
        /// Sender's causal depth.
        depth: u64,
        /// The payload.
        payload: BitBuf,
    },
    /// The remotely driven player's final output (server side only).
    MpOut {
        /// Its computed intersection, if it holds one.
        intersection: Option<Vec<u64>>,
        /// Its disjointness verdict, if any.
        verdict: Option<bool>,
    },
    /// The whole m-party session completed (client side only).
    MpDone {
        /// The player left holding the intersection, if any.
        holder: Option<usize>,
        /// The holder's computed global intersection.
        result: Vec<u64>,
        /// Per-player disjointness verdicts.
        verdicts: Vec<Option<bool>>,
        /// Exact per-player communication and round accounting.
        report: NetworkReport,
    },
}

/// One session's channel over a multiplexed connection.
#[derive(Debug)]
pub(crate) struct RemoteChan {
    session: u64,
    writer: SharedWriter,
    rx: Receiver<SessionEvent>,
    stats: ChannelStats,
    peer_done: bool,
    timeout: Duration,
    budget: Option<u64>,
}

impl RemoteChan {
    pub(crate) fn new(
        session: u64,
        writer: SharedWriter,
        rx: Receiver<SessionEvent>,
        timeout: Duration,
        budget: Option<u64>,
    ) -> RemoteChan {
        RemoteChan {
            session,
            writer,
            rx,
            stats: ChannelStats::default(),
            peer_done: false,
            timeout,
            budget,
        }
    }

    fn check_budget(&self) -> Result<(), ProtocolError> {
        if let Some(limit) = self.budget {
            if self.stats.total_bits() > limit {
                return Err(ProtocolError::BudgetExceeded { limit_bits: limit });
            }
        }
        Ok(())
    }

    fn next_event(&self) -> Result<SessionEvent, ProtocolError> {
        self.rx.recv_timeout(self.timeout).map_err(|e| match e {
            crossbeam_channel::RecvTimeoutError::Timeout => ProtocolError::Timeout,
            crossbeam_channel::RecvTimeoutError::Disconnected => ProtocolError::ChannelClosed,
        })
    }

    /// Consumes post-protocol events until the peer's [`SessionEvent::Done`].
    ///
    /// # Errors
    ///
    /// Surfaces peer-reported failures, connection loss, and timeouts.
    pub(crate) fn wait_done(&mut self) -> Result<(ChannelStats, Vec<u64>), ProtocolError> {
        loop {
            match self.next_event()? {
                SessionEvent::Fin => self.peer_done = true,
                SessionEvent::Done { stats, result } => return Ok((stats, result)),
                SessionEvent::Error(msg) => {
                    return Err(ProtocolError::Internal(format!(
                        "remote peer failed: {msg}"
                    )))
                }
                SessionEvent::Closed => return Err(ProtocolError::ChannelClosed),
                SessionEvent::Msg { .. } | SessionEvent::Accept(_) => {
                    return Err(ProtocolError::Internal(
                        "unexpected frame after session completion".into(),
                    ))
                }
                SessionEvent::MpMsg { .. }
                | SessionEvent::MpOut { .. }
                | SessionEvent::MpDone { .. } => {
                    return Err(ProtocolError::Internal(
                        "multiparty frame on a two-party session".into(),
                    ))
                }
            }
        }
    }
}

impl Chan for RemoteChan {
    fn send(&mut self, msg: BitBuf) -> Result<(), ProtocolError> {
        // Metering mirrors `Endpoint::send` exactly: count first, then
        // budget-check, then fail if the peer is gone — so a send into a
        // closed session leaves the same counter trail either way.
        let bits = msg.len() as u64;
        self.stats.bits_sent += bits;
        self.stats.messages_sent += 1;
        self.check_budget()?;
        if self.peer_done {
            return Err(ProtocolError::ChannelClosed);
        }
        let frame = WireFrame::Msg {
            session: self.session,
            depth: self.stats.clock + 1,
            payload: msg,
        };
        let mut w = self.writer.lock().expect("connection writer poisoned");
        write_frame(&mut *w, &frame).map_err(|_| ProtocolError::ChannelClosed)?;
        drop(w);
        intersect_obs::message(
            "net",
            intersect_obs::Direction::Sent,
            bits,
            self.stats.clock,
        );
        Ok(())
    }

    fn recv(&mut self) -> Result<BitBuf, ProtocolError> {
        if self.peer_done {
            return Err(ProtocolError::ChannelClosed);
        }
        match self.next_event()? {
            SessionEvent::Msg { depth, payload } => {
                self.stats.clock = self.stats.clock.max(depth);
                self.stats.bits_received += payload.len() as u64;
                self.stats.messages_received += 1;
                self.check_budget()?;
                intersect_obs::message(
                    "net",
                    intersect_obs::Direction::Received,
                    payload.len() as u64,
                    self.stats.clock,
                );
                Ok(payload)
            }
            SessionEvent::Fin => {
                self.peer_done = true;
                Err(ProtocolError::ChannelClosed)
            }
            SessionEvent::Closed => Err(ProtocolError::ChannelClosed),
            SessionEvent::Error(msg) => Err(ProtocolError::Internal(format!(
                "remote peer failed: {msg}"
            ))),
            // An Accept still queued ahead of the first message has
            // already been consumed by the open handshake; seeing one
            // here means a peer bug, not a transport fault.
            SessionEvent::Accept(_) => Err(ProtocolError::Internal(
                "unexpected accept frame mid-session".into(),
            )),
            SessionEvent::Done { .. } => Err(ProtocolError::Internal(
                "peer completed while a message was expected".into(),
            )),
            SessionEvent::MpMsg { .. }
            | SessionEvent::MpOut { .. }
            | SessionEvent::MpDone { .. } => Err(ProtocolError::Internal(
                "multiparty frame on a two-party session".into(),
            )),
        }
    }

    fn stats(&self) -> ChannelStats {
        self.stats
    }
}
