//! The remote client: the in-process session API over a socket.
//!
//! A [`NetClient`] owns one connection and multiplexes any number of
//! concurrent sessions onto it — [`NetClient::run`] takes `&self`, so
//! wrapping the client in an [`Arc`] and calling it from many threads
//! drives many interleaved sessions over a single stream. The client
//! executes the Alice half of the routed protocol locally over a
//! [`RemoteChan`], regenerating the session's inputs from the request
//! seed exactly as the server does, and assembles the final
//! [`CostReport`] from its own counters plus the server's
//! [`WireFrame::Done`] counters with the same `assemble_report` the
//! in-process runner uses — which is what makes remote reports
//! bit-identical to local ones (experiment E21).

use crate::chan::{RemoteChan, SessionEvent, SharedWriter};
use crate::frame::{read_frame, write_frame, WireFrame};
use crate::metrics;
use crate::transport::{EndpointAddr, Stream};
use crossbeam_channel::{Receiver, Sender};
use intersect_comm::bits::BitBuf;
use intersect_comm::chan::Chan;
use intersect_comm::coins::CoinSource;
use intersect_comm::error::ProtocolError;
use intersect_comm::net::{ClockedChan, PartyCtx, SyncedLink};
use intersect_comm::runner::{assemble_report, Side};
use intersect_comm::stats::{ChannelStats, CostReport, NetworkReport};
use intersect_comm::trace::{TraceEvent, Traced};
use intersect_core::api::ProtocolChoice;
use intersect_core::sets::ElementSet;
use intersect_engine::{MultipartyRequest, PlanCache, SessionRequest};
use intersect_multiparty::choice::{MultipartyChoice, PlayerOutput};
use intersect_obs as obs;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// The outcome of one remote session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RemoteRun {
    /// The protocol the server routed the session to.
    pub protocol: ProtocolChoice,
    /// This side's (Alice's) output.
    pub alice: ElementSet,
    /// The server side's (Bob's) output, echoed in the Done frame.
    pub bob: ElementSet,
    /// Exact communication cost, assembled from both endpoints'
    /// counters exactly as the in-process runner assembles it.
    pub report: CostReport,
}

impl RemoteRun {
    /// `true` iff both parties produced exactly `expected`.
    pub fn matches(&self, expected: &ElementSet) -> bool {
        self.alice == *expected && self.bob == *expected
    }
}

/// The outcome of one remote m-party session: the driven player's own
/// output plus the server's folded view of the whole mesh.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RemoteMultipartyRun {
    /// The protocol the session ran.
    pub choice: MultipartyChoice,
    /// The player index this client drove.
    pub player: usize,
    /// The driven player's locally computed output.
    pub output: PlayerOutput,
    /// The player left holding the intersection, if any.
    pub holder: Option<usize>,
    /// The holder's computed global intersection (intersection
    /// protocols only).
    pub result: Option<ElementSet>,
    /// Per-player disjointness verdicts (decision protocols only).
    pub verdicts: Vec<Option<bool>>,
    /// Exact per-player communication and round accounting, identical
    /// to an all-local `LinkSet` run of the same request.
    pub report: NetworkReport,
}

impl RemoteMultipartyRun {
    /// `true` iff the session's outcome agrees with `truth` — the holder
    /// produced exactly `truth`, or every verdict matched its emptiness.
    pub fn matches(&self, truth: &ElementSet) -> bool {
        match self.choice {
            MultipartyChoice::Disjointness => {
                !self.verdicts.is_empty()
                    && self.verdicts.iter().all(|v| *v == Some(truth.is_empty()))
            }
            _ => self.result.as_ref() == Some(truth),
        }
    }
}

/// A remote session's client-side latency waterfall: wall clock from
/// sending the Open frame to assembling the final report, decomposed
/// into segments that tile the span (up to 1µs truncation per segment).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClientTimeline {
    /// Open sent → server's Accept received (routing + handshake RTT).
    pub open_wait_micros: u64,
    /// Accept → this half's protocol rounds finished (plan resolution,
    /// input regeneration, and the rounds themselves).
    pub rounds_execute_micros: u64,
    /// Rounds finished → server's Done counters received and the report
    /// assembled.
    pub drain_micros: u64,
}

impl ClientTimeline {
    /// The waterfall as `(segment, micros)` rows.
    pub fn segments(&self) -> [(&'static str, u64); 3] {
        [
            ("open-wait", self.open_wait_micros),
            ("rounds-execute", self.rounds_execute_micros),
            ("drain", self.drain_micros),
        ]
    }

    /// Sum of all segments: the Open-to-report span.
    pub fn total_micros(&self) -> u64 {
        self.open_wait_micros + self.rounds_execute_micros + self.drain_micros
    }
}

type SessionMap = Arc<Mutex<HashMap<u64, Sender<SessionEvent>>>>;

/// One connection to a transport server.
#[derive(Debug)]
pub struct NetClient {
    writer: SharedWriter,
    sessions: SessionMap,
    next_id: AtomicU64,
    cache: PlanCache,
    timeout: Duration,
    stream: Stream,
    reader: Mutex<Option<JoinHandle<()>>>,
    goodbye: Arc<AtomicBool>,
}

impl NetClient {
    /// Connects to `tcp:ADDR` or `unix:PATH`.
    ///
    /// # Errors
    ///
    /// Rejects malformed endpoint syntax and propagates connect errors.
    pub fn connect(endpoint: &str) -> Result<NetClient, String> {
        let addr = EndpointAddr::parse(endpoint)?;
        Self::connect_addr(&addr).map_err(|e| format!("cannot connect to {addr}: {e}"))
    }

    /// Connects to an already-parsed endpoint.
    ///
    /// # Errors
    ///
    /// Propagates connect failures.
    pub fn connect_addr(addr: &EndpointAddr) -> std::io::Result<NetClient> {
        metrics::describe_net_metrics();
        let stream = Stream::connect(addr)?;
        let reader_stream = stream.try_clone()?;
        let writer_stream = stream.try_clone()?;
        metrics::connection_delta(1);
        let sessions: SessionMap = Arc::new(Mutex::new(HashMap::new()));
        let goodbye = Arc::new(AtomicBool::new(false));
        let reader_sessions = Arc::clone(&sessions);
        let reader_goodbye = Arc::clone(&goodbye);
        let reader = std::thread::spawn(move || {
            reader_loop(reader_stream, reader_sessions, reader_goodbye);
        });
        Ok(NetClient {
            writer: Arc::new(Mutex::new(writer_stream)),
            sessions,
            next_id: AtomicU64::new(1),
            cache: PlanCache::new(),
            timeout: Duration::from_secs(30),
            stream,
            reader: Mutex::new(Some(reader)),
            goodbye: Arc::clone(&goodbye),
        })
    }

    /// `true` once the server has said goodbye (drain in progress).
    pub fn server_said_goodbye(&self) -> bool {
        self.goodbye.load(Ordering::Acquire)
    }

    /// Runs one session remotely, blocking this thread until it
    /// completes. Safe to call concurrently from many threads: sessions
    /// interleave on the shared connection.
    ///
    /// # Errors
    ///
    /// Surfaces request validation failures as
    /// [`ProtocolError::InvalidInput`], server-side refusals and
    /// failures as [`ProtocolError::Internal`], and transport loss as
    /// [`ProtocolError::ChannelClosed`] / [`ProtocolError::Timeout`].
    pub fn run(&self, req: &SessionRequest) -> Result<RemoteRun, ProtocolError> {
        self.run_inner(req, false).map(|(run, _, _)| run)
    }

    /// Like [`run`](Self::run), but also returns the session's
    /// client-side [`ClientTimeline`] — the per-segment latency waterfall
    /// `loadgen --json` aggregates into its attribution table.
    ///
    /// # Errors
    ///
    /// As for [`run`](Self::run).
    pub fn run_timed(
        &self,
        req: &SessionRequest,
    ) -> Result<(RemoteRun, ClientTimeline), ProtocolError> {
        self.run_inner(req, false)
            .map(|(run, _, timeline)| (run, timeline))
    }

    /// Like [`run`](Self::run), but also records the client-side message
    /// transcript (direction, bits, causal clock, phase label of every
    /// message) — the evidence E21 compares against in-process runs.
    ///
    /// # Errors
    ///
    /// As for [`run`](Self::run).
    pub fn run_traced(
        &self,
        req: &SessionRequest,
    ) -> Result<(RemoteRun, Vec<TraceEvent>), ProtocolError> {
        self.run_inner(req, true)
            .map(|(run, events, _)| (run, events))
    }

    fn run_inner(
        &self,
        req: &SessionRequest,
        traced: bool,
    ) -> Result<(RemoteRun, Vec<TraceEvent>, ClientTimeline), ProtocolError> {
        req.validate().map_err(ProtocolError::InvalidInput)?;
        // Mint the distributed trace context before the request line hits
        // the wire, so the server's Bob half joins the same trace. The
        // mint is the same pure `(id, seed)` function the engine uses.
        let mut req = req.clone();
        if req.trace.is_none() {
            req.trace = Some(req.trace_context());
            obs::counter_add("trace_contexts_minted_total", 1);
        }
        let wire_id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = crossbeam_channel::unbounded();
        self.sessions
            .lock()
            .expect("session map poisoned")
            .insert(wire_id, tx);
        metrics::session_opened();
        let result = self.run_registered(&req, wire_id, rx, traced);
        self.sessions
            .lock()
            .expect("session map poisoned")
            .remove(&wire_id);
        metrics::session_closed();
        result
    }

    fn run_registered(
        &self,
        req: &SessionRequest,
        wire_id: u64,
        rx: crossbeam_channel::Receiver<SessionEvent>,
        traced: bool,
    ) -> Result<(RemoteRun, Vec<TraceEvent>, ClientTimeline), ProtocolError> {
        let opened_at = Instant::now();
        {
            let mut w = self.writer.lock().expect("connection writer poisoned");
            write_frame(
                &mut *w,
                &WireFrame::Open {
                    session: wire_id,
                    line: req.to_line(),
                },
            )
            .map_err(|_| ProtocolError::ChannelClosed)?;
        }

        // The open handshake: the server answers with the routed
        // protocol before its half sends any message.
        let choice: ProtocolChoice = match rx.recv_timeout(self.timeout).map_err(|e| match e {
            crossbeam_channel::RecvTimeoutError::Timeout => ProtocolError::Timeout,
            crossbeam_channel::RecvTimeoutError::Disconnected => ProtocolError::ChannelClosed,
        })? {
            SessionEvent::Accept(name) => name
                .parse()
                .map_err(|e: String| ProtocolError::Internal(format!("bad accept: {e}")))?,
            SessionEvent::Error(msg) => {
                return Err(ProtocolError::Internal(format!("server refused: {msg}")))
            }
            SessionEvent::Closed => return Err(ProtocolError::ChannelClosed),
            other => {
                return Err(ProtocolError::Internal(format!(
                    "expected accept, got {other:?}"
                )))
            }
        };

        let accepted_at = Instant::now();

        let plan = self.cache.get_or_prepare(choice, req.spec);
        let pair = req.input_pair();
        // `coin_seed`, not `seed`: for a stream-tagged request both
        // halves derive the pair's shared randomness from the same pure
        // `stream_session_seed(pair, stream)`.
        let coins = CoinSource::from_seed(req.coin_seed());
        let mut chan = RemoteChan::new(wire_id, Arc::clone(&self.writer), rx, self.timeout, None);

        // Alice's half carries the session's scopes: every span and
        // message it emits is attributed to the session and stitched
        // into the same trace the server's Bob half joins.
        let (alice, events) = {
            let _session_scope = obs::phase::SessionScope::enter(req.id, obs::Party::Alice);
            let _trace_scope = req.trace.map(obs::TraceScope::enter);
            let span = obs::phase::span("net", "session");
            let (alice, events) = if traced {
                let mut tchan = Traced::new(&mut chan);
                let out = plan.execute(&mut tchan, &coins, Side::Alice, &pair.s);
                let events = tchan.into_events();
                (out, events)
            } else {
                (
                    plan.execute(&mut chan, &coins, Side::Alice, &pair.s),
                    Vec::new(),
                )
            };
            let stats = chan.stats();
            span.finish(obs::CostDelta {
                bits_sent: stats.bits_sent,
                bits_received: stats.bits_received,
                rounds: stats.clock,
            });
            (alice, events)
        };

        // Announce this half's end whether it succeeded or not, so the
        // server side can release the session promptly.
        {
            let mut w = self.writer.lock().expect("connection writer poisoned");
            let _ = write_frame(&mut *w, &WireFrame::Fin { session: wire_id });
        }
        let executed_at = Instant::now();
        let alice = alice?;

        let (server_stats, result) = chan.wait_done()?;
        let report = assemble_report(chan.stats(), server_stats);
        let span = |a: Instant, b: Instant| b.saturating_duration_since(a).as_micros() as u64;
        let timeline = ClientTimeline {
            open_wait_micros: span(opened_at, accepted_at),
            rounds_execute_micros: span(accepted_at, executed_at),
            drain_micros: span(executed_at, Instant::now()),
        };
        if obs::enabled() {
            for (segment, micros) in timeline.segments() {
                obs::observe(
                    &obs::metrics::labeled("net_client_segment_micros", &[("segment", segment)]),
                    micros,
                );
            }
        }
        Ok((
            RemoteRun {
                protocol: choice,
                alice,
                bob: ElementSet::from_sorted(result),
                report,
            },
            events,
            timeline,
        ))
    }

    /// Runs one m-party session with this client driving player
    /// `req.player` (player 0 if unset) while the server hosts the other
    /// `m − 1` players on an in-process mesh. Blocks until the whole
    /// session completes; safe to call concurrently — multiparty and
    /// two-party sessions interleave on the shared connection.
    ///
    /// # Errors
    ///
    /// Surfaces request validation failures as
    /// [`ProtocolError::InvalidInput`], server-side refusals and
    /// failures as [`ProtocolError::Internal`], and transport loss as
    /// [`ProtocolError::ChannelClosed`] / [`ProtocolError::Timeout`].
    pub fn run_multiparty(
        &self,
        req: &MultipartyRequest,
    ) -> Result<RemoteMultipartyRun, ProtocolError> {
        req.validate().map_err(ProtocolError::InvalidInput)?;
        let mut req = req.clone();
        let driven = req.player.unwrap_or(0);
        req.player = Some(driven);
        let wire_id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = crossbeam_channel::unbounded();
        self.sessions
            .lock()
            .expect("session map poisoned")
            .insert(wire_id, tx);
        metrics::session_opened();
        let result = self.run_multiparty_registered(&req, driven, wire_id, rx);
        self.sessions
            .lock()
            .expect("session map poisoned")
            .remove(&wire_id);
        metrics::session_closed();
        result
    }

    fn run_multiparty_registered(
        &self,
        req: &MultipartyRequest,
        driven: usize,
        wire_id: u64,
        rx: crossbeam_channel::Receiver<SessionEvent>,
    ) -> Result<RemoteMultipartyRun, ProtocolError> {
        {
            let mut w = self.writer.lock().expect("connection writer poisoned");
            write_frame(
                &mut *w,
                &WireFrame::Open {
                    session: wire_id,
                    line: req.to_line(),
                },
            )
            .map_err(|_| ProtocolError::ChannelClosed)?;
        }

        // The open handshake: the server echoes the multiparty protocol
        // before any mesh traffic flows.
        let choice: MultipartyChoice = match rx.recv_timeout(self.timeout).map_err(|e| match e {
            crossbeam_channel::RecvTimeoutError::Timeout => ProtocolError::Timeout,
            crossbeam_channel::RecvTimeoutError::Disconnected => ProtocolError::ChannelClosed,
        })? {
            SessionEvent::Accept(name) => name
                .parse()
                .map_err(|e: String| ProtocolError::Internal(format!("bad accept: {e}")))?,
            SessionEvent::Error(msg) => {
                return Err(ProtocolError::Internal(format!("server refused: {msg}")))
            }
            SessionEvent::Closed => return Err(ProtocolError::ChannelClosed),
            other => {
                return Err(ProtocolError::Internal(format!(
                    "expected accept, got {other:?}"
                )))
            }
        };
        if choice != req.choice {
            return Err(ProtocolError::Internal(format!(
                "server accepted {choice}, requested {}",
                req.choice
            )));
        }

        // Demux the session's event stream: per-peer payload queues feed
        // the pairwise links (which protocols may detach onto worker
        // threads), a control lane carries the terminal outcome. The
        // router exits after the terminal event — or when this session
        // unregisters and its event sender drops.
        let mut peer_txs: Vec<Option<Sender<(u64, BitBuf)>>> =
            (0..req.players).map(|_| None).collect();
        let mut links: Vec<Option<RemoteLink>> = (0..req.players).map(|_| None).collect();
        for peer in (0..req.players).filter(|&p| p != driven) {
            let (ptx, prx) = crossbeam_channel::unbounded();
            peer_txs[peer] = Some(ptx);
            links[peer] = Some(RemoteLink {
                session: wire_id,
                peer: peer as u32,
                writer: Arc::clone(&self.writer),
                rx: prx,
                clock: 0,
                stats: ChannelStats::default(),
                timeout: self.timeout,
            });
        }
        let (ctl_tx, ctl_rx) = crossbeam_channel::unbounded();
        std::thread::spawn(move || route_multiparty_events(rx, peer_txs, ctl_tx));

        // The driven player's half, over the same PartyCtx abstraction
        // the in-process mesh implements — same clock discipline, same
        // metering, same coins.
        let sets = req.player_sets();
        let mut ctx = RemotePartyCtx {
            id: driven,
            players: req.players,
            coins: CoinSource::from_seed(req.seed),
            links,
            clock: 0,
        };
        let local = {
            let _session_scope = obs::phase::SessionScope::enter(req.id, obs::Party::Alice);
            let span = obs::phase::span("net", "mp-session");
            let local = choice.run_player(req.spec, req.tree_rounds, &mut ctx, &sets[driven]);
            let stats = ctx.stats();
            span.finish(obs::CostDelta {
                bits_sent: stats.bits_sent,
                bits_received: stats.bits_received,
                rounds: stats.clock,
            });
            local
        };

        // Hand the output (or the failure) to the server-side proxy so
        // the mesh can finish and fold the session.
        let output = match local {
            Ok(out) => {
                let mut w = self.writer.lock().expect("connection writer poisoned");
                write_frame(
                    &mut *w,
                    &WireFrame::MpOut {
                        session: wire_id,
                        intersection: out.intersection.as_ref().map(|s| s.as_slice().to_vec()),
                        verdict: out.verdict,
                    },
                )
                .map_err(|_| ProtocolError::ChannelClosed)?;
                out
            }
            Err(e) => {
                let mut w = self.writer.lock().expect("connection writer poisoned");
                let _ = write_frame(
                    &mut *w,
                    &WireFrame::Error {
                        session: wire_id,
                        message: e.to_string(),
                    },
                );
                return Err(e);
            }
        };

        // Await the folded session outcome.
        loop {
            match ctl_rx.recv_timeout(self.timeout) {
                Ok(SessionEvent::MpDone {
                    holder,
                    result,
                    verdicts,
                    report,
                }) => {
                    return Ok(RemoteMultipartyRun {
                        choice,
                        player: driven,
                        output,
                        holder,
                        result: holder.map(|_| ElementSet::from_sorted(result)),
                        verdicts,
                        report,
                    })
                }
                Ok(SessionEvent::Error(msg)) => {
                    return Err(ProtocolError::Internal(format!(
                        "remote session failed: {msg}"
                    )))
                }
                Ok(SessionEvent::Closed) => return Err(ProtocolError::ChannelClosed),
                Ok(_) => continue,
                Err(crossbeam_channel::RecvTimeoutError::Timeout) => {
                    return Err(ProtocolError::Timeout)
                }
                Err(crossbeam_channel::RecvTimeoutError::Disconnected) => {
                    return Err(ProtocolError::ChannelClosed)
                }
            }
        }
    }

    /// Tells the server this client will open no further sessions.
    pub fn goodbye(&self) {
        let mut w = self.writer.lock().expect("connection writer poisoned");
        let _ = write_frame(&mut *w, &WireFrame::Goodbye);
    }
}

/// One pairwise link of a remotely driven mesh player: the m-party
/// analogue of [`RemoteChan`]. Meters exactly what the in-process
/// [`Link`](intersect_comm::net::Link) meters — payload bits and message
/// counts, causal depth stamped `clock + 1` on send, folded with `max`
/// on receive — and carries the peer tag that routes the frame onto the
/// right link of the server-hosted mesh.
#[derive(Debug)]
struct RemoteLink {
    session: u64,
    peer: u32,
    writer: SharedWriter,
    rx: Receiver<(u64, BitBuf)>,
    clock: u64,
    stats: ChannelStats,
    timeout: Duration,
}

impl Chan for RemoteLink {
    fn send(&mut self, msg: BitBuf) -> Result<(), ProtocolError> {
        let bits = msg.len() as u64;
        self.stats.bits_sent += bits;
        self.stats.messages_sent += 1;
        let frame = WireFrame::MpMsg {
            session: self.session,
            peer: self.peer,
            depth: self.clock + 1,
            payload: msg,
        };
        let mut w = self.writer.lock().expect("connection writer poisoned");
        write_frame(&mut *w, &frame).map_err(|_| ProtocolError::ChannelClosed)?;
        drop(w);
        obs::message("net", obs::Direction::Sent, bits, self.clock);
        Ok(())
    }

    fn recv(&mut self) -> Result<BitBuf, ProtocolError> {
        let (depth, payload) = self.rx.recv_timeout(self.timeout).map_err(|e| match e {
            crossbeam_channel::RecvTimeoutError::Timeout => ProtocolError::Timeout,
            crossbeam_channel::RecvTimeoutError::Disconnected => ProtocolError::ChannelClosed,
        })?;
        self.clock = self.clock.max(depth);
        self.stats.clock = self.clock;
        let bits = payload.len() as u64;
        self.stats.bits_received += bits;
        self.stats.messages_received += 1;
        obs::message("net", obs::Direction::Received, bits, self.stats.clock);
        Ok(payload)
    }

    fn stats(&self) -> ChannelStats {
        let mut s = self.stats;
        s.clock = self.clock;
        s
    }
}

impl ClockedChan for RemoteLink {
    fn link_clock(&self) -> u64 {
        self.clock
    }

    fn fold_clock(&mut self, depth: u64) {
        self.clock = self.clock.max(depth);
        self.stats.clock = self.clock;
    }
}

/// The remotely driven player's view of the mesh: implements
/// [`PartyCtx`] with the exact clock discipline of the in-process
/// [`PlayerCtx`](intersect_comm::net::PlayerCtx) — `take_link` seeds the
/// link clock from the player clock, `return_link` merges it back — so
/// the Section 4 protocols run over the wire unchanged and
/// bit-identically.
struct RemotePartyCtx {
    id: usize,
    players: usize,
    coins: CoinSource,
    links: Vec<Option<RemoteLink>>,
    clock: u64,
}

impl RemotePartyCtx {
    /// Aggregate counters over every pairwise link, with the causal
    /// clock folded across attached links like `PlayerCtx::stats`.
    fn stats(&self) -> ChannelStats {
        let mut total = ChannelStats::default();
        for link in self.links.iter().flatten() {
            total.bits_sent += link.stats.bits_sent;
            total.bits_received += link.stats.bits_received;
            total.messages_sent += link.stats.messages_sent;
            total.messages_received += link.stats.messages_received;
            total.clock = total.clock.max(link.clock);
        }
        total.clock = total.clock.max(self.clock);
        total
    }
}

impl PartyCtx for RemotePartyCtx {
    type Link = RemoteLink;

    fn id(&self) -> usize {
        self.id
    }

    fn players(&self) -> usize {
        self.players
    }

    fn coins(&self) -> &CoinSource {
        &self.coins
    }

    fn take_link(&mut self, peer: usize) -> RemoteLink {
        assert!(peer < self.players, "peer {peer} out of range");
        assert_ne!(peer, self.id, "no link to self");
        let mut link = self.links[peer]
            .take()
            .unwrap_or_else(|| panic!("link to {peer} already taken"));
        link.fold_clock(self.clock);
        link
    }

    fn return_link(&mut self, peer: usize, link: RemoteLink) {
        assert!(peer < self.players && self.links[peer].is_none());
        self.clock = self.clock.max(link.clock);
        self.links[peer] = Some(link);
    }

    fn link(&mut self, peer: usize) -> SyncedLink<'_, RemoteLink> {
        assert!(peer < self.players, "peer {peer} out of range");
        assert_ne!(peer, self.id, "no link to self");
        let link = self.links[peer]
            .as_mut()
            .unwrap_or_else(|| panic!("link to {peer} is detached"));
        SyncedLink::new(link, &mut self.clock)
    }
}

/// Demuxes one multiparty session's event stream: payloads to their
/// per-peer link queues, the terminal outcome to the control lane. Runs
/// until the terminal event or until the session unregisters (its event
/// sender drops).
fn route_multiparty_events(
    rx: Receiver<SessionEvent>,
    peer_txs: Vec<Option<Sender<(u64, BitBuf)>>>,
    ctl: Sender<SessionEvent>,
) {
    while let Ok(event) = rx.recv() {
        match event {
            SessionEvent::MpMsg {
                peer,
                depth,
                payload,
            } => {
                // Unknown peers are dropped; the protocol times out and
                // surfaces the fault on its own link.
                if let Some(Some(tx)) = peer_txs.get(peer) {
                    let _ = tx.send((depth, payload));
                }
            }
            terminal @ (SessionEvent::MpDone { .. }
            | SessionEvent::Error(_)
            | SessionEvent::Closed) => {
                let _ = ctl.send(terminal);
                break;
            }
            // Fins and stray two-party frames carry no mesh payload.
            _ => {}
        }
    }
}

impl Drop for NetClient {
    fn drop(&mut self) {
        self.stream.shutdown();
        if let Some(t) = self.reader.lock().expect("reader handle poisoned").take() {
            let _ = t.join();
        }
        metrics::connection_delta(-1);
    }
}

fn reader_loop(mut stream: Stream, sessions: SessionMap, goodbye: Arc<AtomicBool>) {
    // Any read error or clean EOF ends the loop; sessions then see Closed.
    while let Ok(Some(frame)) = read_frame(&mut stream) {
        let event = match frame {
            WireFrame::Accept { session, protocol } => {
                Some((session, SessionEvent::Accept(protocol)))
            }
            WireFrame::Msg {
                session,
                depth,
                payload,
            } => Some((session, SessionEvent::Msg { depth, payload })),
            WireFrame::Fin { session } => Some((session, SessionEvent::Fin)),
            WireFrame::Done {
                session,
                stats,
                result,
            } => Some((session, SessionEvent::Done { stats, result })),
            WireFrame::Error { session, message } => {
                if session == 0 {
                    // Connection-level error: every live session
                    // is affected.
                    let map = sessions.lock().expect("session map poisoned");
                    for tx in map.values() {
                        let _ = tx.send(SessionEvent::Error(message.clone()));
                    }
                    None
                } else {
                    Some((session, SessionEvent::Error(message)))
                }
            }
            WireFrame::Goodbye => {
                goodbye.store(true, Ordering::Release);
                None
            }
            WireFrame::MpMsg {
                session,
                peer,
                depth,
                payload,
            } => Some((
                session,
                SessionEvent::MpMsg {
                    peer: peer as usize,
                    depth,
                    payload,
                },
            )),
            WireFrame::MpDone {
                session,
                holder,
                result,
                verdicts,
                report,
            } => Some((
                session,
                SessionEvent::MpDone {
                    holder: holder.map(|h| h as usize),
                    result,
                    verdicts,
                    report,
                },
            )),
            // Client-role frames arriving at a client: ignore.
            WireFrame::Open { .. } | WireFrame::MpOut { .. } => None,
        };
        if let Some((session, event)) = event {
            if let Some(tx) = sessions.lock().expect("session map poisoned").get(&session) {
                let _ = tx.send(event);
            }
        }
    }
    let map = sessions.lock().expect("session map poisoned");
    for tx in map.values() {
        let _ = tx.send(SessionEvent::Closed);
    }
}
