//! Property tests for the wire codec: every frame round-trips through
//! encode/decode exactly, and malformed byte streams fail cleanly —
//! never panic — whatever the corruption.

use intersect_comm::bits::BitBuf;
use intersect_comm::stats::ChannelStats;
use intersect_net::frame::{
    decode_body, encode, read_frame, FrameError, WireFrame, MAX_BODY_BYTES,
};
use proptest::prelude::*;

/// A `BitBuf` of exactly `bits` pseudo-random bits; widths straddle the
/// 128-bit inline/spill boundary.
fn bitbuf(bits: usize, seed: u64) -> BitBuf {
    let mut buf = BitBuf::with_capacity(bits);
    let mut state = seed | 1;
    let mut remaining = bits;
    while remaining > 0 {
        state = state
            .wrapping_mul(0x5851_f42d_4c95_7f2d)
            .wrapping_add(0x1405_7b7e_f767_814f);
        let width = remaining.min(64);
        let value = if width == 64 {
            state
        } else {
            state & ((1u64 << width) - 1)
        };
        buf.push_bits(value, width);
        remaining -= width;
    }
    buf
}

/// Deterministic printable text (possibly empty) derived from a seed,
/// including characters the exposition format would need to escape.
fn text(seed: u64) -> String {
    const ALPHABET: &[u8] = b"abcxyz019 =:-_#\"\\\n";
    let len = (seed % 61) as usize;
    let mut state = seed;
    (0..len)
        .map(|_| {
            state = state.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
            ALPHABET[(state >> 33) as usize % ALPHABET.len()] as char
        })
        .collect()
}

/// Builds one of the seven frame types from drawn parameters. The
/// payload width sweeps 0..=320 bits (inline and spilled buffers).
fn build_frame(kind: u8, session: u64, bits: usize, seed: u64) -> WireFrame {
    match kind {
        0 => WireFrame::Open {
            session,
            line: text(seed),
        },
        1 => WireFrame::Accept {
            session,
            protocol: text(seed ^ 0xA11),
        },
        2 => WireFrame::Msg {
            session,
            depth: seed.rotate_left(17),
            payload: bitbuf(bits, seed),
        },
        3 => WireFrame::Fin { session },
        4 => {
            let mut s = seed;
            let mut word = move || {
                s = s.wrapping_mul(0xd129_0272_3fbc_5d43).wrapping_add(11);
                s
            };
            WireFrame::Done {
                session,
                stats: ChannelStats {
                    bits_sent: word(),
                    bits_received: word(),
                    messages_sent: word(),
                    messages_received: word(),
                    clock: word(),
                },
                result: (0..(seed % 33)).map(|_| word()).collect(),
            }
        }
        5 => WireFrame::Error {
            session,
            message: text(seed ^ 0xE44),
        },
        _ => WireFrame::Goodbye,
    }
}

proptest! {
    /// encode → read_frame is the identity, and consumes the stream.
    #[test]
    fn frames_round_trip(
        kind in 0u8..7,
        session in any::<u64>(),
        bits in 0usize..=320,
        seed in any::<u64>(),
    ) {
        let frame = build_frame(kind, session, bits, seed);
        let bytes = encode(&frame);
        let mut r = &bytes[..];
        let back = read_frame(&mut r).unwrap().expect("one frame");
        prop_assert_eq!(back, frame);
        prop_assert!(read_frame(&mut r).unwrap().is_none());
    }

    /// Two frames back-to-back decode independently (framing is
    /// self-delimiting, no lookahead).
    #[test]
    fn concatenated_frames_split_correctly(
        kinds in (0u8..7, 0u8..7),
        bits in (0usize..=320, 0usize..=320),
        seeds in (any::<u64>(), any::<u64>()),
    ) {
        let a = build_frame(kinds.0, 1, bits.0, seeds.0);
        let b = build_frame(kinds.1, 2, bits.1, seeds.1);
        let mut bytes = encode(&a);
        bytes.extend_from_slice(&encode(&b));
        let mut r = &bytes[..];
        prop_assert_eq!(read_frame(&mut r).unwrap().expect("frame a"), a);
        prop_assert_eq!(read_frame(&mut r).unwrap().expect("frame b"), b);
        prop_assert!(read_frame(&mut r).unwrap().is_none());
    }

    /// Msg payload bit lengths are preserved exactly — the wire cannot
    /// round a 3-bit message up to a byte.
    #[test]
    fn payload_bit_length_is_exact(bits in 0usize..=320, seed in any::<u64>()) {
        let frame = WireFrame::Msg { session: 1, depth: 1, payload: bitbuf(bits, seed) };
        let bytes = encode(&frame);
        match read_frame(&mut &bytes[..]).unwrap().expect("frame") {
            WireFrame::Msg { payload, .. } => prop_assert_eq!(payload.len(), bits),
            other => prop_assert!(false, "wrong frame {:?}", other),
        }
    }

    /// Truncating a valid frame anywhere yields Truncated, not a panic.
    #[test]
    fn any_truncation_errors_cleanly(
        kind in 0u8..7,
        bits in 0usize..=320,
        seed in any::<u64>(),
        cut_pick in any::<u64>(),
    ) {
        let bytes = encode(&build_frame(kind, 9, bits, seed));
        let cut = (cut_pick as usize) % bytes.len();
        if cut == 0 {
            let mut r = &bytes[..0];
            prop_assert!(read_frame(&mut r).unwrap().is_none());
        } else {
            let mut r = &bytes[..cut];
            prop_assert!(matches!(read_frame(&mut r), Err(FrameError::Truncated)));
        }
    }

    /// Arbitrary bytes as a frame body either decode or error — never
    /// panic, never loop.
    #[test]
    fn random_bodies_never_panic(body in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = decode_body(&body);
    }

    /// Flipping one byte of a valid encoding either still decodes to
    /// *some* frame or errors cleanly.
    #[test]
    fn single_byte_corruption_is_contained(
        kind in 0u8..7,
        bits in 0usize..=320,
        seed in any::<u64>(),
        pos_pick in any::<u64>(),
        xor in 1u8..=255,
    ) {
        let mut bytes = encode(&build_frame(kind, 3, bits, seed));
        let pos = (pos_pick as usize) % bytes.len();
        bytes[pos] ^= xor;
        let mut r = &bytes[..];
        let _ = read_frame(&mut r);
    }
}

#[test]
fn oversized_length_prefix_is_refused_before_allocation() {
    // The length prefix claims 4 GiB − 1; the reader must refuse at the
    // cap without trying to buffer it.
    let mut bytes = u32::MAX.to_le_bytes().to_vec();
    bytes.extend_from_slice(&[0u8; 64]);
    match read_frame(&mut &bytes[..]) {
        Err(FrameError::Oversized { len }) => assert_eq!(len, u32::MAX),
        other => panic!("expected Oversized, got {other:?}"),
    }
    // Exactly at the cap the prefix itself is legal (the body read then
    // fails on truncation here).
    let mut at_cap = MAX_BODY_BYTES.to_le_bytes().to_vec();
    at_cap.extend_from_slice(&[0u8; 8]);
    assert!(matches!(
        read_frame(&mut &at_cap[..]),
        Err(FrameError::Truncated)
    ));
}

#[test]
fn declared_bits_beyond_cap_are_refused() {
    // A Msg header declaring more payload bits than the frame cap could
    // ever carry must be rejected as malformed, not trusted.
    let mut body = vec![3u8]; // T_MSG
    body.extend_from_slice(&1u64.to_le_bytes()); // session
    body.extend_from_slice(&1u64.to_le_bytes()); // depth
    body.extend_from_slice(&u64::MAX.to_le_bytes()); // absurd bit length
    assert!(matches!(decode_body(&body), Err(FrameError::Malformed(_))));
}
