//! End-to-end transport tests: remote sessions over TCP and Unix
//! sockets are bit-identical to in-process runs, sessions multiplex
//! concurrently over one connection, protocol violations error cleanly,
//! and shutdown drains instead of dropping sessions mid-round.

use intersect_comm::runner::{run_two_party, RunConfig, Side};
use intersect_comm::trace::Traced;
use intersect_core::api::ProtocolChoice;
use intersect_core::sets::ProblemSpec;
use intersect_engine::SessionRequest;
use intersect_net::frame::{encode, read_frame, WireFrame};
use intersect_net::prelude::*;
use intersect_net::transport::Stream;
use std::io::Write;
use std::sync::Arc;

fn start_tcp_server() -> NetServer {
    NetServer::start(NetServerConfig::new(
        EndpointAddr::parse("tcp:127.0.0.1:0").unwrap(),
    ))
    .expect("bind server")
}

fn request(id: u64, k: u64, protocol: Option<ProtocolChoice>) -> SessionRequest {
    let spec = ProblemSpec::new(1 << 20, k);
    let mut req = SessionRequest::new(id, spec, (k / 3) as usize);
    req.seed = id.wrapping_mul(0x9E37).wrapping_add(7);
    req.protocol = protocol;
    req
}

/// In-process reference run of the same request: the routed plan over a
/// dedicated endpoint pair, Alice's transcript recorded.
fn reference(
    req: &SessionRequest,
    choice: ProtocolChoice,
) -> (
    intersect_core::sets::ElementSet,
    intersect_core::sets::ElementSet,
    intersect_comm::stats::CostReport,
    Vec<intersect_comm::trace::TraceEvent>,
) {
    let plan = choice.build(req.spec).prepare(req.spec);
    let pair = req.input_pair();
    // `coin_seed` collapses to `seed` for untagged requests and to the
    // pair-derived stream seed for stream-tagged ones.
    let cfg = RunConfig::with_seed(req.coin_seed());
    let out = run_two_party(
        &cfg,
        |chan, coins| {
            let mut traced = Traced::new(&mut *chan);
            let set = plan.execute(&mut traced, coins, Side::Alice, &pair.s)?;
            Ok((set, traced.into_events()))
        },
        |chan, coins| plan.execute(chan, coins, Side::Bob, &pair.t),
    )
    .expect("reference run");
    let (alice, events) = out.alice;
    (alice, out.bob, out.report, events)
}

#[test]
fn remote_run_is_bit_identical_to_in_process() {
    let mut server = start_tcp_server();
    let client = NetClient::connect(&server.local_addr().to_string()).unwrap();
    for (id, choice) in [
        (1, ProtocolChoice::Trivial),
        (2, ProtocolChoice::TreeLogStar),
        (3, ProtocolChoice::Sqrt),
        (4, ProtocolChoice::OneRound),
    ]
    .into_iter()
    {
        let req = request(id, 32, Some(choice));
        let (remote, events) = client.run_traced(&req).expect("remote session");
        let (ref_alice, ref_bob, ref_report, ref_events) = reference(&req, choice);
        let truth = req.input_pair().ground_truth();
        assert_eq!(remote.protocol, choice);
        assert_eq!(remote.alice, ref_alice, "{choice}: alice output");
        assert_eq!(remote.bob, ref_bob, "{choice}: bob output");
        assert!(remote.matches(&truth), "{choice}: ground truth");
        assert_eq!(remote.report, ref_report, "{choice}: cost report");
        assert_eq!(events, ref_events, "{choice}: transcript");
    }
    drop(client);
    let summary = server.shutdown();
    assert_eq!(summary.sessions_served, 4);
    assert_eq!(summary.sessions_failed, 0);
}

#[test]
fn stream_tagged_remote_sessions_share_pair_randomness_and_stay_exact() {
    let mut server = start_tcp_server();
    let client = NetClient::connect(&server.local_addr().to_string()).unwrap();
    // One client pair streaming several sessions: each request line
    // carries pair=/stream= tags, so both halves derive their common
    // randomness from stream_session_seed(pair, i) — and a standalone
    // reference run of the tagged request reproduces the transcript.
    for i in 0..6u64 {
        let req = request(40 + i, 32, Some(ProtocolChoice::TreeLogStar)).in_stream(0xfeed, i);
        assert_ne!(req.coin_seed(), req.seed, "tags must move the coin seed");
        let (remote, events) = client.run_traced(&req).expect("streamed remote session");
        let (ref_alice, ref_bob, ref_report, ref_events) =
            reference(&req, ProtocolChoice::TreeLogStar);
        assert_eq!(remote.alice, ref_alice, "session {i}: alice output");
        assert_eq!(remote.bob, ref_bob, "session {i}: bob output");
        assert!(remote.matches(&req.input_pair().ground_truth()));
        assert_eq!(remote.report, ref_report, "session {i}: cost report");
        assert_eq!(events, ref_events, "session {i}: transcript");
    }
    drop(client);
    let summary = server.shutdown();
    assert_eq!(summary.sessions_served, 6);
    assert_eq!(summary.sessions_failed, 0);
}

#[cfg(unix)]
#[test]
fn unix_socket_transport_works() {
    let path = std::env::temp_dir().join(format!("intersect-net-test-{}.sock", std::process::id()));
    let mut server = NetServer::start(NetServerConfig::new(EndpointAddr::Unix(
        path.to_string_lossy().into_owned(),
    )))
    .expect("bind unix server");
    let client = NetClient::connect(&server.local_addr().to_string()).unwrap();
    let req = request(5, 16, None);
    let run = client.run(&req).expect("unix session");
    assert!(run.matches(&req.input_pair().ground_truth()));
    drop(client);
    server.shutdown();
    assert!(!path.exists(), "socket file must be unlinked on shutdown");
}

#[test]
fn many_sessions_multiplex_over_one_connection() {
    let mut server = start_tcp_server();
    let client = Arc::new(NetClient::connect(&server.local_addr().to_string()).unwrap());
    let threads: Vec<_> = (0..8)
        .map(|t| {
            let client = Arc::clone(&client);
            std::thread::spawn(move || {
                for i in 0..4u64 {
                    let req = request(100 + t * 10 + i, 16 + 16 * (t % 3), None);
                    let run = client.run(&req).expect("multiplexed session");
                    assert!(run.matches(&req.input_pair().ground_truth()));
                }
            })
        })
        .collect();
    for t in threads {
        t.join().expect("client thread");
    }
    drop(client);
    let summary = server.shutdown();
    assert_eq!(summary.sessions_served, 32);
    assert_eq!(summary.connections, 1, "all sessions shared one connection");
}

#[test]
fn unknown_session_id_errors_cleanly_and_connection_survives() {
    let mut server = start_tcp_server();
    let addr = server.local_addr().clone();
    let mut stream = Stream::connect(&addr).expect("raw connect");

    // A Msg for a session that was never opened must come back as a
    // clean Error frame addressed to that id.
    let mut payload = intersect_comm::bits::BitBuf::new();
    payload.push_bits(0b101, 3);
    stream
        .write_all(&encode(&WireFrame::Msg {
            session: 424242,
            depth: 1,
            payload,
        }))
        .unwrap();
    stream.flush().unwrap();
    match read_frame(&mut stream).expect("read error frame") {
        Some(WireFrame::Error { session, message }) => {
            assert_eq!(session, 424242);
            assert!(message.contains("unknown session"), "{message}");
        }
        other => panic!("expected Error frame, got {other:?}"),
    }

    // The connection is still usable: a well-formed Open afterwards is
    // accepted and served.
    let req = request(9, 16, Some(ProtocolChoice::Trivial));
    stream
        .write_all(&encode(&WireFrame::Open {
            session: 1,
            line: req.to_line(),
        }))
        .unwrap();
    stream.flush().unwrap();
    match read_frame(&mut stream).expect("read accept") {
        Some(WireFrame::Accept { session, protocol }) => {
            assert_eq!(session, 1);
            assert_eq!(protocol, "trivial");
        }
        other => panic!("expected Accept frame, got {other:?}"),
    }
    drop(stream);
    server.shutdown();
}

#[test]
fn malformed_open_line_is_refused_without_panic() {
    let mut server = start_tcp_server();
    let addr = server.local_addr().clone();
    let mut stream = Stream::connect(&addr).expect("raw connect");
    // k > n is infeasible; the server must refuse with an Error frame
    // and keep the connection serving.
    stream
        .write_all(&encode(&WireFrame::Open {
            session: 8,
            line: "n=16 k=64".into(),
        }))
        .unwrap();
    stream.flush().unwrap();
    match read_frame(&mut stream).expect("read refusal") {
        Some(WireFrame::Error { session, message }) => {
            assert_eq!(session, 8);
            assert!(message.contains("bad request"), "{message}");
        }
        other => panic!("expected Error frame, got {other:?}"),
    }
    // The connection is still usable afterwards.
    let good = request(2, 16, Some(ProtocolChoice::Trivial));
    stream
        .write_all(&encode(&WireFrame::Open {
            session: 9,
            line: good.to_line(),
        }))
        .unwrap();
    stream.flush().unwrap();
    match read_frame(&mut stream).expect("read accept") {
        Some(WireFrame::Accept { session, .. }) => assert_eq!(session, 9),
        other => panic!("expected Accept frame, got {other:?}"),
    }
    drop(stream);
    let summary = server.shutdown();
    assert_eq!(summary.sessions_rejected, 1);
}

/// Regression test for the graceful-shutdown fix: a shutdown issued
/// while sessions are in flight must drain them (they complete and
/// their reports remain bit-exact), say Goodbye on live connections,
/// and only then close — never drop the listener mid-round.
#[test]
fn shutdown_drains_in_flight_sessions_and_says_goodbye() {
    let mut server = start_tcp_server();
    let client = Arc::new(NetClient::connect(&server.local_addr().to_string()).unwrap());

    // Keep a stream of sessions in flight from several threads.
    let runner = {
        let client = Arc::clone(&client);
        std::thread::spawn(move || {
            let mut completed = 0u64;
            let mut rejected = 0u64;
            'outer: for round in 0..200u64 {
                for t in 0..4u64 {
                    let req = request(1000 + round * 8 + t, 64, None);
                    match client.run(&req) {
                        Ok(run) => {
                            assert!(
                                run.matches(&req.input_pair().ground_truth()),
                                "drained session must stay bit-exact"
                            );
                            completed += 1;
                        }
                        Err(_) => {
                            // Draining: opens are refused from here on.
                            rejected += 1;
                            break 'outer;
                        }
                    }
                }
            }
            (completed, rejected)
        })
    };

    // Let some sessions complete, then shut down concurrently with the
    // client still submitting.
    loop {
        if server.summary().sessions_served >= 3 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    let summary = server.shutdown();
    let (completed, _rejected) = runner.join().expect("client thread");

    // Every session the server admitted ran to completion — nothing was
    // dropped mid-round by the shutdown.
    assert_eq!(summary.sessions_failed, 0, "no session died mid-round");
    assert!(summary.sessions_served >= 3);
    assert_eq!(
        summary.sessions_served, completed,
        "client saw every admitted session complete"
    );
    // The drain said goodbye on the live connection before closing it.
    assert!(client.server_said_goodbye(), "Goodbye must precede close");
}
