//! End-to-end multiparty transport tests: a remote m-party session —
//! the client driving one player, the server hosting the rest of the
//! mesh — is bit-identical to the same request run entirely in process
//! by the multiparty harness. Per-player bit meters, message counts,
//! and causal round counts must all agree, for every protocol in the
//! catalogue and every driven player index.

use intersect_engine::prelude::*;
use intersect_multiparty::{AverageCase, MultipartyDisjointness, WorstCase};
use intersect_net::prelude::*;
use std::sync::Arc;

use intersect_core::sets::ProblemSpec;

fn start_tcp_server() -> NetServer {
    NetServer::start(NetServerConfig::new(
        EndpointAddr::parse("tcp:127.0.0.1:0").unwrap(),
    ))
    .expect("bind server")
}

fn request(id: u64, players: usize, choice: MultipartyChoice) -> MultipartyRequest {
    let spec = ProblemSpec::new(1 << 16, 16);
    let mut req = MultipartyRequest::new(id, spec, players, 2, choice);
    req.seed = id.wrapping_mul(0x9E37).wrapping_add(13);
    req
}

#[test]
fn remote_multiparty_sessions_are_bit_identical_to_local_runs() {
    let mut server = start_tcp_server();
    let client = NetClient::connect(&server.local_addr().to_string()).unwrap();
    let mut id = 0u64;
    for choice in MultipartyChoice::ALL {
        for m in [2usize, 4, 8] {
            id += 1;
            let req = request(id, m, choice);
            let label = format!("{choice} m={m}");
            let run = client.run_multiparty(&req).expect("remote mp session");
            let sets = req.player_sets();
            let truth = req.ground_truth();
            assert_eq!(run.player, 0, "{label}: driven player defaults to 0");
            assert!(run.matches(&truth), "{label}: ground truth");
            match choice {
                MultipartyChoice::AverageCase => {
                    let reference = AverageCase::new(req.spec, req.tree_rounds)
                        .execute(&sets, req.seed)
                        .unwrap();
                    assert_eq!(run.report, reference.report, "{label}: report");
                    assert_eq!(run.result.as_ref(), Some(&reference.result), "{label}");
                }
                MultipartyChoice::WorstCase => {
                    let reference = WorstCase::new(req.spec, req.tree_rounds)
                        .execute(&sets, req.seed)
                        .unwrap();
                    assert_eq!(run.report, reference.report, "{label}: report");
                    assert_eq!(run.result.as_ref(), Some(&reference.result), "{label}");
                }
                MultipartyChoice::Disjointness => {
                    let reference = MultipartyDisjointness::new(req.spec, req.tree_rounds)
                        .execute(&sets, req.seed)
                        .unwrap();
                    assert_eq!(run.report, reference.report, "{label}: report");
                    assert!(
                        run.verdicts.iter().all(|v| *v == Some(reference.disjoint)),
                        "{label}: verdicts {:?}",
                        run.verdicts
                    );
                }
            }
            // The driven player's own holder view agrees with the fold.
            if run.holder == Some(0) {
                assert_eq!(
                    run.output.intersection.as_ref(),
                    run.result.as_ref(),
                    "{label}: holder output"
                );
            }
        }
    }
    drop(client);
    let summary = server.shutdown();
    assert_eq!(summary.sessions_served, 9);
    assert_eq!(summary.sessions_failed, 0);
}

#[test]
fn any_player_index_can_be_driven_remotely() {
    let mut server = start_tcp_server();
    let client = NetClient::connect(&server.local_addr().to_string()).unwrap();
    // Star coordinator (player 0), a mid-mesh member, and the last
    // player: the transcript must not depend on which seat is remote.
    for (id, player) in [(21u64, 0usize), (22, 2), (23, 3)] {
        let mut req = request(id, 4, MultipartyChoice::AverageCase);
        req.player = Some(player);
        let run = client.run_multiparty(&req).expect("remote mp session");
        let reference = AverageCase::new(req.spec, req.tree_rounds)
            .execute(&req.player_sets(), req.seed)
            .unwrap();
        assert_eq!(run.player, player);
        assert_eq!(run.report, reference.report, "player {player}: report");
        assert_eq!(
            run.result.as_ref(),
            Some(&reference.result),
            "player {player}: result"
        );
        assert!(run.matches(&req.ground_truth()), "player {player}");
    }
    drop(client);
    let summary = server.shutdown();
    assert_eq!(summary.sessions_served, 3);
    assert_eq!(summary.sessions_failed, 0);
}

#[test]
fn multiparty_and_two_party_sessions_interleave_on_one_connection() {
    let mut server = start_tcp_server();
    let client = Arc::new(NetClient::connect(&server.local_addr().to_string()).unwrap());
    let threads: Vec<_> = (0..4u64)
        .map(|t| {
            let client = Arc::clone(&client);
            std::thread::spawn(move || {
                for i in 0..2u64 {
                    if t % 2 == 0 {
                        let req = request(100 + t * 10 + i, 4, MultipartyChoice::WorstCase);
                        let run = client.run_multiparty(&req).expect("mp session");
                        assert!(run.matches(&req.ground_truth()));
                    } else {
                        let spec = ProblemSpec::new(1 << 16, 16);
                        let req = intersect_engine::SessionRequest::new(200 + t * 10 + i, spec, 5);
                        let run = client.run(&req).expect("two-party session");
                        assert!(run.matches(&req.input_pair().ground_truth()));
                    }
                }
            })
        })
        .collect();
    for t in threads {
        t.join().expect("client thread");
    }
    drop(client);
    let summary = server.shutdown();
    assert_eq!(summary.sessions_served, 8);
    assert_eq!(summary.sessions_failed, 0);
    assert_eq!(summary.connections, 1, "one shared connection");
}

#[test]
fn malformed_multiparty_open_is_refused_cleanly() {
    let mut server = start_tcp_server();
    let client = NetClient::connect(&server.local_addr().to_string()).unwrap();
    // players over the cap: refused at parse, connection survives.
    let mut req = request(31, 4, MultipartyChoice::AverageCase);
    req.players = 5000;
    let err = client.run_multiparty(&req).unwrap_err();
    assert!(
        matches!(err, intersect_comm::error::ProtocolError::InvalidInput(_)),
        "{err:?}"
    );
    // A request that validates locally but is rejected server-side
    // (unknown protocol name cannot happen via the typed API, so drive
    // the refusal with a bad overlap through a raw line instead) — the
    // easy server-side refusal is capacity; here just confirm a good
    // session still works after the local rejection.
    let ok = request(32, 2, MultipartyChoice::Disjointness);
    let run = client.run_multiparty(&ok).expect("session after refusal");
    assert!(run.matches(&ok.ground_truth()));
    drop(client);
    let summary = server.shutdown();
    assert_eq!(summary.sessions_served, 1);
}
