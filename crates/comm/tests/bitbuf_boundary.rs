//! The inline→spill boundary of `BitBuf` is invisible.
//!
//! Buffers up to [`INLINE_BITS`] bits live inline; beyond, words spill
//! to the heap; `with_capacity` can even pre-spill a buffer that ends up
//! short. Every one of those representations must round-trip bits
//! exactly and agree under `Clone`/`Eq`/`Hash` — the representation is
//! an allocation detail, never an observable.

use intersect_comm::bits::{BitBuf, INLINE_BITS};
use intersect_comm::chan::{Chan, Endpoint};
use intersect_comm::coins::CoinSource;
use intersect_comm::error::ProtocolError;
use intersect_comm::runner::{RunConfig, SessionRunner};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::Arc;
use std::time::Duration;

/// A deterministic bit pattern long enough to cross the boundary.
fn pattern_bit(seed: u64, i: usize) -> bool {
    (seed
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(i as u64))
    .count_ones()
        % 2
        == 1
}

fn build(seed: u64, len: usize, capacity: usize) -> BitBuf {
    let mut buf = BitBuf::with_capacity(capacity);
    for i in 0..len {
        buf.push_bit(pattern_bit(seed, i));
    }
    buf
}

fn hash_of(buf: &BitBuf) -> u64 {
    let mut h = DefaultHasher::new();
    buf.hash(&mut h);
    h.finish()
}

#[test]
fn round_trips_exactly_at_the_boundary() {
    for len in [
        0,
        1,
        63,
        64,
        65,
        INLINE_BITS - 1,
        INLINE_BITS,
        INLINE_BITS + 1,
        2 * INLINE_BITS,
        1000,
    ] {
        let buf = build(7, len, 0);
        assert_eq!(buf.len(), len);
        for i in 0..len {
            assert_eq!(buf.get(i), Some(pattern_bit(7, i)), "len {len}, bit {i}");
        }
        assert_eq!(buf.get(len), None);
        let mut r = buf.reader();
        for i in 0..len {
            assert_eq!(
                r.read_bit().unwrap(),
                pattern_bit(7, i),
                "len {len}, bit {i}"
            );
        }
        assert!(r.read_bit().is_err());
    }
}

#[test]
fn wide_pushes_round_trip_across_the_boundary() {
    // Push 64-bit words so a push straddles the 128-bit boundary from
    // every possible offset.
    for offset in 0..64usize {
        let mut buf = BitBuf::new();
        if offset > 0 {
            buf.push_bits((1 << offset) - 1, offset);
        }
        let vals = [u64::MAX, 0, 0xdead_beef_cafe_f00d, u64::MAX / 3];
        for &v in &vals {
            buf.push_bits(v, 64);
        }
        let mut r = buf.reader();
        if offset > 0 {
            assert_eq!(r.read_bits(offset).unwrap(), (1 << offset) - 1);
        }
        for &v in &vals {
            assert_eq!(r.read_bits(64).unwrap(), v, "offset {offset}");
        }
    }
}

#[test]
fn clone_eq_hash_agree_across_inline_and_spilled_representations() {
    for len in [0, 1, 64, INLINE_BITS - 1, INLINE_BITS] {
        // Same bits, three representations: naturally inline,
        // pre-spilled by an over-sized with_capacity, and a clone of the
        // spilled one (which normalizes back to inline).
        let inline = build(13, len, 0);
        let spilled = build(13, len, 4 * INLINE_BITS);
        let clone_of_spilled = spilled.clone();

        assert_eq!(inline, spilled, "len {len}");
        assert_eq!(inline, clone_of_spilled, "len {len}");
        assert_eq!(hash_of(&inline), hash_of(&spilled), "len {len}");
        assert_eq!(hash_of(&inline), hash_of(&clone_of_spilled), "len {len}");
        assert_eq!(inline.words(), spilled.words(), "len {len}");

        // And unequal content stays unequal in every representation.
        if len > 0 {
            let mut other = BitBuf::with_capacity(4 * INLINE_BITS);
            for i in 0..len {
                // Flip the final bit.
                other.push_bit(pattern_bit(13, i) ^ (i == len - 1));
            }
            assert_ne!(inline, other);
            assert_ne!(spilled, other);
        }
    }
}

#[test]
fn extend_from_agrees_across_representations() {
    for head in [0usize, 5, 64, 127, 128, 129] {
        for tail in [0usize, 1, 64, 128, 200] {
            let mut grown = build(3, head, 0);
            grown.extend_from(&build(4, tail, 0));

            let mut grown_spilled = build(3, head, 4 * INLINE_BITS);
            grown_spilled.extend_from(&build(4, tail, 4 * INLINE_BITS));

            let mut reference = BitBuf::new();
            for i in 0..head {
                reference.push_bit(pattern_bit(3, i));
            }
            for i in 0..tail {
                reference.push_bit(pattern_bit(4, i));
            }
            assert_eq!(grown, reference, "head {head}, tail {tail}");
            assert_eq!(grown_spilled, reference, "head {head}, tail {tail}");
            assert_eq!(hash_of(&grown), hash_of(&reference));
        }
    }
}

#[test]
fn reader_read_buf_crosses_the_boundary() {
    let buf = build(21, 3 * INLINE_BITS, 0);
    let mut r = buf.reader();
    let first = r.read_buf(INLINE_BITS - 1).unwrap(); // inline
    let second = r.read_buf(INLINE_BITS + 5).unwrap(); // spilled
    assert_eq!(first.len(), INLINE_BITS - 1);
    assert_eq!(second.len(), INLINE_BITS + 5);
    for i in 0..first.len() {
        assert_eq!(first.get(i), Some(pattern_bit(21, i)));
    }
    for i in 0..second.len() {
        assert_eq!(second.get(i), Some(pattern_bit(21, INLINE_BITS - 1 + i)));
    }
}

#[test]
fn endpoint_pairs_recycle_spill_storage_through_the_shared_pool() {
    // The pair's SpillPool is the reclaim path for spilled payloads:
    // with it installed, dropping a spilled buffer shelves its storage
    // (never leaks), re-spilling draws the same storage back (never
    // double-recycles — the shelf count goes 0 → 1 → 0), and bits read
    // from recycled storage are exact.
    let (a, _b) = Endpoint::pair(None, Duration::from_secs(1));
    let pool = Arc::clone(a.pool());
    let scope = pool.install();
    assert_eq!(pool.pooled(), 0);

    let spilled = build(9, 3 * INLINE_BITS, 0);
    drop(spilled);
    assert_eq!(pool.pooled(), 1, "dropped spill storage must shelve");

    let recycled = build(9, 3 * INLINE_BITS, 0);
    assert_eq!(pool.pooled(), 0, "re-spilling must draw from the shelf");
    for i in 0..recycled.len() {
        assert_eq!(
            recycled.get(i),
            Some(pattern_bit(9, i)),
            "bit {i} corrupted on recycled storage"
        );
    }

    // An inline buffer has no spill storage and must not touch the pool.
    drop(build(9, INLINE_BITS - 1, 0));
    assert_eq!(pool.pooled(), 0);
    drop(recycled);
    assert_eq!(pool.pooled(), 1);
    drop(scope);
}

/// Property test for the satellite contract: interleaved
/// `Endpoint::reset`/`rearm` (driven through every reuse path of one
/// `SessionRunner` — single runs, 64-style batches, pair streams) plus
/// spill/reclaim through the shared pool never corrupts a payload. Each
/// session moves payloads whose widths straddle `INLINE_BITS` from both
/// sides of the boundary, and every echoed payload is compared to the
/// deterministic pattern it was built from — a leak, double-recycle, or
/// stale frame surviving a reset would surface as a mismatch or hang.
#[test]
fn interleaved_session_resets_and_spill_reclaim_stay_exact() {
    let mut runner = SessionRunner::start();
    for seed in 0..8u64 {
        let mut state = seed.wrapping_mul(0x2545_f491_4f6c_dd1d) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for round in 0..6u64 {
            let depth = 1 + (next() % 5) as usize;
            // Widths hug the inline→spill boundary from both sides so
            // consecutive sessions keep migrating storage between the
            // inline representation and the pool.
            let widths: Vec<usize> = (0..depth)
                .map(|_| match next() % 4 {
                    0 => (next() % 64) as usize,
                    1 => INLINE_BITS - 1 - (next() % 3) as usize,
                    2 => INLINE_BITS + (next() % 3) as usize,
                    _ => 2 * INLINE_BITS + (next() % 200) as usize,
                })
                .collect();
            let pattern_seeds: Vec<u64> = (0..depth as u64)
                .map(|i| seed * 1000 + round * 10 + i)
                .collect();
            let seeds: Vec<u64> = pattern_seeds.clone();

            fn echo_bob(chan: &mut Endpoint, _: &CoinSource) -> Result<(), ProtocolError> {
                let msg = chan.recv()?;
                chan.send(msg)?;
                Ok(())
            }
            let alice = |i: usize, chan: &mut Endpoint, _: &CoinSource| {
                let sent = build(pattern_seeds[i], widths[i], 0);
                chan.send(sent.clone())?;
                let echo = chan.recv()?;
                Ok(echo == sent)
            };
            let bob = |_: usize, chan: &mut Endpoint, coins: &CoinSource| echo_bob(chan, coins);

            let cell = format!("seed {seed}, round {round}, depth {depth}");
            let exact: Vec<bool> = match next() % 3 {
                // Single run: full reset (drains the queue) per session.
                0 => seeds
                    .iter()
                    .enumerate()
                    .map(|(i, &s)| {
                        runner
                            .run(
                                &RunConfig::with_seed(s),
                                |chan: &mut Endpoint, c: &CoinSource| alice(i, chan, c),
                                echo_bob,
                            )
                            .expect(&cell)
                            .alice
                    })
                    .collect(),
                // Batch: rearm + per-session fin rendezvous.
                1 => runner
                    .run_batch_parts(&RunConfig::with_seed(seeds[0]), &seeds, alice, bob)
                    .expect(&cell)
                    .into_iter()
                    .map(|p| p.alice.expect(&cell))
                    .collect(),
                // Stream: rearm only, rendezvous at the block boundary.
                _ => runner
                    .run_stream_parts(&RunConfig::with_seed(seeds[0]), &seeds, alice, bob)
                    .expect(&cell)
                    .into_iter()
                    .map(|p| p.alice.expect(&cell))
                    .collect(),
            };
            assert_eq!(exact.len(), depth, "{cell}: session lost");
            for (i, ok) in exact.iter().enumerate() {
                assert!(ok, "{cell}: session {i} echoed a corrupted payload");
            }
        }
    }
}

#[test]
fn randomized_operation_sequences_match_a_bit_vector_model() {
    // A light property test: drive BitBuf with a deterministic mix of
    // push_bit / push_bits / extend_from and compare against Vec<bool>.
    for seed in 0..20u64 {
        let mut state = seed.wrapping_mul(0x2545_f491_4f6c_dd1d) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut buf = BitBuf::with_capacity((next() % 300) as usize);
        let mut model: Vec<bool> = Vec::new();
        for _ in 0..80 {
            match next() % 3 {
                0 => {
                    let b = next() % 2 == 1;
                    buf.push_bit(b);
                    model.push(b);
                }
                1 => {
                    let width = (next() % 65) as usize;
                    let value = if width == 64 {
                        next()
                    } else {
                        next() % (1u64 << width)
                    };
                    buf.push_bits(value, width);
                    for i in 0..width {
                        model.push((value >> i) & 1 == 1);
                    }
                }
                _ => {
                    let other_len = (next() % 100) as usize;
                    let other_seed = next();
                    let other = build(other_seed, other_len, (next() % 200) as usize);
                    buf.extend_from(&other);
                    for i in 0..other_len {
                        model.push(pattern_bit(other_seed, i));
                    }
                }
            }
        }
        assert_eq!(buf.len(), model.len(), "seed {seed}");
        for (i, &b) in model.iter().enumerate() {
            assert_eq!(buf.get(i), Some(b), "seed {seed}, bit {i}");
        }
        let copy = buf.clone();
        assert_eq!(copy, buf);
        assert_eq!(hash_of(&copy), hash_of(&buf));
    }
}
