//! Steady-state sessions allocate nothing on the message hot path.
//!
//! A counting global allocator wraps the system allocator and a
//! [`SessionRunner`] serves ping-pong sessions. After warm-up (channel
//! backbone capacity, spill-pool population), a measurement window of
//! message exchanges — and even of whole sessions — must perform zero
//! process-wide heap allocations: inline `BitBuf`s never touch the heap,
//! and spilled ones recycle their words through the endpoint pair's
//! pool. Lives in its own integration-test process so no sibling test
//! can allocate mid-window.

use intersect_comm::prelude::*;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct Counting;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: Counting = Counting;

fn count() -> u64 {
    ALLOCS.load(Ordering::SeqCst)
}

fn payload(bits: usize, i: u64) -> BitBuf {
    let mut m = BitBuf::with_capacity(bits);
    let mut left = bits;
    while left > 0 {
        let take = left.min(64);
        let v = if take == 64 {
            i.wrapping_mul(0x9e37_79b9_7f4a_7c15)
        } else {
            i % (1 << take)
        };
        m.push_bits(v, take);
        left -= take;
    }
    m
}

/// Runs one ping-pong session of `warmup + iters` exchanges and returns
/// the allocation count across the measured `iters` window.
fn measure_message_window(runner: &mut SessionRunner, bits: usize, iters: u64) -> u64 {
    const WARMUP: u64 = 64;
    let out = runner
        .run(
            &RunConfig::with_seed(1),
            move |chan: &mut Endpoint, _: &CoinSource| {
                for i in 0..WARMUP {
                    chan.send(payload(bits, i))?;
                    chan.recv()?;
                }
                let a0 = count();
                for i in 0..iters {
                    chan.send(payload(bits, i))?;
                    let echoed = chan.recv()?;
                    assert_eq!(echoed.len(), bits);
                }
                Ok(count() - a0)
            },
            move |chan: &mut Endpoint, _: &CoinSource| {
                for _ in 0..(WARMUP + iters) {
                    let m = chan.recv()?;
                    chan.send(m)?;
                }
                Ok(())
            },
        )
        .expect("ping-pong session");
    out.alice
}

// One test function, not several: the allocation counter is
// process-wide, and sibling tests in the same binary run concurrently.
#[test]
fn steady_state_messages_and_sessions_allocate_nothing() {
    let mut runner = SessionRunner::start();

    // One throwaway session to establish the runner's own control
    // backbone (job/ready/done channel capacity) — a first-ever session
    // allocates there, concurrently with the measurement window.
    runner
        .run(
            &RunConfig::with_seed(0),
            |chan: &mut Endpoint, _: &CoinSource| {
                let mut m = BitBuf::new();
                m.push_bit(true);
                chan.send(m)?;
                Ok(())
            },
            |chan: &mut Endpoint, _: &CoinSource| {
                chan.recv()?;
                Ok(())
            },
        )
        .expect("runner warmup");

    // ≤ INLINE_BITS: messages must allocate nothing — this is the
    // headline zero-allocation contract, with no warm-up caveats beyond
    // the channel backbone itself.
    for bits in [1, 8, 64, 127, INLINE_BITS] {
        let n = measure_message_window(&mut runner, bits, 2_000);
        assert_eq!(
            n, 0,
            "{bits}-bit messages performed {n} allocations over 2000 exchanges"
        );
    }

    // > INLINE_BITS: spilled messages recycle through the endpoint
    // pair's pool, so the steady state is also allocation-free.
    for bits in [INLINE_BITS + 1, 512, 4096] {
        let n = measure_message_window(&mut runner, bits, 2_000);
        assert_eq!(
            n, 0,
            "{bits}-bit (spilled) messages performed {n} allocations over 2000 exchanges"
        );
    }

    // Whole sessions: after a warm-up, a reused runner serves complete
    // handshake sessions without a single allocation.
    let handshake_alice = |chan: &mut Endpoint, _: &CoinSource| {
        let mut m = BitBuf::with_capacity(32);
        m.push_bits(0xdead_beef, 32);
        chan.send(m)?;
        Ok(chan.recv()?.reader().read_bits(32)?)
    };
    let handshake_bob = |chan: &mut Endpoint, _: &CoinSource| {
        let got = chan.recv()?;
        chan.send(got)?;
        Ok(())
    };
    for seed in 0..64 {
        runner
            .run(&RunConfig::with_seed(seed), handshake_alice, handshake_bob)
            .expect("warmup handshake");
    }
    let a0 = count();
    for seed in 0..200 {
        let out = runner
            .run(&RunConfig::with_seed(seed), handshake_alice, handshake_bob)
            .expect("handshake");
        assert_eq!(out.alice, 0xdead_beef);
    }
    let n = count() - a0;
    assert_eq!(n, 0, "200 steady-state sessions performed {n} allocations");

    // Sanity check that the counter observes this process: a plain heap
    // allocation is counted.
    let a0 = count();
    let v: Vec<u64> = Vec::with_capacity(32);
    assert!(
        count() > a0,
        "allocator counter failed to observe Vec::with_capacity"
    );
    drop(v);
}
