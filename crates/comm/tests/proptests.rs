//! Property-based tests for the communication substrate.

use intersect_comm::bignat::{binomial, BigNat};
use intersect_comm::bits::{bit_width_for, BitBuf};
use intersect_comm::encode::{
    get_delta, get_gamma, get_gamma0, get_rice, put_delta, put_gamma, put_gamma0, put_rice,
    BinomialSubsetCodec, RiceSubsetCodec,
};
use proptest::prelude::*;

proptest! {
    #[test]
    fn bitbuf_push_read_round_trip(values in prop::collection::vec((any::<u64>(), 0usize..=64), 0..50)) {
        let mut buf = BitBuf::new();
        let mut expected = Vec::new();
        for (v, w) in values {
            let v = if w == 64 { v } else { v & ((1u64 << w) - 1) };
            buf.push_bits(v, w);
            expected.push((v, w));
        }
        let mut r = buf.reader();
        for (v, w) in expected {
            prop_assert_eq!(r.read_bits(w).unwrap(), v);
        }
        prop_assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn bitbuf_extend_matches_concat(a in prop::collection::vec(any::<bool>(), 0..200),
                                    b in prop::collection::vec(any::<bool>(), 0..200)) {
        let buf_a: BitBuf = a.iter().copied().collect();
        let buf_b: BitBuf = b.iter().copied().collect();
        let mut joined = buf_a.clone();
        joined.extend_from(&buf_b);
        let direct: BitBuf = a.iter().chain(b.iter()).copied().collect();
        prop_assert_eq!(joined, direct);
    }

    #[test]
    fn gamma_round_trip(v in 1u64..=u64::MAX / 4) {
        let mut buf = BitBuf::new();
        put_gamma(&mut buf, v);
        prop_assert_eq!(get_gamma(&mut buf.reader()).unwrap(), v);
    }

    #[test]
    fn gamma0_round_trip(v in 0u64..=u64::MAX / 4) {
        let mut buf = BitBuf::new();
        put_gamma0(&mut buf, v);
        prop_assert_eq!(get_gamma0(&mut buf.reader()).unwrap(), v);
    }

    #[test]
    fn delta_round_trip(v in 1u64..u64::MAX) {
        let mut buf = BitBuf::new();
        put_delta(&mut buf, v);
        prop_assert_eq!(get_delta(&mut buf.reader()).unwrap(), v);
    }

    #[test]
    fn rice_round_trip(v in 0u64..1_000_000, b in 0usize..20) {
        // Keep the quotient bounded as the encoder requires.
        prop_assume!((v >> b) < (1 << 20));
        let mut buf = BitBuf::new();
        put_rice(&mut buf, v, b);
        prop_assert_eq!(get_rice(&mut buf.reader(), b).unwrap(), v);
    }

    #[test]
    fn mixed_code_stream_round_trips(items in prop::collection::vec((0u64..3, 1u64..1_000_000), 0..40)) {
        let mut buf = BitBuf::new();
        for (kind, v) in &items {
            match kind {
                0 => put_gamma(&mut buf, *v),
                1 => put_delta(&mut buf, *v),
                _ => put_rice(&mut buf, *v, 8),
            }
        }
        let mut r = buf.reader();
        for (kind, v) in &items {
            let got = match kind {
                0 => get_gamma(&mut r).unwrap(),
                1 => get_delta(&mut r).unwrap(),
                _ => get_rice(&mut r, 8).unwrap(),
            };
            prop_assert_eq!(got, *v);
        }
    }

    #[test]
    fn bignat_add_sub_matches_u128(a in 0u128..u128::MAX / 2, b in 0u128..u128::MAX / 2) {
        let mut x = BigNat::from(a);
        x.add_assign(&BigNat::from(b));
        prop_assert_eq!(x.to_u128(), Some(a + b));
        x.sub_assign(&BigNat::from(b));
        prop_assert_eq!(x.to_u128(), Some(a));
    }

    #[test]
    fn bignat_mul_div_matches_u128(a in any::<u64>(), m in 1u64..=u32::MAX as u64) {
        let mut x = BigNat::from(a);
        x.mul_assign_u64(m);
        prop_assert_eq!(x.to_u128(), Some(a as u128 * m as u128));
        let rem = x.div_assign_rem_u64(m);
        prop_assert_eq!(rem, 0);
        prop_assert_eq!(x.to_u64(), Some(a));
    }

    #[test]
    fn bignat_bits_round_trip(a in any::<u128>(), extra in 0usize..10) {
        let v = BigNat::from(a);
        let width = v.bit_len() + extra;
        let mut buf = BitBuf::new();
        v.write_bits(&mut buf, width);
        prop_assert_eq!(buf.len(), width);
        let back = BigNat::read_bits(&mut buf.reader(), width).unwrap();
        prop_assert_eq!(back, v);
    }

    #[test]
    fn bignat_ordering_matches_u128(a in any::<u128>(), b in any::<u128>()) {
        prop_assert_eq!(BigNat::from(a).cmp_nat(&BigNat::from(b)), a.cmp(&b));
    }

    #[test]
    fn binomial_symmetry(n in 0u64..60, k in 0u64..60) {
        prop_assume!(k <= n);
        prop_assert_eq!(binomial(n, k), binomial(n, n - k));
    }

    #[test]
    fn binomial_subset_round_trip(raw in prop::collection::btree_set(0u64..200, 0..12)) {
        let set: Vec<u64> = raw.into_iter().collect();
        let codec = BinomialSubsetCodec::new(200, 12);
        let buf = codec.encode(&set);
        prop_assert_eq!(codec.decode(&mut buf.reader()).unwrap(), set);
    }

    #[test]
    fn binomial_subset_encoding_is_injective(
        a in prop::collection::btree_set(0u64..60, 0..8),
        b in prop::collection::btree_set(0u64..60, 0..8),
    ) {
        let codec = BinomialSubsetCodec::new(60, 8);
        let sa: Vec<u64> = a.iter().copied().collect();
        let sb: Vec<u64> = b.iter().copied().collect();
        let ea = codec.encode(&sa);
        let eb = codec.encode(&sb);
        prop_assert_eq!(ea == eb, sa == sb);
    }

    #[test]
    fn rice_subset_round_trip(raw in prop::collection::btree_set(0u64..1_000_000, 0..64)) {
        let set: Vec<u64> = raw.into_iter().collect();
        let codec = RiceSubsetCodec::new(1_000_000, 64);
        let buf = codec.encode(&set);
        prop_assert_eq!(codec.decode(&mut buf.reader()).unwrap(), set);
    }

    #[test]
    fn bit_width_is_minimal(bound in 1u64..u64::MAX) {
        let w = bit_width_for(bound);
        // Every value in [0, bound) fits in w bits…
        if w < 64 {
            prop_assert!(bound - 1 < (1u64 << w));
        }
        // …and w-1 bits would not suffice (for bound ≥ 2).
        if bound >= 2 {
            prop_assert!(bound > (1u64 << (w - 1)));
        }
    }
}
