//! Bit-level message buffers.
//!
//! Communication complexity is measured in *bits*, so every message a
//! protocol sends is a [`BitBuf`]: an append-only sequence of bits with an
//! exact length. Protocols build messages by pushing fixed-width values and
//! decode them with a [`BitReader`] cursor.
//!
//! Bits are addressed LSB-first: `push_bits(v, w)` appends bit `0` of `v`
//! first, so a round-trip through `read_bits(w)` returns `v` exactly.
//!
//! # Storage
//!
//! Buffers up to [`INLINE_BITS`] bits (the vast majority of protocol
//! messages) live entirely inline — constructing, sending, and dropping
//! them performs **no heap allocation**. Longer buffers spill their words
//! to a `Vec<u64>`; when a session's [`crate::pool::SpillPool`] is
//! installed, spill storage is recycled through it so long messages also
//! stop allocating in steady state. The representation is invisible to
//! every consumer: [`Clone`], [`PartialEq`], [`Hash`], and
//! [`words`](BitBuf::words) agree across inline and spilled buffers that
//! hold the same bits.

use crate::error::CodecError;
use crate::pool;
use std::fmt;
use std::hash::{Hash, Hasher};

/// Number of bits a [`BitBuf`] stores inline before spilling to the heap.
pub const INLINE_BITS: usize = 128;

/// Inline storage, in 64-bit words.
const INLINE_WORDS: usize = INLINE_BITS / 64;

/// An append-only buffer of bits, the payload type of every message.
///
/// # Examples
///
/// ```
/// use intersect_comm::bits::BitBuf;
///
/// let mut buf = BitBuf::new();
/// buf.push_bits(0b1011, 4);
/// buf.push_bit(true);
/// assert_eq!(buf.len(), 5);
///
/// let mut r = buf.reader();
/// assert_eq!(r.read_bits(4).unwrap(), 0b1011);
/// assert!(r.read_bit().unwrap());
/// ```
#[derive(Default)]
pub struct BitBuf {
    len: usize,
    /// Authoritative storage while the buffer is inline; unused (and
    /// zeroed) once spilled. Bits at positions `>= len` are always zero.
    inline: [u64; INLINE_WORDS],
    /// Spill storage. The buffer is *spilled* iff this vector has
    /// nonzero capacity, in which case it holds exactly
    /// `len.div_ceil(64)` words and `inline` is dead.
    spill: Vec<u64>,
}

impl BitBuf {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BitBuf::default()
    }

    /// Creates an empty buffer with room for `bits` bits.
    ///
    /// Up to [`INLINE_BITS`] this allocates nothing; beyond, the spill
    /// storage is sized once up front (drawn from the session's spill
    /// pool when one is installed).
    pub fn with_capacity(bits: usize) -> Self {
        if bits <= INLINE_BITS {
            BitBuf::new()
        } else {
            BitBuf {
                len: 0,
                inline: [0; INLINE_WORDS],
                spill: pool::take_words(bits.div_ceil(64)),
            }
        }
    }

    /// `true` when the words live on the heap (see the module docs).
    #[inline]
    fn spilled(&self) -> bool {
        self.spill.capacity() != 0
    }

    /// Words holding `len` bits.
    #[inline]
    fn live_words(len: usize) -> usize {
        len.div_ceil(64)
    }

    /// Number of bits in the buffer.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the buffer holds no bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends a single bit.
    pub fn push_bit(&mut self, bit: bool) {
        self.push_bits(bit as u64, 1);
    }

    /// Appends the low `width` bits of `value`, LSB first.
    ///
    /// # Panics
    ///
    /// Panics if `width > 64`, or if `value` has bits set above `width`
    /// (that would silently lose information).
    pub fn push_bits(&mut self, value: u64, width: usize) {
        assert!(width <= 64, "width {width} exceeds 64");
        if width < 64 {
            assert!(
                value < (1u64 << width),
                "value {value} does not fit in {width} bits"
            );
        }
        if width == 0 {
            return;
        }
        if !self.spilled() && self.len + width > INLINE_BITS {
            self.spill_out(self.len + width);
        }
        let off = self.len % 64;
        let word = self.len / 64;
        let lo = value.checked_shl(off as u32).unwrap_or(0);
        if self.spilled() {
            if word == self.spill.len() {
                self.spill.push(0);
            }
            self.spill[word] |= lo;
            if off + width > 64 {
                // Bits that did not fit in the current word.
                self.spill.push(value >> (64 - off));
            }
        } else {
            self.inline[word] |= lo;
            if off + width > 64 {
                self.inline[word + 1] = value >> (64 - off);
            }
        }
        self.len += width;
    }

    /// Moves the inline words to spill storage sized for `total_bits`.
    #[cold]
    fn spill_out(&mut self, total_bits: usize) {
        debug_assert!(!self.spilled());
        let mut spill = pool::take_words(Self::live_words(total_bits).max(2 * INLINE_WORDS));
        spill.extend_from_slice(&self.inline[..Self::live_words(self.len)]);
        self.inline = [0; INLINE_WORDS];
        self.spill = spill;
    }

    /// Appends every bit of `other` to `self`.
    pub fn extend_from(&mut self, other: &BitBuf) {
        if other.len == 0 {
            return;
        }
        // Fast path: word-aligned append.
        if self.len.is_multiple_of(64) {
            let total = self.len + other.len;
            if !self.spilled() && total > INLINE_BITS {
                self.spill_out(total);
            }
            if self.spilled() {
                self.spill.extend_from_slice(other.words());
                self.len = total;
                // Trim any excess capacity-words beyond the new length.
                self.spill.truncate(Self::live_words(self.len));
            } else {
                let start = self.len / 64;
                let words = other.words();
                self.inline[start..start + words.len()].copy_from_slice(words);
                self.len = total;
            }
            return;
        }
        let mut remaining = other.len;
        let mut idx = 0;
        while remaining > 0 {
            let take = remaining.min(64);
            let value = other.word_bits(idx, take);
            self.push_bits(value, take);
            idx += take;
            remaining -= take;
        }
    }

    /// Returns the bit at position `idx`, or `None` if out of bounds.
    pub fn get(&self, idx: usize) -> Option<bool> {
        if idx >= self.len {
            return None;
        }
        Some((self.words()[idx / 64] >> (idx % 64)) & 1 == 1)
    }

    /// Reads up to 64 bits starting at bit `start`.
    ///
    /// # Panics
    ///
    /// Panics if the range `[start, start + width)` is out of bounds or
    /// `width > 64`.
    fn word_bits(&self, start: usize, width: usize) -> u64 {
        assert!(width <= 64);
        assert!(start + width <= self.len, "bit range out of bounds");
        if width == 0 {
            return 0;
        }
        let words = self.words();
        let word = start / 64;
        let off = start % 64;
        let lo = words[word] >> off;
        let value = if off + width > 64 {
            lo | (words[word + 1] << (64 - off))
        } else {
            lo
        };
        if width == 64 {
            value
        } else {
            value & ((1u64 << width) - 1)
        }
    }

    /// Returns a cursor that reads the buffer from the beginning.
    pub fn reader(&self) -> BitReader<'_> {
        BitReader { buf: self, pos: 0 }
    }

    /// The underlying 64-bit words (bits beyond [`len`](Self::len) are zero).
    ///
    /// Intended for word-at-a-time consumers such as fingerprinting; the
    /// exact word layout is little-endian in bit order and stable, and
    /// identical whether the buffer is inline or spilled.
    pub fn words(&self) -> &[u64] {
        if self.spilled() {
            &self.spill
        } else {
            &self.inline[..Self::live_words(self.len)]
        }
    }

    /// Iterates over the bits in order.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(move |i| self.get(i).unwrap())
    }
}

impl Clone for BitBuf {
    fn clone(&self) -> Self {
        if self.len <= INLINE_BITS {
            // Clones of short buffers are inline even when the source
            // spilled (e.g. an over-reserved `with_capacity` buffer).
            let mut inline = [0u64; INLINE_WORDS];
            inline[..Self::live_words(self.len)].copy_from_slice(self.words());
            BitBuf {
                len: self.len,
                inline,
                spill: Vec::new(),
            }
        } else {
            let mut spill = pool::take_words(self.spill.len());
            spill.extend_from_slice(&self.spill);
            BitBuf {
                len: self.len,
                inline: [0; INLINE_WORDS],
                spill,
            }
        }
    }
}

impl Drop for BitBuf {
    fn drop(&mut self) {
        if self.spill.capacity() != 0 {
            pool::recycle(std::mem::take(&mut self.spill));
        }
    }
}

impl PartialEq for BitBuf {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len && self.words() == other.words()
    }
}

impl Eq for BitBuf {}

impl Hash for BitBuf {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.len.hash(state);
        self.words().hash(state);
    }
}

impl fmt::Debug for BitBuf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitBuf[{} bits: ", self.len)?;
        for (i, b) in self.iter().enumerate() {
            if i == 64 {
                write!(f, "…")?;
                break;
            }
            write!(f, "{}", if b { '1' } else { '0' })?;
        }
        write!(f, "]")
    }
}

impl FromIterator<bool> for BitBuf {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        let mut buf = BitBuf::new();
        for b in iter {
            buf.push_bit(b);
        }
        buf
    }
}

impl Extend<bool> for BitBuf {
    fn extend<I: IntoIterator<Item = bool>>(&mut self, iter: I) {
        for b in iter {
            self.push_bit(b);
        }
    }
}

/// A read cursor over a [`BitBuf`].
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    buf: &'a BitBuf,
    pos: usize,
}

impl<'a> BitReader<'a> {
    /// Number of unread bits.
    pub fn remaining(&self) -> usize {
        self.buf.len - self.pos
    }

    /// Current position (bits consumed so far).
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Reads a single bit.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::UnexpectedEnd`] if the buffer is exhausted.
    pub fn read_bit(&mut self) -> Result<bool, CodecError> {
        match self.buf.get(self.pos) {
            Some(b) => {
                self.pos += 1;
                Ok(b)
            }
            None => Err(CodecError::UnexpectedEnd {
                wanted: 1,
                available: 0,
            }),
        }
    }

    /// Reads `width` bits as the low bits of a `u64`.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::WidthTooLarge`] if `width > 64` and
    /// [`CodecError::UnexpectedEnd`] if fewer than `width` bits remain.
    pub fn read_bits(&mut self, width: usize) -> Result<u64, CodecError> {
        if width > 64 {
            return Err(CodecError::WidthTooLarge(width));
        }
        if self.remaining() < width {
            return Err(CodecError::UnexpectedEnd {
                wanted: width,
                available: self.remaining(),
            });
        }
        let v = self.buf.word_bits(self.pos, width);
        self.pos += width;
        Ok(v)
    }

    /// Reads `width` bits into a fresh [`BitBuf`], where `width` may exceed 64.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::UnexpectedEnd`] if fewer than `width` bits remain.
    pub fn read_buf(&mut self, width: usize) -> Result<BitBuf, CodecError> {
        if self.remaining() < width {
            return Err(CodecError::UnexpectedEnd {
                wanted: width,
                available: self.remaining(),
            });
        }
        let mut out = BitBuf::with_capacity(width);
        let mut left = width;
        while left > 0 {
            let take = left.min(64);
            out.push_bits(self.buf.word_bits(self.pos, take), take);
            self.pos += take;
            left -= take;
        }
        Ok(out)
    }
}

/// Minimum number of bits needed to address any value in `[0, bound)`.
///
/// `bit_width_for(1)` is 0: a one-value domain needs no bits at all.
///
/// # Examples
///
/// ```
/// use intersect_comm::bits::bit_width_for;
/// assert_eq!(bit_width_for(1), 0);
/// assert_eq!(bit_width_for(2), 1);
/// assert_eq!(bit_width_for(1000), 10);
/// ```
///
/// # Panics
///
/// Panics if `bound == 0` (an empty domain has no encodable values).
pub fn bit_width_for(bound: u64) -> usize {
    assert!(bound > 0, "cannot address an empty domain");
    64 - (bound - 1).leading_zeros() as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_buffer() {
        let buf = BitBuf::new();
        assert!(buf.is_empty());
        assert_eq!(buf.len(), 0);
        assert_eq!(buf.get(0), None);
        assert_eq!(buf.reader().remaining(), 0);
    }

    #[test]
    fn single_bits_round_trip() {
        let mut buf = BitBuf::new();
        let pattern = [true, false, true, true, false, false, true];
        for &b in &pattern {
            buf.push_bit(b);
        }
        assert_eq!(buf.len(), pattern.len());
        let mut r = buf.reader();
        for &b in &pattern {
            assert_eq!(r.read_bit().unwrap(), b);
        }
        assert!(r.read_bit().is_err());
    }

    #[test]
    fn push_bits_round_trip_across_word_boundary() {
        let mut buf = BitBuf::new();
        // Offset the buffer so the 64-bit value straddles a word boundary.
        buf.push_bits(0b101, 3);
        buf.push_bits(u64::MAX, 64);
        buf.push_bits(0x1234_5678_9abc_def0, 61);
        let mut r = buf.reader();
        assert_eq!(r.read_bits(3).unwrap(), 0b101);
        assert_eq!(r.read_bits(64).unwrap(), u64::MAX);
    }

    #[test]
    fn zero_width_pushes_nothing() {
        let mut buf = BitBuf::new();
        buf.push_bits(0, 0);
        assert!(buf.is_empty());
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn push_bits_rejects_oversized_value() {
        let mut buf = BitBuf::new();
        buf.push_bits(8, 3);
    }

    #[test]
    fn extend_from_aligned_and_unaligned() {
        let mut a = BitBuf::new();
        a.push_bits(0xdead, 16);
        let mut b = BitBuf::new();
        b.push_bits(0xbeef, 16);
        b.push_bit(true);

        // Unaligned: 16 % 64 != 0 is still within one word; force a longer case.
        let mut big = BitBuf::new();
        for i in 0..130 {
            big.push_bit(i % 3 == 0);
        }
        let mut c = a.clone();
        c.extend_from(&b);
        c.extend_from(&big);
        assert_eq!(c.len(), 16 + 17 + 130);

        let mut r = c.reader();
        assert_eq!(r.read_bits(16).unwrap(), 0xdead);
        assert_eq!(r.read_bits(16).unwrap(), 0xbeef);
        assert!(r.read_bit().unwrap());
        for i in 0..130 {
            assert_eq!(r.read_bit().unwrap(), i % 3 == 0, "bit {i}");
        }
    }

    #[test]
    fn extend_from_word_aligned_fast_path() {
        let mut a = BitBuf::new();
        a.push_bits(u64::MAX, 64);
        let mut b = BitBuf::new();
        b.push_bits(0b11, 2);
        a.extend_from(&b);
        assert_eq!(a.len(), 66);
        let mut r = a.reader();
        assert_eq!(r.read_bits(64).unwrap(), u64::MAX);
        assert_eq!(r.read_bits(2).unwrap(), 0b11);
    }

    #[test]
    fn extend_from_word_aligned_across_the_spill_boundary() {
        // 64 + 128 bits: starts inline, must spill mid-append.
        let mut a = BitBuf::new();
        a.push_bits(u64::MAX, 64);
        let mut b = BitBuf::new();
        b.push_bits(0x1111_2222_3333_4444, 64);
        b.push_bits(0x5555_6666_7777_8888, 64);
        a.extend_from(&b);
        assert_eq!(a.len(), 192);
        let mut r = a.reader();
        assert_eq!(r.read_bits(64).unwrap(), u64::MAX);
        assert_eq!(r.read_bits(64).unwrap(), 0x1111_2222_3333_4444);
        assert_eq!(r.read_bits(64).unwrap(), 0x5555_6666_7777_8888);
    }

    #[test]
    fn read_buf_extracts_sub_buffer() {
        let mut buf = BitBuf::new();
        for i in 0..200u64 {
            buf.push_bit(i % 2 == 0);
        }
        let mut r = buf.reader();
        let _ = r.read_bits(7).unwrap();
        let sub = r.read_buf(100).unwrap();
        assert_eq!(sub.len(), 100);
        for i in 0..100usize {
            assert_eq!(sub.get(i).unwrap(), (i + 7) % 2 == 0);
        }
        assert_eq!(r.position(), 107);
    }

    #[test]
    fn bit_width_for_bounds() {
        assert_eq!(bit_width_for(1), 0);
        assert_eq!(bit_width_for(2), 1);
        assert_eq!(bit_width_for(3), 2);
        assert_eq!(bit_width_for(4), 2);
        assert_eq!(bit_width_for(5), 3);
        assert_eq!(bit_width_for(u64::MAX), 64);
        // Every bound fits.
        for bound in 1..2000u64 {
            let w = bit_width_for(bound);
            if w < 64 {
                assert!(bound <= (1u64 << w));
            }
            assert!(bound - 1 < (1u128 << w) as u64 || w == 64);
        }
    }

    #[test]
    fn from_iterator_and_extend() {
        let buf: BitBuf = [true, false, true].into_iter().collect();
        assert_eq!(buf.len(), 3);
        let mut buf2 = buf.clone();
        buf2.extend([false, true]);
        assert_eq!(buf2.len(), 5);
        assert_eq!(buf2.get(3), Some(false));
        assert_eq!(buf2.get(4), Some(true));
    }

    #[test]
    fn debug_is_never_empty() {
        let buf = BitBuf::new();
        assert!(!format!("{buf:?}").is_empty());
    }

    #[test]
    fn equality_ignores_capacity() {
        let mut a = BitBuf::with_capacity(1000);
        let mut b = BitBuf::new();
        a.push_bits(0x55, 8);
        b.push_bits(0x55, 8);
        assert_eq!(a, b);
    }
}
