//! Two-party channels with exact bit accounting.

use crate::bits::BitBuf;
use crate::error::ProtocolError;
use crate::pool::SpillPool;
use crate::stats::ChannelStats;
use crossbeam_channel::{Receiver, Sender};
use std::sync::Arc;
use std::time::Duration;

/// A frame on the wire.
#[derive(Debug, Clone)]
pub(crate) enum Frame {
    /// A protocol message: a bit payload stamped with the sender's
    /// causal clock.
    Msg { depth: u64, payload: BitBuf },
    /// Control frame: the sender's half of the session has completed and
    /// will transmit nothing further. Unmetered and invisible to
    /// protocols — on a long-lived reused channel it stands in for the
    /// endpoint drop that ends a dedicated [`crate::runner::run_two_party`]
    /// session, so a peer blocked in `recv` observes
    /// [`ProtocolError::ChannelClosed`] exactly as it would there.
    Fin,
}

/// The transport used by every protocol implementation.
///
/// A `Chan` counts the exact number of bits sent and received and maintains
/// the causal round clock (see [`crate::stats`]). Protocols are written
/// against this trait so the same code runs over a dedicated two-party link
/// ([`Endpoint`]) or over a pairwise link inside a multi-party network.
pub trait Chan {
    /// Sends one message to the peer.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::ChannelClosed`] if the peer hung up and
    /// [`ProtocolError::BudgetExceeded`] if a communication budget is set
    /// and this message would cross it.
    fn send(&mut self, msg: BitBuf) -> Result<(), ProtocolError>;

    /// Receives one message from the peer, blocking until it arrives.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::ChannelClosed`] if the peer hung up,
    /// [`ProtocolError::Timeout`] if the configured timeout elapses, and
    /// [`ProtocolError::BudgetExceeded`] on budget overrun.
    fn recv(&mut self) -> Result<BitBuf, ProtocolError>;

    /// Snapshot of this endpoint's counters.
    fn stats(&self) -> ChannelStats;

    /// Sends `msg` and then receives the peer's message.
    ///
    /// Both parties may call `exchange` simultaneously: sends are buffered,
    /// so this realizes a simultaneous-message round without deadlock.
    ///
    /// # Errors
    ///
    /// Propagates errors from [`send`](Chan::send) / [`recv`](Chan::recv).
    fn exchange(&mut self, msg: BitBuf) -> Result<BitBuf, ProtocolError> {
        self.send(msg)?;
        self.recv()
    }
}

impl<C: Chan + ?Sized> Chan for &mut C {
    fn send(&mut self, msg: BitBuf) -> Result<(), ProtocolError> {
        (**self).send(msg)
    }

    fn recv(&mut self) -> Result<BitBuf, ProtocolError> {
        (**self).recv()
    }

    fn stats(&self) -> ChannelStats {
        (**self).stats()
    }
}

/// One side of a dedicated two-party channel.
///
/// Created in pairs by [`Endpoint::pair`]; typically you use
/// [`crate::runner::run_two_party`] instead of constructing these directly.
#[derive(Debug)]
pub struct Endpoint {
    tx: Sender<Frame>,
    rx: Receiver<Frame>,
    stats: ChannelStats,
    budget: Option<u64>,
    timeout: Duration,
    /// Set once a [`Frame::Fin`] is received: the peer's half is over, so
    /// further traffic fails with [`ProtocolError::ChannelClosed`] just as
    /// it would after a real endpoint drop.
    peer_done: bool,
    /// Spill-buffer free list shared with the peer endpoint, so message
    /// payloads born on one side recycle their storage when dropped on
    /// the other.
    pool: Arc<SpillPool>,
}

impl Endpoint {
    /// Creates a connected pair of endpoints.
    ///
    /// `budget` bounds the *total* bits observed by one endpoint (sent plus
    /// received — i.e. the total communication of the protocol); `timeout`
    /// bounds each blocking receive.
    pub fn pair(budget: Option<u64>, timeout: Duration) -> (Endpoint, Endpoint) {
        let (tx_ab, rx_ab) = crossbeam_channel::unbounded();
        let (tx_ba, rx_ba) = crossbeam_channel::unbounded();
        let pool = SpillPool::new();
        let a = Endpoint {
            tx: tx_ab,
            rx: rx_ba,
            stats: ChannelStats::default(),
            budget,
            timeout,
            peer_done: false,
            pool: Arc::clone(&pool),
        };
        let b = Endpoint {
            tx: tx_ba,
            rx: rx_ab,
            stats: ChannelStats::default(),
            budget,
            timeout,
            peer_done: false,
            pool,
        };
        (a, b)
    }

    /// The spill-buffer pool shared by both endpoints of this pair.
    ///
    /// Session harnesses [`install`](SpillPool::install) it on the thread
    /// running each half so long-message storage recycles across the
    /// channel instead of round-tripping through the allocator.
    pub fn pool(&self) -> &Arc<SpillPool> {
        &self.pool
    }

    /// Restores this endpoint to the state of a fresh [`Endpoint::pair`]
    /// with the given budget and timeout: counters and round clock
    /// zeroed, leftover in-flight frames discarded.
    ///
    /// Only sound while the peer endpoint is quiescent — the
    /// [`crate::runner::SessionRunner`] handshake guarantees that.
    pub(crate) fn reset(&mut self, budget: Option<u64>, timeout: Duration) {
        while self.rx.try_recv().is_ok() {}
        self.stats = ChannelStats::default();
        self.budget = budget;
        self.timeout = timeout;
        self.peer_done = false;
    }

    /// Announces the end of this half's transmissions (see [`Frame::Fin`]).
    /// Infallible: a genuinely disconnected peer needs no announcement.
    pub(crate) fn send_fin(&self) {
        let _ = self.tx.send(Frame::Fin);
    }

    /// Rewinds the counters for the next session of a batch **without**
    /// draining the receive queue.
    ///
    /// Inside a batch the peer may already have raced ahead and sent the
    /// first frames of the next session; [`reset`](Self::reset)'s drain
    /// would swallow them. `rearm` relies on [`drain_to_fin`](Self::drain_to_fin)
    /// having consumed the stream exactly through the previous session's
    /// [`Frame::Fin`] separator, so everything still queued belongs to
    /// the session being armed.
    pub(crate) fn rearm(&mut self, budget: Option<u64>, timeout: Duration) {
        self.stats = ChannelStats::default();
        self.budget = budget;
        self.timeout = timeout;
        self.peer_done = false;
    }

    /// Consumes the receive stream up to and including the peer's
    /// [`Frame::Fin`] for the current session — the batch rendezvous.
    ///
    /// Any unread data frames of the finished session are discarded
    /// unmetered (the stats snapshot for the session has already been
    /// taken), and the peer's fin is consumed so it cannot be mistaken
    /// for a hangup in the next session. Because each side sends its fin
    /// before any frame of the next session, FIFO ordering makes the fin
    /// an exact session separator. If the fin was already observed by a
    /// `recv` (as [`ProtocolError::ChannelClosed`]), the stream is
    /// already positioned past the separator and this returns at once.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::Timeout`] if the peer's fin does not arrive in
    /// time, [`ProtocolError::ChannelClosed`] if the peer vanished;
    /// either desynchronizes the pair and must retire the runner.
    pub(crate) fn drain_to_fin(&mut self) -> Result<(), ProtocolError> {
        while !self.peer_done {
            match self.rx.recv_timeout(self.timeout) {
                Ok(Frame::Fin) => self.peer_done = true,
                Ok(Frame::Msg { .. }) => {}
                Err(crossbeam_channel::RecvTimeoutError::Timeout) => {
                    return Err(ProtocolError::Timeout)
                }
                Err(crossbeam_channel::RecvTimeoutError::Disconnected) => {
                    return Err(ProtocolError::ChannelClosed)
                }
            }
        }
        Ok(())
    }

    fn check_budget(&self) -> Result<(), ProtocolError> {
        if let Some(limit) = self.budget {
            if self.stats.total_bits() > limit {
                return Err(ProtocolError::BudgetExceeded { limit_bits: limit });
            }
        }
        Ok(())
    }
}

impl Chan for Endpoint {
    fn send(&mut self, msg: BitBuf) -> Result<(), ProtocolError> {
        let bits = msg.len() as u64;
        self.stats.bits_sent += bits;
        self.stats.messages_sent += 1;
        self.check_budget()?;
        if self.peer_done {
            return Err(ProtocolError::ChannelClosed);
        }
        let frame = Frame::Msg {
            depth: self.stats.clock + 1,
            payload: msg,
        };
        self.tx
            .send(frame)
            .map_err(|_| ProtocolError::ChannelClosed)?;
        intersect_obs::message(
            "comm",
            intersect_obs::Direction::Sent,
            bits,
            self.stats.clock,
        );
        Ok(())
    }

    fn recv(&mut self) -> Result<BitBuf, ProtocolError> {
        if self.peer_done {
            return Err(ProtocolError::ChannelClosed);
        }
        let frame = self.rx.recv_timeout(self.timeout).map_err(|e| match e {
            crossbeam_channel::RecvTimeoutError::Timeout => ProtocolError::Timeout,
            crossbeam_channel::RecvTimeoutError::Disconnected => ProtocolError::ChannelClosed,
        })?;
        let (depth, payload) = match frame {
            Frame::Msg { depth, payload } => (depth, payload),
            Frame::Fin => {
                self.peer_done = true;
                return Err(ProtocolError::ChannelClosed);
            }
        };
        self.stats.clock = self.stats.clock.max(depth);
        self.stats.bits_received += payload.len() as u64;
        self.stats.messages_received += 1;
        self.check_budget()?;
        intersect_obs::message(
            "comm",
            intersect_obs::Direction::Received,
            payload.len() as u64,
            self.stats.clock,
        );
        Ok(payload)
    }

    fn stats(&self) -> ChannelStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair() -> (Endpoint, Endpoint) {
        Endpoint::pair(None, Duration::from_secs(5))
    }

    fn msg(bits: usize) -> BitBuf {
        let mut b = BitBuf::new();
        for i in 0..bits {
            b.push_bit(i % 2 == 0);
        }
        b
    }

    #[test]
    fn send_recv_counts_bits_and_messages() {
        let (mut a, mut b) = pair();
        a.send(msg(10)).unwrap();
        a.send(msg(7)).unwrap();
        let m1 = b.recv().unwrap();
        let m2 = b.recv().unwrap();
        assert_eq!(m1.len(), 10);
        assert_eq!(m2.len(), 7);
        assert_eq!(a.stats().bits_sent, 17);
        assert_eq!(a.stats().messages_sent, 2);
        assert_eq!(b.stats().bits_received, 17);
        assert_eq!(b.stats().messages_received, 2);
    }

    #[test]
    fn consecutive_one_direction_messages_are_one_round() {
        let (mut a, mut b) = pair();
        a.send(msg(1)).unwrap();
        a.send(msg(1)).unwrap();
        a.send(msg(1)).unwrap();
        for _ in 0..3 {
            b.recv().unwrap();
        }
        assert_eq!(a.stats().clock, 0); // Alice never received anything
        assert_eq!(b.stats().clock, 1); // all three messages share one round
    }

    #[test]
    fn alternation_advances_rounds() {
        let (mut a, mut b) = pair();
        a.send(msg(1)).unwrap(); // round 1
        b.recv().unwrap();
        b.send(msg(1)).unwrap(); // round 2
        a.recv().unwrap();
        a.send(msg(1)).unwrap(); // round 3
        b.recv().unwrap();
        assert_eq!(b.stats().clock, 3);
        assert_eq!(a.stats().clock, 2);
    }

    #[test]
    fn simultaneous_exchange_is_one_round_each_way() {
        let (mut a, mut b) = pair();
        // Both send before either receives: a simultaneous round.
        a.send(msg(4)).unwrap();
        b.send(msg(4)).unwrap();
        a.recv().unwrap();
        b.recv().unwrap();
        assert_eq!(a.stats().clock, 1);
        assert_eq!(b.stats().clock, 1);
    }

    #[test]
    fn budget_is_enforced() {
        let (mut a, mut b) = Endpoint::pair(Some(16), Duration::from_secs(5));
        a.send(msg(10)).unwrap();
        let err = a.send(msg(10)).unwrap_err();
        assert!(matches!(
            err,
            ProtocolError::BudgetExceeded { limit_bits: 16 }
        ));
        // Receiver also trips its own budget once it has seen too much.
        b.recv().unwrap();
        let _ = b.recv(); // second frame was sent before the error; may exceed
    }

    #[test]
    fn disconnect_is_reported() {
        let (mut a, b) = pair();
        drop(b);
        assert_eq!(a.recv().unwrap_err(), ProtocolError::ChannelClosed);
        assert_eq!(a.send(msg(1)).unwrap_err(), ProtocolError::ChannelClosed);
    }

    #[test]
    fn timeout_is_reported() {
        let (mut a, _b) = Endpoint::pair(None, Duration::from_millis(10));
        assert_eq!(a.recv().unwrap_err(), ProtocolError::Timeout);
    }

    #[test]
    fn fin_emulates_a_hangup_after_queued_frames_drain() {
        let (mut a, mut b) = pair();
        a.send(msg(5)).unwrap();
        a.send(msg(3)).unwrap();
        a.send_fin();
        // Data queued before the fin still arrives in order …
        assert_eq!(b.recv().unwrap().len(), 5);
        assert_eq!(b.recv().unwrap().len(), 3);
        // … then the channel reads as closed, repeatably, in both directions.
        assert_eq!(b.recv().unwrap_err(), ProtocolError::ChannelClosed);
        assert_eq!(b.recv().unwrap_err(), ProtocolError::ChannelClosed);
        assert_eq!(b.send(msg(1)).unwrap_err(), ProtocolError::ChannelClosed);
        // Like a real post-drop send, the attempt was still metered.
        assert_eq!(b.stats().bits_sent, 1);
        assert_eq!(b.stats().messages_sent, 1);
    }

    #[test]
    fn fin_is_unmetered_and_does_not_advance_the_clock() {
        let (mut a, mut b) = pair();
        a.send(msg(4)).unwrap();
        a.send_fin();
        b.recv().unwrap();
        let _ = b.recv();
        assert_eq!(b.stats().bits_received, 4);
        assert_eq!(b.stats().messages_received, 1);
        assert_eq!(b.stats().clock, 1);
        assert_eq!(a.stats().bits_sent, 4);
        assert_eq!(a.stats().messages_sent, 1);
    }

    #[test]
    fn reset_restores_a_fresh_pair_state() {
        let (mut a, mut b) = pair();
        a.send(msg(9)).unwrap();
        b.recv().unwrap();
        b.send(msg(2)).unwrap();
        a.send(msg(1)).unwrap(); // left in flight: reset must discard it
        a.send_fin();
        b.recv().unwrap();
        let _ = b.recv(); // observe the fin
        b.send_fin();

        a.reset(Some(16), Duration::from_secs(5));
        b.reset(Some(16), Duration::from_secs(5));
        assert_eq!(a.stats(), ChannelStats::default());
        assert_eq!(b.stats(), ChannelStats::default());

        // The reused pair behaves exactly like a fresh one, budget included.
        a.send(msg(10)).unwrap();
        assert_eq!(b.recv().unwrap().len(), 10);
        assert_eq!(b.stats().clock, 1);
        assert!(matches!(
            a.send(msg(10)).unwrap_err(),
            ProtocolError::BudgetExceeded { limit_bits: 16 }
        ));
    }

    #[test]
    fn drain_to_fin_discards_residue_and_stops_at_the_separator() {
        let (mut a, mut b) = pair();
        a.send(msg(5)).unwrap(); // never read by b: session residue
        a.send_fin();
        a.rearm(None, Duration::from_secs(5));
        a.send(msg(9)).unwrap(); // first frame of the *next* session

        let before = b.stats();
        b.drain_to_fin().unwrap();
        // Residue and fin are unmetered …
        assert_eq!(b.stats(), before);
        // … and the next session's frame survives the drain.
        b.rearm(None, Duration::from_secs(5));
        assert_eq!(b.recv().unwrap().len(), 9);
        assert_eq!(b.stats().bits_received, 9);
        assert_eq!(b.stats().clock, 1);
    }

    #[test]
    fn drain_to_fin_is_a_no_op_after_recv_observed_the_fin() {
        let (a, mut b) = pair();
        a.send_fin();
        assert_eq!(b.recv().unwrap_err(), ProtocolError::ChannelClosed);
        // The fin was consumed by recv; the drain must not wait for another.
        b.drain_to_fin().unwrap();
    }

    #[test]
    fn drain_to_fin_times_out_on_a_silent_peer() {
        let (mut a, _b) = Endpoint::pair(None, Duration::from_millis(10));
        assert_eq!(a.drain_to_fin().unwrap_err(), ProtocolError::Timeout);
    }

    #[test]
    fn rearm_restores_fresh_counters_without_draining() {
        let (mut a, mut b) = pair();
        a.send(msg(3)).unwrap();
        a.rearm(Some(8), Duration::from_secs(5));
        assert_eq!(a.stats(), ChannelStats::default());
        // The in-flight frame was not discarded.
        assert_eq!(b.recv().unwrap().len(), 3);
        // The new budget applies from zeroed counters.
        a.send(msg(8)).unwrap();
        assert!(matches!(
            a.send(msg(1)).unwrap_err(),
            ProtocolError::BudgetExceeded { limit_bits: 8 }
        ));
    }

    #[test]
    fn endpoints_share_one_spill_pool() {
        let (a, b) = pair();
        assert!(Arc::ptr_eq(a.pool(), b.pool()));
    }

    #[test]
    fn exchange_round_trips() {
        let (mut a, mut b) = pair();
        let h = std::thread::spawn(move || {
            let got = b.exchange(msg(3)).unwrap();
            (got.len(), b)
        });
        let got = a.exchange(msg(5)).unwrap();
        assert_eq!(got.len(), 3);
        let (len_b, b) = h.join().unwrap();
        assert_eq!(len_b, 5);
        assert_eq!(a.stats().clock, 1);
        assert_eq!(b.stats().clock, 1);
    }
}
