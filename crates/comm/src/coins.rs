//! The common random string model.
//!
//! In the shared-randomness model both players read the same infinite random
//! string without communicating. We realize it as a [`CoinSource`]: a 256-bit
//! seed plus a labelled-fork operation. Both parties hold clones of the same
//! source and derive identical pseudorandom streams by forking with equal
//! labels (`coins.fork("stage3/bucket17")`), so shared hash functions never
//! cost communication and parties can never desynchronize by consuming
//! different amounts of a single stream.
//!
//! In the *private* randomness model each party forks its source from a
//! party-unique label; any randomness that must be shared is then sampled by
//! one party and **transmitted** (and its bits are counted), which is exactly
//! the constructive Newman transform the paper describes.

use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A deterministic, forkable source of shared random coins.
///
/// # Examples
///
/// ```
/// use intersect_comm::coins::CoinSource;
/// use rand::Rng;
///
/// let alice = CoinSource::from_seed(42);
/// let bob = CoinSource::from_seed(42);
/// // Equal labels yield identical streams — no communication needed.
/// let a: u64 = alice.fork("round1").rng().gen();
/// let b: u64 = bob.fork("round1").rng().gen();
/// assert_eq!(a, b);
/// // Different labels yield independent-looking streams.
/// let c: u64 = bob.fork("round2").rng().gen();
/// assert_ne!(a, c);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct CoinSource {
    state: [u64; 4],
}

impl std::fmt::Debug for CoinSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "CoinSource({:016x}…)", self.state[0])
    }
}

/// SplitMix64 step: the standard 64-bit finalizer with good avalanche.
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl CoinSource {
    /// Creates a source from a 64-bit seed (expanded to 256 bits).
    pub fn from_seed(seed: u64) -> Self {
        let mut state = [0u64; 4];
        let mut z = seed;
        for lane in &mut state {
            z = splitmix(z ^ 0xa076_1d64_78bd_642f);
            *lane = z;
        }
        CoinSource { state }
    }

    /// Derives a child source whose stream is determined by `(self, label)`.
    ///
    /// Forking is cheap and side-effect free: the parent can be forked with
    /// the same label again and will produce the same child.
    pub fn fork(&self, label: &str) -> CoinSource {
        let mut state = self.state;
        for (i, chunk) in label.as_bytes().chunks(8).enumerate() {
            let mut word = 0u64;
            for (j, &b) in chunk.iter().enumerate() {
                word |= (b as u64) << (8 * j);
            }
            let lane = i % 4;
            state[lane] =
                splitmix(state[lane] ^ word ^ (i as u64).wrapping_mul(0xff51_afd7_ed55_8ccd));
        }
        // Diffuse across lanes so labels differing in one chunk affect all.
        for round in 0..2u64 {
            for lane in 0..4 {
                let prev = state[(lane + 3) % 4];
                state[lane] = splitmix(state[lane] ^ prev.rotate_left(17) ^ round);
            }
        }
        CoinSource { state }
    }

    /// Derives a child source from an integer label.
    pub fn fork_index(&self, index: u64) -> CoinSource {
        let mut state = self.state;
        for (lane, s) in state.iter_mut().enumerate() {
            *s = splitmix(*s ^ index.rotate_left(13 * lane as u32) ^ 0xc2b2_ae3d_27d4_eb4f);
        }
        CoinSource { state }
    }

    /// Instantiates a reproducible RNG reading this source's stream.
    pub fn rng(&self) -> ChaCha8Rng {
        let mut seed = [0u8; 32];
        for (lane, chunk) in self.state.iter().zip(seed.chunks_mut(8)) {
            chunk.copy_from_slice(&lane.to_le_bytes());
        }
        ChaCha8Rng::from_seed(seed)
    }

    /// Shorthand for `self.fork(label).rng()`.
    pub fn rng_for(&self, label: &str) -> ChaCha8Rng {
        self.fork(label).rng()
    }

    /// A cheap deterministic 64-bit hash of `(self, a, b)`.
    ///
    /// Used where a protocol must evaluate a *lazily defined* shared random
    /// object at enormous indices — e.g. "is element `x` in the `j`-th
    /// random set of the common random string?" — without instantiating an
    /// RNG per query. Not a cryptographic PRF; statistically well-mixed.
    pub fn mix64(&self, a: u64, b: u64) -> u64 {
        let mut z = self.state[0] ^ a.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        z = splitmix(z);
        z ^= self.state[1] ^ b.wrapping_mul(0xc2b2_ae3d_27d4_eb4f);
        z = splitmix(z);
        z ^= self.state[2].rotate_left(31) ^ self.state[3];
        splitmix(z)
    }
}

/// The seed of stream session `index` for a pair whose correlated
/// randomness is rooted at `pair_seed`.
///
/// A *stream* is many sessions run by one client pair off a single
/// shared root. Deriving each session's common random string as a pure
/// function of `(pair_seed, index)` is what makes cross-session
/// amortization exact: a streamed session is bit-identical to a
/// one-shot run seeded with `stream_session_seed(pair_seed, index)`,
/// so precomputing blocks of these seeds (and anything sampled from
/// them) off the hot path can never change a transcript.
///
/// # Examples
///
/// ```
/// use intersect_comm::coins::{stream_session_seed, CoinSource};
///
/// let s = stream_session_seed(42, 7);
/// // Pure: the same pair and index always yield the same seed …
/// assert_eq!(s, stream_session_seed(42, 7));
/// // … and the derived coins match a one-shot source with that seed.
/// assert_eq!(CoinSource::from_seed(s), CoinSource::from_seed(s));
/// assert_ne!(s, stream_session_seed(42, 8));
/// assert_ne!(s, stream_session_seed(43, 7));
/// ```
pub fn stream_session_seed(pair_seed: u64, index: u64) -> u64 {
    CoinSource::from_seed(pair_seed)
        .fork("stream")
        .fork_index(index)
        .mix64(index, 0x73_74_72_65_61_6d) // "stream"
}

/// How many session seeds a [`CoinBlock`] pre-derives per refill.
pub const COIN_BLOCK_LEN: usize = 64;

/// A pre-forked block of per-session coin seeds for one client pair.
///
/// The offline/online split: a pair context fills a whole block of
/// [`stream_session_seed`]s in one step (the *offline* phase), and the
/// per-session hot path only indexes into it. When a session index
/// falls outside the current block the block refills deterministically
/// — the seeds depend only on `(pair_seed, index)`, never on refill
/// history — and the refill is counted (`coin_block_refills_total`).
///
/// # Examples
///
/// ```
/// use intersect_comm::coins::{stream_session_seed, CoinBlock, COIN_BLOCK_LEN};
///
/// let mut block = CoinBlock::new(9);
/// assert_eq!(block.session_seed(3), stream_session_seed(9, 3));
/// // Jumping far ahead refills, deterministically.
/// let far = 10 * COIN_BLOCK_LEN as u64 + 5;
/// assert_eq!(block.session_seed(far), stream_session_seed(9, far));
/// assert_eq!(block.refills(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct CoinBlock {
    pair_seed: u64,
    base: u64,
    seeds: Vec<u64>,
    refills: u64,
}

impl CoinBlock {
    /// Pre-derives the first block of session seeds for `pair_seed`.
    pub fn new(pair_seed: u64) -> CoinBlock {
        let mut block = CoinBlock {
            pair_seed,
            base: 0,
            seeds: Vec::with_capacity(COIN_BLOCK_LEN),
            refills: 0,
        };
        block.fill(0);
        block
    }

    fn fill(&mut self, base: u64) {
        self.base = base;
        self.seeds.clear();
        self.seeds.extend(
            (base..base.saturating_add(COIN_BLOCK_LEN as u64))
                .map(|i| stream_session_seed(self.pair_seed, i)),
        );
    }

    /// The seed of stream session `index`, refilling the block if the
    /// index lies outside it. Always equals
    /// `stream_session_seed(self.pair_seed(), index)`.
    pub fn session_seed(&mut self, index: u64) -> u64 {
        if index < self.base || index >= self.base + self.seeds.len() as u64 {
            self.fill(index - index % COIN_BLOCK_LEN as u64);
            self.refills += 1;
            intersect_obs::counter_add("coin_block_refills_total", 1);
        }
        self.seeds[(index - self.base) as usize]
    }

    /// The seeds of sessions `start .. start + count`, in order.
    pub fn take(&mut self, start: u64, count: usize) -> Vec<u64> {
        (start..start + count as u64)
            .map(|i| self.session_seed(i))
            .collect()
    }

    /// The pair seed this block derives from.
    pub fn pair_seed(&self) -> u64 {
        self.pair_seed
    }

    /// First session index of the current block.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// How many times the block has refilled since construction.
    pub fn refills(&self) -> u64 {
        self.refills
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn equal_seeds_and_labels_agree() {
        let a = CoinSource::from_seed(123).fork("x").fork_index(9);
        let b = CoinSource::from_seed(123).fork("x").fork_index(9);
        let xa: [u64; 4] = a.rng().gen();
        let xb: [u64; 4] = b.rng().gen();
        assert_eq!(xa, xb);
    }

    #[test]
    fn different_labels_diverge() {
        let root = CoinSource::from_seed(5);
        let x: u64 = root.rng_for("alpha").gen();
        let y: u64 = root.rng_for("beta").gen();
        let z: u64 = root.rng_for("alph").gen();
        assert_ne!(x, y);
        assert_ne!(x, z);
    }

    #[test]
    fn different_seeds_diverge() {
        let x: u64 = CoinSource::from_seed(1).rng().gen();
        let y: u64 = CoinSource::from_seed(2).rng().gen();
        assert_ne!(x, y);
    }

    #[test]
    fn long_labels_affect_all_lanes() {
        let root = CoinSource::from_seed(7);
        // Two labels that differ only in the 4th 8-byte chunk.
        let l1 = "aaaaaaaabbbbbbbbccccccccdddddddd";
        let l2 = "aaaaaaaabbbbbbbbcccccccceeeeeeee";
        let a = root.fork(l1);
        let b = root.fork(l2);
        assert_ne!(a.state, b.state);
        // All four lanes should differ thanks to diffusion.
        let differing = a.state.iter().zip(&b.state).filter(|(x, y)| x != y).count();
        assert!(differing >= 3, "only {differing} lanes differ");
    }

    #[test]
    fn index_forks_are_distinct_for_many_indices() {
        let root = CoinSource::from_seed(99);
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            assert!(seen.insert(root.fork_index(i).state), "collision at {i}");
        }
    }

    #[test]
    fn fork_is_pure() {
        let root = CoinSource::from_seed(11);
        assert_eq!(root.fork("same"), root.fork("same"));
    }

    #[test]
    fn stream_seeds_are_pure_and_distinct() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..1000u64 {
            let s = stream_session_seed(77, i);
            assert_eq!(s, stream_session_seed(77, i), "pure at {i}");
            assert!(seen.insert(s), "collision at {i}");
        }
        assert_ne!(stream_session_seed(1, 0), stream_session_seed(2, 0));
    }

    #[test]
    fn coin_block_matches_direct_derivation_across_refills() {
        let mut block = CoinBlock::new(5);
        // In-block, sequential, random-access, and far-jump indices all
        // agree with the pure derivation.
        for i in [0u64, 3, 63, 64, 65, 200, 1, 4096, 4097] {
            assert_eq!(block.session_seed(i), stream_session_seed(5, i), "{i}");
        }
        assert!(block.refills() >= 4, "jumps must refill");
        // Refill history never perturbs the seeds.
        let mut fresh = CoinBlock::new(5);
        assert_eq!(fresh.session_seed(4097), block.session_seed(4097));
    }

    #[test]
    fn coin_block_take_is_contiguous_and_refill_counted() {
        let mut block = CoinBlock::new(11);
        let seeds = block.take(60, 10); // spans a block boundary
        assert_eq!(seeds.len(), 10);
        for (j, &s) in seeds.iter().enumerate() {
            assert_eq!(s, stream_session_seed(11, 60 + j as u64));
        }
        assert_eq!(block.refills(), 1, "crossed into the next block once");
        assert_eq!(block.pair_seed(), 11);
        assert_eq!(block.base(), 64);
    }

    #[test]
    fn rng_stream_is_stable_across_calls() {
        let c = CoinSource::from_seed(31);
        let mut r1 = c.rng();
        let mut r2 = c.rng();
        for _ in 0..10 {
            assert_eq!(r1.gen::<u64>(), r2.gen::<u64>());
        }
    }
}
