//! Arbitrary-precision natural numbers.
//!
//! The deterministic one-round protocol encodes a `k`-subset of `[n]` with
//! the information-theoretically optimal `⌈log₂ C(n,k)⌉` bits via the
//! combinatorial number system. Binomial coefficients of that size do not fit
//! in machine words, so this module provides a small, dependency-free
//! big-natural type with exactly the operations the subset codec needs:
//! addition, subtraction, comparison, multiplication and division by a word,
//! and bit-level import/export.

use crate::bits::{BitBuf, BitReader};
use crate::error::CodecError;
use std::cmp::Ordering;
use std::fmt;

/// An arbitrary-precision natural number (little-endian 64-bit limbs).
///
/// # Examples
///
/// ```
/// use intersect_comm::bignat::BigNat;
///
/// let mut x = BigNat::from(u64::MAX);
/// x.add_assign(&BigNat::from(1u64));
/// assert_eq!(x.bit_len(), 65);
/// assert_eq!(x.to_string(), "18446744073709551616");
/// ```
#[derive(Clone, PartialEq, Eq, Default)]
pub struct BigNat {
    /// Invariant: no trailing zero limbs (canonical form); empty means zero.
    limbs: Vec<u64>,
}

impl BigNat {
    /// The number zero.
    pub fn zero() -> Self {
        BigNat { limbs: Vec::new() }
    }

    /// The number one.
    pub fn one() -> Self {
        BigNat { limbs: vec![1] }
    }

    /// Returns `true` if the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// Number of bits in the binary representation (0 for zero).
    pub fn bit_len(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(&top) => 64 * (self.limbs.len() - 1) + (64 - top.leading_zeros() as usize),
        }
    }

    /// Returns bit `i` (LSB is bit 0); bits beyond `bit_len` are zero.
    pub fn bit(&self, i: usize) -> bool {
        let limb = i / 64;
        if limb >= self.limbs.len() {
            return false;
        }
        (self.limbs[limb] >> (i % 64)) & 1 == 1
    }

    /// `self += other`.
    pub fn add_assign(&mut self, other: &BigNat) {
        let mut carry = 0u64;
        for i in 0..other.limbs.len().max(self.limbs.len()) {
            if i == self.limbs.len() {
                self.limbs.push(0);
            }
            let b = other.limbs.get(i).copied().unwrap_or(0);
            let (s1, c1) = self.limbs[i].overflowing_add(b);
            let (s2, c2) = s1.overflowing_add(carry);
            self.limbs[i] = s2;
            carry = (c1 as u64) + (c2 as u64);
        }
        if carry > 0 {
            self.limbs.push(carry);
        }
    }

    /// `self -= other`.
    ///
    /// # Panics
    ///
    /// Panics if `other > self` (naturals cannot go negative).
    pub fn sub_assign(&mut self, other: &BigNat) {
        assert!(
            self.cmp_nat(other) != Ordering::Less,
            "BigNat subtraction underflow"
        );
        let mut borrow = 0u64;
        for i in 0..self.limbs.len() {
            let b = other.limbs.get(i).copied().unwrap_or(0);
            let (d1, c1) = self.limbs[i].overflowing_sub(b);
            let (d2, c2) = d1.overflowing_sub(borrow);
            self.limbs[i] = d2;
            borrow = (c1 as u64) + (c2 as u64);
        }
        debug_assert_eq!(borrow, 0);
        self.normalize();
    }

    /// `self *= m`.
    pub fn mul_assign_u64(&mut self, m: u64) {
        if m == 0 {
            self.limbs.clear();
            return;
        }
        let mut carry = 0u128;
        for limb in &mut self.limbs {
            let prod = (*limb as u128) * (m as u128) + carry;
            *limb = prod as u64;
            carry = prod >> 64;
        }
        if carry > 0 {
            self.limbs.push(carry as u64);
        }
    }

    /// Replaces `self` with `self / d` and returns the remainder.
    ///
    /// # Panics
    ///
    /// Panics if `d == 0`.
    pub fn div_assign_rem_u64(&mut self, d: u64) -> u64 {
        assert!(d != 0, "division by zero");
        let mut rem = 0u128;
        for limb in self.limbs.iter_mut().rev() {
            let cur = (rem << 64) | (*limb as u128);
            *limb = (cur / d as u128) as u64;
            rem = cur % d as u128;
        }
        self.normalize();
        rem as u64
    }

    /// Total ordering on naturals (named to avoid clashing with `Ord::cmp`).
    pub fn cmp_nat(&self, other: &BigNat) -> Ordering {
        match self.limbs.len().cmp(&other.limbs.len()) {
            Ordering::Equal => {}
            ord => return ord,
        }
        for i in (0..self.limbs.len()).rev() {
            match self.limbs[i].cmp(&other.limbs[i]) {
                Ordering::Equal => {}
                ord => return ord,
            }
        }
        Ordering::Equal
    }

    /// Writes exactly `width` bits (LSB first) of the value to `buf`.
    ///
    /// # Panics
    ///
    /// Panics if the value does not fit in `width` bits.
    pub fn write_bits(&self, buf: &mut BitBuf, width: usize) {
        assert!(
            self.bit_len() <= width,
            "value of {} bits does not fit in {} bits",
            self.bit_len(),
            width
        );
        let mut written = 0;
        let mut limb_idx = 0;
        while written < width {
            let take = (width - written).min(64);
            let limb = self.limbs.get(limb_idx).copied().unwrap_or(0);
            let value = if take == 64 {
                limb
            } else {
                limb & ((1u64 << take) - 1)
            };
            buf.push_bits(value, take);
            written += take;
            limb_idx += 1;
        }
    }

    /// Reads exactly `width` bits (LSB first) as a natural number.
    ///
    /// # Errors
    ///
    /// Propagates [`CodecError::UnexpectedEnd`] if the reader is short.
    pub fn read_bits(reader: &mut BitReader<'_>, width: usize) -> Result<Self, CodecError> {
        let mut limbs = Vec::with_capacity(width.div_ceil(64));
        let mut read = 0;
        while read < width {
            let take = (width - read).min(64);
            limbs.push(reader.read_bits(take)?);
            read += take;
        }
        let mut n = BigNat { limbs };
        n.normalize();
        Ok(n)
    }

    /// Converts to `u64` if the value fits.
    pub fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0]),
            _ => None,
        }
    }

    /// Converts to `u128` if the value fits.
    pub fn to_u128(&self) -> Option<u128> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0] as u128),
            2 => Some((self.limbs[1] as u128) << 64 | self.limbs[0] as u128),
            _ => None,
        }
    }
}

impl From<u64> for BigNat {
    fn from(v: u64) -> Self {
        let mut n = BigNat { limbs: vec![v] };
        n.normalize();
        n
    }
}

impl From<u128> for BigNat {
    fn from(v: u128) -> Self {
        let mut n = BigNat {
            limbs: vec![v as u64, (v >> 64) as u64],
        };
        n.normalize();
        n
    }
}

impl PartialOrd for BigNat {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigNat {
    fn cmp(&self, other: &Self) -> Ordering {
        self.cmp_nat(other)
    }
}

impl fmt::Display for BigNat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        let mut digits = Vec::new();
        let mut tmp = self.clone();
        while !tmp.is_zero() {
            digits.push(tmp.div_assign_rem_u64(10) as u8);
        }
        for d in digits.iter().rev() {
            write!(f, "{d}")?;
        }
        Ok(())
    }
}

impl fmt::Debug for BigNat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigNat({self})")
    }
}

/// Computes the binomial coefficient `C(n, k)` exactly.
///
/// Uses the multiplicative formula with exact intermediate division, so every
/// step stays integral.
///
/// # Examples
///
/// ```
/// use intersect_comm::bignat::binomial;
/// assert_eq!(binomial(5, 2).to_u64(), Some(10));
/// assert_eq!(binomial(0, 0).to_u64(), Some(1));
/// assert_eq!(binomial(3, 7).to_u64(), Some(0));
/// ```
pub fn binomial(n: u64, k: u64) -> BigNat {
    if k > n {
        return BigNat::zero();
    }
    let k = k.min(n - k);
    let mut c = BigNat::one();
    for i in 0..k {
        // c = c * (n - i) / (i + 1); division is exact because c holds
        // C(n, i+1) * (i+1)! / (i+1)! style prefix products.
        c.mul_assign_u64(n - i);
        let rem = c.div_assign_rem_u64(i + 1);
        debug_assert_eq!(rem, 0, "binomial intermediate division must be exact");
    }
    c
}

/// Sum of binomials `C(n, 0) + C(n, 1) + … + C(n, k)`: the number of subsets
/// of `[n]` of size at most `k`.
pub fn binomial_prefix_sum(n: u64, k: u64) -> BigNat {
    let mut total = BigNat::zero();
    let mut c = BigNat::one(); // C(n, 0)
    for i in 0..=k.min(n) {
        total.add_assign(&c);
        if i < k.min(n) {
            // C(n, i+1) = C(n, i) * (n - i) / (i + 1)
            c.mul_assign_u64(n - i);
            let rem = c.div_assign_rem_u64(i + 1);
            debug_assert_eq!(rem, 0);
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nat(v: u128) -> BigNat {
        BigNat::from(v)
    }

    #[test]
    fn zero_and_one() {
        assert!(BigNat::zero().is_zero());
        assert_eq!(BigNat::zero().bit_len(), 0);
        assert_eq!(BigNat::one().to_u64(), Some(1));
        assert_eq!(BigNat::one().bit_len(), 1);
    }

    #[test]
    fn add_with_carry_chain() {
        let mut x = nat(u128::MAX);
        x.add_assign(&BigNat::one());
        assert_eq!(x.bit_len(), 129);
        assert!(x.bit(128));
        for i in 0..128 {
            assert!(!x.bit(i));
        }
    }

    #[test]
    fn sub_round_trips_add() {
        let mut x = nat(0x1234_5678_9abc_def0_1111_2222_3333_4444);
        let y = nat(0x0f0f_0f0f_0f0f_0f0f_0f0f);
        let orig = x.clone();
        x.add_assign(&y);
        x.sub_assign(&y);
        assert_eq!(x, orig);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let mut x = nat(5);
        x.sub_assign(&nat(6));
    }

    #[test]
    fn mul_div_round_trip_against_u128() {
        let mut x = nat(987_654_321_987_654_321);
        x.mul_assign_u64(1_000_000_007);
        let expect = 987_654_321_987_654_321u128 * 1_000_000_007u128;
        assert_eq!(x.to_u128(), Some(expect));
        let rem = x.div_assign_rem_u64(123_456_789);
        assert_eq!(x.to_u128(), Some(expect / 123_456_789));
        assert_eq!(rem as u128, expect % 123_456_789);
    }

    #[test]
    fn mul_by_zero_is_zero() {
        let mut x = nat(u128::MAX);
        x.mul_assign_u64(0);
        assert!(x.is_zero());
    }

    #[test]
    fn ordering_matches_values() {
        assert!(nat(100) < nat(101));
        let big = {
            let mut b = nat(u128::MAX);
            b.add_assign(&BigNat::one());
            b
        };
        assert!(big > nat(u128::MAX));
        assert_eq!(nat(42).cmp_nat(&nat(42)), std::cmp::Ordering::Equal);
    }

    #[test]
    fn display_decimal() {
        assert_eq!(BigNat::zero().to_string(), "0");
        assert_eq!(
            nat(1234567890123456789012345678901234567).to_string(),
            "1234567890123456789012345678901234567"
        );
    }

    #[test]
    fn bits_round_trip() {
        let v = nat(0xdead_beef_cafe_babe_0123_4567_89ab_cdef);
        let width = v.bit_len() + 7;
        let mut buf = BitBuf::new();
        v.write_bits(&mut buf, width);
        assert_eq!(buf.len(), width);
        let mut r = buf.reader();
        let back = BigNat::read_bits(&mut r, width).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn binomial_small_values() {
        assert_eq!(binomial(10, 3).to_u64(), Some(120));
        assert_eq!(binomial(52, 5).to_u64(), Some(2_598_960));
        assert_eq!(binomial(100, 0).to_u64(), Some(1));
        assert_eq!(binomial(100, 100).to_u64(), Some(1));
        assert_eq!(binomial(4, 5).to_u64(), Some(0));
    }

    #[test]
    fn binomial_pascal_identity() {
        for n in 1..40u64 {
            for k in 1..n {
                let mut lhs = binomial(n - 1, k - 1);
                lhs.add_assign(&binomial(n - 1, k));
                assert_eq!(lhs, binomial(n, k), "C({n},{k})");
            }
        }
    }

    #[test]
    fn binomial_large_bit_length_is_near_entropy() {
        // log2 C(2^16, 2^8) ≈ k log2(n/k) + O(k) = 256*8 + ...; sanity-check range.
        let c = binomial(1 << 16, 1 << 8);
        let bits = c.bit_len() as f64;
        assert!(bits > 2048.0 && bits < 3500.0, "bits = {bits}");
    }

    #[test]
    fn binomial_prefix_sum_matches_sum() {
        for n in 0..25u64 {
            for k in 0..=n {
                let mut sum = BigNat::zero();
                for i in 0..=k {
                    sum.add_assign(&binomial(n, i));
                }
                assert_eq!(sum, binomial_prefix_sum(n, k));
            }
        }
    }
}
