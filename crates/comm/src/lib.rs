//! # intersect-comm
//!
//! The communication substrate for the `intersect` project: everything
//! needed to *execute* and *meter* two-party and multi-party communication
//! protocols at bit granularity.
//!
//! The paper this project reproduces — Brody, Chakrabarti, Kondapally,
//! Woodruff, Yaroslavtsev, *Beyond Set Disjointness: The Communication
//! Complexity of Finding the Intersection* (PODC 2014) — states its results
//! in the classical two-party model of Yao and the message-passing model of
//! \[BEO+13\]. This crate realizes those models executably:
//!
//! * [`bits`] — [`bits::BitBuf`], the bit-exact message payload.
//! * [`encode`] — universal integer codes and optimal subset codes.
//! * [`bignat`] — big naturals backing the optimal binomial subset code.
//! * [`coins`] — the common random string, as a forkable deterministic
//!   coin source that parties consume without communicating.
//! * [`chan`] / [`runner`] — two-party channels and the protocol runner.
//! * [`net`] — the `m`-player message-passing network.
//! * [`stats`] — bit/message/round accounting, with rounds measured as the
//!   longest causal chain of messages.
//! * [`trace`] — transcript recording for protocol inspection.
//!
//! # Examples
//!
//! Run a toy protocol and read off its exact cost:
//!
//! ```
//! use intersect_comm::prelude::*;
//!
//! let out = run_two_party(
//!     &RunConfig::with_seed(1),
//!     |chan, _coins| {
//!         let mut m = BitBuf::new();
//!         m.push_bits(5, 3);
//!         chan.send(m)?;
//!         Ok(())
//!     },
//!     |chan, _coins| Ok(chan.recv()?.reader().read_bits(3)?),
//! )?;
//! assert_eq!(out.bob, 5);
//! assert_eq!(out.report.total_bits(), 3);
//! assert_eq!(out.report.rounds, 1);
//! # Ok::<(), intersect_comm::error::ProtocolError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bignat;
pub mod bits;
pub mod chan;
pub mod coins;
pub mod encode;
pub mod error;
pub mod net;
pub mod pool;
pub mod runner;
pub mod stats;
pub mod trace;

/// The most commonly used items, for glob import.
pub mod prelude {
    pub use crate::bits::{bit_width_for, BitBuf, BitReader, INLINE_BITS};
    pub use crate::chan::{Chan, Endpoint};
    pub use crate::coins::CoinSource;
    pub use crate::error::{CodecError, ProtocolError};
    pub use crate::net::{run_network, NetOutcome, NetworkConfig, PlayerCtx};
    pub use crate::pool::SpillPool;
    pub use crate::runner::{
        assemble_report, linked_pair, run_two_party, RunConfig, RunOutcome, SessionParts,
        SessionRunner, Side,
    };
    pub use crate::stats::{ChannelStats, CostReport, NetworkReport};
}
