//! Bit-level codes used by the protocols.
//!
//! Three families:
//!
//! * **Universal integer codes** (Elias gamma/delta, unary, Golomb–Rice) for
//!   values whose magnitude the receiver cannot predict, e.g. the index a
//!   player announces in the Håstad–Wigderson protocol.
//! * **Fixed-width codes** for values with a known bound.
//! * **Subset codes** for transmitting a whole set `S ⊆ [n]`, `|S| ≤ k`:
//!   [`BinomialSubsetCodec`] achieves the information-theoretic optimum
//!   `⌈log₂ Σᵢ C(n,i)⌉` bits via the combinatorial number system, and
//!   [`RiceSubsetCodec`] achieves `k·(log₂(n/k) + O(1))` bits with
//!   word-speed encoding, and [`EliasFanoSubsetCodec`] matches it with the
//!   upper-bits structure standard in inverted indexes. All three realize
//!   the paper's trivial deterministic bound `D⁽¹⁾(INT_k) = O(k log(n/k))`.

use crate::bignat::{binomial, BigNat};
use crate::bits::{bit_width_for, BitBuf, BitReader};
use crate::error::CodecError;

/// Appends `v ≥ 1` in Elias gamma code: `⌊log₂ v⌋` zeros, a one, then the
/// low `⌊log₂ v⌋` bits of `v`.
///
/// Costs `2⌊log₂ v⌋ + 1` bits.
///
/// # Panics
///
/// Panics if `v == 0` (gamma codes positive integers only; use
/// [`put_gamma0`] for non-negative values).
pub fn put_gamma(buf: &mut BitBuf, v: u64) {
    assert!(v >= 1, "Elias gamma encodes positive integers");
    let n = bit_width_for(v + 1).max(1); // number of significant bits of v
    debug_assert!(v >> (n - 1) == 1);
    for _ in 0..n - 1 {
        buf.push_bit(false);
    }
    buf.push_bit(true);
    if n > 1 {
        buf.push_bits(v & ((1u64 << (n - 1)) - 1), n - 1);
    }
}

/// Reads an Elias-gamma-coded positive integer.
///
/// # Errors
///
/// Returns a [`CodecError`] if the stream ends inside the code.
pub fn get_gamma(r: &mut BitReader<'_>) -> Result<u64, CodecError> {
    let mut zeros = 0usize;
    while !r.read_bit()? {
        zeros += 1;
        if zeros >= 64 {
            return Err(CodecError::Malformed("gamma prefix longer than 63"));
        }
    }
    let low = if zeros > 0 { r.read_bits(zeros)? } else { 0 };
    Ok((1u64 << zeros) | low)
}

/// Appends `v ≥ 0` as gamma code of `v + 1`.
pub fn put_gamma0(buf: &mut BitBuf, v: u64) {
    assert!(v < u64::MAX, "value too large for shifted gamma");
    put_gamma(buf, v + 1);
}

/// Reads a value written by [`put_gamma0`].
///
/// # Errors
///
/// Returns a [`CodecError`] if the stream ends inside the code.
pub fn get_gamma0(r: &mut BitReader<'_>) -> Result<u64, CodecError> {
    Ok(get_gamma(r)? - 1)
}

/// Appends `v ≥ 1` in Elias delta code: gamma code of the bit length,
/// followed by the remaining bits. Costs `log₂ v + O(log log v)` bits.
///
/// # Panics
///
/// Panics if `v == 0`.
pub fn put_delta(buf: &mut BitBuf, v: u64) {
    assert!(v >= 1, "Elias delta encodes positive integers");
    let n = bit_width_for(v + 1).max(1);
    put_gamma(buf, n as u64);
    if n > 1 {
        buf.push_bits(v & ((1u64 << (n - 1)) - 1), n - 1);
    }
}

/// Reads an Elias-delta-coded positive integer.
///
/// # Errors
///
/// Returns a [`CodecError`] if the stream ends inside the code.
pub fn get_delta(r: &mut BitReader<'_>) -> Result<u64, CodecError> {
    let n = get_gamma(r)? as usize;
    if n == 0 || n > 64 {
        return Err(CodecError::Malformed("delta length out of range"));
    }
    let low = if n > 1 { r.read_bits(n - 1)? } else { 0 };
    Ok((1u64 << (n - 1)) | low)
}

/// Appends `v ≥ 0` in Golomb–Rice code with parameter `b`:
/// quotient `v >> b` in unary, then the low `b` bits.
pub fn put_rice(buf: &mut BitBuf, v: u64, b: usize) {
    assert!(b < 64, "Rice parameter must be below 64");
    let q = v >> b;
    assert!(
        q < 1 << 20,
        "Rice quotient unreasonably large; wrong parameter?"
    );
    for _ in 0..q {
        buf.push_bit(true);
    }
    buf.push_bit(false);
    if b > 0 {
        buf.push_bits(v & ((1u64 << b) - 1), b);
    }
}

/// Reads a Golomb–Rice-coded value with parameter `b`.
///
/// # Errors
///
/// Returns a [`CodecError`] if the stream ends inside the code.
pub fn get_rice(r: &mut BitReader<'_>, b: usize) -> Result<u64, CodecError> {
    let mut q = 0u64;
    while r.read_bit()? {
        q += 1;
        if q >= 1 << 20 {
            return Err(CodecError::Malformed("rice quotient overflow"));
        }
    }
    let low = if b > 0 { r.read_bits(b)? } else { 0 };
    Ok((q << b) | low)
}

/// The information-theoretically optimal code for subsets of `[n]` of size
/// at most `k`, via the combinatorial number system.
///
/// Encodes the size `s` in `⌈log₂(k+1)⌉` bits, then the colexicographic rank
/// of the subset among all `s`-subsets in `⌈log₂ C(n,s)⌉` bits. For
/// `s = k ≪ n` this is `k log₂(n/k) + O(k)` bits — the optimum the paper's
/// trivial protocol refers to.
///
/// Encoding and decoding are `O((n + k) · L)` where `L` is the limb count of
/// `C(n,k)`; prefer [`RiceSubsetCodec`] when `n` is large and optimality to
/// the last bit is not required.
///
/// # Examples
///
/// ```
/// use intersect_comm::encode::BinomialSubsetCodec;
///
/// let codec = BinomialSubsetCodec::new(100, 10);
/// let set = [3u64, 14, 15, 92];
/// let buf = codec.encode(&set);
/// assert_eq!(codec.decode(&mut buf.reader()).unwrap(), set);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BinomialSubsetCodec {
    n: u64,
    k: u64,
}

impl BinomialSubsetCodec {
    /// Creates a codec for subsets of `[n]` with at most `k` elements.
    ///
    /// # Panics
    ///
    /// Panics if `k > n`.
    pub fn new(n: u64, k: u64) -> Self {
        assert!(k <= n, "subset size bound {k} exceeds universe size {n}");
        BinomialSubsetCodec { n, k }
    }

    /// The exact number of bits used for a subset of size `s`:
    /// `⌈log₂(k+1)⌉` for the size header plus `⌈log₂ C(n,s)⌉` for the rank.
    pub fn encoded_bits(&self, s: u64) -> usize {
        bit_width_for(self.k + 1) + Self::rank_width(&binomial(self.n, s))
    }

    /// Bits needed to address any rank in `[0, bound)`.
    fn rank_width(bound: &BigNat) -> usize {
        let mut max_rank = bound.clone();
        if max_rank.is_zero() {
            return 0;
        }
        max_rank.sub_assign(&BigNat::one());
        max_rank.bit_len()
    }

    /// Encodes a strictly increasing slice of elements `< n`.
    ///
    /// # Panics
    ///
    /// Panics if the slice is not strictly increasing, has more than `k`
    /// elements, or contains an element `≥ n`.
    pub fn encode(&self, set: &[u64]) -> BitBuf {
        let s = set.len() as u64;
        assert!(s <= self.k, "set larger than codec bound");
        let mut buf = BitBuf::new();
        buf.push_bits(s, bit_width_for(self.k + 1));
        if s == 0 {
            return buf;
        }
        let mut prev = None;
        let mut rank = BigNat::zero();
        for (i, &x) in set.iter().enumerate() {
            assert!(x < self.n, "element {x} outside universe [{}]", self.n);
            if let Some(p) = prev {
                assert!(x > p, "set must be strictly increasing");
            }
            prev = Some(x);
            rank.add_assign(&binomial(x, i as u64 + 1));
        }
        let bound = binomial(self.n, s);
        debug_assert!(rank.cmp_nat(&bound).is_lt());
        rank.write_bits(&mut buf, Self::rank_width(&bound));
        buf
    }

    /// Decodes a subset written by [`encode`](Self::encode).
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] on truncated or out-of-range input.
    pub fn decode(&self, r: &mut BitReader<'_>) -> Result<Vec<u64>, CodecError> {
        let s = r.read_bits(bit_width_for(self.k + 1))?;
        if s > self.k {
            return Err(CodecError::ValueOutOfRange {
                value: s,
                bound: self.k + 1,
            });
        }
        if s == 0 {
            return Ok(Vec::new());
        }
        let bound = binomial(self.n, s);
        let mut rank = BigNat::read_bits(r, Self::rank_width(&bound))?;
        if rank.cmp_nat(&bound).is_ge() {
            return Err(CodecError::Malformed("subset rank out of range"));
        }
        // Colexicographic unranking: for coordinate i from s down to 1, the
        // element is the largest x with C(x, i) ≤ rank. Walk x downward from
        // n-1 once in total, maintaining c = C(x, i) incrementally.
        let mut out = vec![0u64; s as usize];
        let mut i = s; // current coordinate (number of elements still to place)
        let mut x = self.n - 1;
        let mut c = binomial(x, i);
        loop {
            if c.cmp_nat(&rank).is_le() {
                // x is the element for coordinate i. (When c = 0, x < i and
                // the range check above guarantees rank = 0 here, forcing the
                // remaining elements to be i-1, i-2, …, 0.)
                rank.sub_assign(&c);
                out[i as usize - 1] = x;
                if i == 1 {
                    break;
                }
                if x == 0 {
                    return Err(CodecError::Malformed("subset decoder underflow"));
                }
                // c := C(x-1, i-1) = C(x, i) · i / x (exact division).
                c.mul_assign_u64(i);
                let rem = c.div_assign_rem_u64(x);
                debug_assert_eq!(rem, 0);
                i -= 1;
                x -= 1;
            } else {
                // c > rank ≥ 0 implies c ≥ 1, hence x ≥ i: x - i is safe.
                // c := C(x-1, i) = C(x, i) · (x - i) / x (exact division).
                c.mul_assign_u64(x - i);
                let rem = c.div_assign_rem_u64(x);
                debug_assert_eq!(rem, 0);
                x -= 1;
            }
        }
        Ok(out)
    }
}

/// A fast near-optimal subset code: sorted elements are gap-encoded with
/// Golomb–Rice using parameter `b ≈ log₂(n/k)`.
///
/// Costs `|S|·(log₂(n/|S|) + O(1)) + O(log k)` bits — within a small constant
/// of [`BinomialSubsetCodec`] but with word-speed encode/decode.
///
/// # Examples
///
/// ```
/// use intersect_comm::encode::RiceSubsetCodec;
///
/// let codec = RiceSubsetCodec::new(1 << 20, 256);
/// let set = [17u64, 400_000, 900_001];
/// let buf = codec.encode(&set);
/// assert_eq!(codec.decode(&mut buf.reader()).unwrap(), set);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RiceSubsetCodec {
    n: u64,
    k: u64,
}

impl RiceSubsetCodec {
    /// Creates a codec for subsets of `[n]` with at most `k` elements.
    ///
    /// # Panics
    ///
    /// Panics if `k > n` or `n == 0`.
    pub fn new(n: u64, k: u64) -> Self {
        assert!(n > 0, "universe must be non-empty");
        assert!(k <= n, "subset size bound {k} exceeds universe size {n}");
        RiceSubsetCodec { n, k }
    }

    fn rice_param(&self, s: u64) -> usize {
        if s == 0 {
            return 0;
        }
        // Mean gap is about n/s; Rice is near-optimal at b = floor(log2(mean)).
        let mean = (self.n / s).max(1);
        bit_width_for(mean + 1).saturating_sub(1)
    }

    /// Encodes a strictly increasing slice of elements `< n`.
    ///
    /// # Panics
    ///
    /// Panics if the slice is not strictly increasing, has more than `k`
    /// elements, or contains an element `≥ n`.
    pub fn encode(&self, set: &[u64]) -> BitBuf {
        let s = set.len() as u64;
        assert!(s <= self.k, "set larger than codec bound");
        let mut buf = BitBuf::new();
        buf.push_bits(s, bit_width_for(self.k + 1));
        let b = self.rice_param(s);
        let mut prev: Option<u64> = None;
        for &x in set {
            assert!(x < self.n, "element {x} outside universe [{}]", self.n);
            let gap = match prev {
                None => x,
                Some(p) => {
                    assert!(x > p, "set must be strictly increasing");
                    x - p - 1
                }
            };
            prev = Some(x);
            put_rice(&mut buf, gap, b);
        }
        buf
    }

    /// Decodes a subset written by [`encode`](Self::encode).
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] on truncated or out-of-range input.
    pub fn decode(&self, r: &mut BitReader<'_>) -> Result<Vec<u64>, CodecError> {
        let s = r.read_bits(bit_width_for(self.k + 1))?;
        if s > self.k {
            return Err(CodecError::ValueOutOfRange {
                value: s,
                bound: self.k + 1,
            });
        }
        let b = self.rice_param(s);
        let mut out = Vec::with_capacity(s as usize);
        let mut prev: Option<u64> = None;
        for _ in 0..s {
            let gap = get_rice(r, b)?;
            let x = match prev {
                None => gap,
                Some(p) => p + 1 + gap,
            };
            if x >= self.n {
                return Err(CodecError::ValueOutOfRange {
                    value: x,
                    bound: self.n,
                });
            }
            prev = Some(x);
            out.push(x);
        }
        Ok(out)
    }
}

/// The Elias–Fano code for monotone sequences, as a subset code:
/// `|S|·(⌈log₂(n/|S|)⌉ + 2) + O(log k)` bits, with streaming decode.
///
/// Splits each element into `l = ⌊log₂(n/s)⌋` explicit low bits and a
/// unary-coded sequence of high-part gaps; the high part totals at most
/// `s + n/2^l ≤ 3s` bits. Within ~2 bits/element of the information
/// optimum, like [`RiceSubsetCodec`], but with the upper-bits structure
/// that makes Elias–Fano the standard succinct representation in inverted
/// indexes — a natural fit for the paper's database motivation.
///
/// # Examples
///
/// ```
/// use intersect_comm::encode::EliasFanoSubsetCodec;
///
/// let codec = EliasFanoSubsetCodec::new(1 << 20, 100);
/// let set = [3u64, 900, 500_000, 1_000_000];
/// let buf = codec.encode(&set);
/// assert_eq!(codec.decode(&mut buf.reader()).unwrap(), set);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EliasFanoSubsetCodec {
    n: u64,
    k: u64,
}

impl EliasFanoSubsetCodec {
    /// Creates a codec for subsets of `[n]` with at most `k` elements.
    ///
    /// # Panics
    ///
    /// Panics if `k > n` or `n == 0`.
    pub fn new(n: u64, k: u64) -> Self {
        assert!(n > 0, "universe must be non-empty");
        assert!(k <= n, "subset size bound {k} exceeds universe size {n}");
        EliasFanoSubsetCodec { n, k }
    }

    /// Low-bit width for a subset of size `s`: `⌊log₂(n/s)⌋`.
    fn low_bits(&self, s: u64) -> usize {
        if s == 0 {
            return 0;
        }
        let per = (self.n / s).max(1);
        bit_width_for(per + 1).saturating_sub(1)
    }

    /// Encodes a strictly increasing slice of elements `< n`.
    ///
    /// # Panics
    ///
    /// Panics if the slice is not strictly increasing, has more than `k`
    /// elements, or contains an element `≥ n`.
    pub fn encode(&self, set: &[u64]) -> BitBuf {
        let s = set.len() as u64;
        assert!(s <= self.k, "set larger than codec bound");
        let mut buf = BitBuf::new();
        buf.push_bits(s, bit_width_for(self.k + 1));
        let l = self.low_bits(s);
        let mut prev_high = 0u64;
        let mut prev: Option<u64> = None;
        // High part: unary gaps between successive high values.
        for &x in set {
            assert!(x < self.n, "element {x} outside universe [{}]", self.n);
            if let Some(p) = prev {
                assert!(x > p, "set must be strictly increasing");
            }
            prev = Some(x);
            let high = x >> l;
            for _ in 0..(high - prev_high) {
                buf.push_bit(false);
            }
            buf.push_bit(true);
            prev_high = high;
        }
        // Low part: fixed-width explicit bits.
        if l > 0 {
            for &x in set {
                buf.push_bits(x & ((1u64 << l) - 1), l);
            }
        }
        buf
    }

    /// Decodes a subset written by [`encode`](Self::encode).
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] on truncated or out-of-range input.
    pub fn decode(&self, r: &mut BitReader<'_>) -> Result<Vec<u64>, CodecError> {
        let s = r.read_bits(bit_width_for(self.k + 1))?;
        if s > self.k {
            return Err(CodecError::ValueOutOfRange {
                value: s,
                bound: self.k + 1,
            });
        }
        let l = self.low_bits(s);
        let mut highs = Vec::with_capacity(s as usize);
        let mut high = 0u64;
        for _ in 0..s {
            while !r.read_bit()? {
                high += 1;
                if (high << l) >= self.n.max(1) {
                    return Err(CodecError::Malformed("elias-fano high part overflow"));
                }
            }
            highs.push(high);
        }
        let mut out = Vec::with_capacity(s as usize);
        for h in highs {
            let low = if l > 0 { r.read_bits(l)? } else { 0 };
            let x = (h << l) | low;
            if x >= self.n {
                return Err(CodecError::ValueOutOfRange {
                    value: x,
                    bound: self.n,
                });
            }
            out.push(x);
        }
        if out.windows(2).any(|w| w[0] >= w[1]) {
            return Err(CodecError::Malformed("elias-fano output not increasing"));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gamma_round_trip() {
        let values = [1u64, 2, 3, 4, 5, 7, 8, 100, 1023, 1024, u32::MAX as u64];
        let mut buf = BitBuf::new();
        for &v in &values {
            put_gamma(&mut buf, v);
        }
        let mut r = buf.reader();
        for &v in &values {
            assert_eq!(get_gamma(&mut r).unwrap(), v);
        }
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn gamma_cost_is_2logv_plus_1() {
        for &(v, bits) in &[(1u64, 1usize), (2, 3), (3, 3), (4, 5), (255, 15), (256, 17)] {
            let mut buf = BitBuf::new();
            put_gamma(&mut buf, v);
            assert_eq!(buf.len(), bits, "gamma({v})");
        }
    }

    #[test]
    fn gamma0_encodes_zero() {
        let mut buf = BitBuf::new();
        put_gamma0(&mut buf, 0);
        put_gamma0(&mut buf, 41);
        let mut r = buf.reader();
        assert_eq!(get_gamma0(&mut r).unwrap(), 0);
        assert_eq!(get_gamma0(&mut r).unwrap(), 41);
    }

    #[test]
    fn delta_round_trip_and_beats_gamma_for_large() {
        let v = u64::MAX / 3;
        let mut g = BitBuf::new();
        let mut d = BitBuf::new();
        // gamma cannot encode values that big within its 63-zero guard when
        // reading, but writing works; compare at a large-but-legal value.
        put_gamma(&mut g, v);
        put_delta(&mut d, v);
        assert!(d.len() < g.len());
        let mut r = d.reader();
        assert_eq!(get_delta(&mut r).unwrap(), v);
    }

    #[test]
    fn rice_round_trip_various_params() {
        for b in [0usize, 1, 3, 8, 16] {
            let mut buf = BitBuf::new();
            let values = [0u64, 1, 5, (1 << b) as u64, (7 << b) as u64 + 3];
            for &v in &values {
                put_rice(&mut buf, v, b);
            }
            let mut r = buf.reader();
            for &v in &values {
                assert_eq!(get_rice(&mut r, b).unwrap(), v, "b={b}");
            }
        }
    }

    #[test]
    fn truncated_codes_error_cleanly() {
        let mut buf = BitBuf::new();
        put_gamma(&mut buf, 1000);
        // Drop the last bits by copying a prefix.
        let mut prefix = BitBuf::new();
        let mut r = buf.reader();
        let cut = r.read_buf(buf.len() - 4).unwrap();
        prefix.extend_from(&cut);
        assert!(get_gamma(&mut prefix.reader()).is_err());
    }

    #[test]
    fn binomial_subset_round_trip_exhaustive_small() {
        let codec = BinomialSubsetCodec::new(9, 4);
        // Every subset of [9] with ≤ 4 elements round-trips.
        for mask in 0u32..(1 << 9) {
            if mask.count_ones() > 4 {
                continue;
            }
            let set: Vec<u64> = (0..9).filter(|i| mask >> i & 1 == 1).collect();
            let buf = codec.encode(&set);
            let back = codec.decode(&mut buf.reader()).unwrap();
            assert_eq!(back, set, "mask {mask:b}");
        }
    }

    #[test]
    fn binomial_subset_is_information_optimal() {
        let n = 64u64;
        let k = 8u64;
        let codec = BinomialSubsetCodec::new(n, k);
        let set: Vec<u64> = (0..k).map(|i| i * 7 + 3).collect();
        let buf = codec.encode(&set);
        let optimal = binomial(n, k).bit_len(); // ≈ log2 C(64,8) ≈ 32.9 -> 33
                                                // size header (4 bits) + rank ≤ optimal + 1
        assert!(buf.len() <= optimal + 4 + 1, "{} vs {}", buf.len(), optimal);
    }

    #[test]
    fn binomial_subset_empty_and_full() {
        let codec = BinomialSubsetCodec::new(12, 12);
        for set in [vec![], (0..12u64).collect::<Vec<_>>()] {
            let buf = codec.encode(&set);
            assert_eq!(codec.decode(&mut buf.reader()).unwrap(), set);
        }
    }

    #[test]
    fn rice_subset_round_trip_random() {
        use rand::prelude::*;
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for _ in 0..50 {
            let n = rng.gen_range(1..100_000u64);
            let k = rng.gen_range(0..=n.min(200));
            let codec = RiceSubsetCodec::new(n, k);
            let mut elems: Vec<u64> = (0..k).map(|_| rng.gen_range(0..n)).collect();
            elems.sort_unstable();
            elems.dedup();
            let buf = codec.encode(&elems);
            assert_eq!(codec.decode(&mut buf.reader()).unwrap(), elems);
        }
    }

    #[test]
    fn rice_subset_cost_tracks_k_log_n_over_k() {
        let n = 1u64 << 20;
        let k = 1u64 << 10;
        let codec = RiceSubsetCodec::new(n, k);
        let set: Vec<u64> = (0..k).map(|i| i * (n / k) + 5).collect();
        let buf = codec.encode(&set);
        let per_elem = buf.len() as f64 / k as f64;
        let target = ((n / k) as f64).log2();
        assert!(
            per_elem < target + 3.0,
            "per-element cost {per_elem:.2} vs log2(n/k) = {target:.2}"
        );
    }

    #[test]
    fn subset_decode_rejects_garbage_size() {
        // bit_width_for(3) = 2 allows an encoded size field of 3 > k = 2:
        // decoders must reject it rather than trust the wire.
        let bcodec = BinomialSubsetCodec::new(100, 2);
        let mut bad = BitBuf::new();
        bad.push_bits(3, 2);
        assert!(bcodec.decode(&mut bad.reader()).is_err());
        let rcodec = RiceSubsetCodec::new(100, 2);
        assert!(rcodec.decode(&mut bad.reader()).is_err());
    }

    #[test]
    fn elias_fano_round_trip_random() {
        use rand::prelude::*;
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        for _ in 0..50 {
            let n = rng.gen_range(1..500_000u64);
            let k = rng.gen_range(0..=n.min(300));
            let codec = EliasFanoSubsetCodec::new(n, k);
            let mut elems: Vec<u64> = (0..k).map(|_| rng.gen_range(0..n)).collect();
            elems.sort_unstable();
            elems.dedup();
            let buf = codec.encode(&elems);
            assert_eq!(codec.decode(&mut buf.reader()).unwrap(), elems);
        }
    }

    #[test]
    fn elias_fano_cost_is_near_optimal() {
        let n = 1u64 << 24;
        let k = 1u64 << 10;
        let codec = EliasFanoSubsetCodec::new(n, k);
        let set: Vec<u64> = (0..k).map(|i| i * (n / k) + 11).collect();
        let buf = codec.encode(&set);
        let per_elem = buf.len() as f64 / k as f64;
        let target = ((n / k) as f64).log2();
        assert!(
            per_elem < target + 2.5,
            "per-element {per_elem:.2} vs log2(n/k) = {target:.2}"
        );
    }

    #[test]
    fn elias_fano_edge_cases() {
        let codec = EliasFanoSubsetCodec::new(10, 10);
        for set in [
            vec![],
            vec![0u64],
            vec![9u64],
            (0..10u64).collect::<Vec<_>>(),
        ] {
            let buf = codec.encode(&set);
            assert_eq!(codec.decode(&mut buf.reader()).unwrap(), set, "{set:?}");
        }
    }

    #[test]
    fn elias_fano_rejects_truncation() {
        let codec = EliasFanoSubsetCodec::new(1000, 8);
        let buf = codec.encode(&[5, 500, 900]);
        let mut r = buf.reader();
        let cut = r.read_buf(buf.len() - 3).unwrap();
        assert!(codec.decode(&mut cut.reader()).is_err());
    }
}
