//! Recycling of spilled message-buffer storage.
//!
//! A [`crate::bits::BitBuf`] longer than [`crate::bits::INLINE_BITS`]
//! spills its words to the heap. In a steady-state session those spill
//! buffers are born at one party, cross the channel, and die at the
//! peer — a heap allocation and deallocation per long message. A
//! [`SpillPool`] breaks that cycle: both endpoints of a session share
//! one pool (see [`crate::chan::Endpoint::pool`]), every dropped spill
//! buffer returns its storage to the pool, and every new spill draws
//! from it, so after a brief warm-up even long messages allocate
//! nothing.
//!
//! The pool is wired to `BitBuf` through a thread-local *active pool*:
//! session runners ([`crate::runner::run_two_party`] and
//! [`crate::runner::SessionRunner`]) [`install`](SpillPool::install)
//! the pair's pool for the duration of each party's half, and `BitBuf`
//! construction/drop consult it. With no pool installed, behavior is
//! exactly the global allocator's — `BitBuf` works standalone.

use std::cell::RefCell;
use std::marker::PhantomData;
use std::sync::{Arc, Mutex};

/// Spill buffers retained per pool; excess storage returns to the
/// global allocator. Two parties exchanging long messages keep at most
/// a handful in flight, so a small shelf captures the steady state.
const MAX_POOLED: usize = 64;

/// A shared free-list of spill word buffers (see the module docs).
#[derive(Debug, Default)]
pub struct SpillPool {
    shelf: Mutex<Vec<Vec<u64>>>,
}

impl SpillPool {
    /// Creates an empty pool behind the `Arc` both endpoints share.
    pub fn new() -> Arc<SpillPool> {
        Arc::new(SpillPool::default())
    }

    /// Makes this pool the calling thread's active pool until the
    /// returned scope guard drops (the previous active pool, if any, is
    /// restored — scopes nest).
    pub fn install(self: &Arc<Self>) -> PoolScope {
        let prev = ACTIVE.with(|active| active.borrow_mut().replace(Arc::clone(self)));
        PoolScope {
            prev,
            _not_send: PhantomData,
        }
    }

    /// Buffers currently shelved (diagnostics and tests).
    pub fn pooled(&self) -> usize {
        self.lock().len()
    }

    fn take(&self, min_words: usize) -> Option<Vec<u64>> {
        let mut buf = self.lock().pop()?;
        buf.clear();
        buf.reserve(min_words);
        Some(buf)
    }

    fn put(&self, buf: Vec<u64>) {
        if buf.capacity() == 0 {
            return;
        }
        let mut shelf = self.lock();
        if shelf.len() < MAX_POOLED {
            shelf.push(buf);
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Vec<Vec<u64>>> {
        // A panicking protocol half may die while between pool calls;
        // the shelf holds only plain buffers, so poisoning is harmless.
        self.shelf.lock().unwrap_or_else(|e| e.into_inner())
    }
}

thread_local! {
    static ACTIVE: RefCell<Option<Arc<SpillPool>>> = const { RefCell::new(None) };
}

/// Scope guard restoring the thread's previous active pool on drop.
#[derive(Debug)]
pub struct PoolScope {
    prev: Option<Arc<SpillPool>>,
    /// The guard must drop on the thread that created it.
    _not_send: PhantomData<*const ()>,
}

impl Drop for PoolScope {
    fn drop(&mut self) {
        ACTIVE.with(|active| *active.borrow_mut() = self.prev.take());
    }
}

/// Word storage with capacity for at least `min_words`, recycled from
/// the active pool when one is installed and non-empty.
pub(crate) fn take_words(min_words: usize) -> Vec<u64> {
    ACTIVE
        .with(|active| {
            active
                .borrow()
                .as_ref()
                .and_then(|pool| pool.take(min_words))
        })
        .unwrap_or_else(|| Vec::with_capacity(min_words.max(1)))
}

/// Returns spent spill storage to the active pool, or frees it when no
/// pool is installed.
pub(crate) fn recycle(buf: Vec<u64>) {
    ACTIVE.with(|active| match active.borrow().as_ref() {
        Some(pool) => pool.put(buf),
        None => drop(buf),
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_recycles_through_the_active_pool() {
        let pool = SpillPool::new();
        let scope = pool.install();
        let mut v = take_words(8);
        assert!(v.capacity() >= 8);
        v.extend_from_slice(&[1, 2, 3]);
        let cap = v.capacity();
        recycle(v);
        assert_eq!(pool.pooled(), 1);
        let v2 = take_words(4);
        assert_eq!(v2.capacity(), cap, "recycled the same storage");
        assert!(v2.is_empty(), "recycled buffers come back cleared");
        assert_eq!(pool.pooled(), 0);
        drop(scope);
    }

    #[test]
    fn no_active_pool_falls_back_to_plain_allocation() {
        let v = take_words(8);
        assert!(v.capacity() >= 8);
        recycle(v); // must not panic; storage is simply freed
    }

    #[test]
    fn scopes_nest_and_restore() {
        let outer = SpillPool::new();
        let inner = SpillPool::new();
        let s1 = outer.install();
        {
            let s2 = inner.install();
            recycle(Vec::with_capacity(4));
            assert_eq!(inner.pooled(), 1);
            assert_eq!(outer.pooled(), 0);
            drop(s2);
        }
        recycle(Vec::with_capacity(4));
        assert_eq!(outer.pooled(), 1);
        drop(s1);
        recycle(Vec::with_capacity(4));
        assert_eq!(outer.pooled(), 1, "uninstalled pool no longer collects");
    }

    #[test]
    fn shelf_is_bounded() {
        let pool = SpillPool::new();
        let scope = pool.install();
        for _ in 0..(MAX_POOLED + 10) {
            recycle(Vec::with_capacity(1));
        }
        assert_eq!(pool.pooled(), MAX_POOLED);
        drop(scope);
    }
}
