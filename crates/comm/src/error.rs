//! Error types for the communication substrate.

use std::error::Error;
use std::fmt;

/// An error produced while encoding or decoding bit-level messages.
///
/// Codec errors indicate that a message could not be interpreted as the
/// structure the receiver expected — either because the sender and receiver
/// disagree about the protocol state (a bug) or because a message was
/// truncated by a communication budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The reader ran out of bits while decoding a value.
    UnexpectedEnd {
        /// Number of bits the decoder asked for.
        wanted: usize,
        /// Number of bits that were actually available.
        available: usize,
    },
    /// A decoded value exceeded the range the decoder was told to expect.
    ValueOutOfRange {
        /// The offending value.
        value: u64,
        /// The exclusive upper bound the decoder expected.
        bound: u64,
    },
    /// A requested bit width was larger than the 64-bit limit of the codec.
    WidthTooLarge(usize),
    /// The encoded stream violated a structural invariant of the code.
    Malformed(&'static str),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::UnexpectedEnd { wanted, available } => write!(
                f,
                "unexpected end of bit stream: wanted {wanted} bits, {available} available"
            ),
            CodecError::ValueOutOfRange { value, bound } => {
                write!(f, "decoded value {value} out of range (bound {bound})")
            }
            CodecError::WidthTooLarge(w) => write!(f, "bit width {w} exceeds 64"),
            CodecError::Malformed(what) => write!(f, "malformed encoding: {what}"),
        }
    }
}

impl Error for CodecError {}

/// An error produced while running a communication protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// The peer hung up: its endpoint was dropped before this receive.
    ChannelClosed,
    /// A receive waited longer than the configured network timeout.
    Timeout,
    /// The protocol exceeded its communication budget and was aborted.
    ///
    /// Budgets turn expected-cost protocols into worst-case protocols, as in
    /// the paper's remark that expected communication "can be made worst-case
    /// by terminating the protocol if it consumes more than a constant factor
    /// times its expected communication cost".
    BudgetExceeded {
        /// The budget, in bits.
        limit_bits: u64,
    },
    /// A message failed to decode.
    Codec(CodecError),
    /// The caller passed inputs that violate the protocol's preconditions.
    InvalidInput(String),
    /// The protocol reached an internal state that should be unreachable.
    Internal(String),
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::ChannelClosed => write!(f, "peer closed the channel"),
            ProtocolError::Timeout => write!(f, "receive timed out"),
            ProtocolError::BudgetExceeded { limit_bits } => {
                write!(f, "communication budget of {limit_bits} bits exceeded")
            }
            ProtocolError::Codec(e) => write!(f, "codec failure: {e}"),
            ProtocolError::InvalidInput(msg) => write!(f, "invalid input: {msg}"),
            ProtocolError::Internal(msg) => write!(f, "internal protocol error: {msg}"),
        }
    }
}

impl Error for ProtocolError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ProtocolError::Codec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CodecError> for ProtocolError {
    fn from(e: CodecError) -> Self {
        ProtocolError::Codec(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codec_error_display_is_informative() {
        let e = CodecError::UnexpectedEnd {
            wanted: 8,
            available: 3,
        };
        let s = e.to_string();
        assert!(s.contains('8') && s.contains('3'));
    }

    #[test]
    fn protocol_error_wraps_codec_error() {
        let inner = CodecError::Malformed("gamma code missing terminator");
        let outer: ProtocolError = inner.clone().into();
        assert_eq!(outer, ProtocolError::Codec(inner));
        assert!(outer.source().is_some());
    }

    #[test]
    fn errors_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CodecError>();
        assert_send_sync::<ProtocolError>();
    }

    #[test]
    fn budget_display_mentions_limit() {
        let e = ProtocolError::BudgetExceeded { limit_bits: 4096 };
        assert!(e.to_string().contains("4096"));
    }
}
