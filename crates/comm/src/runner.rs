//! Executes two-party protocols and collects their cost.
//!
//! Two execution strategies produce bit-for-bit identical results:
//!
//! * [`run_two_party`] — the simple dedicated API: spawns a scoped
//!   thread for Bob, builds a fresh channel pair, and tears everything
//!   down when the session ends.
//! * [`SessionRunner`] — the amortized API: one long-lived paired
//!   thread and one reusable channel pair serve any number of sessions
//!   back to back, with no thread spawn and no channel construction per
//!   session. This is what the engine's worker pool uses.

use crate::chan::{Chan, Endpoint};
use crate::coins::CoinSource;
use crate::error::ProtocolError;
use crate::stats::{ChannelStats, CostReport};
use crossbeam_channel::{Receiver, Sender};
use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::thread::JoinHandle;
use std::time::Duration;

/// Which side of a two-party protocol a piece of code is playing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Side {
    /// The first player (holds `S`).
    Alice,
    /// The second player (holds `T`).
    Bob,
}

impl Side {
    /// The other side.
    pub fn peer(self) -> Side {
        match self {
            Side::Alice => Side::Bob,
            Side::Bob => Side::Alice,
        }
    }

    /// A stable label for coin forking.
    pub fn label(self) -> &'static str {
        match self {
            Side::Alice => "alice",
            Side::Bob => "bob",
        }
    }

    /// `true` for [`Side::Alice`].
    pub fn is_alice(self) -> bool {
        matches!(self, Side::Alice)
    }
}

impl std::fmt::Display for Side {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Configuration for a two-party run.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Seed of the common random string.
    pub seed: u64,
    /// Abort the protocol if total communication exceeds this many bits.
    pub bit_budget: Option<u64>,
    /// How long a blocked receive may wait before failing the run.
    pub timeout: Duration,
}

impl RunConfig {
    /// A configuration with the given shared-randomness seed, no budget,
    /// and a 30-second receive timeout.
    pub fn with_seed(seed: u64) -> Self {
        RunConfig {
            seed,
            bit_budget: None,
            timeout: Duration::from_secs(30),
        }
    }

    /// Sets the communication budget in bits.
    pub fn bit_budget(mut self, bits: u64) -> Self {
        self.bit_budget = Some(bits);
        self
    }
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig::with_seed(0)
    }
}

/// Builds the substrate of one two-party session: a connected endpoint
/// pair and the common random string, from one configuration.
///
/// This is the single place where a session's transport and randomness
/// are constructed. [`run_two_party`] uses it, and so does any harness
/// that schedules the two halves itself (e.g. a worker pool running many
/// sessions concurrently): going through the same constructor guarantees
/// that a scheduled session is bit-for-bit identical to a dedicated
/// [`run_two_party`] call with the same config.
///
/// # Examples
///
/// ```
/// use intersect_comm::runner::{linked_pair, RunConfig};
/// use intersect_comm::chan::Chan;
/// use intersect_comm::bits::BitBuf;
///
/// let (mut a, mut b, coins) = linked_pair(&RunConfig::with_seed(9));
/// let mut m = BitBuf::new();
/// m.push_bits(0b110, 3);
/// a.send(m)?;
/// assert_eq!(b.recv()?.len(), 3);
/// assert_eq!(coins, intersect_comm::coins::CoinSource::from_seed(9));
/// # Ok::<(), intersect_comm::error::ProtocolError>(())
/// ```
pub fn linked_pair(cfg: &RunConfig) -> (Endpoint, Endpoint, CoinSource) {
    let (ep_a, ep_b) = Endpoint::pair(cfg.bit_budget, cfg.timeout);
    (ep_a, ep_b, CoinSource::from_seed(cfg.seed))
}

/// Assembles the cost of one two-party run from the two endpoints' final
/// counters, exactly as [`run_two_party`] reports it.
pub fn assemble_report(
    stats_alice: crate::stats::ChannelStats,
    stats_bob: crate::stats::ChannelStats,
) -> CostReport {
    CostReport {
        bits_alice: stats_alice.bits_sent,
        bits_bob: stats_bob.bits_sent,
        messages: stats_alice.messages_sent + stats_bob.messages_sent,
        rounds: stats_alice.clock.max(stats_bob.clock),
    }
}

/// The result of a successful two-party run.
#[derive(Debug, Clone)]
pub struct RunOutcome<A, B> {
    /// Alice's return value.
    pub alice: A,
    /// Bob's return value.
    pub bob: B,
    /// Exact communication cost of the run.
    pub report: CostReport,
}

/// Runs a two-party protocol: `alice` and `bob` execute concurrently,
/// connected by a bit-metered channel and sharing a common random string.
///
/// Returns both parties' outputs and the exact [`CostReport`].
///
/// # Errors
///
/// If either party returns an error the run fails. When one party's failure
/// causes the other to observe a closed channel, the original failure is
/// reported rather than the secondary [`ProtocolError::ChannelClosed`].
/// A party that *panics* is contained: the panic surfaces as
/// [`ProtocolError::Internal`] instead of aborting the caller.
///
/// # Examples
///
/// ```
/// use intersect_comm::runner::{run_two_party, RunConfig};
/// use intersect_comm::chan::Chan;
/// use intersect_comm::bits::BitBuf;
///
/// let out = run_two_party(
///     &RunConfig::with_seed(7),
///     |chan, _coins| {
///         let mut m = BitBuf::new();
///         m.push_bits(0b1010, 4);
///         chan.send(m)?;
///         Ok(chan.recv()?.len())
///     },
///     |chan, _coins| {
///         let got = chan.recv()?;
///         chan.send(got.clone())?;
///         Ok(got.len())
///     },
/// )?;
/// assert_eq!(out.alice, 4);
/// assert_eq!(out.bob, 4);
/// assert_eq!(out.report.total_bits(), 8);
/// assert_eq!(out.report.rounds, 2);
/// # Ok::<(), intersect_comm::error::ProtocolError>(())
/// ```
pub fn run_two_party<FA, FB, A, B>(
    cfg: &RunConfig,
    alice: FA,
    bob: FB,
) -> Result<RunOutcome<A, B>, ProtocolError>
where
    FA: FnOnce(&mut Endpoint, &CoinSource) -> Result<A, ProtocolError> + Send,
    FB: FnOnce(&mut Endpoint, &CoinSource) -> Result<B, ProtocolError> + Send,
    A: Send,
    B: Send,
{
    let (mut ep_a, mut ep_b, coins) = linked_pair(cfg);
    let coins_b = coins.clone();

    let (res_a, res_b, stats_a, stats_b) = std::thread::scope(|scope| {
        let handle = scope.spawn(move || {
            let _pool = ep_b.pool().clone().install();
            let r = contain(
                Side::Bob,
                catch_unwind(AssertUnwindSafe(|| bob(&mut ep_b, &coins_b))),
            );
            (r, ep_b.stats())
        });
        let _pool = ep_a.pool().clone().install();
        let res_a = contain(
            Side::Alice,
            catch_unwind(AssertUnwindSafe(|| alice(&mut ep_a, &coins))),
        );
        let stats_a = ep_a.stats();
        // Drop Alice's endpoint so a blocked Bob sees a hangup rather than a
        // timeout if Alice failed early.
        drop(ep_a);
        let (res_b, stats_b) = handle.join().unwrap_or_else(|payload| {
            // Unreachable in practice (the closure catches unwinds), but a
            // panic outside the guard must not take the caller down.
            (
                Err(contained_error(Side::Bob, payload)),
                ChannelStats::default(),
            )
        });
        (res_a, res_b, stats_a, stats_b)
    });

    SessionParts {
        alice: res_a,
        bob: res_b,
        report: assemble_report(stats_a, stats_b),
    }
    .collapse()
}

/// The tie-break [`run_two_party`] applies when both halves fail: the
/// root cause beats a secondary hangup/timeout on the other side; on
/// equal footing Alice's error wins.
pub fn primary_error(ea: ProtocolError, eb: ProtocolError) -> ProtocolError {
    let secondary =
        |e: &ProtocolError| matches!(e, ProtocolError::ChannelClosed | ProtocolError::Timeout);
    if secondary(&ea) && !secondary(&eb) {
        eb
    } else {
        ea
    }
}

/// Renders a caught panic payload as the contained [`ProtocolError`].
fn contained_error(side: Side, payload: Box<dyn Any + Send>) -> ProtocolError {
    let msg = if let Some(s) = payload.downcast_ref::<&str>() {
        *s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.as_str()
    } else {
        "non-string panic payload"
    };
    ProtocolError::Internal(format!("{side} panicked: {msg}"))
}

/// Recovers Bob's concrete result from the worker's type-erased report.
fn downcast_bob<B: 'static>(
    res: Result<Box<dyn Any + Send>, ProtocolError>,
) -> Result<B, ProtocolError> {
    res.map(|b| {
        *b.downcast::<B>()
            .expect("bob's type-erased result matches FB's return type")
    })
}

/// Collapses a [`catch_unwind`] result: a panicking protocol half
/// becomes an ordinary [`ProtocolError::Internal`] failure.
fn contain<T>(
    side: Side,
    caught: Result<Result<T, ProtocolError>, Box<dyn Any + Send>>,
) -> Result<T, ProtocolError> {
    match caught {
        Ok(r) => r,
        Err(payload) => Err(contained_error(side, payload)),
    }
}

/// Both halves' individual results plus the session's exact cost —
/// what [`SessionRunner::run_parts`] returns. Unlike the collapsed
/// [`RunOutcome`], a caller can see that one half succeeded while the
/// other failed.
#[derive(Debug)]
pub struct SessionParts<A, B> {
    /// Alice's result.
    pub alice: Result<A, ProtocolError>,
    /// Bob's result.
    pub bob: Result<B, ProtocolError>,
    /// Exact communication cost, identical to [`run_two_party`]'s.
    pub report: CostReport,
}

impl<A, B> SessionParts<A, B> {
    /// Collapses the two halves into [`run_two_party`]'s contract: both
    /// succeed or the run fails, with [`primary_error`] breaking a
    /// double failure. This is the single tie-break site shared by
    /// every execution path.
    pub fn collapse(self) -> Result<RunOutcome<A, B>, ProtocolError> {
        match (self.alice, self.bob) {
            (Ok(alice), Ok(bob)) => Ok(RunOutcome {
                alice,
                bob,
                report: self.report,
            }),
            (Err(e), Ok(_)) | (Ok(_), Err(e)) => Err(e),
            (Err(ea), Err(eb)) => Err(primary_error(ea, eb)),
        }
    }
}

/// Bob's half, type-erased so one worker thread can serve sessions of
/// any result type.
type BobFn = Box<
    dyn FnOnce(&mut Endpoint, &CoinSource) -> Result<Box<dyn Any + Send>, ProtocolError> + Send,
>;

/// Bob's halves for a batch. The first argument is the session's index
/// within its batch.
type BatchBobFn = Box<
    dyn FnMut(usize, &mut Endpoint, &CoinSource) -> Result<Box<dyn Any + Send>, ProtocolError>
        + Send,
>;

/// What one job asks the worker thread to run.
///
/// `Single` is kept distinct from a one-element `Batch` deliberately:
/// the single-session hot path stays free of per-session heap
/// allocations (no coin vector, no result vector — a zero-sized Bob
/// closure boxes for free), which the steady-state no-alloc test pins.
enum JobKind {
    /// One session: Bob's half and its coin source.
    Single(CoinSource, BobFn),
    /// Back-to-back sessions separated by fin rendezvous, one coin
    /// source each.
    Batch(Vec<CoinSource>, BatchBobFn),
    /// Pipelined sessions with **no** per-session rendezvous: counters
    /// rearm between sessions but neither side waits for the other, so
    /// a side can run ahead and amortize wakeups over many sessions.
    /// One fin each way closes the whole stream.
    Stream(Vec<CoinSource>, BatchBobFn),
}

struct Job {
    budget: Option<u64>,
    timeout: Duration,
    kind: JobKind,
}

/// Bob's type-erased result and his endpoint's final stats for one
/// session.
type SessionDone = (Result<Box<dyn Any + Send>, ProtocolError>, ChannelStats);

/// What the worker thread reports back after each job. A `Batch` report
/// is shorter than the batch if the worker lost rendezvous mid-batch.
enum Done {
    Single(SessionDone),
    Batch(Vec<SessionDone>),
    /// Stream results plus whether the worker finished every session
    /// and saw the peer's closing fin (`clean`).
    Stream(Vec<SessionDone>, bool),
}

/// A reusable two-party session executor: one long-lived paired thread
/// and one resettable channel pair serve sessions back to back.
///
/// A dedicated [`run_two_party`] call pays a thread spawn, two channel
/// constructions, and a full teardown per session; at engine scale that
/// overhead dominates the protocols themselves. A `SessionRunner`
/// amortizes all of it: [`run`](SessionRunner::run) has the same
/// contract as `run_two_party` — bit-for-bit identical costs, the same
/// error tie-break, panic containment on both halves — but steady-state
/// reuse leaves only the per-session job hand-off.
///
/// Between sessions the endpoints are [reset](Endpoint) to fresh-pair
/// state, and an internal ready handshake orders the resets so no frame
/// of a new session can be mistaken for residue of the previous one.
///
/// # Examples
///
/// ```
/// use intersect_comm::prelude::*;
///
/// let mut runner = SessionRunner::start();
/// for seed in 0..4 {
///     let out = runner.run(
///         &RunConfig::with_seed(seed),
///         |chan, _| {
///             let mut m = BitBuf::new();
///             m.push_bits(seed & 0b111, 3);
///             chan.send(m)?;
///             Ok(())
///         },
///         |chan, _| Ok(chan.recv()?.reader().read_bits(3)?),
///     )?;
///     assert_eq!(out.bob, seed & 0b111);
///     assert_eq!(out.report.total_bits(), 3);
/// }
/// # Ok::<(), intersect_comm::error::ProtocolError>(())
/// ```
pub struct SessionRunner {
    ep_a: Endpoint,
    job_tx: Option<Sender<Job>>,
    ready_rx: Receiver<()>,
    done_rx: Receiver<Done>,
    handle: Option<JoinHandle<()>>,
    broken: bool,
}

impl std::fmt::Debug for SessionRunner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionRunner")
            .field("broken", &self.broken)
            .finish_non_exhaustive()
    }
}

impl SessionRunner {
    /// Spawns the paired worker thread and connects the reusable
    /// endpoint pair.
    pub fn start() -> SessionRunner {
        let (ep_a, mut ep_b) = Endpoint::pair(None, Duration::from_secs(30));
        let (job_tx, job_rx) = crossbeam_channel::unbounded::<Job>();
        let (ready_tx, ready_rx) = crossbeam_channel::unbounded::<()>();
        let (done_tx, done_rx) = crossbeam_channel::unbounded();
        let handle = std::thread::spawn(move || {
            let _pool = ep_b.pool().clone().install();
            for job in job_rx.iter() {
                // Full reset (drain included) only at a job boundary,
                // ordered by the ready handshake; inside a batch the fin
                // rendezvous separates sessions instead.
                ep_b.reset(job.budget, job.timeout);
                if ready_tx.send(()).is_err() {
                    break;
                }
                let done = match job.kind {
                    JobKind::Single(coins, bob) => {
                        let res = contain(
                            Side::Bob,
                            catch_unwind(AssertUnwindSafe(|| bob(&mut ep_b, &coins))),
                        );
                        ep_b.send_fin();
                        Done::Single((res, ep_b.stats()))
                    }
                    JobKind::Batch(coins, mut bob) => {
                        let mut results = Vec::with_capacity(coins.len());
                        for (i, c) in coins.iter().enumerate() {
                            if i > 0 {
                                ep_b.rearm(job.budget, job.timeout);
                            }
                            let res = contain(
                                Side::Bob,
                                catch_unwind(AssertUnwindSafe(|| bob(i, &mut ep_b, c))),
                            );
                            ep_b.send_fin();
                            results.push((res, ep_b.stats()));
                            if ep_b.drain_to_fin().is_err() {
                                // Lost rendezvous: report the short batch
                                // so the caller retires this runner.
                                break;
                            }
                        }
                        Done::Batch(results)
                    }
                    JobKind::Stream(coins, mut bob) => {
                        let mut results = Vec::with_capacity(coins.len());
                        for (i, c) in coins.iter().enumerate() {
                            if i > 0 {
                                ep_b.rearm(job.budget, job.timeout);
                            }
                            let res = contain(
                                Side::Bob,
                                catch_unwind(AssertUnwindSafe(|| bob(i, &mut ep_b, c))),
                            );
                            let failed = res.is_err();
                            results.push((res, ep_b.stats()));
                            if failed {
                                // A failed session desynchronizes an
                                // unfenced stream: abort the rest.
                                break;
                            }
                        }
                        // One rendezvous closes the whole stream.
                        ep_b.send_fin();
                        let clean = results.len() == coins.len() && ep_b.drain_to_fin().is_ok();
                        Done::Stream(results, clean)
                    }
                };
                if done_tx.send(done).is_err() {
                    break;
                }
            }
        });
        SessionRunner {
            ep_a,
            job_tx: Some(job_tx),
            ready_rx,
            done_rx,
            handle: Some(handle),
            broken: false,
        }
    }

    /// Runs one session, reporting each half's result separately.
    ///
    /// Alice executes on the calling thread (and so may borrow from it);
    /// Bob executes on the runner's paired thread, which is why `FB` must
    /// be `Send + 'static`. A panicking half is contained as
    /// [`ProtocolError::Internal`] and the runner stays usable.
    ///
    /// # Errors
    ///
    /// Fails only if the runner itself is broken (its paired thread
    /// died); protocol failures are reported inside [`SessionParts`].
    pub fn run_parts<FA, FB, A, B>(
        &mut self,
        cfg: &RunConfig,
        alice: FA,
        bob: FB,
    ) -> Result<SessionParts<A, B>, ProtocolError>
    where
        FA: FnOnce(&mut Endpoint, &CoinSource) -> Result<A, ProtocolError>,
        FB: FnOnce(&mut Endpoint, &CoinSource) -> Result<B, ProtocolError> + Send + 'static,
        B: Send + 'static,
    {
        let coins = CoinSource::from_seed(cfg.seed);
        let kind = JobKind::Single(
            coins.clone(),
            Box::new(move |ep, c| bob(ep, c).map(|b| Box::new(b) as Box<dyn Any + Send>)),
        );
        self.begin_job(cfg, kind)?;
        let (res_a, stats_a) = {
            let _pool = self.ep_a.pool().clone().install();
            let res = contain(
                Side::Alice,
                catch_unwind(AssertUnwindSafe(|| alice(&mut self.ep_a, &coins))),
            );
            self.ep_a.send_fin();
            (res, self.ep_a.stats())
        };
        let (res_b, stats_b) = match self.done_rx.recv() {
            Ok(Done::Single(done)) => done,
            _ => {
                self.broken = true;
                return Err(self.broken_error());
            }
        };
        Ok(SessionParts {
            alice: res_a,
            bob: downcast_bob::<B>(res_b),
            report: assemble_report(stats_a, stats_b),
        })
    }

    /// Runs a batch of back-to-back sessions over the warm pair: one
    /// job hand-off and one ready handshake for the whole batch, then
    /// one coin-source reseed (from `seeds[i]`) per session. Sessions
    /// are separated by an unmetered fin rendezvous instead of a full
    /// reset, so per-session overhead is two control frames.
    ///
    /// Each session is bit-for-bit identical to a dedicated
    /// [`run_two_party`] call with `RunConfig { seed: seeds[i], ..cfg }`
    /// running the same closures: counters restart from zero and the
    /// budget re-applies per session. Failures are contained per
    /// session — one failed session leaves the rest of the batch
    /// untouched.
    ///
    /// # Errors
    ///
    /// Fails only if the runner itself breaks (worker thread death, or
    /// a lost mid-batch rendezvous after a receive timeout); per-session
    /// protocol failures are reported inside each [`SessionParts`].
    pub fn run_batch_parts<FA, FB, A, B>(
        &mut self,
        cfg: &RunConfig,
        seeds: &[u64],
        mut alice: FA,
        mut bob: FB,
    ) -> Result<Vec<SessionParts<A, B>>, ProtocolError>
    where
        FA: FnMut(usize, &mut Endpoint, &CoinSource) -> Result<A, ProtocolError>,
        FB: FnMut(usize, &mut Endpoint, &CoinSource) -> Result<B, ProtocolError> + Send + 'static,
        B: Send + 'static,
    {
        if seeds.is_empty() {
            return Ok(Vec::new());
        }
        let coins: Vec<CoinSource> = seeds.iter().map(|&s| CoinSource::from_seed(s)).collect();
        let kind = JobKind::Batch(
            coins.clone(),
            Box::new(move |i, ep, c| bob(i, ep, c).map(|b| Box::new(b) as Box<dyn Any + Send>)),
        );
        self.begin_job(cfg, kind)?;
        let mut halves: Vec<(Result<A, ProtocolError>, ChannelStats)> =
            Vec::with_capacity(coins.len());
        let mut desynced = false;
        {
            let _pool = self.ep_a.pool().clone().install();
            for (i, c) in coins.iter().enumerate() {
                if i > 0 {
                    self.ep_a.rearm(cfg.bit_budget, cfg.timeout);
                }
                let res = contain(
                    Side::Alice,
                    catch_unwind(AssertUnwindSafe(|| alice(i, &mut self.ep_a, c))),
                );
                self.ep_a.send_fin();
                halves.push((res, self.ep_a.stats()));
                if self.ep_a.drain_to_fin().is_err() {
                    desynced = true;
                    break;
                }
            }
        }
        // Every worker-side blocking operation is timeout-bounded, so
        // the batch report always arrives (possibly short).
        let done = match self.done_rx.recv() {
            Ok(Done::Batch(done)) => done,
            _ => {
                self.broken = true;
                return Err(self.broken_error());
            }
        };
        if desynced || done.len() != halves.len() {
            self.broken = true;
            return Err(self.broken_error());
        }
        Ok(halves
            .into_iter()
            .zip(done)
            .map(|((res_a, stats_a), (res_b, stats_b))| SessionParts {
                alice: res_a,
                bob: downcast_bob::<B>(res_b),
                report: assemble_report(stats_a, stats_b),
            })
            .collect())
    }

    /// Runs a *stream* of back-to-back sessions over the warm pair with
    /// **no per-session rendezvous**: sessions are separated only by a
    /// counter rearm, so neither side waits for the other between
    /// sessions. Protocols whose halves don't strictly alternate (a
    /// side sends before it receives) pipeline across the pair — one
    /// thread wakeup then covers a burst of sessions instead of two
    /// context switches per session, which is where the streamed-batch
    /// throughput win comes from. One fin each way closes the stream.
    ///
    /// Exactness is unchanged: session `i` is bit-for-bit identical to
    /// a dedicated [`run_two_party`] with `RunConfig { seed: seeds[i],
    /// ..cfg }` — counters rearm from zero per session, each side's
    /// sends stamp depths from its own per-session clock, and receive
    /// metering happens at `recv` time, after the receiver's own rearm,
    /// so every bit lands in the right session no matter how far the
    /// peer ran ahead.
    ///
    /// The price of dropping the fence is failure isolation: a session
    /// that fails on either side desynchronizes the stream, so the
    /// stream **aborts** at the first failure. The returned vector is
    /// then shorter than `seeds` (it ends with the failing session as
    /// observed by both sides, possibly truncated) and the runner is
    /// marked [broken](Self::is_broken) — callers retire it and fall
    /// back to the fenced batch path for the remainder.
    ///
    /// # Errors
    ///
    /// Fails only if the runner infrastructure itself breaks (worker
    /// thread death); protocol failures surface as described above.
    pub fn run_stream_parts<FA, FB, A, B>(
        &mut self,
        cfg: &RunConfig,
        seeds: &[u64],
        mut alice: FA,
        mut bob: FB,
    ) -> Result<Vec<SessionParts<A, B>>, ProtocolError>
    where
        FA: FnMut(usize, &mut Endpoint, &CoinSource) -> Result<A, ProtocolError>,
        FB: FnMut(usize, &mut Endpoint, &CoinSource) -> Result<B, ProtocolError> + Send + 'static,
        B: Send + 'static,
    {
        if seeds.is_empty() {
            return Ok(Vec::new());
        }
        let coins: Vec<CoinSource> = seeds.iter().map(|&s| CoinSource::from_seed(s)).collect();
        let kind = JobKind::Stream(
            coins.clone(),
            Box::new(move |i, ep, c| bob(i, ep, c).map(|b| Box::new(b) as Box<dyn Any + Send>)),
        );
        self.begin_job(cfg, kind)?;
        let mut halves: Vec<(Result<A, ProtocolError>, ChannelStats)> =
            Vec::with_capacity(coins.len());
        {
            let _pool = self.ep_a.pool().clone().install();
            for (i, c) in coins.iter().enumerate() {
                if i > 0 {
                    self.ep_a.rearm(cfg.bit_budget, cfg.timeout);
                }
                let res = contain(
                    Side::Alice,
                    catch_unwind(AssertUnwindSafe(|| alice(i, &mut self.ep_a, c))),
                );
                let failed = res.is_err();
                halves.push((res, self.ep_a.stats()));
                if failed {
                    break;
                }
            }
            self.ep_a.send_fin();
            if halves.len() != coins.len() || self.ep_a.drain_to_fin().is_err() {
                self.broken = true;
            }
        }
        // The worker's blocking operations are timeout-bounded, so the
        // stream report always arrives (possibly short and unclean).
        let done = match self.done_rx.recv() {
            Ok(Done::Stream(done, clean)) => {
                if !clean {
                    self.broken = true;
                }
                done
            }
            _ => {
                self.broken = true;
                return Err(self.broken_error());
            }
        };
        if done.len() != halves.len() {
            self.broken = true;
        }
        let n = done.len().min(halves.len());
        Ok(halves
            .into_iter()
            .take(n)
            .zip(done.into_iter().take(n))
            .map(|((res_a, stats_a), (res_b, stats_b))| SessionParts {
                alice: res_a,
                bob: downcast_bob::<B>(res_b),
                report: assemble_report(stats_a, stats_b),
            })
            .collect())
    }

    /// `true` once the runner has lost its paired thread or stream/batch
    /// synchronization; a broken runner refuses further jobs and must be
    /// replaced.
    pub fn is_broken(&self) -> bool {
        self.broken
    }

    /// Shared job kickoff: reset order matters — Alice's endpoint first
    /// (the peer is quiescent between jobs), then the job hand-off,
    /// then Bob resets his endpoint *before* acknowledging ready — so
    /// neither reset can swallow a frame of the new job.
    fn begin_job(&mut self, cfg: &RunConfig, kind: JobKind) -> Result<(), ProtocolError> {
        let job_tx = match (&self.job_tx, self.broken) {
            (Some(tx), false) => tx,
            _ => return Err(self.broken_error()),
        };
        let job = Job {
            budget: cfg.bit_budget,
            timeout: cfg.timeout,
            kind,
        };
        self.ep_a.reset(cfg.bit_budget, cfg.timeout);
        if job_tx.send(job).is_err() || self.ready_rx.recv().is_err() {
            self.broken = true;
            return Err(self.broken_error());
        }
        Ok(())
    }

    /// Runs one session with the exact contract of [`run_two_party`].
    ///
    /// # Errors
    ///
    /// As [`run_two_party`]: either half's failure fails the run, with
    /// the same primary-over-secondary tie-break
    /// ([`SessionParts::collapse`]).
    pub fn run<FA, FB, A, B>(
        &mut self,
        cfg: &RunConfig,
        alice: FA,
        bob: FB,
    ) -> Result<RunOutcome<A, B>, ProtocolError>
    where
        FA: FnOnce(&mut Endpoint, &CoinSource) -> Result<A, ProtocolError>,
        FB: FnOnce(&mut Endpoint, &CoinSource) -> Result<B, ProtocolError> + Send + 'static,
        B: Send + 'static,
    {
        self.run_parts(cfg, alice, bob)?.collapse()
    }

    fn broken_error(&self) -> ProtocolError {
        ProtocolError::Internal("session runner worker thread died".to_string())
    }
}

impl Drop for SessionRunner {
    fn drop(&mut self) {
        // Closing the job channel ends the worker loop; then join it.
        self.job_tx.take();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bits::BitBuf;

    fn bits(n: usize) -> BitBuf {
        let mut b = BitBuf::new();
        for _ in 0..n {
            b.push_bit(true);
        }
        b
    }

    #[test]
    fn ping_pong_counts_rounds_and_bits() {
        let out = run_two_party(
            &RunConfig::with_seed(1),
            |chan, _| {
                chan.send(bits(8))?;
                chan.recv()?;
                chan.send(bits(4))?;
                Ok(())
            },
            |chan, _| {
                chan.recv()?;
                chan.send(bits(2))?;
                chan.recv()?;
                Ok(())
            },
        )
        .unwrap();
        assert_eq!(out.report.bits_alice, 12);
        assert_eq!(out.report.bits_bob, 2);
        assert_eq!(out.report.total_bits(), 14);
        assert_eq!(out.report.messages, 3);
        assert_eq!(out.report.rounds, 3);
    }

    #[test]
    fn shared_coins_agree_across_parties() {
        let out = run_two_party(
            &RunConfig::with_seed(99),
            |_, coins| {
                use rand::Rng;
                Ok(coins.rng_for("h").gen::<u64>())
            },
            |_, coins| {
                use rand::Rng;
                Ok(coins.rng_for("h").gen::<u64>())
            },
        )
        .unwrap();
        assert_eq!(out.alice, out.bob);
    }

    #[test]
    fn primary_error_wins_over_secondary_hangup() {
        let err = run_two_party(
            &RunConfig::with_seed(1),
            |chan, _| {
                chan.recv()?; // Bob never sends: sees hangup after Bob fails
                Ok(())
            },
            |_, _| -> Result<(), ProtocolError> {
                Err(ProtocolError::InvalidInput("bad set".into()))
            },
        )
        .unwrap_err();
        assert_eq!(err, ProtocolError::InvalidInput("bad set".into()));
    }

    #[test]
    fn budget_aborts_runaway_protocol() {
        let err = run_two_party(
            &RunConfig::with_seed(1).bit_budget(100),
            |chan, _| -> Result<(), ProtocolError> {
                loop {
                    chan.send(bits(64))?;
                }
            },
            |chan, _| -> Result<(), ProtocolError> {
                loop {
                    chan.recv()?;
                }
            },
        )
        .unwrap_err();
        assert!(matches!(err, ProtocolError::BudgetExceeded { .. }));
    }

    #[test]
    fn panicking_bob_is_contained_as_an_error() {
        let err = run_two_party(
            &RunConfig::with_seed(1),
            |chan, _| {
                chan.recv()?;
                Ok(())
            },
            |_, _| -> Result<(), ProtocolError> { panic!("bob exploded") },
        )
        .unwrap_err();
        assert_eq!(
            err,
            ProtocolError::Internal("bob panicked: bob exploded".into())
        );
    }

    #[test]
    fn panicking_alice_is_contained_as_an_error() {
        let err = run_two_party(
            &RunConfig::with_seed(1),
            |_, _| -> Result<(), ProtocolError> { panic!("alice exploded") },
            |chan, _| {
                chan.recv()?;
                Ok(())
            },
        )
        .unwrap_err();
        assert_eq!(
            err,
            ProtocolError::Internal("alice panicked: alice exploded".into())
        );
    }

    #[test]
    fn runner_matches_dedicated_runs_across_many_sessions() {
        let mut runner = SessionRunner::start();
        for seed in 0..50u64 {
            let alice = move |chan: &mut Endpoint, _: &CoinSource| {
                chan.send(bits((seed % 7 + 1) as usize))?;
                let got = chan.recv()?;
                chan.send(bits(got.len() + 1))?;
                Ok(())
            };
            let bob = move |chan: &mut Endpoint, _: &CoinSource| {
                let got = chan.recv()?;
                chan.send(bits(got.len() + 2))?;
                Ok(chan.recv()?.len())
            };
            let cfg = RunConfig::with_seed(seed);
            let reused = runner.run(&cfg, alice, bob).unwrap();
            let dedicated = run_two_party(&cfg, alice, bob).unwrap();
            assert_eq!(reused.report, dedicated.report, "seed {seed}");
            assert_eq!(reused.bob, dedicated.bob, "seed {seed}");
        }
    }

    #[test]
    fn runner_shares_coins_and_enforces_budgets() {
        let mut runner = SessionRunner::start();
        let out = runner
            .run(
                &RunConfig::with_seed(99),
                |_, coins| {
                    use rand::Rng;
                    Ok(coins.rng_for("h").gen::<u64>())
                },
                |_, coins| {
                    use rand::Rng;
                    Ok(coins.rng_for("h").gen::<u64>())
                },
            )
            .unwrap();
        assert_eq!(out.alice, out.bob);

        let err = runner
            .run(
                &RunConfig::with_seed(1).bit_budget(100),
                |chan, _| -> Result<(), ProtocolError> {
                    loop {
                        chan.send(bits(64))?;
                    }
                },
                |chan, _| -> Result<(), ProtocolError> {
                    loop {
                        chan.recv()?;
                    }
                },
            )
            .unwrap_err();
        assert!(matches!(err, ProtocolError::BudgetExceeded { .. }));
    }

    #[test]
    fn runner_survives_a_panicking_session_and_serves_the_next() {
        let mut runner = SessionRunner::start();
        let err = runner
            .run(
                &RunConfig::with_seed(1),
                |chan, _| {
                    chan.recv()?;
                    Ok(())
                },
                |_, _| -> Result<(), ProtocolError> { panic!("poison attempt") },
            )
            .unwrap_err();
        assert_eq!(
            err,
            ProtocolError::Internal("bob panicked: poison attempt".into())
        );

        // The same runner serves a clean session afterwards, from zeroed
        // counters.
        let out = runner
            .run(
                &RunConfig::with_seed(2),
                |chan, _| {
                    chan.send(bits(5))?;
                    Ok(())
                },
                |chan, _| Ok(chan.recv()?.len()),
            )
            .unwrap();
        assert_eq!(out.bob, 5);
        assert_eq!(out.report.total_bits(), 5);
        assert_eq!(out.report.rounds, 1);
    }

    #[test]
    fn runner_parts_expose_the_surviving_half() {
        let mut runner = SessionRunner::start();
        let parts = runner
            .run_parts(
                &RunConfig::with_seed(3),
                |chan, _| {
                    chan.send(bits(4))?;
                    Ok("alice done")
                },
                |chan, _| -> Result<usize, ProtocolError> {
                    let got = chan.recv()?;
                    chan.recv()?; // Alice sends nothing more: hangup
                    Ok(got.len())
                },
            )
            .unwrap();
        assert_eq!(parts.alice.unwrap(), "alice done");
        assert_eq!(parts.bob.unwrap_err(), ProtocolError::ChannelClosed);
        assert_eq!(parts.report.bits_alice, 4);
    }

    #[test]
    fn primary_error_orders_transport_below_protocol_failures() {
        use ProtocolError::*;
        // A secondary transport symptom (hangup/timeout) loses to the
        // root-cause protocol failure, whichever side raised it.
        let proto = || InvalidInput("bad set".to_string());
        assert_eq!(primary_error(ChannelClosed, proto()), proto());
        assert_eq!(primary_error(Timeout, proto()), proto());
        assert_eq!(primary_error(proto(), ChannelClosed), proto());
        assert_eq!(primary_error(proto(), Timeout), proto());
        // Two transport errors: Alice's wins.
        assert_eq!(primary_error(ChannelClosed, Timeout), ChannelClosed);
        assert_eq!(primary_error(Timeout, ChannelClosed), Timeout);
        // Two protocol errors: Alice's wins.
        assert_eq!(
            primary_error(Internal("a".into()), Internal("b".into())),
            Internal("a".into())
        );
    }

    #[test]
    fn collapse_applies_the_shared_tie_break() {
        let parts = |a: Result<(), ProtocolError>, b: Result<(), ProtocolError>| SessionParts {
            alice: a,
            bob: b,
            report: CostReport::default(),
        };
        assert!(parts(Ok(()), Ok(())).collapse().is_ok());
        let boom = ProtocolError::InvalidInput("boom".to_string());
        assert_eq!(
            parts(Err(ProtocolError::ChannelClosed), Err(boom.clone()))
                .collapse()
                .unwrap_err(),
            boom
        );
        assert_eq!(
            parts(Ok(()), Err(boom.clone())).collapse().unwrap_err(),
            boom
        );
    }

    #[test]
    fn batch_sessions_match_dedicated_runs_bit_for_bit() {
        let alice = |i: usize, chan: &mut Endpoint, _: &CoinSource| {
            chan.send(bits(i % 7 + 1))?;
            let got = chan.recv()?;
            chan.send(bits(got.len() + 1))?;
            Ok(())
        };
        let bob = |i: usize, chan: &mut Endpoint, _: &CoinSource| {
            let got = chan.recv()?;
            chan.send(bits(got.len() + 2 + i % 3))?;
            Ok(chan.recv()?.len())
        };
        let seeds: Vec<u64> = (0..32).collect();
        let mut runner = SessionRunner::start();
        let batch = runner
            .run_batch_parts(&RunConfig::default(), &seeds, alice, bob)
            .unwrap();
        assert_eq!(batch.len(), seeds.len());
        for (i, parts) in batch.into_iter().enumerate() {
            let cfg = RunConfig::with_seed(seeds[i]);
            let dedicated = run_two_party(
                &cfg,
                |chan, c| alice(i, chan, c),
                move |chan: &mut Endpoint, c: &CoinSource| bob(i, chan, c),
            )
            .unwrap();
            assert_eq!(parts.report, dedicated.report, "session {i}");
            assert_eq!(parts.bob.unwrap(), dedicated.bob, "session {i}");
        }
    }

    #[test]
    fn batch_shares_coins_per_session_seed() {
        let mut runner = SessionRunner::start();
        let seeds = [11u64, 12, 13];
        let batch = runner
            .run_batch_parts(
                &RunConfig::default(),
                &seeds,
                |_, _, coins: &CoinSource| {
                    use rand::Rng;
                    Ok(coins.rng_for("h").gen::<u64>())
                },
                |_, _, coins: &CoinSource| {
                    use rand::Rng;
                    Ok(coins.rng_for("h").gen::<u64>())
                },
            )
            .unwrap();
        let values: Vec<u64> = batch
            .into_iter()
            .map(|p| {
                let (a, b) = (p.alice.unwrap(), p.bob.unwrap());
                assert_eq!(a, b, "both sides draw from the session seed");
                a
            })
            .collect();
        // Distinct seeds give distinct common random strings.
        assert_ne!(values[0], values[1]);
        assert_ne!(values[1], values[2]);
    }

    #[test]
    fn batch_contains_per_session_failures() {
        let mut runner = SessionRunner::start();
        let batch = runner
            .run_batch_parts(
                &RunConfig::default(),
                &[0, 1, 2],
                |_, chan: &mut Endpoint, _| {
                    chan.send(bits(4))?;
                    Ok(())
                },
                |i, chan: &mut Endpoint, _| {
                    if i == 1 {
                        panic!("session one explodes");
                    }
                    Ok(chan.recv()?.len())
                },
            )
            .unwrap();
        assert_eq!(batch[0].bob.as_ref().unwrap(), &4);
        assert_eq!(
            batch[1].bob.as_ref().unwrap_err(),
            &ProtocolError::Internal("bob panicked: session one explodes".into())
        );
        // The failed middle session leaves the next one pristine.
        assert_eq!(batch[2].bob.as_ref().unwrap(), &4);
        assert_eq!(batch[2].report.total_bits(), 4);
        assert_eq!(batch[2].report.rounds, 1);
        // And the runner itself stays healthy.
        let out = runner
            .run(
                &RunConfig::with_seed(9),
                |chan, _| {
                    chan.send(bits(2))?;
                    Ok(())
                },
                |chan, _| Ok(chan.recv()?.len()),
            )
            .unwrap();
        assert_eq!(out.bob, 2);
    }

    #[test]
    fn stream_sessions_match_dedicated_runs_bit_for_bit() {
        // An alternating handshake: the strictest shape for the
        // no-rendezvous path because every recv really waits.
        let alice = |i: usize, chan: &mut Endpoint, _: &CoinSource| {
            chan.send(bits(i % 7 + 1))?;
            let got = chan.recv()?;
            chan.send(bits(got.len() + 1))?;
            Ok(())
        };
        let bob = |i: usize, chan: &mut Endpoint, _: &CoinSource| {
            let got = chan.recv()?;
            chan.send(bits(got.len() + 2 + i % 3))?;
            Ok(chan.recv()?.len())
        };
        let seeds: Vec<u64> = (0..32).collect();
        let mut runner = SessionRunner::start();
        let stream = runner
            .run_stream_parts(&RunConfig::default(), &seeds, alice, bob)
            .unwrap();
        assert!(!runner.is_broken());
        assert_eq!(stream.len(), seeds.len());
        for (i, parts) in stream.into_iter().enumerate() {
            let cfg = RunConfig::with_seed(seeds[i]);
            let dedicated = run_two_party(
                &cfg,
                |chan, c| alice(i, chan, c),
                move |chan: &mut Endpoint, c: &CoinSource| bob(i, chan, c),
            )
            .unwrap();
            assert_eq!(parts.report, dedicated.report, "session {i}");
            assert_eq!(parts.bob.unwrap(), dedicated.bob, "session {i}");
        }
    }

    #[test]
    fn stream_pipelines_simultaneous_exchange() {
        // Both sides send before they receive: sessions pipeline (a side
        // can run arbitrarily far ahead), yet rearm-at-sender plus
        // meter-at-recv keeps every session's report exact.
        let alice = |i: usize, chan: &mut Endpoint, _: &CoinSource| {
            chan.send(bits(i % 5 + 1))?;
            Ok(chan.recv()?.len())
        };
        let bob = |i: usize, chan: &mut Endpoint, _: &CoinSource| {
            chan.send(bits(i % 3 + 2))?;
            Ok(chan.recv()?.len())
        };
        let seeds: Vec<u64> = (100..164).collect();
        let mut runner = SessionRunner::start();
        let stream = runner
            .run_stream_parts(&RunConfig::default(), &seeds, alice, bob)
            .unwrap();
        assert!(!runner.is_broken());
        assert_eq!(stream.len(), seeds.len());
        for (i, parts) in stream.into_iter().enumerate() {
            let dedicated = run_two_party(
                &RunConfig::with_seed(seeds[i]),
                |chan, c| alice(i, chan, c),
                move |chan: &mut Endpoint, c: &CoinSource| bob(i, chan, c),
            )
            .unwrap();
            assert_eq!(parts.report, dedicated.report, "session {i}");
            assert_eq!(parts.alice.unwrap(), dedicated.alice, "session {i}");
            assert_eq!(parts.bob.unwrap(), dedicated.bob, "session {i}");
        }
    }

    #[test]
    fn stream_handles_one_way_sessions_with_alice_far_ahead() {
        // Alice never receives, so she finishes the whole stream before
        // Bob wakes: the closing fin must not be mistaken for data and
        // every session's bits must still land in the right slot.
        let alice = |i: usize, chan: &mut Endpoint, _: &CoinSource| {
            chan.send(bits(i % 9 + 1))?;
            Ok(())
        };
        let bob = |_: usize, chan: &mut Endpoint, _: &CoinSource| Ok(chan.recv()?.len());
        let seeds: Vec<u64> = (0..48).collect();
        let mut runner = SessionRunner::start();
        let stream = runner
            .run_stream_parts(&RunConfig::default(), &seeds, alice, bob)
            .unwrap();
        assert!(!runner.is_broken());
        assert_eq!(stream.len(), seeds.len());
        for (i, parts) in stream.into_iter().enumerate() {
            assert_eq!(parts.bob.unwrap(), i % 9 + 1, "session {i}");
            assert_eq!(parts.report.total_bits(), (i % 9 + 1) as u64);
            assert_eq!(parts.report.rounds, 1);
        }
    }

    #[test]
    fn stream_aborts_at_first_failure_and_marks_runner_broken() {
        let mut runner = SessionRunner::start();
        let stream = runner
            .run_stream_parts(
                &RunConfig::default(),
                &[0, 1, 2, 3],
                |_, chan: &mut Endpoint, _| {
                    chan.send(bits(4))?;
                    Ok(chan.recv()?.len())
                },
                |i, chan: &mut Endpoint, _| {
                    if i == 1 {
                        return Err(ProtocolError::InvalidInput("session one bails".into()));
                    }
                    let got = chan.recv()?;
                    chan.send(bits(got.len()))?;
                    Ok(got.len())
                },
            )
            .unwrap();
        // Session 0 completed; session 1 failed on Bob's side; the
        // stream aborted before sessions 2 and 3.
        assert!(stream.len() < 4, "aborted stream is short");
        assert!(stream[0].bob.is_ok());
        assert!(runner.is_broken(), "an aborted stream retires the runner");
        // A broken runner refuses the next job instead of hanging.
        let err = runner
            .run(
                &RunConfig::with_seed(9),
                |_, _| Ok(()),
                |_, _| -> Result<(), ProtocolError> { Ok(()) },
            )
            .unwrap_err();
        assert!(matches!(err, ProtocolError::Internal(_)));
    }

    #[test]
    fn empty_stream_is_a_no_op() {
        let mut runner = SessionRunner::start();
        let stream: Vec<SessionParts<(), ()>> = runner
            .run_stream_parts(
                &RunConfig::default(),
                &[],
                |_, _, _| Ok(()),
                |_, _, _| Ok(()),
            )
            .unwrap();
        assert!(stream.is_empty());
        assert!(!runner.is_broken());
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let mut runner = SessionRunner::start();
        let batch: Vec<SessionParts<(), ()>> = runner
            .run_batch_parts(
                &RunConfig::default(),
                &[],
                |_, _, _| Ok(()),
                |_, _, _| Ok(()),
            )
            .unwrap();
        assert!(batch.is_empty());
    }

    #[test]
    fn side_basics() {
        assert_eq!(Side::Alice.peer(), Side::Bob);
        assert_eq!(Side::Bob.peer(), Side::Alice);
        assert!(Side::Alice.is_alice());
        assert_eq!(Side::Bob.to_string(), "bob");
    }
}
