//! Executes two-party protocols and collects their cost.

use crate::chan::{Chan, Endpoint};
use crate::coins::CoinSource;
use crate::error::ProtocolError;
use crate::stats::CostReport;
use std::time::Duration;

/// Which side of a two-party protocol a piece of code is playing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Side {
    /// The first player (holds `S`).
    Alice,
    /// The second player (holds `T`).
    Bob,
}

impl Side {
    /// The other side.
    pub fn peer(self) -> Side {
        match self {
            Side::Alice => Side::Bob,
            Side::Bob => Side::Alice,
        }
    }

    /// A stable label for coin forking.
    pub fn label(self) -> &'static str {
        match self {
            Side::Alice => "alice",
            Side::Bob => "bob",
        }
    }

    /// `true` for [`Side::Alice`].
    pub fn is_alice(self) -> bool {
        matches!(self, Side::Alice)
    }
}

impl std::fmt::Display for Side {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Configuration for a two-party run.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Seed of the common random string.
    pub seed: u64,
    /// Abort the protocol if total communication exceeds this many bits.
    pub bit_budget: Option<u64>,
    /// How long a blocked receive may wait before failing the run.
    pub timeout: Duration,
}

impl RunConfig {
    /// A configuration with the given shared-randomness seed, no budget,
    /// and a 30-second receive timeout.
    pub fn with_seed(seed: u64) -> Self {
        RunConfig {
            seed,
            bit_budget: None,
            timeout: Duration::from_secs(30),
        }
    }

    /// Sets the communication budget in bits.
    pub fn bit_budget(mut self, bits: u64) -> Self {
        self.bit_budget = Some(bits);
        self
    }
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig::with_seed(0)
    }
}

/// Builds the substrate of one two-party session: a connected endpoint
/// pair and the common random string, from one configuration.
///
/// This is the single place where a session's transport and randomness
/// are constructed. [`run_two_party`] uses it, and so does any harness
/// that schedules the two halves itself (e.g. a worker pool running many
/// sessions concurrently): going through the same constructor guarantees
/// that a scheduled session is bit-for-bit identical to a dedicated
/// [`run_two_party`] call with the same config.
///
/// # Examples
///
/// ```
/// use intersect_comm::runner::{linked_pair, RunConfig};
/// use intersect_comm::chan::Chan;
/// use intersect_comm::bits::BitBuf;
///
/// let (mut a, mut b, coins) = linked_pair(&RunConfig::with_seed(9));
/// let mut m = BitBuf::new();
/// m.push_bits(0b110, 3);
/// a.send(m)?;
/// assert_eq!(b.recv()?.len(), 3);
/// assert_eq!(coins, intersect_comm::coins::CoinSource::from_seed(9));
/// # Ok::<(), intersect_comm::error::ProtocolError>(())
/// ```
pub fn linked_pair(cfg: &RunConfig) -> (Endpoint, Endpoint, CoinSource) {
    let (ep_a, ep_b) = Endpoint::pair(cfg.bit_budget, cfg.timeout);
    (ep_a, ep_b, CoinSource::from_seed(cfg.seed))
}

/// Assembles the cost of one two-party run from the two endpoints' final
/// counters, exactly as [`run_two_party`] reports it.
pub fn assemble_report(
    stats_alice: crate::stats::ChannelStats,
    stats_bob: crate::stats::ChannelStats,
) -> CostReport {
    CostReport {
        bits_alice: stats_alice.bits_sent,
        bits_bob: stats_bob.bits_sent,
        messages: stats_alice.messages_sent + stats_bob.messages_sent,
        rounds: stats_alice.clock.max(stats_bob.clock),
    }
}

/// The result of a successful two-party run.
#[derive(Debug, Clone)]
pub struct RunOutcome<A, B> {
    /// Alice's return value.
    pub alice: A,
    /// Bob's return value.
    pub bob: B,
    /// Exact communication cost of the run.
    pub report: CostReport,
}

/// Runs a two-party protocol: `alice` and `bob` execute concurrently,
/// connected by a bit-metered channel and sharing a common random string.
///
/// Returns both parties' outputs and the exact [`CostReport`].
///
/// # Errors
///
/// If either party returns an error the run fails. When one party's failure
/// causes the other to observe a closed channel, the original failure is
/// reported rather than the secondary [`ProtocolError::ChannelClosed`].
///
/// # Examples
///
/// ```
/// use intersect_comm::runner::{run_two_party, RunConfig};
/// use intersect_comm::chan::Chan;
/// use intersect_comm::bits::BitBuf;
///
/// let out = run_two_party(
///     &RunConfig::with_seed(7),
///     |chan, _coins| {
///         let mut m = BitBuf::new();
///         m.push_bits(0b1010, 4);
///         chan.send(m)?;
///         Ok(chan.recv()?.len())
///     },
///     |chan, _coins| {
///         let got = chan.recv()?;
///         chan.send(got.clone())?;
///         Ok(got.len())
///     },
/// )?;
/// assert_eq!(out.alice, 4);
/// assert_eq!(out.bob, 4);
/// assert_eq!(out.report.total_bits(), 8);
/// assert_eq!(out.report.rounds, 2);
/// # Ok::<(), intersect_comm::error::ProtocolError>(())
/// ```
pub fn run_two_party<FA, FB, A, B>(
    cfg: &RunConfig,
    alice: FA,
    bob: FB,
) -> Result<RunOutcome<A, B>, ProtocolError>
where
    FA: FnOnce(&mut Endpoint, &CoinSource) -> Result<A, ProtocolError> + Send,
    FB: FnOnce(&mut Endpoint, &CoinSource) -> Result<B, ProtocolError> + Send,
    A: Send,
    B: Send,
{
    let (mut ep_a, mut ep_b, coins) = linked_pair(cfg);
    let coins_b = coins.clone();

    let (res_a, res_b, stats_a, stats_b) = std::thread::scope(|scope| {
        let handle = scope.spawn(move || {
            let r = bob(&mut ep_b, &coins_b);
            (r, ep_b.stats())
        });
        let res_a = alice(&mut ep_a, &coins);
        let stats_a = ep_a.stats();
        // Drop Alice's endpoint so a blocked Bob sees a hangup rather than a
        // timeout if Alice failed early.
        drop(ep_a);
        let (res_b, stats_b) = handle.join().expect("bob panicked");
        (res_a, res_b, stats_a, stats_b)
    });

    let report = assemble_report(stats_a, stats_b);

    match (res_a, res_b) {
        (Ok(alice), Ok(bob)) => Ok(RunOutcome { alice, bob, report }),
        (Err(e), Ok(_)) | (Ok(_), Err(e)) => Err(e),
        (Err(ea), Err(eb)) => {
            // Prefer the root cause over a secondary hangup/timeout.
            let secondary = |e: &ProtocolError| {
                matches!(e, ProtocolError::ChannelClosed | ProtocolError::Timeout)
            };
            if secondary(&ea) && !secondary(&eb) {
                Err(eb)
            } else {
                Err(ea)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bits::BitBuf;

    fn bits(n: usize) -> BitBuf {
        let mut b = BitBuf::new();
        for _ in 0..n {
            b.push_bit(true);
        }
        b
    }

    #[test]
    fn ping_pong_counts_rounds_and_bits() {
        let out = run_two_party(
            &RunConfig::with_seed(1),
            |chan, _| {
                chan.send(bits(8))?;
                chan.recv()?;
                chan.send(bits(4))?;
                Ok(())
            },
            |chan, _| {
                chan.recv()?;
                chan.send(bits(2))?;
                chan.recv()?;
                Ok(())
            },
        )
        .unwrap();
        assert_eq!(out.report.bits_alice, 12);
        assert_eq!(out.report.bits_bob, 2);
        assert_eq!(out.report.total_bits(), 14);
        assert_eq!(out.report.messages, 3);
        assert_eq!(out.report.rounds, 3);
    }

    #[test]
    fn shared_coins_agree_across_parties() {
        let out = run_two_party(
            &RunConfig::with_seed(99),
            |_, coins| {
                use rand::Rng;
                Ok(coins.rng_for("h").gen::<u64>())
            },
            |_, coins| {
                use rand::Rng;
                Ok(coins.rng_for("h").gen::<u64>())
            },
        )
        .unwrap();
        assert_eq!(out.alice, out.bob);
    }

    #[test]
    fn primary_error_wins_over_secondary_hangup() {
        let err = run_two_party(
            &RunConfig::with_seed(1),
            |chan, _| {
                chan.recv()?; // Bob never sends: sees hangup after Bob fails
                Ok(())
            },
            |_, _| -> Result<(), ProtocolError> {
                Err(ProtocolError::InvalidInput("bad set".into()))
            },
        )
        .unwrap_err();
        assert_eq!(err, ProtocolError::InvalidInput("bad set".into()));
    }

    #[test]
    fn budget_aborts_runaway_protocol() {
        let err = run_two_party(
            &RunConfig::with_seed(1).bit_budget(100),
            |chan, _| -> Result<(), ProtocolError> {
                loop {
                    chan.send(bits(64))?;
                }
            },
            |chan, _| -> Result<(), ProtocolError> {
                loop {
                    chan.recv()?;
                }
            },
        )
        .unwrap_err();
        assert!(matches!(err, ProtocolError::BudgetExceeded { .. }));
    }

    #[test]
    fn side_basics() {
        assert_eq!(Side::Alice.peer(), Side::Bob);
        assert_eq!(Side::Bob.peer(), Side::Alice);
        assert!(Side::Alice.is_alice());
        assert_eq!(Side::Bob.to_string(), "bob");
    }
}
