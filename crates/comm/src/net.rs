//! The message-passing model for `m` players.
//!
//! Matches the model of Section 4 of the paper (and \[BEO+13\]): any player
//! may send a private message to any other player; we meter per-player bits
//! and measure rounds as the longest causal chain of messages (see
//! [`crate::stats`]).
//!
//! Every ordered pair of players is connected by a dedicated [`Link`],
//! which implements [`Chan`] so two-party protocols run unchanged inside
//! the network. Links can be *detached* from a player's context
//! ([`PlayerCtx::take_link`]) and driven from worker threads, so a
//! coordinator can run many pairwise protocols concurrently — exactly what
//! Corollary 4.1 needs for its `O(r·max(1, log(m/k)))` round bound. Each
//! link carries its own causal clock, seeded from the player clock at
//! detach time and merged back at [`PlayerCtx::return_link`], so parallel
//! sub-protocols count as parallel rounds while sequential dependencies
//! still add up.

use crate::bits::BitBuf;
use crate::chan::Chan;
use crate::coins::CoinSource;
use crate::error::ProtocolError;
use crate::stats::{ChannelStats, NetworkReport};
use crossbeam_channel::{Receiver, Sender};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

#[derive(Debug, Clone)]
struct NetFrame {
    depth: u64,
    payload: BitBuf,
}

/// Shared per-player traffic counters (updated from detached links too).
#[derive(Debug, Default)]
struct PlayerCounters {
    bits_sent: AtomicU64,
    bits_received: AtomicU64,
    messages_sent: AtomicU64,
    messages_received: AtomicU64,
}

/// Configuration for a network run.
#[derive(Debug, Clone)]
pub struct NetworkConfig {
    /// Number of players.
    pub players: usize,
    /// Seed of the common random string (shared by all players).
    pub seed: u64,
    /// How long a blocked receive may wait before failing the run.
    pub timeout: Duration,
}

impl NetworkConfig {
    /// A network of `players` players with the given shared seed and a
    /// 30-second receive timeout.
    pub fn new(players: usize, seed: u64) -> Self {
        NetworkConfig {
            players,
            seed,
            timeout: Duration::from_secs(30),
        }
    }
}

/// A bit-metered, causally-clocked channel between one ordered pair of
/// players. Implements [`Chan`], so any two-party protocol runs over it.
#[derive(Debug)]
pub struct Link {
    tx: Sender<NetFrame>,
    rx: Receiver<NetFrame>,
    /// This link's local causal clock.
    clock: u64,
    /// Per-link traffic (also folded into the owner's counters).
    stats: ChannelStats,
    counters: Arc<PlayerCounters>,
    timeout: Duration,
}

impl Chan for Link {
    fn send(&mut self, msg: BitBuf) -> Result<(), ProtocolError> {
        let bits = msg.len() as u64;
        self.stats.bits_sent += bits;
        self.stats.messages_sent += 1;
        self.counters.bits_sent.fetch_add(bits, Ordering::Relaxed);
        self.counters.messages_sent.fetch_add(1, Ordering::Relaxed);
        self.tx
            .send(NetFrame {
                depth: self.clock + 1,
                payload: msg,
            })
            .map_err(|_| ProtocolError::ChannelClosed)
    }

    fn recv(&mut self) -> Result<BitBuf, ProtocolError> {
        let frame = self.rx.recv_timeout(self.timeout).map_err(|e| match e {
            crossbeam_channel::RecvTimeoutError::Timeout => ProtocolError::Timeout,
            crossbeam_channel::RecvTimeoutError::Disconnected => ProtocolError::ChannelClosed,
        })?;
        self.clock = self.clock.max(frame.depth);
        self.stats.clock = self.clock;
        let bits = frame.payload.len() as u64;
        self.stats.bits_received += bits;
        self.stats.messages_received += 1;
        self.counters
            .bits_received
            .fetch_add(bits, Ordering::Relaxed);
        self.counters
            .messages_received
            .fetch_add(1, Ordering::Relaxed);
        Ok(frame.payload)
    }

    fn stats(&self) -> ChannelStats {
        let mut s = self.stats;
        s.clock = self.clock;
        s
    }
}

/// A player's handle to the network: identity, coins, and per-peer links.
pub struct PlayerCtx {
    id: usize,
    players: usize,
    coins: CoinSource,
    links: Vec<Option<Link>>,
    clock: u64,
    counters: Arc<PlayerCounters>,
}

impl std::fmt::Debug for PlayerCtx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PlayerCtx(id={}/{})", self.id, self.players)
    }
}

impl PlayerCtx {
    /// This player's id in `0..players()`.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Number of players in the network.
    pub fn players(&self) -> usize {
        self.players
    }

    /// The common random string shared by every player.
    pub fn coins(&self) -> &CoinSource {
        &self.coins
    }

    /// This player's causal round clock.
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// Detaches the link to `peer` so it can be driven concurrently (e.g.
    /// from a scoped worker thread). The link starts at this player's
    /// current causal clock; fold its clock back in with
    /// [`return_link`](Self::return_link).
    ///
    /// # Panics
    ///
    /// Panics if `peer` is out of range, equal to `self.id()`, or its link
    /// was already taken.
    pub fn take_link(&mut self, peer: usize) -> Link {
        assert!(peer < self.players, "peer {peer} out of range");
        assert_ne!(peer, self.id, "no link to self");
        let mut link = self.links[peer]
            .take()
            .unwrap_or_else(|| panic!("link to {peer} already taken"));
        link.clock = link.clock.max(self.clock);
        link
    }

    /// Reattaches a link taken with [`take_link`](Self::take_link), merging
    /// its causal clock into the player clock (a join point: everything the
    /// player does next causally depends on that sub-protocol).
    pub fn return_link(&mut self, peer: usize, link: Link) {
        assert!(peer < self.players && self.links[peer].is_none());
        self.clock = self.clock.max(link.clock);
        self.links[peer] = Some(link);
    }

    /// Borrows the link to `peer` for sequential use; the player clock and
    /// link clock are kept in sync.
    ///
    /// # Panics
    ///
    /// Panics if `peer` is invalid or the link is currently taken.
    pub fn link(&mut self, peer: usize) -> SyncedLink<'_> {
        assert!(peer < self.players, "peer {peer} out of range");
        assert_ne!(peer, self.id, "no link to self");
        let link = self.links[peer]
            .as_mut()
            .unwrap_or_else(|| panic!("link to {peer} is detached"));
        link.clock = link.clock.max(self.clock);
        SyncedLink {
            link,
            player_clock: &mut self.clock,
        }
    }

    /// Sends one message to `peer` (sequential convenience).
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::ChannelClosed`] if `peer` already finished.
    pub fn send_to(&mut self, peer: usize, msg: BitBuf) -> Result<(), ProtocolError> {
        self.link(peer).send(msg)
    }

    /// Receives one message from `peer` (sequential convenience).
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::Timeout`] / [`ProtocolError::ChannelClosed`]
    /// like [`Link::recv`].
    pub fn recv_from(&mut self, peer: usize) -> Result<BitBuf, ProtocolError> {
        self.link(peer).recv()
    }

    /// Snapshot of this player's aggregate counters.
    pub fn stats(&self) -> ChannelStats {
        ChannelStats {
            bits_sent: self.counters.bits_sent.load(Ordering::Relaxed),
            bits_received: self.counters.bits_received.load(Ordering::Relaxed),
            messages_sent: self.counters.messages_sent.load(Ordering::Relaxed),
            messages_received: self.counters.messages_received.load(Ordering::Relaxed),
            clock: self.current_clock(),
        }
    }

    fn current_clock(&self) -> u64 {
        // Max over the player clock and any attached link clocks (detached
        // links report through return_link).
        self.links
            .iter()
            .flatten()
            .map(|l| l.clock)
            .chain([self.clock])
            .max()
            .unwrap_or(0)
    }
}

/// A borrowed link whose causal clock updates flow back to the player.
#[derive(Debug)]
pub struct SyncedLink<'a> {
    link: &'a mut Link,
    player_clock: &'a mut u64,
}

impl Chan for SyncedLink<'_> {
    fn send(&mut self, msg: BitBuf) -> Result<(), ProtocolError> {
        self.link.send(msg)
    }

    fn recv(&mut self) -> Result<BitBuf, ProtocolError> {
        let out = self.link.recv()?;
        *self.player_clock = (*self.player_clock).max(self.link.clock);
        Ok(out)
    }

    fn stats(&self) -> ChannelStats {
        self.link.stats()
    }
}

/// The result of a successful network run.
#[derive(Debug, Clone)]
pub struct NetOutcome<R> {
    /// Per-player outputs, indexed by player id.
    pub outputs: Vec<R>,
    /// Exact communication cost of the run.
    pub report: NetworkReport,
}

/// Runs an `m`-player protocol: every player executes `behavior`
/// concurrently, distinguished by [`PlayerCtx::id`].
///
/// # Errors
///
/// Fails if any player returns an error; primary failures are preferred
/// over the secondary hangups/timeouts they cause in other players.
///
/// # Examples
///
/// ```
/// use intersect_comm::net::{run_network, NetworkConfig};
/// use intersect_comm::bits::BitBuf;
///
/// // Everyone sends their id (8 bits) to player 0.
/// let out = run_network(&NetworkConfig::new(4, 1), |ctx| {
///     if ctx.id() == 0 {
///         let mut sum = 0u64;
///         for p in 1..ctx.players() {
///             sum += ctx.recv_from(p)?.reader().read_bits(8).unwrap();
///         }
///         Ok(sum)
///     } else {
///         let mut m = BitBuf::new();
///         m.push_bits(ctx.id() as u64, 8);
///         ctx.send_to(0, m)?;
///         Ok(0)
///     }
/// })?;
/// assert_eq!(out.outputs[0], 1 + 2 + 3);
/// assert_eq!(out.report.total_bits(), 3 * 8);
/// assert_eq!(out.report.rounds, 1);
/// # Ok::<(), intersect_comm::error::ProtocolError>(())
/// ```
pub fn run_network<F, R>(cfg: &NetworkConfig, behavior: F) -> Result<NetOutcome<R>, ProtocolError>
where
    F: Fn(&mut PlayerCtx) -> Result<R, ProtocolError> + Sync,
    R: Send,
{
    let m = cfg.players;
    assert!(m >= 1, "network needs at least one player");

    // Build the full mesh: one channel per ordered pair.
    let mut txs: Vec<Vec<Option<Sender<NetFrame>>>> =
        (0..m).map(|_| (0..m).map(|_| None).collect()).collect();
    let mut rxs: Vec<Vec<Option<Receiver<NetFrame>>>> =
        (0..m).map(|_| (0..m).map(|_| None).collect()).collect();
    for a in 0..m {
        for b in 0..m {
            if a == b {
                continue;
            }
            let (tx, rx) = crossbeam_channel::unbounded();
            txs[a][b] = Some(tx); // a's sender towards b
            rxs[b][a] = Some(rx); // b's receiver from a
        }
    }

    let coins = CoinSource::from_seed(cfg.seed);
    let counters: Vec<Arc<PlayerCounters>> = (0..m)
        .map(|_| Arc::new(PlayerCounters::default()))
        .collect();
    let mut ctxs: Vec<PlayerCtx> = Vec::with_capacity(m);
    for (id, (tx_row, rx_row)) in txs.into_iter().zip(rxs).enumerate() {
        let links: Vec<Option<Link>> = tx_row
            .into_iter()
            .zip(rx_row)
            .map(|(tx, rx)| match (tx, rx) {
                (Some(tx), Some(rx)) => Some(Link {
                    tx,
                    rx,
                    clock: 0,
                    stats: ChannelStats::default(),
                    counters: counters[id].clone(),
                    timeout: cfg.timeout,
                }),
                _ => None,
            })
            .collect();
        ctxs.push(PlayerCtx {
            id,
            players: m,
            coins: coins.clone(),
            links,
            clock: 0,
            counters: counters[id].clone(),
        });
    }

    let behavior = &behavior;
    let results: Vec<(Result<R, ProtocolError>, ChannelStats)> = std::thread::scope(|scope| {
        let handles: Vec<_> = ctxs
            .iter_mut()
            .map(|ctx| {
                scope.spawn(move || {
                    let r = behavior(ctx);
                    (r, ctx.stats())
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("player panicked"))
            .collect()
    });

    let mut report = NetworkReport {
        bits_sent: Vec::with_capacity(m),
        bits_received: Vec::with_capacity(m),
        messages: 0,
        rounds: 0,
    };
    let mut outputs = Vec::with_capacity(m);
    let mut first_err: Option<ProtocolError> = None;
    let mut primary_err: Option<ProtocolError> = None;
    for (res, stats) in results {
        report.bits_sent.push(stats.bits_sent);
        report.bits_received.push(stats.bits_received);
        report.messages += stats.messages_sent;
        report.rounds = report.rounds.max(stats.clock);
        match res {
            Ok(v) => outputs.push(v),
            Err(e) => {
                let secondary = matches!(e, ProtocolError::ChannelClosed | ProtocolError::Timeout);
                if !secondary && primary_err.is_none() {
                    primary_err = Some(e.clone());
                }
                if first_err.is_none() {
                    first_err = Some(e);
                }
            }
        }
    }
    if let Some(e) = primary_err.or(first_err) {
        return Err(e);
    }
    Ok(NetOutcome { outputs, report })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(v: u64, w: usize) -> BitBuf {
        let mut b = BitBuf::new();
        b.push_bits(v, w);
        b
    }

    #[test]
    fn star_aggregation_counts_per_player_bits() {
        let out = run_network(&NetworkConfig::new(5, 3), |ctx| {
            if ctx.id() == 0 {
                let mut total = 0;
                for p in 1..5 {
                    total += ctx.recv_from(p)?.reader().read_bits(16).unwrap();
                }
                Ok(total)
            } else {
                ctx.send_to(0, msg(ctx.id() as u64 * 100, 16))?;
                Ok(0)
            }
        })
        .unwrap();
        assert_eq!(out.outputs[0], 1000);
        assert_eq!(out.report.bits_sent, vec![0, 16, 16, 16, 16]);
        assert_eq!(out.report.bits_received[0], 64);
        assert_eq!(out.report.rounds, 1);
        assert_eq!(out.report.messages, 4);
    }

    #[test]
    fn relay_chain_counts_rounds() {
        // 0 -> 1 -> 2 -> 3: three causally chained messages = 3 rounds.
        let out = run_network(&NetworkConfig::new(4, 0), |ctx| {
            let id = ctx.id();
            if id == 0 {
                ctx.send_to(1, msg(7, 8))?;
            } else {
                let v = ctx.recv_from(id - 1)?.reader().read_bits(8).unwrap();
                if id + 1 < ctx.players() {
                    ctx.send_to(id + 1, msg(v + 1, 8))?;
                }
            }
            Ok(())
        })
        .unwrap();
        assert_eq!(out.report.rounds, 3);
    }

    #[test]
    fn pair_links_run_two_party_logic() {
        let out = run_network(&NetworkConfig::new(2, 0), |ctx| {
            let id = ctx.id();
            let mut chan = ctx.link(1 - id);
            if id == 0 {
                chan.send(msg(42, 16))?;
                Ok(chan.recv()?.reader().read_bits(16).unwrap())
            } else {
                let v = chan.recv()?.reader().read_bits(16).unwrap();
                chan.send(msg(v + 1, 16))?;
                Ok(v)
            }
        })
        .unwrap();
        assert_eq!(out.outputs, vec![43, 42]);
        assert_eq!(out.report.rounds, 2);
        assert_eq!(out.report.total_bits(), 32);
    }

    #[test]
    fn detached_links_allow_parallel_subprotocols() {
        // Player 0 ping-pongs 5 times with each of 4 peers. Done through
        // detached links in worker threads, the causal round count is that
        // of ONE ping-pong series (10), not four of them (40).
        let out = run_network(&NetworkConfig::new(5, 0), |ctx| {
            if ctx.id() == 0 {
                let links: Vec<(usize, Link)> = (1..5).map(|p| (p, ctx.take_link(p))).collect();
                let done: Vec<(usize, Link)> = std::thread::scope(|s| {
                    links
                        .into_iter()
                        .map(|(p, mut link)| {
                            s.spawn(move || {
                                for i in 0..5u64 {
                                    link.send(msg(i, 8)).unwrap();
                                    link.recv().unwrap();
                                }
                                (p, link)
                            })
                        })
                        .collect::<Vec<_>>()
                        .into_iter()
                        .map(|h| h.join().unwrap())
                        .collect()
                });
                for (p, link) in done {
                    ctx.return_link(p, link);
                }
                Ok(ctx.clock())
            } else {
                for _ in 0..5 {
                    let v = ctx.recv_from(0)?;
                    ctx.send_to(0, v)?;
                }
                Ok(0)
            }
        })
        .unwrap();
        assert_eq!(out.report.rounds, 10, "parallel series must not add");
        assert_eq!(out.report.messages, 5 * 2 * 4);
    }

    #[test]
    fn sequential_subprotocols_do_add_rounds() {
        let out = run_network(&NetworkConfig::new(3, 0), |ctx| {
            if ctx.id() == 0 {
                for p in 1..3 {
                    let mut chan = ctx.link(p);
                    chan.send(msg(1, 8))?;
                    chan.recv()?;
                }
                Ok(ctx.clock())
            } else {
                let v = ctx.recv_from(0)?;
                ctx.send_to(0, v)?;
                Ok(0)
            }
        })
        .unwrap();
        assert_eq!(out.report.rounds, 4, "sequential ping-pongs add");
    }

    #[test]
    fn primary_error_preferred() {
        let err = run_network(&NetworkConfig::new(3, 0), |ctx| {
            if ctx.id() == 1 {
                Err(ProtocolError::InvalidInput("player 1 bad".into()))
            } else if ctx.id() == 0 {
                ctx.recv_from(1).map(|_| ())
            } else {
                Ok(())
            }
        })
        .unwrap_err();
        assert_eq!(err, ProtocolError::InvalidInput("player 1 bad".into()));
    }

    #[test]
    fn shared_coins_are_global() {
        use rand::Rng;
        let out = run_network(&NetworkConfig::new(4, 12), |ctx| {
            Ok(ctx.coins().rng_for("global").gen::<u64>())
        })
        .unwrap();
        assert!(out.outputs.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn timeout_is_reported() {
        let cfg = NetworkConfig {
            players: 2,
            seed: 0,
            timeout: Duration::from_millis(20),
        };
        let err = run_network(&cfg, |ctx| {
            if ctx.id() == 0 {
                ctx.recv_from(1).map(|_| ())
            } else {
                Ok(())
            }
        })
        .unwrap_err();
        assert_eq!(err, ProtocolError::Timeout);
    }
}
